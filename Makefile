# Developer entry points.  PYTHONPATH is injected so no install step is
# needed inside the container.

PY := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python

.PHONY: test test-fast bench bench-all clean

## Tier-1 verification: the full unit/property suite.
test:
	$(PY) -m pytest tests/ -x -q

## Quick subset for inner-loop development (tables + parity + EM layer).
test-fast:
	$(PY) -m pytest tests/test_batch_parity.py tests/test_em_disk.py \
	    tests/test_em_iostats.py tests/test_buffered.py tests/test_logmethod.py -q

## Perf trajectory: scalar-vs-batch throughput, recorded at the repo root.
## Future PRs regress against BENCH_throughput.json.
bench:
	$(PY) -m pytest benchmarks/bench_throughput.py --benchmark-only -s -q \
	    --benchmark-json=BENCH_throughput.json

## Every paper-artifact benchmark (slow; prints the reproduced tables).
bench-all:
	$(PY) -m pytest benchmarks/ --benchmark-only -s -q

clean:
	rm -rf .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
