# Developer entry points.  PYTHONPATH is injected so no install step is
# needed inside the container.

PY := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python

.PHONY: help test test-fast chaos-test overload-test obs-test bench cache-bench service-bench slo-bench skew-bench bench-all plots clean

## Print the entry points (tier-1 invocation included).
help:
	@echo "Targets:"
	@echo "  make test          tier-1 verification: PYTHONPATH=src python -m pytest tests/ -x -q"
	@echo "                     (includes the crash-recovery chaos suite)"
	@echo "  make test-fast     quick subset: tables + parity + EM layer"
	@echo "  make chaos-test    crash-point matrix only: journal/recovery/fault-injection"
	@echo "  make overload-test open-loop traffic + admission/shedding/breaker invariants"
	@echo "  make obs-test      observability: trace framing/determinism, metrics, relabelling"
	@echo "  make bench         scalar-vs-batch + backend x shards perf rows -> BENCH_throughput.json"
	@echo "  make cache-bench   cold-vs-warm BufferPool rows + plots/*.dat curves -> BENCH_cache.json"
	@echo "  make service-bench mixed-op service rows (incl. durable+journal leg) -> BENCH_service.json"
	@echo "  make slo-bench     latency vs offered load sweep + breaker chaos -> BENCH_service.json"
	@echo "  make skew-bench    static-vs-adaptive routing skew matrix + plots -> BENCH_skew.json"
	@echo "  make bench-all     every paper-artifact benchmark (slow)"
	@echo "  make plots         regenerate every plots/*.dat from the checked-in BENCH_*.json"
	@echo "  make clean         remove caches"

## Tier-1 verification: the full unit/property suite (chaos included).
test:
	$(PY) -m pytest tests/ -x -q

## Quick subset for inner-loop development (tables + parity + EM layer,
## buffer-pool unit tests, the cached-vs-uncached relabelling contract,
## the skew-routing contracts: slot directory, rebalancer policy,
## migration journal, generator determinism — and the observability
## contracts: trace framing/determinism, metrics folding, relabelling).
test-fast:
	$(PY) -m pytest tests/test_batch_parity.py tests/test_em_disk.py \
	    tests/test_em_iostats.py tests/test_em_cache.py \
	    tests/test_cache_axis.py tests/test_buffered.py \
	    tests/test_logmethod.py tests/test_rebalance.py \
	    tests/test_obs.py -q

## Crash-consistency only: the chaos matrix (crash at every epoch
## boundary + sampled intra-epoch backend ops, per policy x backend,
## small n), journal format/torn-tail scans, snapshot/restore, and the
## fault-injection/retry layer.  Also part of `make test`.
chaos-test:
	$(PY) -m pytest tests/test_recovery.py tests/test_faults.py \
	    tests/test_journal.py tests/test_durable_backend.py -q

## Overload resilience only: seeded arrival processes, the admission
## queue + reject/shed/adapt policies, per-op deadlines, per-shard
## circuit breakers, the shedding-disabled bit-identity contract, and
## the overload chaos harness (fault bursts under saturation).  Fast
## (small n) and also part of `make test`.
overload-test:
	$(PY) -m pytest tests/test_traffic.py tests/test_overload.py -q

## Observability only: crc-framed trace scans (torn tails, corruption),
## span-tree determinism (virtual clock, executor-invariant), the
## metrics registry (counters/histograms/Prometheus dump, snapshot
## round-trip), the relabelling contract (obs on == obs off, trace sums
## == ledger), and the trace-summary CLI.  Also part of `make test`.
obs-test:
	$(PY) -m pytest tests/test_obs.py -q

## Perf trajectory: scalar-vs-batch throughput plus the backend x shards
## sweep (mapping/arena x 1/8 shards; I/O totals asserted backend-invariant
## under both policies).  Rows land in BENCH_throughput.json
## ("rows" = scalar-vs-batch reference, "config_rows" = backend/shards axes);
## future PRs regress against it.
bench:
	$(PY) -m pytest benchmarks/bench_throughput.py --benchmark-only -s -q \
	    --benchmark-json=BENCH_throughput.json

## Cache axis only: the cold-vs-warm BufferPool rounds on the buffered
## table and the Bloom-filtered LSM (relabelling contract asserted
## in-run; warm cached rounds must beat the uncached leg).  Writes
## BENCH_cache.json so a targeted run never clobbers the trajectory
## file, and drops per-table .dat curves under plots/ for gnuplot.
cache-bench:
	REPRO_PLOT_DIR=plots $(PY) -m pytest \
	    benchmarks/bench_throughput.py::test_cache_throughput \
	    --benchmark-only -s -q --benchmark-json=BENCH_cache.json

## Service axis only: the 70/25/5 mixed-workload closed-loop rows
## (throughput + p50/p99 latency, serial-vs-threads determinism, the
## sustained-rate gate, and the journal-overhead leg: durable-arena +
## write-ahead journal vs in-memory arena).  Writes BENCH_service.json
## so a targeted run never clobbers the full trajectory file.
service-bench:
	$(PY) -m pytest benchmarks/bench_throughput.py::test_service_mixed_throughput \
	    --benchmark-only -s -q --benchmark-json=BENCH_service.json

## SLO axis: the open-loop latency-vs-offered-load sweep (calibrated
## capacity, shed-policy rows at 0.5x-2.5x, the deadline degradation
## leg, the knee/max-sustainable-goodput gate, and the breaker chaos
## row).  Also writes BENCH_service.json (headline numbers land in
## extra_info under test_service_slo_sweep).
slo-bench:
	REPRO_PLOT_DIR=plots $(PY) -m pytest benchmarks/bench_service_slo.py \
	    --benchmark-only -s -q --benchmark-json=BENCH_service.json

## Skew axis: the static-vs-adaptive routing matrix (router-correlated
## adversarial + hot-Zipf gate legs at n=1e6, the wider distribution
## matrix at smaller n, the ratio-cut and charged-I/O goodput gates,
## and the no-free-moves migration accounting).  Writes BENCH_skew.json
## and drops per-window imbalance series under plots/ for gnuplot.
skew-bench:
	REPRO_PLOT_DIR=plots $(PY) -m pytest benchmarks/bench_skew.py \
	    --benchmark-only -s -q --benchmark-json=BENCH_skew.json

## Every paper-artifact benchmark (slow; prints the reproduced tables).
bench-all:
	$(PY) -m pytest benchmarks/ --benchmark-only -s -q

## Rebuild every plots/*.dat from the series payloads stashed in the
## checked-in BENCH_*.json — no benchmark re-run, so plot data can
## never drift from the recorded numbers.
plots:
	$(PY) benchmarks/regen_plots.py

clean:
	rm -rf .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
