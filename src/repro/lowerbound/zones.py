"""Zone decomposition of a hash-table layout (Section 2's abstraction).

Given a :class:`~repro.tables.base.LayoutSnapshot` — memory items,
disk blocks ``B_1..B_d``, and the memory-computable address function
``f`` — decompose the stored items into:

* **memory zone** ``M``: items resident in memory (0 I/Os to query),
* **fast zone** ``F``: disk items with ``x ∈ B_{f(x)}`` (1 I/O),
* **slow zone** ``S``: everything else (≥ 2 I/Os).

From the zones we obtain the paper's *query-cost lower bound* for the
layout, ``(|F| + 2|S|) / k``, and can check inequality (1):
``E|S| ≤ m + δk`` whenever the table claims ``t_q ≤ 1 + δ``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tables.base import LayoutSnapshot


@dataclass(frozen=True)
class ZoneDecomposition:
    """The (M, F, S) partition of one layout snapshot."""

    memory: frozenset[int]
    fast: frozenset[int]
    slow: frozenset[int]

    @property
    def k(self) -> int:
        """Total distinct items in the structure."""
        return len(self.memory) + len(self.fast) + len(self.slow)

    def query_cost_lower_bound(self) -> float:
        """``(0·|M| + 1·|F| + 2·|S|) / k`` — a lower bound on the
        expected average successful-lookup cost of *any* algorithm using
        this layout and address function."""
        if self.k == 0:
            return 0.0
        return (len(self.fast) + 2 * len(self.slow)) / self.k

    def satisfies_inequality_1(self, m: int, delta: float) -> bool:
        """Check the paper's inequality (1): ``|S| ≤ m + δk``."""
        return len(self.slow) <= m + delta * self.k

    def slow_budget(self, m: int, delta: float) -> float:
        """The inequality-(1) headroom ``m + δk − |S|`` (negative = violated)."""
        return m + delta * self.k - len(self.slow)


def decompose(snapshot: LayoutSnapshot) -> ZoneDecomposition:
    """Compute the (M, F, S) zones of a snapshot.

    An item in memory is in ``M`` regardless of disk copies (querying it
    is free).  A disk item is fast iff *some* copy lives in the block
    its address function points at.
    """
    memory = frozenset(snapshot.memory_items)
    fast: set[int] = set()
    slow: set[int] = set()
    # Invert the blocks map once: item -> set of blocks holding a copy.
    holders: dict[int, set[int]] = {}
    for bid, items in snapshot.blocks.items():
        for x in items:
            holders.setdefault(x, set()).add(bid)
    for x, blocks_with_x in holders.items():
        if x in memory:
            continue
        target = snapshot.address(x)
        if target is not None and target in blocks_with_x:
            fast.add(x)
        else:
            slow.add(x)
    return ZoneDecomposition(memory=memory, fast=frozenset(fast), slow=frozenset(slow))


@dataclass(frozen=True)
class ZoneHistoryPoint:
    """Zones measured at one snapshot during an insertion run."""

    inserted: int
    memory_size: int
    fast_size: int
    slow_size: int
    query_lb: float

    @classmethod
    def from_zones(cls, inserted: int, z: ZoneDecomposition) -> "ZoneHistoryPoint":
        return cls(
            inserted=inserted,
            memory_size=len(z.memory),
            fast_size=len(z.fast),
            slow_size=len(z.slow),
            query_lb=z.query_cost_lower_bound(),
        )


def verify_query_claim(
    history: list[ZoneHistoryPoint], m: int, delta: float
) -> list[ZoneHistoryPoint]:
    """Return the history points whose slow zone violates inequality (1).

    An empty return certifies the layout *could* support
    ``t_q ≤ 1 + δ`` at every measured snapshot; any entry is a witness
    that it could not.
    """
    return [
        pt
        for pt in history
        if pt.slow_size > m + delta * (pt.memory_size + pt.fast_size + pt.slow_size)
    ]
