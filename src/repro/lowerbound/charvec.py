"""Characteristic vectors and the good/bad function dichotomy (Lemma 2).

For an address function ``f : U → {1..d}`` let
``α_i = |f^{-1}(i)| / u`` (so ``Σ α_i = 1``).  Fix a threshold ``ρ``:
indices with ``α_i > ρ`` form the **bad index area** ``D_f``; its total
mass is ``λ_f = Σ_{i ∈ D_f} α_i``.  A function is **bad** when
``λ_f > φ`` — it funnels too much of the universe into too few blocks,
so under random inserts the fast zone saturates (``|D_f| ≤ λ_f/ρ``
indices hold at most ``b λ_f/ρ`` fast items) and the slow zone must
violate the query bound.  Lemma 2: w.h.p. the table uses a good ``f``.

Exact characteristic vectors need ``|U|`` evaluations; for the sampled
variant we estimate ``α`` by hashing a uniform key sample and report
binomial confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class CharacteristicVector:
    """The vector ``(α_1, ..., α_d)`` of an address function."""

    alphas: np.ndarray  # shape (d,), non-negative, sums to ~1
    exact: bool

    def __post_init__(self) -> None:
        a = np.asarray(self.alphas, dtype=float)
        if a.ndim != 1:
            raise ValueError("characteristic vector must be one-dimensional")
        if (a < 0).any():
            raise ValueError("characteristic vector entries must be non-negative")
        total = float(a.sum())
        if total > 0 and not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"characteristic vector sums to {total}, expected 1")

    @property
    def d(self) -> int:
        return int(self.alphas.shape[0])

    # -- Lemma 2 quantities ---------------------------------------------------

    def bad_index_area(self, rho: float) -> np.ndarray:
        """Indices ``i`` with ``α_i > ρ`` (``D_f``)."""
        return np.flatnonzero(self.alphas > rho)

    def lambda_f(self, rho: float) -> float:
        """Mass of the bad index area, ``λ_f``."""
        return float(self.alphas[self.alphas > rho].sum())

    def is_good(self, rho: float, phi: float) -> bool:
        """Good function test: ``λ_f ≤ φ``."""
        return self.lambda_f(rho) <= phi

    def good_mass(self, rho: float) -> float:
        """``1 − λ_f``: probability a random item lands in the good area."""
        return 1.0 - self.lambda_f(rho)

    def max_good_bucket_prob(self, rho: float) -> float:
        """Conditional landing probability bound ``ρ / (1 − λ_f)``.

        This is the per-bin probability ``p`` of the bin--ball game a
        good function induces (proof of Theorem 1, step 2).
        """
        lam = self.lambda_f(rho)
        if lam >= 1.0:
            return 1.0
        return min(1.0, rho / (1.0 - lam))


def from_counts(counts: Sequence[int] | np.ndarray, *, exact: bool = True) -> CharacteristicVector:
    """Build a characteristic vector from preimage sizes ``|f^{-1}(i)|``."""
    c = np.asarray(counts, dtype=float)
    total = c.sum()
    if total <= 0:
        raise ValueError("counts must have positive total")
    return CharacteristicVector(alphas=c / total, exact=exact)


def exact_for_modular(u: int, d: int) -> CharacteristicVector:
    """Exact vector of ``f(x) = x mod d`` on ``U = [0, u)``.

    The first ``u mod d`` residues receive ``ceil(u/d)`` keys, the rest
    ``floor(u/d)`` — the canonical *good* function (``λ_f = 0`` for any
    ``ρ > ceil(u/d)/u``).
    """
    if d <= 0 or u <= 0:
        raise ValueError("u and d must be positive")
    base = u // d
    extra = u % d
    counts = np.full(d, base, dtype=float)
    counts[:extra] += 1
    return from_counts(counts)


def sample_for_function(
    f: Callable[[int], int],
    u: int,
    d: int,
    *,
    samples: int = 100_000,
    rng: np.random.Generator | None = None,
) -> CharacteristicVector:
    """Estimate the characteristic vector of an arbitrary ``f`` by sampling.

    Draws ``samples`` uniform keys and bins ``f(key)``.  The estimate of
    each ``α_i`` has standard error ``≤ 1/(2√samples)``.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    keys = rng.integers(0, u, size=samples, dtype=np.uint64)
    counts = np.zeros(d, dtype=np.int64)
    for key in keys:
        idx = f(int(key))
        if not 0 <= idx < d:
            raise ValueError(f"address {idx} outside [0, {d})")
        counts[idx] += 1
    return from_counts(counts, exact=False)


def planted_bad_vector(d: int, hot_indices: int, hot_mass: float) -> CharacteristicVector:
    """A synthetic *bad* vector: ``hot_indices`` blocks carry ``hot_mass``.

    Used by the Lemma 2 experiments to plant bad functions and watch
    their slow zones blow up.
    """
    if not 0 < hot_mass < 1:
        raise ValueError("hot_mass must lie in (0, 1)")
    if not 0 < hot_indices < d:
        raise ValueError("hot_indices must lie in (0, d)")
    alphas = np.full(d, (1.0 - hot_mass) / (d - hot_indices))
    alphas[:hot_indices] = hot_mass / hot_indices
    return CharacteristicVector(alphas=alphas, exact=True)


@dataclass(frozen=True)
class FamilyAudit:
    """Good/bad audit of a whole address-function family sample."""

    rho: float
    phi: float
    lambdas: np.ndarray  # λ_f per audited function

    @property
    def n_functions(self) -> int:
        return int(self.lambdas.shape[0])

    @property
    def bad_fraction(self) -> float:
        return float((self.lambdas > self.phi).mean())

    def worst(self) -> float:
        return float(self.lambdas.max(initial=0.0))


def audit_family(
    vectors: Sequence[CharacteristicVector], rho: float, phi: float
) -> FamilyAudit:
    """Classify each function of a family sample as good or bad."""
    lams = np.array([v.lambda_f(rho) for v in vectors], dtype=float)
    return FamilyAudit(rho=rho, phi=phi, lambdas=lams)
