"""Closed-form statements of Theorem 1, round by round.

While :mod:`repro.core.config` exposes the headline amortized bounds,
this module spells out the *per-round* quantities the proof
manipulates, so experiments can compare each measured round against the
exact expression the proof guarantees for it:

* case 1 / 2 (Lemma 3 route): round cost ``≥ (1 − O(φ)) s − t`` with
  ``t = |S| + |M| ≤ δn/φ + 2m``;
* case 3 (Lemma 4 route): round cost ``≥ (1 − 2φ)/(20ρ)``.

Every function takes explicit constants so benches can report both the
leading-order prediction and a conservative concrete value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.config import LowerBoundParams


@dataclass(frozen=True)
class RoundBound:
    """The proof's guarantee for a single round."""

    expected_round_cost: float
    t_allowance: float  # the adversary's removals t = |S| + |M| budget
    failure_probability: float
    route: str  # "lemma3" or "lemma4"


def round_bound(
    params: LowerBoundParams, n: int, m: int, b: int, *, mu: float | None = None
) -> RoundBound:
    """The per-round cost guarantee for the given case parameters."""
    s, phi, rho, delta = params.s, params.phi, params.rho, params.delta
    t = delta * n / phi + 2 * m  # E1's slow-zone cap plus the memory zone
    if params.case in (1, 2):
        mu = mu if mu is not None else phi
        sp = s * rho / max(1e-12, 1 - phi)
        cost = max(0.0, (1 - mu) * (1 - sp) * (1 - 2 * phi) * s - t)
        # φ ≥ 1/2 makes the guarantee vacuous (failure probability 2φ ≥ 1);
        # clamp the exponent so the formula saturates instead of overflowing.
        # (1 − 2φ) < 0 for φ > 1/2 flips the exponent's sign, so clamp
        # both ways; exp(+700) would overflow but any non-positive
        # exponent already saturates `fail` at 1.
        exponent1 = max(-700.0, min(700.0, (phi**2) * (1 - 2 * phi) * s / 3))
        fail = (
            2 * phi
            + math.exp(-exponent1)
            + math.exp(-min(700.0, 2 * phi**2 * s))
        )
        return RoundBound(cost, t, min(1.0, fail), "lemma3")
    # Case 3: Lemma 4 route.
    p = rho / max(1e-12, 1 - phi)
    cost = (1 - 2 * phi) / (20 * p)
    fail = 2 * phi + 2.0 ** (-0.05 * s)
    return RoundBound(cost, t, min(1.0, fail), "lemma4")


def amortized_bound(params: LowerBoundParams, n: int, m: int, b: int) -> float:
    """Amortized ``t_u`` implied by the round bound: ``cost · rounds / n``."""
    rb = round_bound(params, n, m, b)
    rounds = (1 - params.phi) * n / params.s
    return rb.expected_round_cost * rounds / n


def theorem1_statement(b: int, c: float) -> str:
    """Human-readable statement of the applicable tradeoff."""
    if c > 1:
        return (
            f"t_q <= 1 + O(1/b^{c:g}) (c>1)  =>  "
            f"t_u >= 1 - O(1/b^{(c - 1) / 4:g}) ~ {1 - b ** (-(c - 1) / 4):.4f}"
        )
    if c == 1:
        return "t_q <= 1 + O(1/b)  =>  t_u >= Ω(1)"
    return (
        f"t_q <= 1 + O(1/b^{c:g}) (c<1)  =>  "
        f"t_u >= Ω(b^{c - 1:g}) ~ {b ** (c - 1):.6f}"
    )


def minimum_n(b: int, m: int, c: float, *, constant: float = 1.0) -> int:
    """Smallest ``n`` inside the theorem's regime ``n > Ω(m b^{1+2c})``."""
    return int(constant * m * b ** (1 + 2 * c)) + 1


def chernoff_bad_function_tail(phi: float, n: int) -> float:
    """Lemma 2's tail ``e^{−φ²n/18}`` for one bad function."""
    return math.exp(-(phi**2) * n / 18)


def family_union_bound(m: int, u: int, per_function_tail: float) -> float:
    """Union bound over the family: ``2^{m log u} · tail`` (capped at 1).

    Computed in log-space to survive the astronomically large family
    size.
    """
    log2_family = m * math.log2(max(u, 2))
    log2_tail = math.log2(per_function_tail) if per_function_tail > 0 else -math.inf
    log2_total = log2_family + log2_tail
    if log2_total >= 0:
        return 1.0
    return 2.0**log2_total
