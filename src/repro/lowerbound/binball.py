"""The (s, p, t) bin--ball game (Section 2, Lemmas 3 and 4).

Throw ``s`` balls into ``r ≥ 1/p`` bins independently, each bin
receiving any given ball with probability at most ``p``.  An adversary
then removes ``t`` balls so that the survivors occupy the fewest bins.
The *cost* is the number of bins still occupied — a stand-in for the
distinct blocks an insertion round must touch.

* Lemma 3 (``sp ≤ 1/3``): cost ``≥ (1−µ)(1−sp)s − t`` w.p.
  ``≥ 1 − e^{−µ²s/3}`` — nearly every ball needs its own bin.
* Lemma 4 (``s/2 ≥ t``, ``s/2 ≥ 1/p``): cost ``≥ 1/(20p)`` w.p.
  ``1 − 2^{−Ω(s)}`` — even a powerful adversary keeps ``Ω(1/p)`` bins.

The optimal adversary is computable exactly: to minimise occupied bins
with ``t`` removals, wipe out whole bins in increasing order of load.
We implement that (vectorised), plus a random-removal ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GameParams:
    """Parameters of one (s, p, t) game."""

    s: int
    p: float
    t: int
    r: int | None = None  # bins; defaults to ceil(1/p)

    def __post_init__(self) -> None:
        if self.s <= 0:
            raise ValueError(f"s must be positive, got {self.s}")
        if not 0 < self.p <= 1:
            raise ValueError(f"p must lie in (0, 1], got {self.p}")
        if self.t < 0:
            raise ValueError(f"t must be non-negative, got {self.t}")
        if self.r is not None and self.r < math.ceil(1 / self.p):
            raise ValueError(f"need r ≥ 1/p bins, got r={self.r} < {1 / self.p:.1f}")

    @property
    def bins(self) -> int:
        return self.r if self.r is not None else math.ceil(1 / self.p)

    def lemma3_applies(self) -> bool:
        return self.s * self.p <= 1 / 3

    def lemma4_applies(self) -> bool:
        return self.s / 2 >= self.t and self.s / 2 >= 1 / self.p


def throw_balls(params: GameParams, rng: np.random.Generator) -> np.ndarray:
    """Throw ``s`` balls uniformly into the bins; returns per-bin counts.

    Uniform throwing into ``r ≥ 1/p`` bins gives per-bin probability
    ``1/r ≤ p``, satisfying the game's constraint.
    """
    assignments = rng.integers(0, params.bins, size=params.s)
    return np.bincount(assignments, minlength=params.bins)


def optimal_adversary_cost(counts: np.ndarray, t: int) -> int:
    """Exact minimum occupied bins after removing ``t`` balls.

    Remove whole bins in increasing order of load: emptying a bin with
    ``c`` balls spends ``c`` removals and saves one bin, so greedy by
    load is optimal (exchange argument: swapping a partly-emptied big
    bin for a fully-emptied small one never loses).
    """
    occupied = counts[counts > 0]
    if occupied.size == 0:
        return 0
    loads = np.sort(occupied)
    cum = np.cumsum(loads)
    emptied = int(np.searchsorted(cum, t, side="right"))
    return int(loads.size - emptied)


def random_adversary_cost(
    counts: np.ndarray, t: int, rng: np.random.Generator
) -> int:
    """Ablation: remove ``t`` uniformly random balls instead of optimally."""
    balls = np.repeat(np.arange(counts.size), counts)
    if t >= balls.size:
        return 0
    keep = rng.permutation(balls.size)[t:]
    return int(np.unique(balls[keep]).size)


@dataclass(frozen=True)
class GameOutcome:
    """Result of one simulated game."""

    params: GameParams
    cost: int
    occupied_before_removal: int

    def lemma3_bound(self, mu: float) -> float:
        """The Lemma 3 bound ``(1−µ)(1−sp)s − t``."""
        s, p, t = self.params.s, self.params.p, self.params.t
        return (1 - mu) * (1 - s * p) * s - t

    def lemma4_bound(self) -> float:
        """The Lemma 4 bound ``1/(20p)``."""
        return 1.0 / (20.0 * self.params.p)


def play(
    params: GameParams,
    rng: np.random.Generator | None = None,
    *,
    adversary: str = "optimal",
) -> GameOutcome:
    """Simulate one game with the chosen adversary ("optimal" | "random")."""
    rng = rng if rng is not None else np.random.default_rng(0)
    counts = throw_balls(params, rng)
    occupied = int((counts > 0).sum())
    if adversary == "optimal":
        cost = optimal_adversary_cost(counts, params.t)
    elif adversary == "random":
        cost = random_adversary_cost(counts, params.t, rng)
    else:
        raise ValueError(f"unknown adversary {adversary!r}")
    return GameOutcome(params=params, cost=cost, occupied_before_removal=occupied)


@dataclass(frozen=True)
class GameEnsemble:
    """Many i.i.d. plays of the same game."""

    params: GameParams
    costs: np.ndarray

    @property
    def trials(self) -> int:
        return int(self.costs.shape[0])

    @property
    def mean_cost(self) -> float:
        return float(self.costs.mean())

    @property
    def min_cost(self) -> int:
        return int(self.costs.min())

    def empirical_failure_probability(self, bound: float) -> float:
        """Fraction of trials whose cost fell below ``bound``."""
        return float((self.costs < bound).mean())


def play_many(
    params: GameParams,
    trials: int,
    *,
    seed: int = 0,
    adversary: str = "optimal",
) -> GameEnsemble:
    """Simulate ``trials`` independent games (vectorised over trials)."""
    rng = np.random.default_rng(seed)
    costs = np.empty(trials, dtype=np.int64)
    for i in range(trials):
        costs[i] = play(params, rng, adversary=adversary).cost
    return GameEnsemble(params=params, costs=costs)


def lemma3_failure_probability(s: int, mu: float) -> float:
    """The Lemma 3 tail bound ``e^{−µ²s/3}``."""
    return math.exp(-(mu**2) * s / 3)


def lemma4_failure_probability(s: int, *, constant: float = 0.05) -> float:
    """A concrete instantiation of the Lemma 4 tail ``2^{−Ω(s)}``."""
    return 2.0 ** (-constant * s)
