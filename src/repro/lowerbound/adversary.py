"""The round-based insertion experiment behind Theorem 1's proof.

The proof inserts ``n`` uniform items: the first ``φn`` for free, the
rest in rounds of ``s``.  For each round it argues the table must touch
``Z = |{f(x) : x ∈ R ∩ F}|`` distinct blocks — the distinct addresses
of round items that ended up in the fast zone — and shows ``Z`` is
large whenever the query bound forces ``f`` good and the slow zone
small.

This module runs that experiment against *real* tables:

* drives the insertion stream,
* measures the actual I/O cost per round,
* takes layout snapshots at round boundaries and computes the
  *certified* lower bounds — both the paper's ``Z`` and the stronger
  "blocks that gained a round item" count, each of which no correct
  algorithm can beat (an item can only appear in a block via a write).

Comparing certified bounds against actual cost reproduces the paper's
tension empirically: tables with near-perfect queries pay ≈ 1 I/O per
insertion; tables that buffer pay o(1) but park round items in the
slow zone instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import LowerBoundParams
from ..em.storage import EMContext
from ..tables.base import ExternalDictionary, LayoutSnapshot
from .zones import ZoneDecomposition, decompose


@dataclass(frozen=True)
class RoundRecord:
    """Measurements for one insertion round."""

    round_index: int
    items: int
    actual_ios: int
    #: The paper's Z: distinct fast-zone addresses of this round's items.
    z_fast: int
    #: Stronger certificate: distinct blocks holding any copy of a
    #: round item at round end (each was necessarily written this round).
    blocks_gained: int
    slow_zone: int
    fast_zone: int
    memory_zone: int
    query_lb: float

    @property
    def certified_lb(self) -> int:
        """Best certified lower bound on this round's write I/Os."""
        return max(self.z_fast, self.blocks_gained)


@dataclass
class AdversaryReport:
    """Aggregate result of a full adversarial insertion run."""

    n: int
    params: LowerBoundParams
    free_items: int
    rounds: list[RoundRecord] = field(default_factory=list)
    total_ios: int = 0

    @property
    def charged_items(self) -> int:
        return sum(r.items for r in self.rounds)

    @property
    def measured_tu(self) -> float:
        """Actual amortized insertion cost over the charged items."""
        charged = self.charged_items
        return self.total_ios / charged if charged else 0.0

    @property
    def certified_tu(self) -> float:
        """Certified amortized lower bound (from the round certificates)."""
        charged = self.charged_items
        if not charged:
            return 0.0
        return sum(r.certified_lb for r in self.rounds) / charged

    @property
    def mean_query_lb(self) -> float:
        if not self.rounds:
            return 0.0
        return float(np.mean([r.query_lb for r in self.rounds]))

    def inequality1_violations(self, m: int) -> int:
        """Rounds whose slow zone breaks ``|S| ≤ m + δk``."""
        out = 0
        for r in self.rounds:
            k = r.memory_zone + r.fast_zone + r.slow_zone
            if r.slow_zone > m + self.params.delta * k:
                out += 1
        return out


def certify_round(
    rnd: int,
    round_keys: list[int],
    snapshot: LayoutSnapshot,
    zones: ZoneDecomposition,
    actual_ios: int,
) -> RoundRecord:
    """Compute a round's certificates from its end-of-round snapshot."""
    round_set = set(round_keys)
    fast_round = round_set & zones.fast
    z_fast = len({snapshot.address(x) for x in fast_round})
    blocks_gained = sum(
        1
        for blk_items in snapshot.blocks.values()
        if round_set.intersection(blk_items)
    )
    return RoundRecord(
        round_index=rnd,
        items=len(round_keys),
        actual_ios=actual_ios,
        z_fast=z_fast,
        blocks_gained=blocks_gained,
        slow_zone=len(zones.slow),
        fast_zone=len(zones.fast),
        memory_zone=len(zones.memory),
        query_lb=zones.query_cost_lower_bound(),
    )


class KeyStream:
    """Uniform distinct keys from ``[0, u)`` (u >> n makes rejection rare)."""

    def __init__(self, u: int, seed: int = 0) -> None:
        self.u = u
        self._rng = np.random.default_rng(seed)
        self._seen: set[int] = set()

    def take(self, count: int) -> list[int]:
        out: list[int] = []
        while len(out) < count:
            batch = self._rng.integers(
                0, self.u, size=count - len(out) + 8, dtype=np.uint64
            )
            for key in batch:
                ki = int(key)
                if ki not in self._seen:
                    self._seen.add(ki)
                    out.append(ki)
                    if len(out) == count:
                        break
        return out


def run_adversary(
    table: ExternalDictionary,
    ctx: EMContext,
    params: LowerBoundParams,
    n: int,
    *,
    seed: int = 0,
    max_rounds: int | None = None,
) -> AdversaryReport:
    """Insert ``n`` uniform items in the proof's round structure.

    The first ``φn`` insertions are free (uncounted), mirroring the
    proof; afterwards each round of ``s`` items is measured and
    certified.  ``max_rounds`` truncates long runs for benchmarking.
    """
    stream = KeyStream(ctx.u, seed)
    free_items = int(params.phi * n)
    report = AdversaryReport(n=n, params=params, free_items=free_items)

    table.insert_many(stream.take(free_items))

    remaining = n - free_items
    s = params.s
    n_rounds = remaining // s
    if max_rounds is not None:
        n_rounds = min(n_rounds, max_rounds)

    for rnd in range(n_rounds):
        round_keys = stream.take(s)
        before = ctx.stats.snapshot()
        table.insert_many(round_keys)
        cost = ctx.stats.delta_since(before).total
        report.total_ios += cost

        snap = table.layout_snapshot()
        zones = decompose(snap)
        report.rounds.append(certify_round(rnd, round_keys, snap, zones, cost))
    return report
