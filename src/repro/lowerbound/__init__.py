"""Executable form of the paper's lower-bound machinery (Section 2).

* :mod:`~repro.lowerbound.zones` — the (M, F, S) zone decomposition and
  inequality (1).
* :mod:`~repro.lowerbound.charvec` — characteristic vectors, bad index
  areas, the good/bad function dichotomy (Lemma 2).
* :mod:`~repro.lowerbound.binball` — the (s, p, t) bin--ball game with
  an exact optimal adversary (Lemmas 3 and 4).
* :mod:`~repro.lowerbound.adversary` — the round-structured insertion
  experiment with per-round certified I/O lower bounds.
* :mod:`~repro.lowerbound.bounds` — closed-form per-round and amortized
  statements of Theorem 1.
"""

from .adversary import AdversaryReport, KeyStream, RoundRecord, certify_round, run_adversary
from .binball import (
    GameEnsemble,
    GameOutcome,
    GameParams,
    lemma3_failure_probability,
    lemma4_failure_probability,
    optimal_adversary_cost,
    play,
    play_many,
    random_adversary_cost,
    throw_balls,
)
from .bounds import (
    RoundBound,
    amortized_bound,
    chernoff_bad_function_tail,
    family_union_bound,
    minimum_n,
    round_bound,
    theorem1_statement,
)
from .charvec import (
    CharacteristicVector,
    FamilyAudit,
    audit_family,
    exact_for_modular,
    from_counts,
    planted_bad_vector,
    sample_for_function,
)
from .zones import ZoneDecomposition, ZoneHistoryPoint, decompose, verify_query_claim

__all__ = [
    "AdversaryReport",
    "KeyStream",
    "RoundRecord",
    "certify_round",
    "run_adversary",
    "GameEnsemble",
    "GameOutcome",
    "GameParams",
    "lemma3_failure_probability",
    "lemma4_failure_probability",
    "optimal_adversary_cost",
    "play",
    "play_many",
    "random_adversary_cost",
    "throw_balls",
    "RoundBound",
    "amortized_bound",
    "chernoff_bad_function_tail",
    "family_union_bound",
    "minimum_n",
    "round_bound",
    "theorem1_statement",
    "CharacteristicVector",
    "FamilyAudit",
    "audit_family",
    "exact_for_modular",
    "from_counts",
    "planted_bad_vector",
    "sample_for_function",
    "ZoneDecomposition",
    "ZoneHistoryPoint",
    "decompose",
    "verify_query_claim",
]
