"""External stack and queue: the simplest wins of buffering.

With just ``O(1)`` blocks of main memory, a stack or queue supports
``n`` operations in ``O(n/b)`` I/Os — ``O(1/b)`` amortized each.  These
are the opening exhibits of the "power of buffering" literature the
paper cites, and the benchmark contrast for its hash-table negative
result.

Both structures charge their memory buffers to the shared
:class:`~repro.em.memory.MemoryBudget` and keep the classic invariants:

* **stack**: a memory buffer of at most ``2b`` words; when it fills,
  the *oldest* ``b`` words spill to disk in one write.  A pop that
  drains the buffer reloads one block.  Any sequence of ``n`` pushes
  and pops costs at most ``O(n/b)`` I/Os because each spilled block is
  written once and read at most once per Θ(b) net movement.
* **queue**: separate head and tail buffers of ``b`` words; the tail
  spills full blocks to a FIFO list, the head refills from it.
"""

from __future__ import annotations

from collections import deque

from ..em.block import Block
from ..em.errors import ConfigurationError
from ..em.storage import EMContext


class ExternalStack:
    """LIFO stack of integer words with ``O(1/b)`` amortized I/Os."""

    def __init__(self, ctx: EMContext, *, name: str = "ExternalStack") -> None:
        if ctx.m < 2 * ctx.b:
            raise ConfigurationError(
                f"external stack needs m >= 2b (m={ctx.m}, b={ctx.b})"
            )
        self.ctx = ctx
        self.name = name
        self._buffer: list[int] = []
        self._spilled: list[int] = []  # block ids, bottom of stack first
        self._size = 0
        self._charge()

    def _charge(self) -> None:
        self.ctx.memory.set_charge(
            f"{self.name}@{id(self)}", len(self._buffer) + len(self._spilled) + 2
        )

    def push(self, word: int) -> None:
        self._buffer.append(word)
        self._size += 1
        if len(self._buffer) >= 2 * self.ctx.b:
            self._spill()
        self._charge()

    def pop(self) -> int:
        if self._size == 0:
            raise IndexError("pop from empty external stack")
        if not self._buffer:
            self._reload()
        self._size -= 1
        out = self._buffer.pop()
        self._charge()
        return out

    def peek(self) -> int:
        if self._size == 0:
            raise IndexError("peek of empty external stack")
        if not self._buffer:
            self._reload()
        return self._buffer[-1]

    def _spill(self) -> None:
        """Write the oldest ``b`` buffered words to a fresh block."""
        b = self.ctx.b
        blk = Block(b, data=self._buffer[:b])
        bid = self.ctx.disk.allocate()
        self.ctx.disk.write(bid, blk)
        self._spilled.append(bid)
        del self._buffer[:b]

    def _reload(self) -> None:
        """Read back the most recently spilled block."""
        bid = self._spilled.pop()
        blk = self.ctx.disk.read(bid)
        self.ctx.disk.free(bid)
        self._buffer = blk.records() + self._buffer

    def __len__(self) -> int:
        return self._size

    def check_invariants(self) -> None:
        assert len(self._buffer) <= 2 * self.ctx.b
        spilled_words = len(self._spilled) * self.ctx.b
        assert self._size == len(self._buffer) + spilled_words


class ExternalQueue:
    """FIFO queue of integer words with ``O(1/b)`` amortized I/Os."""

    def __init__(self, ctx: EMContext, *, name: str = "ExternalQueue") -> None:
        if ctx.m < 2 * ctx.b:
            raise ConfigurationError(
                f"external queue needs m >= 2b (m={ctx.m}, b={ctx.b})"
            )
        self.ctx = ctx
        self.name = name
        self._head: deque[int] = deque()  # dequeue side
        self._tail: list[int] = []  # enqueue side
        self._spilled: deque[int] = deque()  # block ids, oldest first
        self._size = 0
        self._charge()

    def _charge(self) -> None:
        self.ctx.memory.set_charge(
            f"{self.name}@{id(self)}",
            len(self._head) + len(self._tail) + len(self._spilled) + 2,
        )

    def enqueue(self, word: int) -> None:
        self._tail.append(word)
        self._size += 1
        if len(self._tail) >= self.ctx.b:
            self._spill()
        self._charge()

    def dequeue(self) -> int:
        if self._size == 0:
            raise IndexError("dequeue from empty external queue")
        if not self._head:
            self._refill()
        self._size -= 1
        out = self._head.popleft()
        self._charge()
        return out

    def _spill(self) -> None:
        blk = Block(self.ctx.b, data=self._tail)
        bid = self.ctx.disk.allocate()
        self.ctx.disk.write(bid, blk)
        self._spilled.append(bid)
        self._tail = []

    def _refill(self) -> None:
        if self._spilled:
            bid = self._spilled.popleft()
            blk = self.ctx.disk.read(bid)
            self.ctx.disk.free(bid)
            self._head.extend(blk.records())
        else:
            # Everything lives in the tail buffer; promote it wholesale.
            self._head.extend(self._tail)
            self._tail = []

    def __len__(self) -> int:
        return self._size

    def check_invariants(self) -> None:
        assert len(self._tail) < self.ctx.b or self._size == len(self._tail)
        spilled_words = len(self._spilled) * self.ctx.b
        assert self._size == len(self._head) + len(self._tail) + spilled_words
