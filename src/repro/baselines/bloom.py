"""Memory-resident Bloom filters.

LSM-trees spend main memory on per-run Bloom filters so a lookup can
skip runs that cannot contain the key — an alternative use of the same
``m`` words the paper's buffered hash table spends on ``H_0``.  The
filter is charged to the :class:`~repro.em.memory.MemoryBudget` at one
word per 64 bits.

The implementation is the textbook partitioned filter: ``k`` hash
probes derived from one 64-bit mix by double hashing
(Kirsch–Mitzenmacher), which preserves the asymptotic false-positive
rate ``(1 − e^{−kn/m_bits})^k``.
"""

from __future__ import annotations

import math

import numpy as np

from ..em.memory import MemoryBudget
from ..hashing.mixers import mix_seed, splitmix64, splitmix64_array


class BloomFilter:
    """A fixed-size Bloom filter over integer keys.

    Parameters
    ----------
    bits:
        Filter size in bits (rounded up to a multiple of 64).
    hashes:
        Number of probes ``k``; pick via :meth:`optimal_hashes`.
    seed:
        Seed for the probe derivation.
    budget, owner:
        Optional memory budget to charge (1 word per 64 bits).
    """

    def __init__(
        self,
        bits: int,
        hashes: int,
        *,
        seed: int = 0,
        budget: MemoryBudget | None = None,
        owner: str = "bloom",
    ) -> None:
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        if hashes <= 0:
            raise ValueError(f"hashes must be positive, got {hashes}")
        self.bits = ((bits + 63) // 64) * 64
        self.hashes = hashes
        self.seed = seed
        self._words = np.zeros(self.bits // 64, dtype=np.uint64)
        self._count = 0
        self.budget = budget
        self.owner = owner
        if budget is not None:
            budget.charge(owner, len(self._words))

    @staticmethod
    def optimal_hashes(bits: int, expected_items: int) -> int:
        """``k = (m/n)·ln 2`` rounded to at least 1."""
        if expected_items <= 0:
            return 1
        return max(1, round(bits / expected_items * math.log(2.0)))

    @classmethod
    def for_items(
        cls,
        expected_items: int,
        *,
        bits_per_item: float = 10.0,
        seed: int = 0,
        budget: MemoryBudget | None = None,
        owner: str = "bloom",
    ) -> "BloomFilter":
        """Size a filter for ``expected_items`` at ``bits_per_item``
        (10 bits/item ≈ 1% false positives at the optimal ``k``)."""
        bits = max(64, int(expected_items * bits_per_item))
        return cls(
            bits,
            cls.optimal_hashes(bits, expected_items),
            seed=seed,
            budget=budget,
            owner=owner,
        )

    # -- probing -------------------------------------------------------------

    def _positions(self, key: int):
        h = splitmix64(mix_seed(self.seed, key))
        h1 = h & 0xFFFFFFFF
        h2 = (h >> 32) | 1  # odd, so all probes differ
        for i in range(self.hashes):
            yield ((h1 + i * h2) & 0xFFFFFFFFFFFFFFFF) % self.bits

    def add(self, key: int) -> None:
        for pos in self._positions(key):
            self._words[pos >> 6] |= np.uint64(1 << (pos & 63))
        self._count += 1

    def might_contain(self, key: int) -> bool:
        """``False`` is definitive; ``True`` may be a false positive."""
        for pos in self._positions(key):
            if not (int(self._words[pos >> 6]) >> (pos & 63)) & 1:
                return False
        return True

    def might_contain_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`might_contain` over a ``uint64`` key array.

        Bit-for-bit the scalar answer (same Kirsch–Mitzenmacher probe
        positions), so batch lookups that screen through it skip exactly
        the runs the scalar walk would skip.
        """
        # Scalar probes derive from splitmix64(mix_seed(seed, key)) —
        # two finaliser rounds over the seed-mixed key.
        h = splitmix64_array(
            splitmix64_array(
                np.uint64(self.seed)
                ^ splitmix64_array(np.asarray(keys, dtype=np.uint64))
            )
        )
        h1 = h & np.uint64(0xFFFFFFFF)
        h2 = (h >> np.uint64(32)) | np.uint64(1)
        out = np.ones(len(h), dtype=bool)
        for i in range(self.hashes):
            with np.errstate(over="ignore"):
                pos = (h1 + np.uint64(i) * h2) % np.uint64(self.bits)
            word = self._words[(pos >> np.uint64(6)).astype(np.int64)]
            out &= ((word >> (pos & np.uint64(63))) & np.uint64(1)).astype(bool)
        return out

    def __contains__(self, key: int) -> bool:
        return self.might_contain(key)

    # -- introspection -----------------------------------------------------------

    @property
    def count(self) -> int:
        """Keys added so far."""
        return self._count

    @property
    def memory_words(self) -> int:
        return len(self._words)

    def fill_fraction(self) -> float:
        """Fraction of set bits (≈ ``1 − e^{−kn/bits}``)."""
        set_bits = int(np.bitwise_count(self._words).sum())
        return set_bits / self.bits

    def expected_fpr(self) -> float:
        """Analytic false-positive rate at the current fill."""
        return self.fill_fraction() ** self.hashes

    def release(self) -> None:
        """Return the memory charge to the budget."""
        if self.budget is not None:
            self.budget.charge(self.owner, -len(self._words))
