"""An external B-tree: the classic no-hashing comparison point.

The B-tree is what external dictionaries look like when keys must stay
ordered: every operation pays ``Θ(log_B n)`` I/Os (``B = Θ(b)``), and —
unlike the hash table — buffering *can* help it (that is the buffer
tree, :mod:`repro.baselines.buffer_tree`).  Here it serves two roles:

* the ordered baseline in ``bench_baselines`` (insert cost ≥ 1 I/O,
  query cost ``Θ(log_b n)`` > 1 I/O — strictly worse than hashing on
  both axes for membership workloads), and
* the substrate the buffer tree batches on top of.

Layout: one node per block.  A leaf stores up to ``b`` sorted keys.
An internal node stores up to ``MAX_CHILDREN − 1`` sorted separators in
its data words and the child block ids in its header (O(fanout) words
of structural metadata, charged nowhere — the convention the EM
literature uses for pointers inside a block).  The root is pinned in
main memory (charged to the budget), so a lookup costs ``height − 1``
I/Os.

Insertion uses preemptive splitting (split any full node on the way
down), giving a single root-to-leaf pass of read-modify-writes.
Deletion implements the full borrow/merge repertoire so the minimum
occupancy invariant ``t − 1 ≤ keys`` holds everywhere but the root.
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from ..em.block import Block
from ..em.errors import ConfigurationError
from ..em.storage import EMContext
from ..tables.base import ExternalDictionary, LayoutSnapshot
from ..tables.batching import normalize_keys


class _Node:
    """Decoded view of a node block."""

    __slots__ = ("keys", "children")

    def __init__(self, keys: list[int], children: list[int] | None) -> None:
        self.keys = keys
        self.children = children  # None for leaves

    @property
    def leaf(self) -> bool:
        return self.children is None

    def to_block(self, b: int) -> Block:
        header = {"leaf": self.leaf}
        if self.children is not None:
            header["children"] = list(self.children)
        return Block(b, data=self.keys, header=header)

    @classmethod
    def from_block(cls, blk: Block) -> "_Node":
        children = blk.header.get("children")
        return cls(blk.records(), list(children) if children is not None else None)


class BTree(ExternalDictionary):
    """A set-semantics B-tree over integer keys.

    Parameters
    ----------
    ctx:
        Shared external-memory context.
    min_keys:
        Minimum keys per non-root node (``t − 1``); defaults to
        ``b // 4`` so a node holds between ``b/4`` and ``b/2 + b/4``
        keys, comfortably within one block.
    """

    def __init__(self, ctx: EMContext, *, min_keys: int | None = None) -> None:
        super().__init__(ctx)
        b = ctx.b
        self.min_keys = min_keys if min_keys is not None else max(1, b // 4)
        if self.min_keys < 1 or 2 * self.min_keys + 1 > b:
            raise ConfigurationError(
                f"min_keys={self.min_keys} incompatible with b={b}: need "
                f"1 <= min_keys and 2*min_keys+1 <= b"
            )
        # Classic occupancy: t − 1 = min_keys, max = 2t − 1, so merging
        # two minimum nodes plus their separator exactly fills a node.
        self.max_keys = 2 * self.min_keys + 1
        #: The root is pinned in memory: its keys and child pointers are
        #: charged to the budget and reading it costs no I/O.
        self._root = _Node([], None)
        self._height = 1
        self._charge_memory()

    # -- memory ------------------------------------------------------------

    def memory_words(self) -> int:
        kids = len(self._root.children) if self._root.children else 0
        return len(self._root.keys) + kids + 2

    def _charge_memory(self) -> None:
        self.ctx.memory.set_charge(self._charge_key, self.memory_words())

    # -- node I/O ------------------------------------------------------------

    def _read(self, bid: int) -> _Node:
        return _Node.from_block(self.ctx.disk.read(bid))

    def _write(self, bid: int, node: _Node) -> None:
        self.ctx.disk.write(bid, node.to_block(self.ctx.b))

    def _alloc(self, node: _Node) -> int:
        bid = self.ctx.disk.allocate()
        self._write(bid, node)
        return bid

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: int) -> bool:
        self.stats.lookups += 1
        node = self._root
        while True:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                self.stats.hits += 1
                return True
            if node.leaf:
                return False
            node = self._read(node.children[i])

    def lookup_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Vectorised grouped descent: route key groups down the tree.

        One ``searchsorted`` per visited node replaces the per-key
        bisect, each node is decoded once per group (uncharged peek)
        while every key in the group is charged the read the scalar
        walk would make, and reads land in one bulk add.  Per-key costs
        (depth until termination) and the pending read-modify-write
        block are restored to the scalar walk's, so counters are
        bit-identical to the per-key loop.

        Cached runs take the scalar per-key walk instead: the bulk
        branch charges reads wholesale without consulting the buffer
        pool.
        """
        if self.ctx.disk.cache is not None:
            return super().lookup_batch(keys, cost_out=cost_out)
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.zeros(n, dtype=bool)
        self.stats.lookups += n
        if n == 0:
            return out
        costs = np.zeros(n, dtype=np.int64)
        peek = self.ctx.disk.peek
        stack: list[tuple[_Node, bool, np.ndarray]] = [
            (self._root, True, np.arange(n))
        ]
        while stack:
            node, is_root, pos = stack.pop()
            if not is_root:
                costs[pos] += 1
            karr = np.asarray(node.keys, dtype=np.uint64)
            sub = arr[pos]
            if karr.size:
                idx = np.searchsorted(karr, sub)
                hit = np.zeros(pos.size, dtype=bool)
                inb = idx < karr.size
                hit[inb] = karr[idx[inb]] == sub[inb]
            else:
                idx = np.zeros(pos.size, dtype=np.int64)
                hit = np.zeros(pos.size, dtype=bool)
            out[pos[hit]] = True
            if node.leaf:
                continue
            rest = pos[~hit]
            if rest.size == 0:
                continue
            child_idx = idx[~hit]
            for j in np.unique(child_idx):
                group = rest[child_idx == j]
                child = _Node.from_block(peek(node.children[int(j)]))
                stack.append((child, False, group))
        total = int(costs.sum())
        if total:
            stats = self.ctx.stats
            stats.reads += total
            last = int(np.flatnonzero(costs > 0)[-1])
            stats._last_read_block = self._final_probe_block(key_list[last])
        self.stats.hits += int(np.count_nonzero(out))
        if cost_out is not None:
            cost_out.extend(costs.tolist())
        return out

    def _final_probe_block(self, key: int) -> int | None:
        """The block id of ``key``'s last charged read (scalar walk)."""
        node = self._root
        last: int | None = None
        while True:
            i = bisect.bisect_left(node.keys, key)
            if (i < len(node.keys) and node.keys[i] == key) or node.leaf:
                return last
            last = node.children[i]
            node = _Node.from_block(self.ctx.disk.peek(last))

    # -- insert ------------------------------------------------------------

    def insert(self, key: int) -> None:
        root = self._root
        if len(root.keys) >= self.max_keys:
            # Grow upward: old root spills to disk, new in-memory root.
            old_id = self._alloc(root)
            self._root = _Node([], [old_id])
            self._height += 1
            self._split_child(self._root, None, 0)
        if self._insert_nonfull(self._root, None, key):
            self._size += 1
            self.stats.inserts += 1
        self._charge_memory()

    def insert_batch(self, keys: Sequence[int] | np.ndarray) -> None:
        """Batch insert over one normalisation pass.

        The preemptive-split descent is inherently sequential — every
        insert's path depends on the splits of the one before, and the
        contract pins the exact read-modify-write order per key — so
        the walk stays per key (cf. the chained table's data-dependent
        chain walks); batching amortises the key normalisation and the
        per-call dispatch.
        """
        key_list, _ = normalize_keys(keys)
        for k in key_list:
            self.insert(k)

    def _insert_nonfull(self, node: _Node, bid: int | None, key: int) -> bool:
        """Insert into the subtree at ``node`` (known non-full).

        ``bid`` is ``None`` for the memory-pinned root.  Returns whether
        the key was new.
        """
        while True:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return False
            if node.leaf:
                node.keys.insert(i, key)
                if bid is not None:
                    self._write(bid, node)
                return True
            child_id = node.children[i]
            child = self._read(child_id)
            if len(child.keys) >= self.max_keys:
                self._split_child(node, bid, i, child=child)
                # Re-route around the separator that moved up.
                if key == node.keys[i]:
                    return False
                if key > node.keys[i]:
                    i += 1
                    child_id = node.children[i]
                    child = self._read(child_id)
                else:
                    child_id = node.children[i]
                    child = self._read(child_id)
            node, bid = child, child_id

    def _split_child(
        self, parent: _Node, parent_id: int | None, i: int, *, child: _Node | None = None
    ) -> None:
        """Split ``parent.children[i]`` (full) around its median key."""
        child_id = parent.children[i]
        if child is None:
            child = self._read(child_id)
        mid = len(child.keys) // 2
        median = child.keys[mid]
        right = _Node(
            child.keys[mid + 1 :],
            child.children[mid + 1 :] if child.children else None,
        )
        child.keys = child.keys[:mid]
        if child.children:
            child.children = child.children[: mid + 1]
        right_id = self._alloc(right)
        self._write(child_id, child)
        parent.keys.insert(i, median)
        parent.children.insert(i + 1, right_id)
        if parent_id is not None:
            self._write(parent_id, parent)

    # -- delete ------------------------------------------------------------

    def delete(self, key: int) -> bool:
        removed = self._delete_from(self._root, None, key)
        if removed:
            self._size -= 1
            self.stats.deletes += 1
        # Shrink the root if it became a single-child stem.
        if not self._root.leaf and not self._root.keys:
            only = self._root.children[0]
            self._root = self._read(only)
            self.ctx.disk.free(only)
            self._height -= 1
        self._charge_memory()
        return removed

    def _delete_from(self, node: _Node, bid: int | None, key: int) -> bool:
        while True:
            i = bisect.bisect_left(node.keys, key)
            hit = i < len(node.keys) and node.keys[i] == key

            if node.leaf:
                if not hit:
                    return False
                node.keys.pop(i)
                if bid is not None:
                    self._write(bid, node)
                return True

            if hit:
                # CLRS case 2: replace the separator with its in-order
                # predecessor (or successor) from whichever neighbouring
                # child can spare a key; if neither can, merge around the
                # key and continue inside the merged child.
                left_id = node.children[i]
                left = self._read(left_id)
                if len(left.keys) > self.min_keys:
                    pred = self._extreme_key(left, last=True)
                    node.keys[i] = pred
                    if bid is not None:
                        self._write(bid, node)
                    node, bid, key = left, left_id, pred
                    continue
                right_id = node.children[i + 1]
                right = self._read(right_id)
                if len(right.keys) > self.min_keys:
                    succ = self._extreme_key(right, last=False)
                    node.keys[i] = succ
                    if bid is not None:
                        self._write(bid, node)
                    node, bid, key = right, right_id, succ
                    continue
                self._merge_children(node, bid, i)
                merged_id = node.children[i]
                node, bid = self._read(merged_id), merged_id
                continue

            # CLRS case 3: descend only into children that can lose a key.
            self._ensure_child_min(node, bid, i)
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                continue  # a borrow rotated the key into this node
            child_id = node.children[i]
            node, bid = self._read(child_id), child_id

    def _extreme_key(self, node: _Node, *, last: bool) -> int:
        """Max (``last``) or min key of the subtree rooted at ``node``."""
        while not node.leaf:
            node = self._read(node.children[-1 if last else 0])
        return node.keys[-1 if last else 0]

    def _ensure_child_min(self, parent: _Node, parent_id: int | None, i: int) -> None:
        """Guarantee ``parent.children[i]`` holds > min_keys keys,
        borrowing from a sibling or merging when it doesn't."""
        child_id = parent.children[i]
        child = self._read(child_id)
        if len(child.keys) > self.min_keys:
            return

        if i > 0:
            left_id = parent.children[i - 1]
            left = self._read(left_id)
            if len(left.keys) > self.min_keys:
                # Rotate right through the separator.
                child.keys.insert(0, parent.keys[i - 1])
                parent.keys[i - 1] = left.keys.pop()
                if left.children:
                    child.children.insert(0, left.children.pop())
                self._write(left_id, left)
                self._write(child_id, child)
                if parent_id is not None:
                    self._write(parent_id, parent)
                return
        if i < len(parent.children) - 1:
            right_id = parent.children[i + 1]
            right = self._read(right_id)
            if len(right.keys) > self.min_keys:
                child.keys.append(parent.keys[i])
                parent.keys[i] = right.keys.pop(0)
                if right.children:
                    child.children.append(right.children.pop(0))
                self._write(right_id, right)
                self._write(child_id, child)
                if parent_id is not None:
                    self._write(parent_id, parent)
                return

        # Merge with a sibling (prefer left so indices stay simple).
        if i > 0:
            self._merge_children(parent, parent_id, i - 1)
        else:
            self._merge_children(parent, parent_id, i)

    def _merge_children(self, parent: _Node, parent_id: int | None, i: int) -> None:
        """Merge ``children[i]``, separator ``keys[i]``, ``children[i+1]``."""
        left_id = parent.children[i]
        right_id = parent.children[i + 1]
        left = self._read(left_id)
        right = self._read(right_id)
        left.keys = left.keys + [parent.keys[i]] + right.keys
        if left.children is not None:
            left.children = left.children + right.children
        parent.keys.pop(i)
        parent.children.pop(i + 1)
        self._write(left_id, left)
        self.ctx.disk.free(right_id)
        if parent_id is not None:
            self._write(parent_id, parent)

    # -- instrumentation ------------------------------------------------------

    @property
    def height(self) -> int:
        return self._height

    def layout_snapshot(self) -> LayoutSnapshot:
        """The Section 2 view of a B-tree.

        Only the root is memory-resident; since finding a key requires
        the full descent, a one-I/O address exists only for height-2
        trees (root in memory → the child holding the key).  For taller
        trees the address function is ``None``: every disk item needs
        ≥ 2 I/Os, which is exactly why B-trees cannot reach
        ``1 + o(1)``-I/O queries.
        """
        blocks: dict[int, tuple[int, ...]] = {}

        def collect(node: _Node) -> None:
            if node.children is None:
                return
            for cid in node.children:
                child = _Node.from_block(self.ctx.disk.peek(cid))
                blocks[cid] = tuple(child.keys)
                collect(child)

        collect(self._root)
        root = self._root
        height = self._height

        def address(key: int) -> int | None:
            if height != 2:
                return None
            i = bisect.bisect_left(root.keys, key)
            if i < len(root.keys) and root.keys[i] == key:
                return None  # lives in memory, not on disk
            return root.children[i]

        return LayoutSnapshot(
            memory_items=frozenset(root.keys),
            blocks=blocks,
            address=address,
            address_description_words=self.memory_words(),
        )

    def check_invariants(self) -> None:
        """Full structural audit: ordering, occupancy, uniform depth."""
        seen: list[int] = []
        depths: set[int] = set()

        def walk(node: _Node, depth: int, lo: int | None, hi: int | None, root: bool) -> None:
            assert node.keys == sorted(node.keys), "keys out of order"
            if lo is not None:
                assert all(k > lo for k in node.keys)
            if hi is not None:
                assert all(k < hi for k in node.keys)
            if not root:
                assert len(node.keys) >= self.min_keys, "underfull node"
            assert len(node.keys) <= self.max_keys, "overfull node"
            if node.leaf:
                depths.add(depth)
                seen.extend(node.keys)
                return
            assert len(node.children) == len(node.keys) + 1
            for j, cid in enumerate(node.children):
                child = _Node.from_block(self.ctx.disk.peek(cid))
                new_lo = node.keys[j - 1] if j > 0 else lo
                new_hi = node.keys[j] if j < len(node.keys) else hi
                walk(child, depth + 1, new_lo, new_hi, False)
            seen.extend(node.keys)

        walk(self._root, 1, None, None, True)
        assert len(depths) <= 1, f"leaves at multiple depths: {depths}"
        assert len(seen) == len(set(seen)) == self._size, (
            f"size mismatch: {len(seen)} stored vs {self._size} counted"
        )
