"""Arge's buffer tree (simplified to membership workloads).

The buffer tree [2] is the canonical demonstration that buffering
turns an ``Ω(log_B n)``-per-op B-tree into an
``O((1/b)·log_{m/b}(n/b))``-amortized batched structure: every internal
node of a fanout-``Θ(m/b)`` tree carries an ``m``-word buffer; inserts
are dumped into the root's buffer and lazily pushed one level down each
time a buffer fills, so each element pays ``O(1/b)`` I/Os per level.

This implementation keeps the paper-relevant accounting honest:

* node buffers live **on disk** (appends read-modify-write the last
  partial block, then stream full blocks);
* the root buffer and the tree skeleton (separators + child pointers)
  are memory-resident and charged to the budget — the standard
  assumption that one node's routing state fits in memory, with the
  skeleton small because the fanout is ``Θ(m/b)``;
* leaves are single blocks of up to ``b`` items, splitting as in a
  B-tree (splits happen only after the parent's buffer has been
  emptied, which is what keeps them simple in Arge's design too).

Queries here are **immediate** (not batched as in [2]): a lookup must
scan every buffer on its root-to-leaf path, costing
``O((m/b)·height)`` I/Os worst-case.  That asymmetry — cheap inserts,
expensive point queries — is exactly the contrast with the paper's
hash table, whose entire point is a 1-I/O query.
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from ..em.block import Block
from ..em.errors import ConfigurationError
from ..em.storage import EMContext
from ..tables.base import ExternalDictionary, LayoutSnapshot
from ..tables.batching import membership, normalize_keys


class _Leaf:
    """A single-block leaf of up to ``b`` sorted items."""

    __slots__ = ("bid", "size")

    def __init__(self, bid: int, size: int = 0) -> None:
        self.bid = bid
        self.size = size


class _Internal:
    """An internal node: routing state in memory, buffer on disk."""

    __slots__ = ("seps", "children", "buffer_blocks", "buffer_size")

    def __init__(self) -> None:
        self.seps: list[int] = []
        self.children: list["_Internal | _Leaf"] = []
        self.buffer_blocks: list[int] = []
        self.buffer_size = 0  # items currently buffered on disk


class BufferTree(ExternalDictionary):
    """A membership buffer tree with ``o(1)`` amortized inserts.

    Parameters
    ----------
    ctx:
        Shared external-memory context.  Needs ``m ≥ 4b``.
    fanout:
        Children per internal node; defaults to ``max(2, m // (2b))``
        (the ``Θ(m/b)`` of [2]).
    buffer_items:
        Buffer capacity per internal node; defaults to ``m // 2``.
    """

    def __init__(
        self,
        ctx: EMContext,
        *,
        fanout: int | None = None,
        buffer_items: int | None = None,
    ) -> None:
        super().__init__(ctx)
        if ctx.m < 4 * ctx.b:
            raise ConfigurationError(
                f"buffer tree needs m >= 4b (m={ctx.m}, b={ctx.b})"
            )
        self.fanout = fanout if fanout is not None else max(2, ctx.m // (2 * ctx.b))
        if self.fanout < 2:
            raise ConfigurationError(f"fanout must be at least 2, got {self.fanout}")
        self.buffer_capacity = (
            buffer_items if buffer_items is not None else max(ctx.b, ctx.m // 2)
        )
        #: Root buffer, memory-resident (the paper keeps it in main memory).
        self._root_buffer: list[int] = []
        self._root_buffer_capacity = max(1, ctx.m // 2)
        self._root: _Internal | _Leaf = self._new_leaf()
        self._charge_memory()

    # -- memory ------------------------------------------------------------

    def memory_words(self) -> int:
        # Memory-resident state is the root buffer plus the root's
        # routing words.  Non-root routing state (separators, child and
        # buffer-block pointers — O(m/b) words per node) rides in the
        # node's block headers on disk, the convention [2] and the rest
        # of the EM literature use for intra-block pointers; navigating
        # it is part of the block reads the lookup already charges.
        words = len(self._root_buffer) + 2
        if isinstance(self._root, _Internal):
            words += (
                len(self._root.seps)
                + len(self._root.children)
                + len(self._root.buffer_blocks)
            )
        return words

    def _charge_memory(self) -> None:
        self.ctx.memory.set_charge(self._charge_key, self.memory_words())

    # -- small helpers -----------------------------------------------------------

    def _new_leaf(self) -> _Leaf:
        return _Leaf(self.ctx.disk.allocate())

    def _leaf_items(self, leaf: _Leaf) -> list[int]:
        if leaf.size == 0:
            return []
        return self.ctx.disk.read(leaf.bid).records()

    def _write_leaf(self, leaf: _Leaf, items: list[int]) -> None:
        # Ownership transfer: the block is built here and never reused.
        self.ctx.disk.store(leaf.bid, Block(self.ctx.b, data=items))
        leaf.size = len(items)

    # -- insert path -----------------------------------------------------------

    def insert(self, key: int) -> None:
        self._size += 1  # provisional; duplicates reconciled at flush time
        self.stats.inserts += 1
        self._root_buffer.append(key)
        if len(self._root_buffer) >= self._root_buffer_capacity:
            self._flush_root()
        self._charge_memory()

    def insert_batch(self, keys: "Sequence[int] | np.ndarray") -> None:
        """Bulk insert: extend the root buffer in flush-aligned segments.

        The buffer tree has no per-key duplicate screen (duplicates
        collapse at merge time), so batching is pure bookkeeping
        amortisation; root flushes fire at exactly the scalar
        boundaries and charge identical I/Os.
        """
        keys, _ = normalize_keys(keys)
        cap = self._root_buffer_capacity
        memory = self.ctx.memory
        pos = 0
        n = len(keys)
        while pos < n:
            buf = self._root_buffer
            seg = keys[pos : pos + cap - len(buf)]
            buf.extend(seg)
            pos += len(seg)
            self._size += len(seg)
            self.stats.inserts += len(seg)
            if len(buf) >= cap:
                # Scalar memory peak: the previous insert's charge saw
                # the root buffer one item short of capacity.
                memory.set_charge(self._charge_key, self.memory_words() - 1)
                self._flush_root()
        self._charge_memory()

    def _flush_root(self) -> None:
        batch = self._root_buffer
        self._root_buffer = []
        if isinstance(self._root, _Leaf):
            self._merge_into_leaf_root(batch)
        else:
            self._push_down(self._root, batch)
        self._maybe_grow_root()

    def _merge_into_leaf_root(self, batch: list[int]) -> None:
        """While the whole tree is one leaf, merge directly (splitting
        into an internal root when it overflows)."""
        leaf = self._root
        assert isinstance(leaf, _Leaf)
        items = self._merge_dedup(self._leaf_items(leaf), sorted(set(batch)))
        if len(items) <= self.ctx.b:
            self._write_leaf(leaf, items)
            return
        # Build a one-level tree over block-sized chunks.
        root = _Internal()
        for off in range(0, len(items), self.ctx.b):
            chunk = items[off : off + self.ctx.b]
            child = _Leaf(leaf.bid) if off == 0 else self._new_leaf()
            self._write_leaf(child, chunk)
            if off > 0:
                root.seps.append(chunk[0])
            root.children.append(child)
        self._root = root

    def _push_down(self, node: _Internal, batch: list[int]) -> None:
        """Append ``batch`` to ``node``'s buffer, flushing if it fills."""
        self._buffer_append(node, batch)
        if node.buffer_size >= self.buffer_capacity:
            self._flush_node(node)

    def _buffer_append(self, node: _Internal, items: list[int]) -> None:
        """Append items to the node's on-disk buffer, packing blocks."""
        if not items:
            return
        b = self.ctx.b
        pending = list(items)
        # Top up the trailing partial block first (one read-modify-write).
        used_in_last = node.buffer_size % b
        if node.buffer_blocks and used_in_last:
            with self.ctx.disk.modify(node.buffer_blocks[-1]) as blk:
                room = b - len(blk)
                blk.extend(pending[:room])
                taken = min(room, len(pending))
            pending = pending[taken:]
            node.buffer_size += taken
        for off in range(0, len(pending), b):
            chunk = pending[off : off + b]
            bid = self.ctx.disk.allocate()
            self.ctx.disk.store(bid, Block(b, data=chunk))
            node.buffer_blocks.append(bid)
            node.buffer_size += len(chunk)

    def _drain_buffer(self, node: _Internal) -> list[int]:
        """Read and free every buffer block; return the items."""
        out: list[int] = []
        for bid in node.buffer_blocks:
            out.extend(self.ctx.disk.read(bid).records())
            self.ctx.disk.free(bid)
        node.buffer_blocks = []
        node.buffer_size = 0
        return out

    def _flush_node(self, node: _Internal) -> None:
        """Arge's buffer-emptying: partition the buffer among children."""
        self.stats.merges += 1
        items = self._drain_buffer(node)
        if not items:
            return
        items.sort()
        # Partition by separators in one linear pass.
        start = 0
        parts: list[list[int]] = []
        for sep in node.seps:
            end = bisect.bisect_left(items, sep, start)
            parts.append(items[start:end])
            start = end
        parts.append(items[start:])

        # Highest index first: a leaf split splices new children into
        # ``node.children``/``node.seps`` at ``idx``, which would shift
        # every later partition's index if we walked ascending.
        for idx in range(len(parts) - 1, -1, -1):
            part = parts[idx]
            if not part:
                continue
            child = node.children[idx]
            if isinstance(child, _Internal):
                self._push_down(child, part)
            else:
                self._merge_leaf(node, idx, part)
        self._split_if_wide(node)

    def _merge_leaf(self, parent: _Internal, idx: int, part: list[int]) -> None:
        """Merge a buffer partition into a leaf, splitting as needed."""
        leaf = parent.children[idx]
        assert isinstance(leaf, _Leaf)
        merged = self._merge_dedup(self._leaf_items(leaf), self._dedup_sorted(part))
        b = self.ctx.b
        if len(merged) <= b:
            self._write_leaf(leaf, merged)
            return
        # Split into block-sized leaves, replacing children[idx].
        new_children: list[_Leaf] = []
        new_seps: list[int] = []
        for off in range(0, len(merged), b):
            chunk = merged[off : off + b]
            tgt = leaf if off == 0 else self._new_leaf()
            self._write_leaf(tgt, chunk)
            if off > 0:
                new_seps.append(chunk[0])
            new_children.append(tgt)
        parent.children[idx : idx + 1] = new_children
        parent.seps[idx:idx] = new_seps

    def _split_if_wide(self, node: _Internal) -> None:
        """Split an over-wide node's children among fresh internals.

        Called only with an empty buffer (we just flushed), matching
        Arge's invariant that only buffer-empty nodes split.
        """
        limit = 2 * self.fanout
        if len(node.children) <= limit:
            return
        # Group children into fanout-sized internal nodes under `node`.
        groups: list[_Internal] = []
        group_seps: list[int] = []
        for off in range(0, len(node.children), self.fanout):
            sub = _Internal()
            sub.children = node.children[off : off + self.fanout]
            lo = off
            hi = min(off + self.fanout, len(node.children)) - 1
            sub.seps = node.seps[lo : hi]
            groups.append(sub)
            if off > 0:
                group_seps.append(node.seps[off - 1])
        node.children = list(groups)
        node.seps = group_seps

    def _maybe_grow_root(self) -> None:
        if isinstance(self._root, _Internal):
            self._split_if_wide(self._root)

    @staticmethod
    def _dedup_sorted(items: list[int]) -> list[int]:
        out: list[int] = []
        for x in items:
            if not out or out[-1] != x:
                out.append(x)
        return out

    @staticmethod
    def _merge_dedup(a: list[int], b: list[int]) -> list[int]:
        out: list[int] = []
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i] < b[j]:
                out.append(a[i])
                i += 1
            elif a[i] > b[j]:
                out.append(b[j])
                j += 1
            else:
                out.append(a[i])
                i += 1
                j += 1
        out.extend(a[i:])
        out.extend(b[j:])
        return out

    # -- queries ------------------------------------------------------------

    def lookup(self, key: int) -> bool:
        """Immediate point query: scan buffers along the search path.

        Worst case ``O((m/b)·height)`` I/Os — the price of buffered
        inserts when queries are not batched.
        """
        self.stats.lookups += 1
        if key in self._root_buffer:
            self.stats.hits += 1
            return True
        node = self._root
        while isinstance(node, _Internal):
            for bid in node.buffer_blocks:
                if key in self.ctx.disk.read(bid):
                    self.stats.hits += 1
                    return True
            idx = bisect.bisect_right(node.seps, key)
            node = node.children[idx]
        if node.size and key in self.ctx.disk.read(node.bid):
            self.stats.hits += 1
            return True
        return False

    def lookup_batch(
        self,
        keys: "Sequence[int] | np.ndarray",
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Batched point queries: route key groups down the tree once.

        Keys are partitioned among children by one ``searchsorted`` per
        node (replacing the per-key separator bisect), each buffer block
        on a group's path is probed with one bulk membership scan, and
        reads are charged in one bulk add.  Per-key charges replicate
        the scalar walk exactly — a key pays one read per buffer block
        until its hit, plus the leaf read — so I/O counters, per-query
        ``cost_out`` and the pending read-modify-write block are
        bit-identical to the per-key loop.

        Cached runs take the scalar per-key walk instead: the bulk
        branch charges reads wholesale without consulting the buffer
        pool.
        """
        if self.ctx.disk.cache is not None:
            return super().lookup_batch(keys, cost_out=cost_out)
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        self.stats.lookups += n
        costs = np.zeros(n, dtype=np.int64)
        root_buffer = self._root_buffer
        in_rb = (
            membership(arr, np.asarray(root_buffer, dtype=np.uint64))
            if root_buffer
            else np.zeros(n, dtype=bool)
        )
        out |= in_rb
        records_arr = self.ctx.disk.records_arr
        stack: list[tuple["_Internal | _Leaf", np.ndarray]] = [
            (self._root, np.flatnonzero(~in_rb))
        ]
        while stack:
            node, pos = stack.pop()
            if pos.size == 0:
                continue
            if isinstance(node, _Leaf):
                if node.size:
                    costs[pos] += 1
                    hit = membership(arr[pos], records_arr(node.bid))
                    out[pos[hit]] = True
                continue
            alive = pos
            for bid in node.buffer_blocks:
                if alive.size == 0:
                    break
                costs[alive] += 1
                hit = membership(arr[alive], records_arr(bid))
                out[alive[hit]] = True
                alive = alive[~hit]
            if alive.size == 0:
                continue
            if node.seps:
                child_idx = np.searchsorted(
                    np.asarray(node.seps, dtype=np.uint64), arr[alive], side="right"
                )
            else:
                child_idx = np.zeros(alive.size, dtype=np.int64)
            for j, child in enumerate(node.children):
                sub = alive[child_idx == j]
                if sub.size:
                    stack.append((child, sub))
        total_reads = int(costs.sum())
        if total_reads:
            stats = self.ctx.stats
            stats.reads += total_reads
            last = int(np.flatnonzero(costs > 0)[-1])
            stats._last_read_block = self._final_probe_block(key_list[last])
        if cost_out is not None:
            cost_out.extend(costs.tolist())
        self.stats.hits += int(np.count_nonzero(out))
        return out

    def delete(self, key: int) -> bool:
        """Immediate delete: purge every copy of ``key`` on its path.

        Duplicate inserts collapse only at merge time, so a copy of
        ``key`` may live in the root buffer, in any buffer block along
        the root-to-leaf path, *and* in the leaf — a correct immediate
        delete must remove them all (one survivor would resurrect the
        key).  Each buffer block on the path is read (charged, like the
        miss walk of :meth:`lookup` but without early exit) and written
        back only when a copy was removed; the provisional ``_size`` is
        decremented per physical copy, mirroring the per-copy increment
        of :meth:`insert`.
        """
        removed = self._root_buffer.count(key)
        if removed:
            self._root_buffer = [x for x in self._root_buffer if x != key]
        disk = self.ctx.disk
        node = self._root
        while isinstance(node, _Internal):
            for bid in node.buffer_blocks:
                blk = disk.read(bid)
                dropped = 0
                while blk.remove(key):
                    dropped += 1
                if dropped:
                    disk.write(bid, blk)
                    node.buffer_size -= dropped
                    removed += dropped
            node = node.children[bisect.bisect_right(node.seps, key)]
        if node.size:
            blk = disk.read(node.bid)
            if blk.remove(key):  # leaves are merged-deduped: one copy max
                disk.write(node.bid, blk)
                node.size -= 1
                removed += 1
        if removed == 0:
            return False
        self._size -= removed
        self.stats.deletes += 1
        self._charge_memory()
        return True

    def delete_batch(
        self,
        keys: "Sequence[int] | np.ndarray",
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Per-key deletes over one normalisation pass.

        Unlike lookups, deletes rewrite the shared buffer blocks along
        their paths, so grouping keys per node would merge read-modify-
        write cycles the scalar loop charges separately — the walk stays
        per key to honour the I/O-equivalence contract (cf. the chained
        table's data-dependent chain walks).
        """
        key_list, _ = normalize_keys(keys)
        n = len(key_list)
        out = np.empty(n, dtype=bool)
        stats = self.ctx.stats
        for i in range(n):
            if cost_out is None:
                out[i] = self.delete(key_list[i])
            else:
                before = stats.reads + stats.writes
                out[i] = self.delete(key_list[i])
                cost_out.append(stats.reads + stats.writes - before)
        return out

    def _final_probe_block(self, key: int) -> int | None:
        """The block id of ``key``'s last charged probe (scalar walk)."""
        key_in = self.ctx.disk.key_in
        node = self._root
        last: int | None = None
        while isinstance(node, _Internal):
            for bid in node.buffer_blocks:
                last = bid
                if key_in(bid, key):
                    return last
            node = node.children[bisect.bisect_right(node.seps, key)]
        if node.size:
            last = node.bid
        return last

    def flush_all(self) -> None:
        """Force every buffered item down to the leaves (used before
        bulk verification; costs what the lazy flushes would have)."""
        self._flush_root()
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Internal):
                if node.buffer_size:
                    self._flush_node(node)
                stack.extend(node.children)
        self._maybe_grow_root()
        self._reconcile_size()

    def _reconcile_size(self) -> None:
        """Recount after flushes: duplicate inserts collapse at merge
        time, so the provisional ``_size`` may overcount."""
        total = len(set(self._root_buffer))

        def count(node: "_Internal | _Leaf") -> int:
            if isinstance(node, _Leaf):
                return node.size
            sub = sum(count(ch) for ch in node.children)
            return sub + node.buffer_size

        self._size = count(self._root) + total

    # -- instrumentation ---------------------------------------------------------

    @property
    def height(self) -> int:
        h = 1
        node = self._root
        while isinstance(node, _Internal):
            h += 1
            node = node.children[0]
        return h

    def layout_snapshot(self) -> LayoutSnapshot:
        blocks: dict[int, tuple[int, ...]] = {}
        leaf_of: dict[int, int] = {}

        def walk(node: "_Internal | _Leaf") -> None:
            if isinstance(node, _Leaf):
                items = tuple(self.ctx.disk.peek(node.bid).records()) if node.size else ()
                blocks[node.bid] = items
                for x in items:
                    leaf_of[x] = node.bid
                return
            for bid in node.buffer_blocks:
                blocks[bid] = tuple(self.ctx.disk.peek(bid).records())
            for ch in node.children:
                walk(ch)

        walk(self._root)

        def address(key: int) -> int | None:
            # One I/O only suffices for items already settled in the
            # leaf their search path ends at.
            return leaf_of.get(key)

        return LayoutSnapshot(
            memory_items=frozenset(self._root_buffer),
            blocks=blocks,
            address=address,
            address_description_words=self.memory_words(),
        )

    def check_invariants(self) -> None:
        def walk(node: "_Internal | _Leaf", lo: int | None, hi: int | None) -> None:
            if isinstance(node, _Leaf):
                items = self.ctx.disk.peek(node.bid).records() if node.size else []
                assert items == sorted(items)
                assert len(items) == node.size <= self.ctx.b
                if lo is not None:
                    assert all(x >= lo for x in items)
                if hi is not None:
                    assert all(x < hi for x in items)
                return
            assert node.seps == sorted(node.seps)
            assert len(node.children) == len(node.seps) + 1
            assert len(node.children) <= 2 * self.fanout
            assert node.buffer_size <= self.buffer_capacity + self._root_buffer_capacity
            for j, ch in enumerate(node.children):
                new_lo = node.seps[j - 1] if j > 0 else lo
                new_hi = node.seps[j] if j < len(node.seps) else hi
                walk(ch, new_lo, new_hi)

        walk(self._root, None, None)
