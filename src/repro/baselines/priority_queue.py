"""An external priority queue with o(1) amortized I/Os per operation.

The paper's Section 1 lists priority queues [4, 9] among the structures
a small memory buffer speeds up dramatically.  This is the classic
two-tier design (a simplification of Fadel et al. [9]):

* a memory-resident **insert heap** of up to ``m/4`` items and a
  **delete-min heap** of up to ``m/4`` items;
* when the insert heap fills, it is sorted and written out as one
  **run** (``O(size/b)`` I/Os);
* when the delete-min heap drains, it refills with the globally
  smallest items by streaming the head block of every live run (runs
  are merged lazily when their number threatens the memory bound).

Every item is written and read ``O(log_{m/b}(n/b))`` times across
merges, giving the textbook ``O((1/b)·log_{m/b}(n/b))`` amortized I/Os
per operation — far below 1, like the stack and queue but with full
priority-queue semantics.

Duplicates are allowed (it is a multiset of integer priorities).
"""

from __future__ import annotations

import heapq

from ..em.block import Block
from ..em.errors import ConfigurationError
from ..em.storage import EMContext


class _Run:
    """One sorted on-disk run, consumed from the front."""

    __slots__ = ("block_ids", "offset", "size")

    def __init__(self, block_ids: list[int], size: int) -> None:
        self.block_ids = block_ids
        self.offset = 0  # consumed items
        self.size = size

    @property
    def remaining(self) -> int:
        return self.size - self.offset


class ExternalPriorityQueue:
    """Min-priority queue over integer keys in the EM model.

    Parameters
    ----------
    ctx:
        Shared context; needs ``m ≥ 8b``.
    heap_items:
        Capacity of each memory heap; defaults to ``m // 4``.
    max_runs:
        Merge threshold: when live runs exceed this, they are merged
        into one (defaults to ``max(2, m/(2b))``, the fan-in a
        streaming merge can afford one block of memory per run).
    """

    def __init__(
        self,
        ctx: EMContext,
        *,
        heap_items: int | None = None,
        max_runs: int | None = None,
    ) -> None:
        if ctx.m < 8 * ctx.b:
            raise ConfigurationError(
                f"external priority queue needs m >= 8b (m={ctx.m}, b={ctx.b})"
            )
        self.ctx = ctx
        self.heap_capacity = heap_items if heap_items is not None else max(1, ctx.m // 4)
        self.max_runs = max_runs if max_runs is not None else max(2, ctx.m // (2 * ctx.b))
        self._insert_heap: list[int] = []
        self._delete_heap: list[int] = []
        self._runs: list[_Run] = []
        self._size = 0
        self._charge()

    def _charge(self) -> None:
        self.ctx.memory.set_charge(
            f"ExternalPQ@{id(self)}",
            len(self._insert_heap) + len(self._delete_heap) + 2 * len(self._runs) + 2,
        )

    # -- run I/O -------------------------------------------------------------

    def _write_run(self, items: list[int]) -> None:
        """Write sorted ``items`` as a new run (one write per block)."""
        b = self.ctx.b
        ids = []
        for off in range(0, len(items), b):
            bid = self.ctx.disk.allocate()
            self.ctx.disk.write(bid, Block(b, data=items[off : off + b]))
            ids.append(bid)
        self._runs.append(_Run(ids, len(items)))

    def _run_head_block(self, run: _Run) -> tuple[list[int], int]:
        """Read the block containing the run's next unconsumed item."""
        b = self.ctx.b
        block_idx = run.offset // b
        blk = self.ctx.disk.read(run.block_ids[block_idx])
        return blk.records(), run.offset % b

    def _merge_runs(self) -> None:
        """Merge every live run into one (k-way streaming merge).

        Costs one read per live block and one write per merged block —
        the ``O(size/b)`` pass that keeps the amortized bound.
        """
        items: list[int] = []
        for run in self._runs:
            b = self.ctx.b
            start_block = run.offset // b
            skip = run.offset % b
            for j, bid in enumerate(run.block_ids):
                if j < start_block:
                    self.ctx.disk.free(bid)
                    continue
                records = self.ctx.disk.read(bid).records()
                items.extend(records[skip:] if j == start_block else records)
                self.ctx.disk.free(bid)
        self._runs = []
        items.sort()
        if items:
            self._write_run(items)

    # -- operations ------------------------------------------------------------

    def push(self, key: int) -> None:
        heapq.heappush(self._insert_heap, key)
        self._size += 1
        if len(self._insert_heap) >= self.heap_capacity:
            # Fold the delete heap into the spilled run: the refill
            # invariant is "delete heap ≤ everything on disk", and a
            # fresh run could contain items below the delete heap's
            # contents.  Folding keeps the invariant unconditionally at
            # O(1/b) amortized extra I/O per operation.
            run = sorted(self._insert_heap + self._delete_heap)
            self._insert_heap = []
            self._delete_heap = []
            self._write_run(run)
            if len(self._runs) > self.max_runs:
                self._merge_runs()
        self._charge()

    def pop_min(self) -> int:
        if self._size == 0:
            raise IndexError("pop from empty external priority queue")
        if not self._delete_heap:
            self._refill()
        # The true minimum is the smaller of the two heaps' heads.
        if self._insert_heap and (
            not self._delete_heap or self._insert_heap[0] < self._delete_heap[0]
        ):
            out = heapq.heappop(self._insert_heap)
        else:
            out = heapq.heappop(self._delete_heap)
        self._size -= 1
        self._charge()
        return out

    def peek_min(self) -> int:
        if self._size == 0:
            raise IndexError("peek of empty external priority queue")
        if not self._delete_heap:
            self._refill()
        candidates = []
        if self._insert_heap:
            candidates.append(self._insert_heap[0])
        if self._delete_heap:
            candidates.append(self._delete_heap[0])
        return min(candidates)

    def _refill(self) -> None:
        """Pull the globally smallest disk items into the delete heap.

        Streams from each run's head; takes up to ``heap_capacity``
        items total, consuming runs in sorted order via a tournament
        over their current heads.
        """
        if not self._runs:
            return
        budget = self.heap_capacity
        # Tournament heap of (next value, run index, position in block,
        # cached block, block-local index).
        heads: list[tuple[int, int]] = []
        cursors: dict[int, tuple[list[int], int]] = {}
        for i, run in enumerate(self._runs):
            if run.remaining > 0:
                records, pos = self._run_head_block(run)
                cursors[i] = (records, pos)
                heads.append((records[pos], i))
        heapq.heapify(heads)
        taken: list[int] = []
        while heads and budget > 0:
            value, i = heapq.heappop(heads)
            taken.append(value)
            budget -= 1
            run = self._runs[i]
            run.offset += 1
            if run.remaining > 0:
                records, pos = cursors[i]
                pos += 1
                if pos >= len(records):
                    records, pos = self._run_head_block(run)
                cursors[i] = (records, pos)
                heapq.heappush(heads, (records[pos], i))
        # Free fully-consumed runs.
        live = []
        for run in self._runs:
            if run.remaining == 0:
                for bid in run.block_ids:
                    self.ctx.disk.free(bid)
            else:
                live.append(run)
        self._runs = live
        self._delete_heap = taken  # already sorted ascending
        heapq.heapify(self._delete_heap)

    def __len__(self) -> int:
        return self._size

    def check_invariants(self) -> None:
        disk_items = sum(run.remaining for run in self._runs)
        assert self._size == len(self._insert_heap) + len(self._delete_heap) + disk_items
        for run in self._runs:
            items: list[int] = []
            for bid in run.block_ids:
                items.extend(self.ctx.disk.peek(bid).records())
            assert items == sorted(items), "run not sorted"
            assert len(items) == run.size
