"""A leveled LSM-tree: the buffered dictionary that dominates practice.

The paper's novelty band notes that buffered external *hashing* is rare
in the wild because LSM-trees won instead: they buffer inserts in a
memtable and amortize writes through sorted-run merges, paying
``O((γ/b)·log_γ(n/m))`` I/Os per insert — but a lookup must consult
``Θ(log_γ(n/m))`` levels, i.e. ``t_q = ω(1)`` unless filters help.
That is precisely the regime the paper's Lemma 5 structure occupies,
so the LSM is both a practical baseline and a cross-check of the
logarithmic method's cost profile.

Design (classic leveled compaction):

* a **memtable** holding up to ``memtable_items`` keys in main memory
  (charged to the budget);
* disk **levels** ``L_1, L_2, ...`` of capacity ``γ^k · memtable_items``
  each holding one sorted run stored across ``ceil(size/b)`` blocks;
* flushing the memtable merges it into ``L_1``; an overfull ``L_k``
  merges into ``L_{k+1}`` (read both runs, write the merged run);
* per-level **fence pointers** (first key of each block) kept in
  memory, so a lookup reads at most one block per level;
* optional per-level **Bloom filters** that skip levels which cannot
  contain the key — the standard practical fix for the multi-level
  lookup cost.
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from ..em.block import Block
from ..em.errors import ConfigurationError
from ..em.storage import EMContext
from ..tables.base import ExternalDictionary, LayoutSnapshot
from ..tables.batching import concat_records, membership, normalize_keys
from .bloom import BloomFilter


class _Run:
    """One sorted run: block ids plus in-memory fences and filter."""

    __slots__ = ("block_ids", "fences", "size", "bloom")

    def __init__(self) -> None:
        self.block_ids: list[int] = []
        self.fences: list[int] = []  # first key of each block
        self.size = 0
        self.bloom: BloomFilter | None = None


class LSMTree(ExternalDictionary):
    """Leveled LSM-tree with set semantics over integer keys.

    Parameters
    ----------
    ctx:
        Shared external-memory context.
    gamma:
        Level size ratio ``γ ≥ 2``.
    memtable_items:
        Memtable capacity; defaults to ``m // 2`` so fences, filters
        and the memtable together respect the budget in typical runs.
    bloom_bits_per_key:
        Per-level Bloom filter size; 0 disables filters.
    """

    def __init__(
        self,
        ctx: EMContext,
        *,
        gamma: int = 4,
        memtable_items: int | None = None,
        bloom_bits_per_key: float = 0.0,
    ) -> None:
        super().__init__(ctx)
        if gamma < 2:
            raise ConfigurationError(f"γ must be at least 2, got {gamma}")
        if bloom_bits_per_key < 0:
            raise ConfigurationError(
                f"bloom_bits_per_key must be non-negative, got {bloom_bits_per_key}"
            )
        self.gamma = gamma
        self.memtable_capacity = (
            memtable_items if memtable_items is not None else max(1, ctx.m // 2)
        )
        if self.memtable_capacity < 1:
            raise ConfigurationError("memtable must hold at least one item")
        self.bloom_bits_per_key = bloom_bits_per_key
        self._memtable: set[int] = set()
        #: Deleted-but-not-yet-compacted keys (memory-resident, charged).
        self._tombstones: set[int] = set()
        self._levels: list[_Run | None] = []
        self._charge_memory()

    # -- memory ------------------------------------------------------------

    def memory_words(self) -> int:
        words = len(self._memtable) + len(self._tombstones) + 2
        for run in self._levels:
            if run is not None:
                words += len(run.fences)
                if run.bloom is not None:
                    words += run.bloom.memory_words
        return words

    def _charge_memory(self) -> None:
        self.ctx.memory.set_charge(self._charge_key, self.memory_words())

    # -- geometry ------------------------------------------------------------

    def level_capacity(self, k: int) -> int:
        """Capacity of ``L_{k+1}`` (0-indexed): ``γ^{k+1} · memtable``."""
        return self.gamma ** (k + 1) * self.memtable_capacity

    @property
    def depth(self) -> int:
        """Number of allocated levels."""
        return len(self._levels)

    # -- run I/O ------------------------------------------------------------

    def _write_run(self, items: list[int]) -> _Run:
        """Write a sorted item list as a fresh run (one write per block).

        Blocks are handed to the disk via the ownership-transfer
        ``store`` (no copy — they are built here and never touched
        again).
        """
        run = _Run()
        run.size = len(items)
        b = self.ctx.b
        for off in range(0, len(items), b):
            chunk = items[off : off + b]
            bid = self.ctx.disk.allocate()
            self.ctx.disk.store(bid, Block(b, data=chunk))
            run.block_ids.append(bid)
            run.fences.append(chunk[0])
        if self.bloom_bits_per_key > 0 and items:
            run.bloom = BloomFilter.for_items(
                len(items), bits_per_item=self.bloom_bits_per_key, seed=len(items)
            )
            for x in items:
                run.bloom.add(x)
        return run

    def _read_run(self, run: _Run) -> list[int]:
        """Read a run back (one read per block), returning sorted items.

        Routed through :meth:`Disk.read_records` — charge-identical to
        per-block ``read`` (one bulk charge, same pending RMW block) and
        scan-resistant on a cached disk: compaction reads count hits and
        misses but never install frames, so a merge cannot flush the
        pool.
        """
        return self.ctx.disk.read_records(run.block_ids)

    def _free_run(self, run: _Run) -> None:
        for bid in run.block_ids:
            self.ctx.disk.free(bid)

    # -- operations -----------------------------------------------------------

    def insert(self, key: int) -> None:
        # Re-inserting a tombstoned key resurrects the physical copy.
        if key in self._tombstones:
            self._tombstones.discard(key)
            self._size += 1
            self.stats.inserts += 1
            self._charge_memory()
            return
        # Set semantics: duplicate inserts are no-ops.  The memtable
        # check is genuinely free; the levels check uses an
        # instrumentation peek because the modelled algorithm relies on
        # merge-time deduplication rather than a probe per insert, and
        # charging lookup I/Os here would distort t_u.
        if key in self._memtable or self._in_levels_free(key):
            return
        self._memtable.add(key)
        self._size += 1
        self.stats.inserts += 1
        if len(self._memtable) >= self.memtable_capacity:
            self._flush_memtable()
        self._charge_memory()

    def insert_batch(self, keys: Sequence[int] | np.ndarray) -> None:
        """Bulk insert with the scalar path's exact flush schedule.

        The per-key ``_in_levels_free`` fence-probe is replaced by one
        membership set built from uncharged peeks at batch start and
        maintained incrementally — the duplicate screen costs O(1) per
        key instead of O(levels · log b).  Flushes fire at exactly the
        scalar boundaries, so charged I/Os are identical.
        """
        keys, _ = normalize_keys(keys)
        tombstones = self._tombstones
        cap = self.memtable_capacity
        memory = self.ctx.memory
        # Duplicate screen: for batches large relative to the table, one
        # membership set built from uncharged peeks (O(stored) once,
        # then O(1)/key) beats the per-key fence probe; smaller batches
        # keep the scalar screen so incremental callers never pay
        # O(stored) per call.  The crossover weighs the ~per-key probe
        # cost against the ~per-stored-record set-build cost.
        # "Present" means logically present — memtable plus physical
        # level contents, minus tombstoned keys (those route through
        # the resurrect branch and must not be screened by presence).
        present: set[int] | None = None
        if len(keys) >= 256 and 24 * len(keys) >= self._size:
            present = set(self._memtable)
            disk = self.ctx.disk
            for run in self._levels:
                if run is None or run.size == 0:
                    continue
                for bid in run.block_ids:
                    present.update(disk.peek(bid, copy=False).records())
            present -= tombstones
        for key in keys:
            if key in tombstones:
                # Re-inserting a tombstoned key resurrects the physical
                # copy.  Charge memory *before* the discard: the running
                # footprint is about to shrink, so this is a local
                # maximum the scalar path's per-insert charges recorded.
                memory.set_charge(self._charge_key, self.memory_words())
                tombstones.discard(key)
                if present is not None:
                    present.add(key)
                self._size += 1
                self.stats.inserts += 1
                continue
            memtable = self._memtable
            if present is not None:
                if key in present:
                    continue
                present.add(key)
            elif key in memtable or self._in_levels_free(key):
                continue
            memtable.add(key)
            self._size += 1
            self.stats.inserts += 1
            if len(memtable) >= cap:
                # Scalar memory peak: the charge after the previous
                # insert saw the memtable one item short of capacity.
                memory.set_charge(self._charge_key, self.memory_words() - 1)
                self._flush_memtable()
        self._charge_memory()

    def _in_levels_free(self, key: int) -> bool:
        """Instrumentation-only duplicate check (peeks, charges no I/O)."""
        for run in self._levels:
            if run is None or run.size == 0:
                continue
            i = max(0, bisect.bisect_right(run.fences, key) - 1)
            blk = self.ctx.disk.peek(run.block_ids[i])
            if key in blk:
                return True
        return False

    def _flush_memtable(self) -> None:
        """Merge the memtable into L1, cascading overfull levels down."""
        self.stats.merges += 1
        carry = sorted(self._memtable)
        self._memtable = set()
        k = 0
        while carry:
            if k >= len(self._levels):
                self._levels.append(None)
            run = self._levels[k]
            if run is not None and run.size > 0:
                existing = self._read_run(run)
                self._free_run(run)
                if run.bloom is not None:
                    run.bloom = None
                # Compaction applies tombstones: physically drop deleted
                # keys from the rewritten run and retire their markers.
                if self._tombstones:
                    kept = [x for x in existing if x not in self._tombstones]
                    self._tombstones.difference_update(existing)
                    existing = kept
                carry = self._merge_sorted(existing, carry)
            if len(carry) <= self.level_capacity(k):
                self._levels[k] = self._write_run(carry)
                carry = []
            else:
                # Level would overflow: push the whole merged run down.
                self._levels[k] = None
                k += 1
        self._charge_memory()

    @staticmethod
    def _merge_sorted(a: list[int], b: list[int]) -> list[int]:
        """Merge two sorted distinct lists, dropping cross-duplicates."""
        if len(a) + len(b) >= 1024:
            # Sorted union of sorted distinct inputs — identical output,
            # numpy prices.
            return np.union1d(
                np.asarray(a, dtype=np.uint64), np.asarray(b, dtype=np.uint64)
            ).tolist()
        out: list[int] = []
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i] < b[j]:
                out.append(a[i])
                i += 1
            elif a[i] > b[j]:
                out.append(b[j])
                j += 1
            else:
                out.append(a[i])
                i += 1
                j += 1
        out.extend(a[i:])
        out.extend(b[j:])
        return out

    def delete(self, key: int) -> bool:
        """Tombstone deletion, LSM-style.

        A delete is a *write*, not a search: the key goes into the
        memory-resident tombstone set and is filtered from lookups; the
        physical copy dies when a merge next rewrites its run.  Costs
        0 I/Os up front (the merge work is already accounted), which is
        exactly why LSMs love delete-heavy streams.

        Returns whether the key was actually present (checked with an
        instrumentation peek so the modelled algorithm stays blind).
        """
        if key in self._memtable:
            self._memtable.discard(key)
            self._size -= 1
            self.stats.deletes += 1
            return True
        if key in self._tombstones or not self._in_levels_free(key):
            return False
        self._tombstones.add(key)
        self._size -= 1
        self.stats.deletes += 1
        self._charge_memory()
        return True

    def delete_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Bulk tombstone deletes: one level-membership screen per batch.

        The scalar path's only non-O(1) work is the per-key
        ``_in_levels_free`` fence probe; for batches that are not tiny
        relative to the table it is replaced by one vectorised
        membership scan over the (delete-invariant) run contents.  No
        branch charges I/O, so bit-identity reduces to replicating the
        scalar set bookkeeping and the per-tombstone memory charges in
        key order — which the loop below does verbatim.
        """
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        in_levels: list[bool] | None = None
        if n >= 256 and 24 * n >= self._size:
            stored = concat_records(
                self.ctx.disk.records_arr(bid)
                for run in self._levels
                if run is not None and run.size > 0
                for bid in run.block_ids
            )
            in_levels = membership(arr, stored).tolist()
        memtable = self._memtable
        tombstones = self._tombstones
        removed = 0
        for i in range(n):
            key = key_list[i]
            if key in memtable:
                memtable.discard(key)
                out[i] = True
                removed += 1
            elif key in tombstones or not (
                in_levels[i] if in_levels is not None else self._in_levels_free(key)
            ):
                out[i] = False
            else:
                tombstones.add(key)
                out[i] = True
                removed += 1
                self._charge_memory()
        self._size -= removed
        self.stats.deletes += removed
        if cost_out is not None:
            cost_out.extend([0] * n)
        return out

    def lookup(self, key: int) -> bool:
        """Memtable, then each level newest-first: ≤ 1 I/O per level
        (0 when a Bloom filter rejects).

        The per-level Bloom filters double as a *negative cache* on a
        cached disk: a rejection answers the probe without touching the
        buffer pool or the disk and is counted as a ``negative_hit``
        (rejections charge nothing in uncached runs too, so the
        hits+misses exactness contract is untouched).
        """
        self.stats.lookups += 1
        if key in self._tombstones:
            return False
        if key in self._memtable:
            self.stats.hits += 1
            return True
        disk = self.ctx.disk
        cache = disk.cache
        for run in self._levels:
            if run is None or run.size == 0:
                continue
            if run.bloom is not None and not run.bloom.might_contain(key):
                if cache is not None:
                    cache.stats.negative_hits += 1
                continue
            i = max(0, bisect.bisect_right(run.fences, key) - 1)
            if disk.probe_record(run.block_ids[i], key):
                self.stats.hits += 1
                return True
        return False

    def lookup_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Vectorised level probing: one bulk membership scan per run.

        A run is a sorted sequence partitioned by its fences, so
        membership in a key's fence-indicated block equals membership in
        the whole run — one concatenate + searchsorted replaces the
        per-key fence bisect and block scan.  Bloom screens go through
        :meth:`BloomFilter.might_contain_array` (bit-identical to the
        scalar probes), reads are charged in bulk per level, and the
        pending read-modify-write block is restored to the scalar
        walk's.  Batches tiny relative to the table keep the scalar
        loop (materialising every run costs O(stored)).
        """
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        if n == 0:
            return np.empty(0, dtype=bool)
        if 24 * n < self._size or self.ctx.disk.cache is not None:
            # Tiny batches keep the scalar loop; so do cached runs, whose
            # per-key probes label every read hit or miss (and let the
            # Bloom screens count negative hits).
            return super().lookup_batch(key_list, cost_out=cost_out)
        runs = [run for run in self._levels if run is not None and run.size > 0]
        out = np.zeros(n, dtype=bool)
        costs = np.zeros(n, dtype=np.int64)
        self.stats.lookups += n
        tomb = self._tombstones
        dead = (
            membership(arr, np.fromiter(tomb, dtype=np.uint64, count=len(tomb)))
            if tomb
            else np.zeros(n, dtype=bool)
        )
        memtable = self._memtable
        in_mem = (
            membership(
                arr, np.fromiter(memtable, dtype=np.uint64, count=len(memtable))
            )
            & ~dead
            if memtable
            else np.zeros(n, dtype=bool)
        )
        out |= in_mem
        searching = np.flatnonzero(~dead & ~in_mem)
        records_arr = self.ctx.disk.records_arr
        for run in runs:
            if searching.size == 0:
                break
            if run.bloom is not None:
                passed = run.bloom.might_contain_array(arr[searching])
                probed = searching[passed]
            else:
                passed = None
                probed = searching
            if probed.size == 0:
                continue
            costs[probed] += 1
            run_arr = concat_records(records_arr(bid) for bid in run.block_ids)
            pos = np.minimum(
                np.searchsorted(run_arr, arr[probed]), run_arr.size - 1
            )
            hit = run_arr[pos] == arr[probed]
            out[probed[hit]] = True
            keep = np.ones(searching.size, dtype=bool)
            if passed is None:
                keep[hit] = False
            else:
                keep[np.flatnonzero(passed)[hit]] = False
            searching = searching[keep]
        total_reads = int(costs.sum())
        if total_reads:
            stats = self.ctx.stats
            stats.reads += total_reads
            last = int(np.flatnonzero(costs > 0)[-1])
            stats._last_read_block = self._final_probe_block(key_list[last], runs)
        if cost_out is not None:
            cost_out.extend(costs.tolist())
        self.stats.hits += int(np.count_nonzero(out))
        return out

    def _final_probe_block(self, key: int, runs: list[_Run]) -> int | None:
        """The block id of ``key``'s last charged probe (scalar walk)."""
        key_in = self.ctx.disk.key_in
        last: int | None = None
        for run in runs:
            if run.bloom is not None and not run.bloom.might_contain(key):
                continue
            bid = run.block_ids[max(0, bisect.bisect_right(run.fences, key) - 1)]
            last = bid
            if key_in(bid, key):
                break
        return last

    # -- instrumentation ---------------------------------------------------------

    def level_sizes(self) -> list[int]:
        return [run.size if run else 0 for run in self._levels]

    def layout_snapshot(self) -> LayoutSnapshot:
        blocks: dict[int, tuple[int, ...]] = {}
        for run in self._levels:
            if run is None:
                continue
            for bid in run.block_ids:
                blocks[bid] = tuple(self.ctx.disk.peek(bid).records())
        levels = [run for run in self._levels if run is not None and run.size > 0]

        def address(key: int) -> int | None:
            # The memory can compute one block guess: the fence-indicated
            # block of the *largest* level (where most items live).
            if not levels:
                return None
            run = max(levels, key=lambda r: r.size)
            i = max(0, bisect.bisect_right(run.fences, key) - 1)
            return run.block_ids[i]

        return LayoutSnapshot(
            memory_items=frozenset(self._memtable),
            blocks=blocks,
            address=address,
            address_description_words=self.memory_words(),
        )

    def check_invariants(self) -> None:
        assert len(self._memtable) < max(2, self.memtable_capacity)
        assert not (self._tombstones & self._memtable)
        total = len(self._memtable) - len(self._tombstones)
        for k, run in enumerate(self._levels):
            if run is None:
                continue
            items = []
            for bid in run.block_ids:
                items.extend(self.ctx.disk.peek(bid).records())
            assert items == sorted(items), f"level {k} run not sorted"
            assert len(items) == run.size
            assert len(items) == len(set(items)), f"level {k} has duplicates"
            assert run.size <= self.level_capacity(k), f"level {k} overfull"
            assert run.fences == [
                self.ctx.disk.peek(bid).records()[0] for bid in run.block_ids
            ]
            total += run.size
        assert total == self._size, f"{total} stored vs size {self._size}"
