"""Baseline external-memory structures for context and comparison.

The paper's motivation (Section 1) is that buffering gives *most*
external structures ``o(1)`` amortized updates — stacks, queues, the
buffer tree, priority queues, LSM-style logarithmic structures — and
asks why hash tables should be different.  This package implements
those exhibits so the contrast is measurable:

* :mod:`repro.baselines.stack_queue` — external stack and queue:
  ``O(1/b)`` amortized I/Os per op with one block of buffer.
* :mod:`repro.baselines.btree` — a classic external B-tree: ``Θ(log_b n)``
  per op, the no-buffering comparison point for ordered dictionaries.
* :mod:`repro.baselines.lsm` — an LSM-tree (the OSS-dominant buffered
  dictionary): ``o(1)`` inserts, ``Θ(log(n/m))``-probe lookups.
* :mod:`repro.baselines.buffer_tree` — Arge's buffer tree, the
  canonical ``O((1/b)·log)`` batched structure.
* :mod:`repro.baselines.priority_queue` — an external priority queue
  ([4, 9] in the paper): o(1) amortized push/pop-min via run merging.
* :mod:`repro.baselines.bloom` — memory-resident Bloom filters, the
  standard trick LSMs use to shave lookup probes (and a nice example of
  spending memory on something other than the paper's buffer).
"""

from .bloom import BloomFilter
from .priority_queue import ExternalPriorityQueue
from .btree import BTree
from .buffer_tree import BufferTree
from .lsm import LSMTree
from .stack_queue import ExternalQueue, ExternalStack

__all__ = [
    "BloomFilter",
    "ExternalPriorityQueue",
    "BTree",
    "BufferTree",
    "LSMTree",
    "ExternalQueue",
    "ExternalStack",
]
