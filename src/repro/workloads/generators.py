"""Seeded key-stream generators over the universe ``U = {0, ..., u-1}``.

The lower bounds assume items drawn independently and uniformly from
``U`` (Section 2); the upper bounds only need the hash values to behave
uniformly.  Besides the uniform stream the module provides skewed and
adversarial streams for robustness experiments:

* :class:`UniformKeys` — the paper's input distribution (distinct keys;
  ``u > n³`` makes collisions vanish by the birthday bound).
* :class:`ZipfKeys` — heavy-tailed *distinct* keys: ranks are drawn
  Zipf, then mapped through a fixed random permutation-ish mixer so the
  popular ranks are scattered across ``U``.
* :class:`SequentialKeys` — worst case for structures that don't hash.
* :class:`ClusteredKeys` — keys concentrated in a few narrow ranges of
  ``U`` (stress for range-partitioned baselines like the B-tree).
* :class:`AdversarialBucketKeys` — keys engineered to collide into few
  buckets of a *known* hash function (stress for open addressing; also
  the "planted bad function" input of the Lemma 2 experiments).

All generators yield **distinct** keys (the dynamic hash table stores a
set) and are deterministic given a seed.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Iterator

import numpy as np

from ..hashing.base import HashFunction
from ..hashing.mixers import splitmix64_array


#: Fixed candidate-draw size.  Drawing in constant-size batches (rather
#: than sized to the caller's request) makes RNG consumption — and so
#: the emitted key sequence — independent of call granularity:
#: ``take(n)`` and ``take(a) + take(b)`` with ``a + b = n`` produce the
#: same keys, which is what lets ``stream(chunk)`` equal ``take`` for
#: every chunk size (pinned by the determinism tests).
_DRAW = 1024


class KeyGenerator(abc.ABC):
    """Base class: an endless stream of distinct keys in ``[0, u)``."""

    def __init__(self, u: int, seed: int = 0) -> None:
        if u <= 1:
            raise ValueError(f"universe size must exceed 1, got {u}")
        self.u = u
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._seen: set[int] = set()
        #: Drawn-but-not-yet-emitted keys (already deduplicated).
        self._pending: deque[int] = deque()

    @abc.abstractmethod
    def _candidates(self, count: int) -> np.ndarray:
        """Propose ``count`` candidate keys (may contain repeats)."""

    def take(self, count: int) -> list[int]:
        """The next ``count`` distinct keys."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        emitted = len(self._seen) - len(self._pending)
        if emitted + count > self.u:
            raise ValueError(
                f"cannot produce {count} more distinct keys from a universe "
                f"of {self.u} with {emitted} already emitted"
            )
        out: list[int] = []
        stall = 0
        while len(out) < count:
            while self._pending and len(out) < count:
                out.append(self._pending.popleft())
            if len(out) == count:
                break
            batch = self._candidates(_DRAW)
            fresh = 0
            for key in batch:
                ki = int(key)
                if ki not in self._seen:
                    self._seen.add(ki)
                    self._pending.append(ki)
                    fresh += 1
            # Guard against degenerate generators that keep proposing
            # the same exhausted support.
            stall = stall + 1 if fresh == 0 else 0
            if stall > 64:
                raise RuntimeError(
                    f"{type(self).__name__} stalled after {len(out)}/{count} keys"
                )
        return out

    def stream(self, chunk: int = 1024) -> Iterator[int]:
        """Endless iterator over distinct keys, fetched in ``chunk``s.

        Identical to :meth:`take` at every chunk size: the fixed-size
        candidate draws decouple RNG state from how callers slice the
        stream.
        """
        while True:
            yield from self.take(chunk)

    def reset(self) -> None:
        """Restart the stream from the seed (forgetting emitted keys)."""
        self._rng = np.random.default_rng(self.seed)
        self._seen.clear()
        self._pending.clear()


class UniformKeys(KeyGenerator):
    """Independent uniform keys — the paper's input model."""

    def _candidates(self, count: int) -> np.ndarray:
        return self._rng.integers(0, self.u, size=count, dtype=np.uint64)


class SequentialKeys(KeyGenerator):
    """``start, start+stride, start+2·stride, ...`` (mod u)."""

    def __init__(self, u: int, seed: int = 0, *, start: int = 0, stride: int = 1) -> None:
        super().__init__(u, seed)
        if stride == 0:
            raise ValueError("stride must be non-zero")
        self._next = start % u
        self.stride = stride

    def _candidates(self, count: int) -> np.ndarray:
        out = (self._next + self.stride * np.arange(count, dtype=np.int64)) % self.u
        self._next = int((self._next + self.stride * count) % self.u)
        return out.astype(np.uint64)


class ZipfKeys(KeyGenerator):
    """Zipf(θ)-distributed ranks mapped to scattered distinct keys.

    Rank ``r`` maps to ``splitmix64(r) mod u`` so the heavy hitters are
    not numerically adjacent; distinctness comes from the base class.
    """

    def __init__(self, u: int, seed: int = 0, *, theta: float = 1.2) -> None:
        super().__init__(u, seed)
        if theta <= 1.0:
            raise ValueError(f"numpy's Zipf needs θ > 1, got {theta}")
        self.theta = theta

    def _candidates(self, count: int) -> np.ndarray:
        ranks = self._rng.zipf(self.theta, size=count).astype(np.uint64)
        return splitmix64_array(ranks) % np.uint64(self.u)


class ClusteredKeys(KeyGenerator):
    """Keys drawn from a few narrow windows of the universe."""

    def __init__(
        self,
        u: int,
        seed: int = 0,
        *,
        clusters: int = 8,
        width: int | None = None,
    ) -> None:
        super().__init__(u, seed)
        if clusters <= 0:
            raise ValueError(f"need at least one cluster, got {clusters}")
        self.width = width if width is not None else max(1, u // (clusters * 1000))
        self._bases = self._rng.integers(
            0, max(1, u - self.width), size=clusters, dtype=np.uint64
        )

    def _candidates(self, count: int) -> np.ndarray:
        which = self._rng.integers(0, len(self._bases), size=count)
        offs = self._rng.integers(0, self.width, size=count, dtype=np.uint64)
        return (self._bases[which] + offs) % np.uint64(self.u)


class AdversarialBucketKeys(KeyGenerator):
    """Keys that collide into few buckets of a known hash function.

    Performs rejection sampling against ``hash_fn.bucket(x, buckets)``,
    keeping only keys landing in the ``hot`` lowest-numbered buckets.
    This realises the "bad address function" geometry of Lemma 2 from
    the input side: mass ``λ_f ≈ hot/buckets`` concentrated on an
    ``O(hot)``-block index area.
    """

    def __init__(
        self,
        u: int,
        seed: int = 0,
        *,
        hash_fn: HashFunction,
        buckets: int,
        hot: int = 1,
    ) -> None:
        super().__init__(u, seed)
        if buckets <= 0 or not 0 < hot <= buckets:
            raise ValueError(f"need 0 < hot <= buckets, got hot={hot}, buckets={buckets}")
        self.hash_fn = hash_fn
        self.buckets = buckets
        self.hot = hot

    def _candidates(self, count: int) -> np.ndarray:
        # Oversample by the expected rejection factor; vectorised filter
        # (``bucket_array`` pins scalar/vector hash parity).
        factor = max(2, int(self.buckets / self.hot) + 1)
        raw = self._rng.integers(0, self.u, size=count * factor, dtype=np.uint64)
        keep = raw[self.hash_fn.bucket_array(raw, self.buckets) < np.uint64(self.hot)]
        return keep[:count]


_GENERATORS = {
    "uniform": UniformKeys,
    "sequential": SequentialKeys,
    "zipf": ZipfKeys,
    "clustered": ClusteredKeys,
    # Needs ``hash_fn=``/``buckets=`` kwargs (the router under attack);
    # the CLI supplies the service's own router hash.
    "adversarial": AdversarialBucketKeys,
}


def make_generator(kind: str, u: int, seed: int = 0, **kwargs) -> KeyGenerator:
    """Factory by name for benchmark parameterisation."""
    try:
        cls = _GENERATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown generator {kind!r}; choose from {sorted(_GENERATORS)}"
        ) from None
    return cls(u, seed, **kwargs)
