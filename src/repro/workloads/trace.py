"""Operation traces: mixed workloads, recording, replay.

The measurement drivers in :mod:`repro.workloads.drivers` separate
insert and query phases because that is how the paper defines ``t_u``
and ``t_q``.  Real deployments interleave; this module provides

* :class:`MixedWorkload` — a seeded generator of interleaved
  insert / successful-lookup / unsuccessful-lookup / delete operations
  with configurable mix ratios,
* :class:`BulkMixedWorkload` — the vectorised sibling emitting
  ``(kinds, keys)`` arrays (the service layer's wire format; see
  :data:`OP_INSERT` / :data:`OP_LOOKUP` / :data:`OP_DELETE` and
  :func:`encode_ops`),
* :func:`replay` — drive any :class:`ExternalDictionary` with a trace,
  returning per-operation-type I/O cost summaries,
* :func:`save_trace` / :func:`load_trace` — a one-op-per-line text
  format so experiments can be pinned to an exact operation sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..tables.base import ExternalDictionary
from .generators import KeyGenerator, UniformKeys
from .metrics import Summary, summarize

#: Operation kinds.
INSERT = "i"
LOOKUP_HIT = "q"
LOOKUP_MISS = "n"
DELETE = "d"

_KINDS = (INSERT, LOOKUP_HIT, LOOKUP_MISS, DELETE)

#: Integer op codes for array-encoded traces — the service layer's wire
#: format (one ``uint8`` per op; hit- and miss-lookups collapse to one
#: LOOKUP code, the distinction only matters to generators).
OP_INSERT, OP_LOOKUP, OP_DELETE = 0, 1, 2

_OP_CODE = {INSERT: OP_INSERT, LOOKUP_HIT: OP_LOOKUP, LOOKUP_MISS: OP_LOOKUP, DELETE: OP_DELETE}


def encode_ops(ops: Iterable[Op]) -> tuple[np.ndarray, np.ndarray]:
    """Encode a trace as ``(kinds, keys)`` arrays for the service layer."""
    ops = list(ops)
    kinds = np.fromiter(
        (_OP_CODE[op.kind] for op in ops), dtype=np.uint8, count=len(ops)
    )
    keys = np.fromiter((op.key for op in ops), dtype=np.uint64, count=len(ops))
    return kinds, keys


@dataclass(frozen=True)
class Op:
    """One trace operation."""

    kind: str
    key: int

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}; expected one of {_KINDS}")
        if self.key < 0:
            raise ValueError(f"keys are non-negative integers, got {self.key}")


class MixedWorkload:
    """Seeded interleaved workload over a key generator.

    Parameters
    ----------
    generator:
        Source of fresh distinct keys (consumed by inserts and
        unsuccessful lookups).
    mix:
        Probability weights for (insert, hit-lookup, miss-lookup,
        delete).  Hit-lookups and deletes target uniformly random
        *live* keys; while nothing is live they fall back to inserts.
    seed:
        Mix-choice randomness (independent of the generator's seed).
    """

    def __init__(
        self,
        generator: KeyGenerator,
        *,
        mix: tuple[float, float, float, float] = (0.5, 0.4, 0.05, 0.05),
        seed: int = 0,
    ) -> None:
        if len(mix) != 4 or any(w < 0 for w in mix) or sum(mix) <= 0:
            raise ValueError(f"mix must be 4 non-negative weights, got {mix}")
        self.generator = generator
        self.weights = np.asarray(mix, dtype=float) / sum(mix)
        self._rng = np.random.default_rng(seed)
        self._live: list[int] = []
        self._live_set: set[int] = set()

    def ops(self, count: int) -> Iterator[Op]:
        """Generate ``count`` operations."""
        for _ in range(count):
            kind = _KINDS[int(self._rng.choice(4, p=self.weights))]
            if kind in (LOOKUP_HIT, DELETE) and not self._live:
                kind = INSERT
            if kind == INSERT:
                key = self.generator.take(1)[0]
                self._live.append(key)
                self._live_set.add(key)
                yield Op(INSERT, key)
            elif kind == LOOKUP_HIT:
                key = self._live[int(self._rng.integers(0, len(self._live)))]
                yield Op(LOOKUP_HIT, key)
            elif kind == LOOKUP_MISS:
                yield Op(LOOKUP_MISS, self.generator.take(1)[0])
            else:
                idx = int(self._rng.integers(0, len(self._live)))
                key = self._live[idx]
                self._live[idx] = self._live[-1]
                self._live.pop()
                self._live_set.discard(key)
                yield Op(DELETE, key)

    def take(self, count: int) -> list[Op]:
        return list(self.ops(count))

    @property
    def live_keys(self) -> int:
        return len(self._live)


class BulkMixedWorkload:
    """Vectorised mixed-op trace generation in ``(kinds, keys)`` arrays.

    The array-native sibling of :class:`MixedWorkload`, built for the
    service layer's closed-loop runs at n = 10⁶ and beyond, where a
    per-op Python loop would dominate the measurement.  Op kinds are
    drawn i.i.d. from ``mix`` a chunk at a time; within a chunk

    * **inserts** and **miss-lookups** consume fresh keys from the
      generator (one bulk ``take``),
    * **deletes** target *distinct* keys live at chunk start (so every
      delete genuinely removes something),
    * **hit-lookups** target keys live at chunk start minus the chunk's
      delete victims (so every hit genuinely hits, whatever order the
      chunk executes in),
    * while nothing is live, hit-lookups and deletes fall back to
      inserts — same rule as :class:`MixedWorkload`.

    Keys inserted in a chunk become eligible targets from the *next*
    chunk on; this keeps each chunk's ops key-disjoint across kinds,
    which the service's conflict-aware epoch coalescing rewards with
    maximal epochs.  Deterministic given (generator seed, ``seed``).
    """

    def __init__(
        self,
        generator: KeyGenerator,
        *,
        mix: tuple[float, float, float, float] = (0.5, 0.4, 0.05, 0.05),
        seed: int = 0,
        chunk: int = 4096,
    ) -> None:
        if len(mix) != 4 or any(w < 0 for w in mix) or sum(mix) <= 0:
            raise ValueError(f"mix must be 4 non-negative weights, got {mix}")
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self.generator = generator
        self.weights = np.asarray(mix, dtype=float) / sum(mix)
        self.chunk = chunk
        self._rng = np.random.default_rng(seed)
        self._live: list[int] = []

    def take_arrays(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """The next ``count`` ops as ``(kinds uint8, keys uint64)``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        kinds_parts: list[np.ndarray] = []
        keys_parts: list[np.ndarray] = []
        remaining = count
        while remaining > 0:
            kinds, keys = self._chunk_ops(min(self.chunk, remaining))
            kinds_parts.append(kinds)
            keys_parts.append(keys)
            remaining -= len(kinds)
        if not kinds_parts:
            return np.empty(0, dtype=np.uint8), np.empty(0, dtype=np.uint64)
        return np.concatenate(kinds_parts), np.concatenate(keys_parts)

    def _chunk_ops(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        rng = self._rng
        draws = rng.choice(4, p=self.weights, size=n)
        pool = self._live
        if not pool:
            draws[(draws == 1) | (draws == 3)] = 0
        del_pos = np.flatnonzero(draws == 3)
        if del_pos.size > len(pool):
            # Not enough distinct live keys: the excess falls back.
            draws[del_pos[len(pool):]] = 0
            del_pos = del_pos[: len(pool)]
        victims: list[int] = []
        if del_pos.size:
            vic_idx = rng.choice(len(pool), size=del_pos.size, replace=False)
            for i in sorted((int(j) for j in vic_idx), reverse=True):
                victims.append(pool[i])
                pool[i] = pool[-1]
                pool.pop()
        hit_pos = np.flatnonzero(draws == 1)
        if hit_pos.size and not pool:
            draws[hit_pos] = 0
            hit_pos = hit_pos[:0]
        ins_pos = np.flatnonzero(draws == 0)
        miss_pos = np.flatnonzero(draws == 2)
        keys = np.zeros(n, dtype=np.uint64)
        fresh = self.generator.take(int(ins_pos.size + miss_pos.size))
        keys[ins_pos] = fresh[: ins_pos.size]
        keys[miss_pos] = fresh[ins_pos.size :]
        if hit_pos.size:
            pool_arr = np.asarray(pool, dtype=np.uint64)
            keys[hit_pos] = pool_arr[rng.integers(0, len(pool), size=hit_pos.size)]
        if del_pos.size:
            keys[del_pos] = np.asarray(victims, dtype=np.uint64)
        kinds = np.where(
            draws == 0, OP_INSERT, np.where(draws == 3, OP_DELETE, OP_LOOKUP)
        ).astype(np.uint8)
        pool.extend(fresh[: ins_pos.size])
        return kinds, keys

    @property
    def live_keys(self) -> int:
        return len(self._live)


@dataclass(frozen=True)
class ReplayReport:
    """Per-kind I/O summaries from one trace replay."""

    total_ops: int
    total_ios: int
    per_kind: dict[str, Summary]
    errors: int

    @property
    def amortized(self) -> float:
        return self.total_ios / self.total_ops if self.total_ops else 0.0

    def rows(self) -> list[dict[str, float | int | str]]:
        names = {
            INSERT: "insert",
            LOOKUP_HIT: "lookup-hit",
            LOOKUP_MISS: "lookup-miss",
            DELETE: "delete",
        }
        out: list[dict[str, float | int | str]] = []
        for kind, summ in self.per_kind.items():
            if summ.count == 0:
                continue
            out.append(
                {
                    "op": names[kind],
                    "count": summ.count,
                    "mean I/Os": round(summ.mean, 4),
                    "p99 I/Os": summ.p99,
                }
            )
        return out


def replay(
    table: ExternalDictionary, trace: Iterable[Op], *, strict: bool = True
) -> ReplayReport:
    """Drive ``table`` with ``trace``, measuring each op's I/O delta.

    With ``strict`` the replay asserts semantic correctness: hit-lookups
    must hit, miss-lookups must miss, deletes must remove (tables
    without delete support raise ``NotImplementedError`` — filter the
    trace first or set ``strict=False`` to count the failure and skip).
    """
    ctx = table.ctx
    costs: dict[str, list[int]] = {k: [] for k in _KINDS}
    errors = 0
    total = 0
    before_all = ctx.stats.snapshot()
    for op in trace:
        total += 1
        before = ctx.stats.snapshot()
        try:
            if op.kind == INSERT:
                table.insert(op.key)
            elif op.kind == LOOKUP_HIT:
                found = table.lookup(op.key)
                if strict and not found:
                    raise AssertionError(f"expected hit on {op.key}")
            elif op.kind == LOOKUP_MISS:
                found = table.lookup(op.key)
                if strict and found:
                    raise AssertionError(f"expected miss on {op.key}")
            else:
                removed = table.delete(op.key)
                if strict and not removed:
                    raise AssertionError(f"expected delete of {op.key}")
        except (NotImplementedError, AssertionError):
            if strict:
                raise
            errors += 1
            continue
        costs[op.kind].append(ctx.stats.delta_since(before).total)
    return ReplayReport(
        total_ops=total,
        total_ios=ctx.stats.delta_since(before_all).total,
        per_kind={k: summarize(v) for k, v in costs.items()},
        errors=errors,
    )


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------

def save_trace(trace: Iterable[Op], path: str | Path) -> int:
    """Write a trace as ``<kind> <key>`` lines; returns ops written."""
    path = Path(path)
    count = 0
    with path.open("w") as fh:
        for op in trace:
            fh.write(f"{op.kind} {op.key}\n")
            count += 1
    return count


def load_trace(path: str | Path) -> list[Op]:
    """Read a trace written by :func:`save_trace`."""
    out: list[Op] = []
    with Path(path).open() as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{line_no}: malformed trace line {line!r}")
            out.append(Op(parts[0], int(parts[1])))
    return out


def uniform_mixed_trace(
    u: int, count: int, *, seed: int = 0, mix=(0.5, 0.4, 0.05, 0.05)
) -> list[Op]:
    """Convenience: a mixed trace over uniform keys."""
    wl = MixedWorkload(UniformKeys(u, seed), mix=mix, seed=seed + 1)
    return wl.take(count)
