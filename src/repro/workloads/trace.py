"""Operation traces: mixed workloads, recording, replay.

The measurement drivers in :mod:`repro.workloads.drivers` separate
insert and query phases because that is how the paper defines ``t_u``
and ``t_q``.  Real deployments interleave; this module provides

* :class:`MixedWorkload` — a seeded generator of interleaved
  insert / successful-lookup / unsuccessful-lookup / delete operations
  with configurable mix ratios,
* :func:`replay` — drive any :class:`ExternalDictionary` with a trace,
  returning per-operation-type I/O cost summaries,
* :func:`save_trace` / :func:`load_trace` — a one-op-per-line text
  format so experiments can be pinned to an exact operation sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..tables.base import ExternalDictionary
from .generators import KeyGenerator, UniformKeys
from .metrics import Summary, summarize

#: Operation kinds.
INSERT = "i"
LOOKUP_HIT = "q"
LOOKUP_MISS = "n"
DELETE = "d"

_KINDS = (INSERT, LOOKUP_HIT, LOOKUP_MISS, DELETE)


@dataclass(frozen=True)
class Op:
    """One trace operation."""

    kind: str
    key: int

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}; expected one of {_KINDS}")
        if self.key < 0:
            raise ValueError(f"keys are non-negative integers, got {self.key}")


class MixedWorkload:
    """Seeded interleaved workload over a key generator.

    Parameters
    ----------
    generator:
        Source of fresh distinct keys (consumed by inserts and
        unsuccessful lookups).
    mix:
        Probability weights for (insert, hit-lookup, miss-lookup,
        delete).  Hit-lookups and deletes target uniformly random
        *live* keys; while nothing is live they fall back to inserts.
    seed:
        Mix-choice randomness (independent of the generator's seed).
    """

    def __init__(
        self,
        generator: KeyGenerator,
        *,
        mix: tuple[float, float, float, float] = (0.5, 0.4, 0.05, 0.05),
        seed: int = 0,
    ) -> None:
        if len(mix) != 4 or any(w < 0 for w in mix) or sum(mix) <= 0:
            raise ValueError(f"mix must be 4 non-negative weights, got {mix}")
        self.generator = generator
        self.weights = np.asarray(mix, dtype=float) / sum(mix)
        self._rng = np.random.default_rng(seed)
        self._live: list[int] = []
        self._live_set: set[int] = set()

    def ops(self, count: int) -> Iterator[Op]:
        """Generate ``count`` operations."""
        for _ in range(count):
            kind = _KINDS[int(self._rng.choice(4, p=self.weights))]
            if kind in (LOOKUP_HIT, DELETE) and not self._live:
                kind = INSERT
            if kind == INSERT:
                key = self.generator.take(1)[0]
                self._live.append(key)
                self._live_set.add(key)
                yield Op(INSERT, key)
            elif kind == LOOKUP_HIT:
                key = self._live[int(self._rng.integers(0, len(self._live)))]
                yield Op(LOOKUP_HIT, key)
            elif kind == LOOKUP_MISS:
                yield Op(LOOKUP_MISS, self.generator.take(1)[0])
            else:
                idx = int(self._rng.integers(0, len(self._live)))
                key = self._live[idx]
                self._live[idx] = self._live[-1]
                self._live.pop()
                self._live_set.discard(key)
                yield Op(DELETE, key)

    def take(self, count: int) -> list[Op]:
        return list(self.ops(count))

    @property
    def live_keys(self) -> int:
        return len(self._live)


@dataclass(frozen=True)
class ReplayReport:
    """Per-kind I/O summaries from one trace replay."""

    total_ops: int
    total_ios: int
    per_kind: dict[str, Summary]
    errors: int

    @property
    def amortized(self) -> float:
        return self.total_ios / self.total_ops if self.total_ops else 0.0

    def rows(self) -> list[dict[str, float | int | str]]:
        names = {
            INSERT: "insert",
            LOOKUP_HIT: "lookup-hit",
            LOOKUP_MISS: "lookup-miss",
            DELETE: "delete",
        }
        out: list[dict[str, float | int | str]] = []
        for kind, summ in self.per_kind.items():
            if summ.count == 0:
                continue
            out.append(
                {
                    "op": names[kind],
                    "count": summ.count,
                    "mean I/Os": round(summ.mean, 4),
                    "p99 I/Os": summ.p99,
                }
            )
        return out


def replay(
    table: ExternalDictionary, trace: Iterable[Op], *, strict: bool = True
) -> ReplayReport:
    """Drive ``table`` with ``trace``, measuring each op's I/O delta.

    With ``strict`` the replay asserts semantic correctness: hit-lookups
    must hit, miss-lookups must miss, deletes must remove (tables
    without delete support raise ``NotImplementedError`` — filter the
    trace first or set ``strict=False`` to count the failure and skip).
    """
    ctx = table.ctx
    costs: dict[str, list[int]] = {k: [] for k in _KINDS}
    errors = 0
    total = 0
    before_all = ctx.stats.snapshot()
    for op in trace:
        total += 1
        before = ctx.stats.snapshot()
        try:
            if op.kind == INSERT:
                table.insert(op.key)
            elif op.kind == LOOKUP_HIT:
                found = table.lookup(op.key)
                if strict and not found:
                    raise AssertionError(f"expected hit on {op.key}")
            elif op.kind == LOOKUP_MISS:
                found = table.lookup(op.key)
                if strict and found:
                    raise AssertionError(f"expected miss on {op.key}")
            else:
                removed = table.delete(op.key)
                if strict and not removed:
                    raise AssertionError(f"expected delete of {op.key}")
        except (NotImplementedError, AssertionError):
            if strict:
                raise
            errors += 1
            continue
        costs[op.kind].append(ctx.stats.delta_since(before).total)
    return ReplayReport(
        total_ops=total,
        total_ios=ctx.stats.delta_since(before_all).total,
        per_kind={k: summarize(v) for k, v in costs.items()},
        errors=errors,
    )


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------

def save_trace(trace: Iterable[Op], path: str | Path) -> int:
    """Write a trace as ``<kind> <key>`` lines; returns ops written."""
    path = Path(path)
    count = 0
    with path.open("w") as fh:
        for op in trace:
            fh.write(f"{op.kind} {op.key}\n")
            count += 1
    return count


def load_trace(path: str | Path) -> list[Op]:
    """Read a trace written by :func:`save_trace`."""
    out: list[Op] = []
    with Path(path).open() as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{line_no}: malformed trace line {line!r}")
            out.append(Op(parts[0], int(parts[1])))
    return out


def uniform_mixed_trace(
    u: int, count: int, *, seed: int = 0, mix=(0.5, 0.4, 0.05, 0.05)
) -> list[Op]:
    """Convenience: a mixed trace over uniform keys."""
    wl = MixedWorkload(UniformKeys(u, seed), mix=mix, seed=seed + 1)
    return wl.take(count)
