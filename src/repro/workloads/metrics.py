"""Summary statistics and cost histories for measurement runs.

Everything the drivers report is an I/O *count* per operation, so the
statistics here are over small non-negative numbers; we keep exact
sums (Welford for variance) and raw samples where percentiles matter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class RunningStats:
    """Streaming mean/variance (Welford) with min/max tracking."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def add_many(self, xs) -> None:
        for x in xs:
            self.add(float(x))

    @property
    def variance(self) -> float:
        """Sample variance (n−1 denominator); 0 for fewer than 2 samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two disjoint streams (Chan's parallel update)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta**2 * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample of per-op I/O costs."""

    count: int
    mean: float
    std: float
    min: float
    p50: float
    p95: float
    p99: float
    max: float

    def row(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "std": round(self.std, 6),
            "min": self.min,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


def summarize(samples) -> Summary:
    """Summary statistics of an iterable of numbers."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        max=float(arr.max()),
    )


@dataclass
class CostHistory:
    """Amortized-cost trajectory over an insertion run.

    Each checkpoint records the cumulative I/O total after ``inserted``
    items, so the amortized cost between consecutive checkpoints (and
    overall) can be recovered exactly.
    """

    checkpoints: list[tuple[int, int]] = field(default_factory=list)

    def record(self, inserted: int, io_total: int) -> None:
        if self.checkpoints and inserted < self.checkpoints[-1][0]:
            raise ValueError("checkpoints must be recorded in insertion order")
        self.checkpoints.append((inserted, io_total))

    def amortized(self) -> float:
        """Overall amortized I/Os per insertion."""
        if not self.checkpoints:
            return 0.0
        n, total = self.checkpoints[-1]
        return total / n if n else 0.0

    def windowed(self) -> list[tuple[int, float]]:
        """Per-window amortized cost: ``(end_n, window_cost)`` pairs."""
        out: list[tuple[int, float]] = []
        prev_n, prev_io = 0, 0
        for n, io in self.checkpoints:
            dn = n - prev_n
            if dn > 0:
                out.append((n, (io - prev_io) / dn))
            prev_n, prev_io = n, io
        return out

    def rows(self) -> list[dict[str, float | int]]:
        return [
            {"inserted": n, "amortized_window": round(c, 6)}
            for n, c in self.windowed()
        ]
