"""Workload generation and measurement drivers.

* :mod:`repro.workloads.generators` — seeded key streams (uniform,
  Zipf, sequential, clustered, hash-adversarial) over ``U = [0, u)``.
* :mod:`repro.workloads.drivers` — harnesses that insert a stream into
  a table and measure amortized insertion cost and expected average
  successful-query cost, producing Figure 1 "measured" points.
* :mod:`repro.workloads.metrics` — summary statistics and run history.
* :mod:`repro.workloads.trace` — interleaved op traces: mixed-workload
  generation, strict replay with per-op-kind costs, save/load.

The drivers run on the tables' batch APIs (``insert_batch`` /
``lookup_batch``), which charge I/Os bit-identically to the scalar
loops — see ``README.md`` in this directory for the contract.
"""

from .generators import (
    AdversarialBucketKeys,
    ClusteredKeys,
    KeyGenerator,
    SequentialKeys,
    UniformKeys,
    ZipfKeys,
    make_generator,
)
from .drivers import (
    InsertQueryMeasurement,
    measure_insert_cost,
    measure_query_cost,
    measure_table,
    measure_tradeoff_point,
    trace_insert_history,
)
from .metrics import CostHistory, RunningStats, Summary, summarize
from .trace import (
    MixedWorkload,
    Op,
    ReplayReport,
    load_trace,
    replay,
    save_trace,
    uniform_mixed_trace,
)

__all__ = [
    "AdversarialBucketKeys",
    "ClusteredKeys",
    "KeyGenerator",
    "SequentialKeys",
    "UniformKeys",
    "ZipfKeys",
    "make_generator",
    "InsertQueryMeasurement",
    "measure_insert_cost",
    "measure_query_cost",
    "measure_table",
    "measure_tradeoff_point",
    "trace_insert_history",
    "CostHistory",
    "MixedWorkload",
    "Op",
    "ReplayReport",
    "load_trace",
    "replay",
    "save_trace",
    "uniform_mixed_trace",
    "RunningStats",
    "Summary",
    "summarize",
]
