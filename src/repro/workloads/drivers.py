"""Measurement drivers: turn a table + key stream into (t_u, t_q) points.

The paper's two quantities are

* ``t_u`` — expected **amortized** insertion cost: total I/Os of an
  insertion run divided by the number of insertions;
* ``t_q`` — expected **average** successful-lookup cost: the mean I/O
  count of looking up a uniformly chosen *stored* item.

``measure_table`` computes both for any :class:`ExternalDictionary`
factory and is the engine behind the Figure 1 "measured" points; the
finer-grained helpers expose insertion-cost trajectories and query-cost
distributions for the per-theorem benchmarks.

Queries are measured **non-destructively**: lookups charge I/Os to the
shared context, so the driver snapshots the counter around the query
phase and excludes it from the insertion figure.

All drivers ride the tables' **batch APIs**
(:meth:`~repro.tables.base.ExternalDictionary.insert_batch` /
:meth:`~repro.tables.base.ExternalDictionary.lookup_batch`), whose
contract guarantees I/O counts bit-identical to the scalar loops — the
measured ``(t_u, t_q)`` numbers are unchanged, only the wall-clock to
produce them drops (see ``benchmarks/bench_throughput.py``).

Storage backends and shard counts ride along orthogonally: the context
factory picks the backend (``make_context(backend="arena")``), and
every driver accepts ``shards`` to wrap the table factory in a
:class:`~repro.tables.sharded.ShardedDictionary` router — see
``src/repro/workloads/README.md`` for the backend/shard contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..em.storage import EMContext
from ..tables.base import ExternalDictionary
from ..tables.sharded import make_sharded
from .generators import KeyGenerator, UniformKeys
from .metrics import CostHistory, Summary, summarize

#: A factory gets a fresh context and returns the table under test.
TableFactory = Callable[[EMContext], ExternalDictionary]
#: A context factory builds one experiment's EMContext.
ContextFactory = Callable[[], EMContext]


def resolve_factory(table_factory: TableFactory, shards: int) -> TableFactory:
    """Apply the drivers' ``shards`` axis: wrap in a router when N > 1."""
    if shards == 1:
        return table_factory
    return make_sharded(table_factory, shards)


@dataclass(frozen=True)
class InsertQueryMeasurement:
    """The measured (t_u, t_q) pair plus supporting detail."""

    n: int
    insert_ios: int
    amortized_insert: float
    query_summary: Summary
    load_factor: float
    memory_high_water: int

    @property
    def t_u(self) -> float:
        return self.amortized_insert

    @property
    def t_q(self) -> float:
        return self.query_summary.mean

    def row(self) -> dict[str, float | int]:
        return {
            "n": self.n,
            "t_u": round(self.amortized_insert, 6),
            "t_q": round(self.query_summary.mean, 6),
            "t_q_p99": self.query_summary.p99,
            "load": round(self.load_factor, 4),
            "mem_hw": self.memory_high_water,
        }


def measure_insert_cost(
    table: ExternalDictionary, keys: Sequence[int]
) -> tuple[int, float]:
    """Insert ``keys``; return (total I/Os, amortized I/Os per key)."""
    ctx = table.ctx
    before = ctx.stats.snapshot()
    table.insert_batch(keys)
    total = ctx.stats.delta_since(before).total
    return total, total / len(keys) if len(keys) else 0.0


def measure_query_cost(
    table: ExternalDictionary,
    stored_keys: Sequence[int],
    *,
    sample_size: int | None = None,
    seed: int = 0,
    require_hits: bool = True,
) -> Summary:
    """Per-query I/O costs of successful lookups of stored keys.

    Samples ``sample_size`` keys uniformly (with replacement — the
    paper's "average over a uniformly chosen stored item") and measures
    the I/O delta of each lookup individually.
    """
    if not len(stored_keys):
        return summarize([])
    rng = np.random.default_rng(seed)
    if sample_size is None:
        sample_size = min(len(stored_keys), 2000)
    idx = rng.integers(0, len(stored_keys), size=sample_size)
    sample = [stored_keys[int(i)] for i in idx]
    costs: list[int] = []
    found = table.lookup_batch(sample, cost_out=costs)
    if require_hits and not bool(found.all()):
        key = sample[int(np.argmin(found))]
        raise AssertionError(
            f"{table.name} lost key {key}: successful-lookup measurement "
            "requires every sampled key to be found"
        )
    return summarize(costs)


def measure_table(
    context_factory: ContextFactory,
    table_factory: TableFactory,
    n: int,
    *,
    generator: KeyGenerator | None = None,
    seed: int = 0,
    query_sample: int | None = None,
    shards: int = 1,
) -> InsertQueryMeasurement:
    """End-to-end measurement: build, insert ``n`` uniform keys, query.

    A fresh context comes from ``context_factory`` so runs are
    independent (pass ``make_context(backend=...)`` there to choose the
    storage backend); the query phase's I/Os are excluded from ``t_u``.
    ``shards > 1`` routes the table through a
    :class:`~repro.tables.sharded.ShardedDictionary`; the load factor
    and memory peak are then aggregated over the shard disks/budgets
    via the table's own accessors.
    """
    ctx = context_factory()
    table = resolve_factory(table_factory, shards)(ctx)
    gen = generator if generator is not None else UniformKeys(ctx.u, seed)
    keys = gen.take(n)
    insert_ios, amortized = measure_insert_cost(table, keys)
    qsummary = measure_query_cost(
        table, keys, sample_size=query_sample, seed=seed + 1
    )
    used = table.nonempty_disk_blocks()
    load = math.ceil(n / ctx.b) / used if used else 0.0
    return InsertQueryMeasurement(
        n=n,
        insert_ios=insert_ios,
        amortized_insert=amortized,
        query_summary=qsummary,
        load_factor=load,
        memory_high_water=table.memory_high_water(),
    )


def measure_tradeoff_point(
    context_factory: ContextFactory,
    table_factory: TableFactory,
    n: int,
    *,
    c: float,
    label: str,
    seed: int = 0,
) -> tuple[float, float, float, str]:
    """A Figure 1 measured point: ``(c, t_q, t_u, label)``."""
    m = measure_table(context_factory, table_factory, n, seed=seed)
    return (c, m.t_q, m.t_u, label)


def trace_insert_history(
    context_factory: ContextFactory,
    table_factory: TableFactory,
    n: int,
    *,
    checkpoints: int = 16,
    generator: KeyGenerator | None = None,
    seed: int = 0,
    shards: int = 1,
) -> CostHistory:
    """Amortized-insert trajectory at geometric checkpoints up to ``n``.

    Useful for seeing the logarithmic method's merge cascades and the
    buffered table's round boundaries as cost spikes.
    """
    ctx = context_factory()
    table = resolve_factory(table_factory, shards)(ctx)
    gen = generator if generator is not None else UniformKeys(ctx.u, seed)
    history = CostHistory()
    marks = sorted(
        {max(1, int(n * (i + 1) / checkpoints)) for i in range(checkpoints)}
    )
    done = 0
    for mark in marks:
        table.insert_batch(gen.take(mark - done))
        done = mark
        history.record(done, ctx.stats.total)
    return history


def compare_tables(
    context_factory: ContextFactory,
    factories: dict[str, TableFactory],
    n: int,
    *,
    seed: int = 0,
    shards: int = 1,
) -> list[dict[str, float | int | str]]:
    """Measure several tables on the same workload size; one row each.

    Each table is driven through :func:`measure_table`, i.e. the batch
    insert/lookup paths — rows are I/O-identical to the scalar drivers.
    ``shards > 1`` routes every factory through the sharded router.
    """
    rows: list[dict[str, float | int | str]] = []
    for name, factory in factories.items():
        m = measure_table(context_factory, factory, n, seed=seed, shards=shards)
        row: dict[str, float | int | str] = {"table": name}
        row.update(m.row())
        rows.append(row)
    return rows
