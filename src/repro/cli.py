"""Command-line interface: ``python -m repro <command>``.

Gives quick terminal access to the headline artifacts without writing
code:

* ``figure1``   — print the ASCII tradeoff plane with measured points.
* ``knuth``     — print the analytic Knuth §6.4 reference grid.
* ``baselines`` — run the one-workload structure comparison.
* ``audit``     — zone-decompose and certify the built-in tables.
* ``trace``     — replay a mixed workload against a chosen table.
* ``serve``     — drive the dictionary service over a mixed request
  stream: closed-loop by default, or open-loop (``--arrival poisson |
  diurnal | bursty`` + ``--rate``) with a bounded admission queue
  (``--queue-depth``), per-op deadlines (``--deadline``) and a shedding
  policy (``--shed-policy``); optionally journaled (``--journal``) and
  checkpointed (``--snapshot``).
* ``recover``   — rebuild a crashed ``serve`` run from its snapshot +
  journal and report what was replayed.
* ``trace-summary`` — per-epoch table + slowest shard batches from a
  ``serve --trace`` span-trace file (``--torn-ok`` accepts the valid
  prefix of a crash-truncated trace).
* ``slo``       — sweep open-loop offered load across the capacity knee
  and report goodput, queueing-inclusive p99, and the max sustainable
  rate under a p99 SLO.

Every command accepts ``--b``, ``--m``, ``--n`` to change the model
geometry, plus the system axes ``--backend`` (storage backend behind
the disk: ``mapping``, ``arena``, or the memmap-persistent
``durable-arena``; I/O counts are backend-invariant), ``--shards``
(fan the dictionary out over N independent shards) and
``--cache-blocks`` (per-shard buffer pool: hits are served uncharged,
results stay bit-identical), and prints plain aligned tables (no
plotting dependencies).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .analysis.knuth import knuth_table
from .analysis.tradeoff_curves import format_rows, render_figure1
from .baselines.btree import BTree
from .baselines.lsm import LSMTree
from .core.buffered import BufferedHashTable
from .core.config import (
    ARRIVAL_KINDS,
    KEY_DISTS,
    OVERLOAD_POLICIES,
    BufferedParams,
    ObsConfig,
    StorageConfig,
    TrafficConfig,
)
from .em.errors import ConfigurationError
from .core.jensen_pagh import JensenPaghTable
from .core.logmethod import LogMethodHashTable
from .core.tradeoff import figure1_curves
from .em import BACKENDS, make_context
from .hashing.family import MULTIPLY_SHIFT
from .tables.chaining import ChainedHashTable
from .tables.sharded import _ROUTER_SEED, make_sharded
from .workloads.drivers import measure_table
from .workloads.generators import UniformKeys, make_generator
from .workloads.trace import MixedWorkload, replay


def _add_geometry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--b", type=int, default=64, help="words per block")
    parser.add_argument("--m", type=int, default=512, help="words of memory")
    parser.add_argument("--n", type=int, default=6000, help="keys to insert")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="mapping",
        help="storage backend behind the disk (never changes I/O counts)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard the dictionary over N independent routers (1 = off)",
    )
    parser.add_argument(
        "--cache-blocks",
        type=int,
        default=0,
        help="per-shard buffer-pool capacity in blocks (0 = uncached; "
        "hits are uncharged, results stay bit-identical)",
    )


def _storage(args) -> StorageConfig:
    """Validate and bundle the system axes of a CLI invocation."""
    return StorageConfig(
        backend=args.backend,
        shards=args.shards,
        cache_blocks=args.cache_blocks,
    )


def _add_traffic(parser: argparse.ArgumentParser) -> None:
    """The load-model axes of `serve` (closed-loop by default)."""
    parser.add_argument(
        "--arrival",
        choices=list(ARRIVAL_KINDS),
        default="closed",
        help="load model: closed-loop client, or an open-loop arrival process",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="mean offered load in ops/sec (open-loop arrivals only)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="bound the admission queue (open-loop; default unbounded)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-op queueing deadline in virtual seconds (open-loop)",
    )
    parser.add_argument(
        "--shed-policy",
        choices=list(OVERLOAD_POLICIES),
        default="reject",
        help="overload policy once the queue passes its high-water mark",
    )


def _table_factories(args) -> dict[str, Callable]:
    storage = _storage(args)
    factories = _base_factories(args)
    if storage.shards == 1:
        return factories
    return {
        name: make_sharded(factory, storage.shards)
        for name, factory in factories.items()
    }


def _base_factories(args) -> dict[str, Callable]:
    return {
        "chaining": lambda c: ChainedHashTable(
            c,
            MULTIPLY_SHIFT.sample(c.u, args.seed),
            buckets=max(16, 2 * args.n // args.b),
            max_load=None,
        ),
        "buffered": lambda c: BufferedHashTable(
            c,
            MULTIPLY_SHIFT.sample(c.u, args.seed),
            params=BufferedParams.for_query_exponent(args.b, 0.5),
        ),
        "logmethod": lambda c: LogMethodHashTable(
            c, MULTIPLY_SHIFT.sample(c.u, args.seed)
        ),
        "jensen-pagh": lambda c: JensenPaghTable(
            c, MULTIPLY_SHIFT.sample(c.u, args.seed)
        ),
        "lsm": lambda c: LSMTree(c, gamma=4, memtable_items=max(32, args.m // 8)),
        "btree": lambda c: BTree(c),
    }


def cmd_figure1(args) -> int:
    storage = _storage(args)

    def ctx_factory():
        return make_context(
            b=args.b, m=args.m, u=2**40, backend=storage.backend,
            cache_blocks=storage.cache_blocks,
        )

    curves = figure1_curves(args.b, args.n, args.m)
    factories = _table_factories(args)
    std = measure_table(ctx_factory, factories["chaining"], args.n, seed=args.seed)
    curves.add_measured(2.0, std.t_q, std.t_u, "standard chaining")
    for c in (0.25, 0.5, 0.75):
        factory = lambda ctx, c=c: BufferedHashTable(
            ctx,
            MULTIPLY_SHIFT.sample(ctx.u, args.seed),
            params=BufferedParams.for_query_exponent(args.b, c),
        )
        # Same sharding mechanism as _table_factories: pre-wrap the
        # factory, never pass shards= on top of a wrapped one.
        if storage.shards > 1:
            factory = make_sharded(factory, storage.shards)
        m = measure_table(ctx_factory, factory, args.n, seed=args.seed)
        curves.add_measured(c, m.t_q, m.t_u, f"buffered c={c}")
    print(render_figure1(curves))
    return 0


def cmd_knuth(args) -> int:
    rows = [
        {
            "b": r.b,
            "alpha": r.alpha,
            "t_q_success": round(r.successful, 6),
            "t_q_fail": round(r.unsuccessful, 6),
            "overflow": f"{r.overflow:.2e}",
        }
        for r in knuth_table()
    ]
    print(format_rows(rows))
    return 0


def cmd_baselines(args) -> int:
    storage = _storage(args)

    def ctx_factory():
        return make_context(
            b=args.b, m=args.m, u=2**40, backend=storage.backend,
            cache_blocks=storage.cache_blocks,
        )

    rows = []
    for name, factory in _table_factories(args).items():
        m = measure_table(ctx_factory, factory, args.n, seed=args.seed)
        rows.append({"table": name, "t_u": round(m.t_u, 4), "t_q": round(m.t_q, 4)})
    print(format_rows(rows))
    return 0


def cmd_audit(args) -> int:
    from .lowerbound.zones import decompose

    storage = _storage(args)
    rows = []
    for name, factory in _table_factories(args).items():
        ctx = make_context(
            b=args.b, m=args.m, u=2**40, backend=storage.backend,
            cache_blocks=storage.cache_blocks,
        )
        table = factory(ctx)
        table.insert_many(UniformKeys(ctx.u, args.seed).take(args.n))
        z = decompose(table.layout_snapshot())
        rows.append(
            {
                "table": name,
                "memory": len(z.memory),
                "fast": len(z.fast),
                "slow": len(z.slow),
                "query_floor": round(z.query_cost_lower_bound(), 4),
            }
        )
    print(format_rows(rows))
    return 0


def cmd_trace(args) -> int:
    factories = _table_factories(args)
    if args.table not in factories:
        print(f"unknown table {args.table!r}; choose from {sorted(factories)}")
        return 2
    storage = _storage(args)
    ctx = make_context(
        b=args.b, m=args.m, u=2**40, backend=storage.backend,
        cache_blocks=storage.cache_blocks,
    )
    table = factories[args.table](ctx)
    wl = MixedWorkload(
        UniformKeys(ctx.u, args.seed),
        mix=tuple(args.mix),
        seed=args.seed + 1,
    )
    report = replay(table, wl.ops(args.n), strict=False)
    print(format_rows(report.rows()))
    print(f"\ntotal: {report.total_ops} ops, {report.total_ios} I/Os "
          f"({report.amortized:.4f}/op), {report.errors} unsupported ops skipped")
    return 0


def _make_keygen(args, u: int):
    """Build the ``serve`` key stream for ``--key-dist``.

    The adversarial stream attacks the service's own slot router (the
    fixed-seed hash every service instance shares), concentrating all
    keys on the buckets that map to shard 0 under static routing —
    the worst case the rebalancer exists to absorb.
    """
    if args.key_dist == "zipf":
        return make_generator("zipf", u, args.seed, theta=args.zipf_theta)
    if args.key_dist == "adversarial":
        router = MULTIPLY_SHIFT.sample(u, seed=_ROUTER_SEED)
        return make_generator(
            "adversarial", u, args.seed,
            hash_fn=router, buckets=max(args.shards, 2), hot=1,
        )
    return make_generator(args.key_dist, u, args.seed)


def _traffic(args) -> TrafficConfig:
    return TrafficConfig(
        arrival=args.arrival,
        rate=args.rate,
        queue_depth=args.queue_depth,
        deadline_s=args.deadline,
        shed_policy=args.shed_policy,
    )


def _obs(args) -> ObsConfig | None:
    """Observability config from ``serve``'s flags (None = untraced)."""
    if not args.trace and not args.metrics_every:
        return None
    return ObsConfig(trace_path=args.trace, metrics_every=args.metrics_every)


def _validate_serve(args) -> str | None:
    """Reject malformed service inputs with a message, not a traceback."""
    mix_sum = sum(args.mix)
    if any(w < 0 for w in args.mix):
        return f"--mix weights must be non-negative, got {args.mix}"
    if abs(mix_sum - 1.0) > 1e-6:
        return f"--mix must sum to 1.0, got {args.mix} (sum {mix_sum:.6g})"
    if args.epoch_ops <= 0:
        return f"--epoch-ops must be positive, got {args.epoch_ops}"
    if args.window <= 0:
        return f"--window must be positive, got {args.window}"
    if args.key_dist == "zipf" and not args.zipf_theta > 1.0:
        return f"--zipf-theta must exceed 1.0, got {args.zipf_theta}"
    if args.slots is not None and (
        args.slots <= 0 or args.slots % args.shards != 0
    ):
        return (
            f"--slots must be a positive multiple of --shards "
            f"(got slots={args.slots}, shards={args.shards})"
        )
    try:
        _traffic(args)
        _obs(args)
    except ConfigurationError as exc:
        return str(exc)
    return None


def cmd_serve(args) -> int:
    from .service import (
        AdmissionController,
        ClosedLoopClient,
        DictionaryService,
        EpochJournal,
        OpenLoopClient,
        make_arrivals,
    )
    from .workloads.trace import BulkMixedWorkload

    error = _validate_serve(args)
    if error is not None:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    traffic = _traffic(args)
    factories = _base_factories(args)
    if args.table not in factories:
        print(f"unknown table {args.table!r}; choose from {sorted(factories)}")
        return 2
    storage = _storage(args)
    ctx = make_context(
        b=args.b, m=args.m, u=2**40, backend=storage.backend,
        cache_blocks=storage.cache_blocks,
    )
    wl = BulkMixedWorkload(
        _make_keygen(args, ctx.u),
        mix=tuple(args.mix),
        seed=args.seed + 1,
        chunk=args.window,  # chunk-aligned windows maximise epoch sizes
    )
    kinds, keys = wl.take_arrays(args.n)
    journal = EpochJournal(args.journal) if args.journal else None
    with DictionaryService(
        ctx,
        factories[args.table],
        shards=args.shards,
        executor=args.executor,
        epoch_ops=args.epoch_ops,
        journal=journal,
        slots=args.slots,
        rebalance=args.rebalance or None,
        obs=_obs(args),
    ) as svc:
        if args.metrics_every:
            def _dump(epoch: int, registry) -> None:
                print(f"-- metrics @ epoch {epoch} --")
                print(registry.render(), end="")

            svc.metrics_listener = _dump
        if args.snapshot:
            # The t=0 checkpoint: `repro recover` rebuilds the final
            # state from it plus the journal's committed epochs.
            svc.snapshot(args.snapshot)
        if traffic.open_loop:
            client = OpenLoopClient(
                svc,
                make_arrivals(traffic.arrival, traffic.rate, seed=args.seed + 2),
                controller=AdmissionController(
                    queue_depth=traffic.queue_depth,
                    policy=traffic.shed_policy,
                    deadline_s=traffic.deadline_s,
                ),
            )
            report = client.drive(kinds, keys)
        else:
            report = ClosedLoopClient(svc, window=args.window).drive(kinds, keys)
        print(format_rows([dict(report.row(), arrival=traffic.arrival,
                                executor=args.executor, shards=args.shards,
                                backend=args.backend,
                                key_dist=args.key_dist)]))
        if svc.rebalancer is not None:
            print(f"\nrebalance: {svc.migrations_applied} migrations, "
                  f"{svc.migrated_slots} slots / {svc.keys_moved} keys moved, "
                  f"{svc.migration_io} I/Os charged")
        io = svc.io_snapshot()
        print(f"\ncluster I/O: {io.reads + io.writes} "
              f"(reads={io.reads} writes={io.writes} combined={io.combined}), "
              f"memory peak {svc.memory_high_water()} words over "
              f"{svc.shards} shard machines")
        if storage.cache_blocks:
            cache = svc.cache_snapshot()
            print(f"cluster cache: hits={cache.hits} misses={cache.misses} "
                  f"negative_hits={cache.negative_hits} "
                  f"hit_rate={cache.hit_rate:.3f} "
                  f"({storage.cache_blocks} blocks/shard)")
        if journal is not None:
            print(f"journal: {journal.committed_epochs} epochs committed, "
                  f"{journal.bytes_written} bytes -> {args.journal}")
            journal.close()
        if args.trace:
            print(f"trace: {svc.recorder.seq} records -> {args.trace}")
        if args.metrics_every:
            print(f"-- metrics @ end ({svc.epochs_run} epochs) --")
            print(svc.metrics().render(), end="")
    return 0


def cmd_trace_summary(args) -> int:
    from .obs import charged_io, scan_trace, slowest_shard_batches, summarize_epochs

    if args.top <= 0:
        print(f"trace-summary: --top must be positive, got {args.top}",
              file=sys.stderr)
        return 2
    try:
        scan = scan_trace(args.trace)
    except OSError as exc:
        print(f"trace-summary: {exc}", file=sys.stderr)
        return 2
    if not scan.records:
        print(f"trace-summary: {args.trace}: no valid trace records",
              file=sys.stderr)
        return 2
    if scan.truncated and not args.torn_ok:
        print(
            f"trace-summary: {args.trace}: torn/corrupt record after line "
            f"{scan.valid_lines} of {scan.total_lines} "
            f"(use --torn-ok to summarise the valid prefix)",
            file=sys.stderr,
        )
        return 2
    records = scan.records
    if scan.truncated:
        print(
            f"trace-summary: warning: summarising {scan.valid_lines} valid "
            f"records (torn tail after line {scan.valid_lines})",
            file=sys.stderr,
        )
    epochs = summarize_epochs(records)
    if not epochs:
        print(f"trace-summary: {args.trace}: trace contains no epoch spans",
              file=sys.stderr)
        return 2
    print(format_rows(epochs))
    slow = slowest_shard_batches(records, top=args.top)
    if slow:
        print(f"\nslowest {len(slow)} shard batches:")
        print(format_rows(slow))
    total_ops = sum(r["ops"] for r in epochs)
    events = sum(
        1 for r in records if r.get("t") in ("fsync", "rebalance", "breaker",
                                             "admission", "cache_evict")
    )
    print(
        f"\n{len(epochs)} epochs, {total_ops} ops, "
        f"{charged_io(records)} charged I/Os attributed "
        f"({events} point events, {len(records)} records)"
    )
    return 0


def _validate_slo(args) -> str | None:
    mix_sum = sum(args.mix)
    if any(w < 0 for w in args.mix):
        return f"--mix weights must be non-negative, got {args.mix}"
    if abs(mix_sum - 1.0) > 1e-6:
        return f"--mix must sum to 1.0, got {args.mix} (sum {mix_sum:.6g})"
    if args.epoch_ops <= 0:
        return f"--epoch-ops must be positive, got {args.epoch_ops}"
    if not args.loads or any(not f > 0 for f in args.loads):
        return f"--loads factors must be positive, got {args.loads}"
    if args.queue_depth is not None and args.queue_depth <= 0:
        return f"--queue-depth must be positive, got {args.queue_depth}"
    if args.deadline is not None and not args.deadline > 0:
        return f"--deadline must be positive, got {args.deadline}"
    if not args.slo_ms > 0:
        return f"--slo-ms must be positive, got {args.slo_ms}"
    if args.shed_policy not in OVERLOAD_POLICIES:
        return f"--shed-policy must be one of {OVERLOAD_POLICIES}"
    return None


def cmd_slo(args) -> int:
    """Latency-vs-offered-load sweep across the capacity knee."""
    from .service import (
        AdmissionController,
        ClosedLoopClient,
        DictionaryService,
        OpenLoopClient,
        make_arrivals,
    )
    from .workloads.trace import BulkMixedWorkload

    error = _validate_slo(args)
    if error is not None:
        print(f"slo: {error}", file=sys.stderr)
        return 2
    factories = _base_factories(args)
    if args.table not in factories:
        print(f"unknown table {args.table!r}; choose from {sorted(factories)}")
        return 2
    storage = _storage(args)

    def make_service():
        ctx = make_context(
            b=args.b, m=args.m, u=2**40, backend=storage.backend,
            cache_blocks=storage.cache_blocks,
        )
        return DictionaryService(
            ctx, factories[args.table], shards=args.shards,
            epoch_ops=args.epoch_ops,
        )

    wl = BulkMixedWorkload(
        UniformKeys(2**40, args.seed),
        mix=tuple(args.mix),
        seed=args.seed + 1,
        chunk=args.epoch_ops,
    )
    kinds, keys = wl.take_arrays(args.n)

    # Calibrate: the closed-loop run measures capacity; its rate becomes
    # the sweep's deterministic service model and the x-axis unit.
    with make_service() as svc:
        base = ClosedLoopClient(svc, window=args.epoch_ops).drive(kinds, keys)
    service_rate = base.ops / base.seconds if base.seconds else 1.0

    rows = []
    sustainable = 0.0
    for factor in args.loads:
        with make_service() as svc:
            client = OpenLoopClient(
                svc,
                make_arrivals(
                    args.arrival, factor * service_rate, seed=args.seed + 2
                ),
                controller=AdmissionController(
                    queue_depth=args.queue_depth,
                    policy=args.shed_policy,
                    deadline_s=args.deadline,
                ),
                service_rate=service_rate,
            )
            rep = client.drive(kinds, keys)
        ok = rep.p99_ms <= args.slo_ms
        if ok:
            sustainable = max(sustainable, rep.goodput_kops)
        rows.append(dict({"load_x": factor}, **rep.row(), slo_ok=ok))
    print(format_rows(rows))
    print(f"\nclosed-loop capacity: {base.kops:.1f} kops; "
          f"max sustainable goodput at p99 <= {args.slo_ms:g} ms: "
          f"{sustainable:.1f} kops")
    return 0


def cmd_recover(args) -> int:
    from .service import recover

    try:
        rep = recover(args.snapshot, args.journal, executor=args.executor,
                      resume_journal=False)
    except FileNotFoundError as exc:
        print(f"recover: {exc}", file=sys.stderr)
        return 2
    svc = rep.service
    io = svc.io_snapshot()
    print(format_rows([{
        "replayed_epochs": rep.replayed_epochs,
        "replayed_ops": rep.replayed_ops,
        "discarded_ops": rep.discarded_ops,
        "committed_through": rep.committed_through,
        "keys": len(svc),
    }]))
    print(f"\ncluster I/O: {io.reads + io.writes} "
          f"(reads={io.reads} writes={io.writes} combined={io.combined}), "
          f"memory peak {svc.memory_high_water()} words over "
          f"{svc.shards} shard machines")
    svc.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic External Hashing: The Limit of Buffering — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure1", help="ASCII Figure 1 with measured points")
    _add_geometry(p)
    p.set_defaults(func=cmd_figure1)

    p = sub.add_parser("knuth", help="Knuth §6.4 analytic reference grid")
    _add_geometry(p)
    p.set_defaults(func=cmd_knuth)

    p = sub.add_parser("baselines", help="one-workload structure comparison")
    _add_geometry(p)
    p.set_defaults(func=cmd_baselines)

    p = sub.add_parser("audit", help="zone decomposition of the built-in tables")
    _add_geometry(p)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("trace", help="replay a mixed workload")
    _add_geometry(p)
    p.add_argument("--table", default="buffered")
    p.add_argument(
        "--mix",
        type=float,
        nargs=4,
        default=[0.5, 0.4, 0.05, 0.05],
        metavar=("INS", "HIT", "MISS", "DEL"),
        help="op-mix weights (insert, hit-lookup, miss-lookup, delete)",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "serve", help="closed-loop mixed-op run through the dictionary service"
    )
    _add_geometry(p)
    p.add_argument("--table", default="buffered")
    p.add_argument(
        "--mix",
        type=float,
        nargs=4,
        default=[0.25, 0.60, 0.10, 0.05],
        metavar=("INS", "HIT", "MISS", "DEL"),
        help="op-mix weights (insert, hit-lookup, miss-lookup, delete)",
    )
    p.add_argument(
        "--executor",
        choices=["serial", "threads"],
        default="serial",
        help="shard executor (accounting is executor-invariant)",
    )
    p.add_argument("--epoch-ops", type=int, default=8192,
                   help="max ops coalesced into one epoch")
    p.add_argument("--window", type=int, default=8192,
                   help="closed-loop client window (requests per round trip)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="epoch write-ahead journal file (enables durability)")
    p.add_argument("--snapshot", default=None, metavar="PATH",
                   help="write a t=0 service checkpoint before driving")
    p.add_argument(
        "--key-dist",
        choices=list(KEY_DISTS),
        default="uniform",
        help="key distribution of the request stream (adversarial targets "
        "the service's own shard router)",
    )
    p.add_argument("--zipf-theta", type=float, default=1.2, metavar="θ",
                   help="Zipf exponent for --key-dist zipf (must exceed 1)")
    p.add_argument(
        "--rebalance",
        action="store_true",
        help="enable skew-adaptive slot rebalancing between epochs",
    )
    p.add_argument(
        "--slots",
        type=int,
        default=None,
        metavar="S",
        help="slot-directory size (multiple of --shards; default 64/shard)",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a crc-framed JSONL span trace (crash-surviving; "
        "summarise with `repro trace-summary`)",
    )
    p.add_argument(
        "--metrics-every",
        type=int,
        default=0,
        metavar="K",
        help="print a Prometheus-style metrics dump every K epochs "
        "(plus one at end; 0 = off)",
    )
    _add_traffic(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "trace-summary",
        help="per-epoch table + slowest shard batches from a --trace file",
    )
    p.add_argument("trace", metavar="FILE",
                   help="crc-framed JSONL trace written by `serve --trace`")
    p.add_argument("--top", type=int, default=5,
                   help="how many slowest shard batches to show")
    p.add_argument(
        "--torn-ok",
        action="store_true",
        help="accept a crash-truncated trace and summarise its valid prefix",
    )
    p.set_defaults(func=cmd_trace_summary)

    p = sub.add_parser(
        "slo", help="open-loop offered-load sweep against a p99 SLO"
    )
    _add_geometry(p)
    p.add_argument("--table", default="buffered")
    p.add_argument(
        "--mix",
        type=float,
        nargs=4,
        default=[0.25, 0.60, 0.10, 0.05],
        metavar=("INS", "HIT", "MISS", "DEL"),
        help="op-mix weights (insert, hit-lookup, miss-lookup, delete)",
    )
    p.add_argument("--epoch-ops", type=int, default=8192,
                   help="max ops coalesced into one epoch")
    p.add_argument(
        "--arrival",
        choices=[k for k in ARRIVAL_KINDS if k != "closed"],
        default="poisson",
        help="open-loop arrival process for the sweep",
    )
    p.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=[0.5, 0.8, 1.0, 1.2, 1.5, 2.0],
        metavar="X",
        help="offered-load factors relative to measured closed-loop capacity",
    )
    p.add_argument("--queue-depth", type=int, default=8192,
                   help="admission queue bound (ops)")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="per-op queueing deadline in virtual seconds")
    p.add_argument("--shed-policy", choices=list(OVERLOAD_POLICIES),
                   default="shed", help="overload policy past the high-water mark")
    p.add_argument("--slo-ms", type=float, default=50.0,
                   help="p99 latency SLO in milliseconds")
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser(
        "recover", help="rebuild a service from a snapshot + journal"
    )
    p.add_argument("--snapshot", required=True, metavar="PATH",
                   help="snapshot file written by `serve --snapshot`")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="journal file written by `serve --journal`")
    p.add_argument("--executor", choices=["serial", "threads"], default="serial")
    p.set_defaults(func=cmd_recover)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
