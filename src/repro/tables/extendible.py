"""Extendible hashing (Fagin, Nievergelt, Pippenger, Strong [10]).

A memory-resident directory of ``2^g`` pointers (global depth ``g``)
maps the ``g`` low bits of ``h(x)`` to bucket blocks, each annotated
with a *local depth* ``l ≤ g``.  A full bucket of depth ``l < g``
splits in two (redistributing by bit ``l``); a full bucket with
``l = g`` first doubles the directory.

Guarantees exactly one I/O per successful lookup (the directory is in
memory) and ``1 + O(1/b)``-ish amortized insertion — the scheme the
paper cites for load-factor maintenance at ``O(1/b)`` extra cost.  The
directory occupies ``2^g`` words of the memory budget, which is the
structure's real memory price and is charged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..em.storage import EMContext
from ..hashing.base import HashFunction
from .base import ExternalDictionary, LayoutSnapshot
from .batching import membership, normalize_keys


class ExtendibleHashTable(ExternalDictionary):
    """Directory-based dynamic hashing with bucket splitting."""

    def __init__(
        self,
        ctx: EMContext,
        hash_fn: HashFunction,
        *,
        initial_global_depth: int = 1,
        max_global_depth: int = 28,
    ) -> None:
        super().__init__(ctx)
        if initial_global_depth < 0:
            raise ValueError("global depth must be non-negative")
        self.h = hash_fn
        self.global_depth = initial_global_depth
        self.max_global_depth = max_global_depth
        # One shared bucket per distinct pointer; initially all distinct.
        self._directory: list[int] = []
        self._local_depth: dict[int, int] = {}
        for _ in range(1 << initial_global_depth):
            bid = ctx.disk.allocate()
            self._directory.append(bid)
            self._local_depth[bid] = initial_global_depth
        self._charge_memory()

    # -- memory accounting ----------------------------------------------------

    def memory_words(self) -> int:
        # Directory pointers + per-bucket local depths + hash seed.
        return len(self._directory) + len(self._local_depth) + 2

    def _charge_memory(self) -> None:
        self.ctx.memory.set_charge(self._charge_key, self.memory_words())

    # -- addressing -----------------------------------------------------------------

    def _dir_index(self, key: int) -> int:
        return int(self.h.low_bits(key, self.global_depth)) if self.global_depth else 0

    def bucket_of(self, key: int) -> int:
        return self._directory[self._dir_index(key)]

    # -- operations --------------------------------------------------------------------

    def lookup(self, key: int) -> bool:
        self.stats.lookups += 1
        blk = self.ctx.disk.read(self.bucket_of(key))
        found = key in blk
        if found:
            self.stats.hits += 1
        return found

    def insert(self, key: int) -> None:
        while True:
            bid = self.bucket_of(key)
            blk = self.ctx.disk.read(bid)
            if key in blk:
                return
            if not blk.full:
                blk.append(key)
                self.ctx.disk.write(bid, blk)
                self._size += 1
                self.stats.inserts += 1
                return
            self._split(bid)

    def delete(self, key: int) -> bool:
        bid = self.bucket_of(key)
        blk = self.ctx.disk.read(bid)
        if blk.remove(key):
            self.ctx.disk.write(bid, blk)
            self._size -= 1
            self.stats.deletes += 1
            return True
        return False

    # -- batch operations ---------------------------------------------------------

    def insert_batch(self, keys: Sequence[int] | np.ndarray) -> None:
        """Vectorised-hash insert: one ``hash_array`` call for the batch.

        The per-key directory walk stays in key order (splits and
        directory doublings mid-batch re-reduce the stored full-entropy
        hash against the new depth), so the charged I/Os are identical
        to the scalar loop.
        """
        key_list, arr = normalize_keys(keys)
        if not key_list:
            return
        hv = self.h.hash_array(arr).tolist()
        disk = self.ctx.disk
        for key, h in zip(key_list, hv):
            while True:
                g = self.global_depth
                bid = self._directory[h & ((1 << g) - 1)] if g else self._directory[0]
                blk = disk.read(bid)
                if key in blk:
                    break
                if not blk.full:
                    blk.append(key)
                    disk.write(bid, blk)
                    self._size += 1
                    self.stats.inserts += 1
                    break
                self._split(bid)

    def lookup_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Fully vectorised membership: every lookup costs exactly one read.

        The directory lives in memory and every bucket is a single
        block, so the batch charges ``n`` reads in one bulk call and
        probes each distinct bucket once with a sorted-membership scan
        — bit-identical counters to the scalar loop, which reads one
        block per key.

        Cached runs take the scalar per-key loop instead: the bulk
        branch charges reads wholesale without consulting the buffer
        pool.
        """
        if self.ctx.disk.cache is not None:
            return super().lookup_batch(keys, cost_out=cost_out)
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        g = self.global_depth
        hv = self.h.hash_array(arr)
        idx = (
            (hv & np.uint64((1 << g) - 1)).astype(np.int64)
            if g
            else np.zeros(n, dtype=np.int64)
        )
        bids = np.asarray(self._directory, dtype=np.int64)[idx]
        # One charged read per key, in key order (the last id becomes
        # the pending read-modify-write block, as the scalar walk leaves
        # it).
        self.ctx.stats.record_reads(bids.tolist())
        records_arr = self.ctx.disk.records_arr
        order = np.argsort(bids)
        sorted_bids = bids[order]
        starts = np.flatnonzero(np.r_[True, sorted_bids[1:] != sorted_bids[:-1]])
        bounds = starts.tolist()
        bounds.append(n)
        for j in range(len(starts)):
            pos = order[bounds[j] : bounds[j + 1]]
            vals = records_arr(int(sorted_bids[bounds[j]]))
            out[pos] = membership(arr[pos], np.asarray(vals, dtype=np.uint64))
        if cost_out is not None:
            cost_out.extend([1] * n)
        self.stats.lookups += n
        self.stats.hits += int(np.count_nonzero(out))
        return out

    def delete_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Vectorised-hash deletes: the directory is fixed (no merging on
        deletion), so bucket ids resolve for the whole batch up front;
        the read-remove-write per key stays in key order so consecutive
        same-bucket deletes combine exactly like the scalar loop."""
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        g = self.global_depth
        hv = self.h.hash_array(arr)
        idx = (
            (hv & np.uint64((1 << g) - 1)).astype(np.int64)
            if g
            else np.zeros(n, dtype=np.int64)
        )
        bids = np.asarray(self._directory, dtype=np.int64)[idx].tolist()
        disk = self.ctx.disk
        stats = self.ctx.stats
        removed = 0
        for i in range(n):
            before = stats.reads + stats.writes if cost_out is not None else 0
            bid = bids[i]
            blk = disk.read(bid)
            hit = blk.remove(key_list[i])
            if hit:
                disk.write(bid, blk)
                removed += 1
            if cost_out is not None:
                cost_out.append(stats.reads + stats.writes - before)
            out[i] = hit
        self._size -= removed
        self.stats.deletes += removed
        return out

    # -- splitting ----------------------------------------------------------------------

    def _split(self, bid: int) -> None:
        depth = self._local_depth[bid]
        if depth == self.global_depth:
            self._double_directory()
        self.stats.bump("splits")
        new_depth = depth + 1
        sibling = self.ctx.disk.allocate()
        self._local_depth[bid] = new_depth
        self._local_depth[sibling] = new_depth

        old_blk = self.ctx.disk.read(bid)
        bit = 1 << depth
        items = np.asarray(old_blk.records(), dtype=np.uint64)
        # Redistribute by bit `depth` of the hash in one vectorised
        # pass: low_bits(x, new_depth) & bit == hash(x) & bit.
        moving = (self.h.hash_array(items) & np.uint64(bit)).astype(bool)
        keep = items[~moving].tolist()
        move = items[moving].tolist()
        old_blk.replace_contents(keep)
        self.ctx.disk.write(bid, old_blk)
        sib_blk = self.ctx.disk.read(sibling)
        sib_blk.replace_contents(move)
        self.ctx.disk.write(sibling, sib_blk)

        # Repoint the half of bid's directory entries whose bit `depth`
        # is set.
        for i, ptr in enumerate(self._directory):
            if ptr == bid and (i & bit):
                self._directory[i] = sibling
        self._charge_memory()

    def _double_directory(self) -> None:
        if self.global_depth >= self.max_global_depth:
            raise RuntimeError(
                f"extendible directory exceeded max depth {self.max_global_depth}"
            )
        self.stats.bump("directory_doublings")
        self._directory = self._directory + self._directory
        self.global_depth += 1
        self._charge_memory()

    # -- instrumentation -------------------------------------------------------------------

    def distinct_buckets(self) -> set[int]:
        return set(self._directory)

    def load_factor(self) -> float:
        blocks = len(self.distinct_buckets())
        if blocks == 0:
            return 0.0
        return -(-self._size // self.ctx.b) / blocks

    def layout_snapshot(self) -> LayoutSnapshot:
        blocks = {
            bid: tuple(self.ctx.disk.peek(bid).records())
            for bid in self.distinct_buckets()
        }
        directory = list(self._directory)
        g = self.global_depth
        h = self.h

        def address(key: int) -> int:
            return directory[int(h.low_bits(key, g)) if g else 0]

        return LayoutSnapshot(
            memory_items=frozenset(),
            blocks=blocks,
            address=address,
            address_description_words=self.memory_words(),
        )

    def check_invariants(self) -> None:
        assert len(self._directory) == 1 << self.global_depth
        total = 0
        for bid in self.distinct_buckets():
            depth = self._local_depth[bid]
            assert depth <= self.global_depth
            # Every directory slot pointing here agrees on the low
            # `depth` bits.
            slots = [i for i, p in enumerate(self._directory) if p == bid]
            assert len(slots) == 1 << (self.global_depth - depth)
            mask = (1 << depth) - 1
            prefixes = {s & mask for s in slots}
            assert len(prefixes) == 1, f"bucket {bid} slots disagree: {slots}"
            blk = self.ctx.disk.peek(bid)
            total += len(blk)
            for x in blk:
                assert self.h.low_bits(x, depth) == next(iter(prefixes))
        assert total == self._size
