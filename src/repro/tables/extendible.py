"""Extendible hashing (Fagin, Nievergelt, Pippenger, Strong [10]).

A memory-resident directory of ``2^g`` pointers (global depth ``g``)
maps the ``g`` low bits of ``h(x)`` to bucket blocks, each annotated
with a *local depth* ``l ≤ g``.  A full bucket of depth ``l < g``
splits in two (redistributing by bit ``l``); a full bucket with
``l = g`` first doubles the directory.

Guarantees exactly one I/O per successful lookup (the directory is in
memory) and ``1 + O(1/b)``-ish amortized insertion — the scheme the
paper cites for load-factor maintenance at ``O(1/b)`` extra cost.  The
directory occupies ``2^g`` words of the memory budget, which is the
structure's real memory price and is charged.
"""

from __future__ import annotations

from ..em.storage import EMContext
from ..hashing.base import HashFunction
from .base import ExternalDictionary, LayoutSnapshot


class ExtendibleHashTable(ExternalDictionary):
    """Directory-based dynamic hashing with bucket splitting."""

    def __init__(
        self,
        ctx: EMContext,
        hash_fn: HashFunction,
        *,
        initial_global_depth: int = 1,
        max_global_depth: int = 28,
    ) -> None:
        super().__init__(ctx)
        if initial_global_depth < 0:
            raise ValueError("global depth must be non-negative")
        self.h = hash_fn
        self.global_depth = initial_global_depth
        self.max_global_depth = max_global_depth
        # One shared bucket per distinct pointer; initially all distinct.
        self._directory: list[int] = []
        self._local_depth: dict[int, int] = {}
        for _ in range(1 << initial_global_depth):
            bid = ctx.disk.allocate()
            self._directory.append(bid)
            self._local_depth[bid] = initial_global_depth
        self._charge_memory()

    # -- memory accounting ----------------------------------------------------

    def memory_words(self) -> int:
        # Directory pointers + per-bucket local depths + hash seed.
        return len(self._directory) + len(self._local_depth) + 2

    def _charge_memory(self) -> None:
        self.ctx.memory.set_charge(self._charge_key, self.memory_words())

    # -- addressing -----------------------------------------------------------------

    def _dir_index(self, key: int) -> int:
        return int(self.h.low_bits(key, self.global_depth)) if self.global_depth else 0

    def bucket_of(self, key: int) -> int:
        return self._directory[self._dir_index(key)]

    # -- operations --------------------------------------------------------------------

    def lookup(self, key: int) -> bool:
        self.stats.lookups += 1
        blk = self.ctx.disk.read(self.bucket_of(key))
        found = key in blk
        if found:
            self.stats.hits += 1
        return found

    def insert(self, key: int) -> None:
        while True:
            bid = self.bucket_of(key)
            blk = self.ctx.disk.read(bid)
            if key in blk:
                return
            if not blk.full:
                blk.append(key)
                self.ctx.disk.write(bid, blk)
                self._size += 1
                self.stats.inserts += 1
                return
            self._split(bid)

    def delete(self, key: int) -> bool:
        bid = self.bucket_of(key)
        blk = self.ctx.disk.read(bid)
        if blk.remove(key):
            self.ctx.disk.write(bid, blk)
            self._size -= 1
            self.stats.deletes += 1
            return True
        return False

    # -- splitting ----------------------------------------------------------------------

    def _split(self, bid: int) -> None:
        depth = self._local_depth[bid]
        if depth == self.global_depth:
            self._double_directory()
        self.stats.bump("splits")
        new_depth = depth + 1
        sibling = self.ctx.disk.allocate()
        self._local_depth[bid] = new_depth
        self._local_depth[sibling] = new_depth

        old_blk = self.ctx.disk.read(bid)
        keep, move = [], []
        bit = 1 << depth
        for item in old_blk:
            (move if self.h.low_bits(item, new_depth) & bit else keep).append(item)
        old_blk.replace_contents(keep)
        self.ctx.disk.write(bid, old_blk)
        sib_blk = self.ctx.disk.read(sibling)
        sib_blk.replace_contents(move)
        self.ctx.disk.write(sibling, sib_blk)

        # Repoint the half of bid's directory entries whose bit `depth`
        # is set.
        for i, ptr in enumerate(self._directory):
            if ptr == bid and (i & bit):
                self._directory[i] = sibling
        self._charge_memory()

    def _double_directory(self) -> None:
        if self.global_depth >= self.max_global_depth:
            raise RuntimeError(
                f"extendible directory exceeded max depth {self.max_global_depth}"
            )
        self.stats.bump("directory_doublings")
        self._directory = self._directory + self._directory
        self.global_depth += 1
        self._charge_memory()

    # -- instrumentation -------------------------------------------------------------------

    def distinct_buckets(self) -> set[int]:
        return set(self._directory)

    def load_factor(self) -> float:
        blocks = len(self.distinct_buckets())
        if blocks == 0:
            return 0.0
        return -(-self._size // self.ctx.b) / blocks

    def layout_snapshot(self) -> LayoutSnapshot:
        blocks = {
            bid: tuple(self.ctx.disk.peek(bid).records())
            for bid in self.distinct_buckets()
        }
        directory = list(self._directory)
        g = self.global_depth
        h = self.h

        def address(key: int) -> int:
            return directory[int(h.low_bits(key, g)) if g else 0]

        return LayoutSnapshot(
            memory_items=frozenset(),
            blocks=blocks,
            address=address,
            address_description_words=self.memory_words(),
        )

    def check_invariants(self) -> None:
        assert len(self._directory) == 1 << self.global_depth
        total = 0
        for bid in self.distinct_buckets():
            depth = self._local_depth[bid]
            assert depth <= self.global_depth
            # Every directory slot pointing here agrees on the low
            # `depth` bits.
            slots = [i for i, p in enumerate(self._directory) if p == bid]
            assert len(slots) == 1 << (self.global_depth - depth)
            mask = (1 << depth) - 1
            prefixes = {s & mask for s in slots}
            assert len(prefixes) == 1, f"bucket {bid} slots disagree: {slots}"
            blk = self.ctx.disk.peek(bid)
            total += len(blk)
            for x in blk:
                assert self.h.low_bits(x, depth) == next(iter(prefixes))
        assert total == self._size
