"""Vectorised staging primitives shared by the batch operation engine.

The batch APIs (:meth:`~repro.tables.base.ExternalDictionary.insert_batch`
/ :meth:`~repro.tables.base.ExternalDictionary.lookup_batch`) promise
**bit-identical I/O accounting** to their scalar counterparts while
paying numpy — not interpreter — prices for the data-parallel parts:
hashing a batch (one ``hash_array`` call) and partitioning it into
per-bucket groups (one stable argsort).

Both the scalar and the batch merge paths stage through the same
partition (:func:`partition_by_bucket`): buckets in ascending index
order, so bucket visit order, allocation order and every charged I/O
are identical by construction — the parity suite
(``tests/test_batch_parity.py``) holds both paths to it.  Within a
bucket the item order is deterministic for a given numpy build but
otherwise arbitrary (plain argsort, no stability guarantee); that is
deliberate, since block-content order is never load-bearing — lookups
scan whole blocks and I/O counts are order-independent.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def normalize_keys(keys: Sequence[int] | np.ndarray) -> tuple[list[int], np.ndarray]:
    """Return ``keys`` as (list of Python ints, uint64 array).

    The array feeds ``hash_array``; the list feeds the table's Python
    containers.  The list is always re-materialised through numpy so no
    numpy scalars leak into blocks, sets, or scalar ``hash()`` calls —
    numpy ints compare equal to Python ints but have surprising
    arithmetic (``np.uint64 + int -> float``, and the Lemire reduction
    ``(v * u) >> 64`` silently wraps at 64 bits on ``np.uint64``), so a
    caller-supplied list of numpy scalars must not pass through as-is.
    """
    arr = (
        keys.astype(np.uint64, copy=False)
        if isinstance(keys, np.ndarray)
        else np.asarray(keys, dtype=np.uint64)
    )
    return arr.tolist(), arr


def partition_by_bucket(
    keys: Sequence[int] | np.ndarray,
    bucket_idx: np.ndarray,
    *,
    stable: bool = False,
) -> list[tuple[int, list[int]]]:
    """Group ``keys`` by bucket index, ascending (deterministic but
    arbitrary order within each group — see the module docstring).

    Returns ``[(bucket, items), ...]`` for non-empty buckets only, the
    bucket visit order every merge/rebuild path (scalar and batch)
    stages through.

    ``stable=True`` preserves the arrival order within each group.  The
    merge paths never need it (block-content order is not load-bearing),
    but the sharded dictionary's router does: each shard must see its
    keys as the exact subsequence the scalar per-key routing would feed
    it, because *stream* order decides merge/flush boundaries.
    """
    n = len(bucket_idx)
    if n == 0:
        return []
    arr = np.asarray(keys, dtype=np.uint64)
    idx = np.asarray(bucket_idx)
    # Plain (unstable) argsort by default: within-bucket order is
    # deterministic but arbitrary, which is fine — both the scalar and
    # batch merge paths stage through this same partition, and
    # block-content order is never load-bearing (lookups scan whole
    # blocks).
    order = np.argsort(idx, kind="stable") if stable else np.argsort(idx)
    sorted_idx = idx[order]
    starts = np.flatnonzero(np.r_[True, sorted_idx[1:] != sorted_idx[:-1]])
    buckets = sorted_idx[starts].tolist()
    bounds = starts.tolist()
    bounds.append(n)
    key_seq = arr[order].tolist()
    return [
        (buckets[j], key_seq[bounds[j] : bounds[j + 1]])
        for j in range(len(buckets))
    ]


def partition_positions(bucket_idx: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """Stable positions-by-bucket grouping: ``[(bucket, positions), ...]``.

    The lookup/delete-side counterpart of
    :func:`partition_by_bucket(..., stable=True)`: ascending bucket
    order, each ``positions`` array preserving arrival order, so
    callers can slice their own key/result arrays per group and scatter
    per-key outputs back to arrival order.  Used by the sharded router
    and the service layer's per-epoch shard split.
    """
    n = len(bucket_idx)
    if n == 0:
        return []
    idx = np.asarray(bucket_idx)
    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    starts = np.flatnonzero(np.r_[True, sorted_idx[1:] != sorted_idx[:-1]])
    bounds = starts.tolist()
    bounds.append(n)
    return [
        (int(sorted_idx[bounds[j]]), order[bounds[j] : bounds[j + 1]])
        for j in range(len(starts))
    ]


def membership(queries: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Vectorised set membership: is each query present in ``values``?

    Sort-plus-binary-search, cheaper than ``np.isin`` (which
    deduplicates both sides) for the batch-lookup workloads here.
    """
    if values.size == 0:
        return np.zeros(len(queries), dtype=bool)
    sv = np.sort(values)
    pos = np.searchsorted(sv, queries)
    return sv[np.minimum(pos, sv.size - 1)] == queries


def concat_records(datas: Iterable[Sequence[int] | np.ndarray]) -> np.ndarray:
    """Concatenate per-block record sequences into one uint64 array.

    The materialisation step of the vectorised lookup fast paths: feed
    it the backend record views of a bucket row's primary blocks
    (:meth:`repro.em.disk.Disk.records_arr`) and probe the result with
    :func:`membership`.  Accepts lists and uint64 array views alike.
    """
    arrays = [np.asarray(d, dtype=np.uint64) for d in datas if len(d)]
    if not arrays:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(arrays)


def fresh_in_order(keys: Iterable[int], shadow: set[int]) -> list[int]:
    """Keys not yet in ``shadow``, first occurrence only, order preserved.

    Updates ``shadow`` with the returned keys — the bulk equivalent of
    the scalar per-insert ``if key in shadow: return; shadow.add(key)``
    duplicate guard.  Keys are re-materialised through numpy on every
    path so no numpy scalars reach the shadow (or, downstream, ``H_0``
    and the blocks) regardless of what the caller supplied.
    """
    arr = np.asarray(
        keys if isinstance(keys, (list, np.ndarray)) else list(keys),
        dtype=np.uint64,
    )
    if not shadow:
        # Empty-shadow fast path: vectorised first-occurrence dedup.
        _, first = np.unique(arr, return_index=True)
        if len(first) == len(arr):
            out = arr.tolist()
        else:
            first.sort()
            out = arr[first].tolist()
        shadow.update(out)
        return out
    out = []
    append = out.append
    add = shadow.add
    for k in arr.tolist():
        if k not in shadow:
            add(k)
            append(k)
    return out
