"""The standard external hash table with chaining (Knuth [13]).

``d`` primary buckets, each a disk block with an overflow chain.  With
load factor ``α < 1`` bounded away from 1 and an ideal hash function,
the expected average cost of a successful lookup is ``1 + 1/2^{Ω(b)}``
I/Os and an insertion is one read-modify-write, also
``1 + 1/2^{Ω(b)}`` — the upper bound the paper cites for the
``t_q = 1 + 1/2^{Ω(b)}`` point of Figure 1.

The table can optionally *rebuild* (double its bucket count) when the
load factor passes ``max_load``, the extensible/linear-hashing style
maintenance the paper notes costs only ``O(1/b)`` extra amortized I/Os.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..em.storage import EMContext
from ..hashing.base import HashFunction
from .base import ExternalDictionary, LayoutSnapshot
from .batching import normalize_keys, partition_by_bucket
from .overflow import ChainedBucket, bulk_fill_buckets


class ChainedHashTable(ExternalDictionary):
    """Blocked chaining over ``d`` primary buckets.

    Parameters
    ----------
    ctx:
        Shared external-memory context.
    hash_fn:
        Hash function; bucket of ``x`` is ``hash_fn.bucket(x, d)``.
    buckets:
        Initial number of primary buckets ``d``.
    max_load:
        Load-factor threshold triggering a rebuild; ``None`` disables
        resizing (fixed-capacity mode used in the lower-bound drivers).
    """

    def __init__(
        self,
        ctx: EMContext,
        hash_fn: HashFunction,
        *,
        buckets: int = 16,
        max_load: float | None = 0.8,
    ) -> None:
        super().__init__(ctx)
        if buckets <= 0:
            raise ValueError(f"bucket count must be positive, got {buckets}")
        if max_load is not None and not 0 < max_load:
            raise ValueError(f"max_load must be positive, got {max_load}")
        self.h = hash_fn
        self.max_load = max_load
        self._buckets: list[ChainedBucket] = [
            ChainedBucket(ctx.disk) for _ in range(buckets)
        ]
        #: Overflow blocks across all buckets, maintained incrementally
        #: so the load-factor denominator is O(1) instead of an O(d)
        #: sweep per insert (``check_invariants`` cross-checks it).
        self._chain_blocks = 0
        self._charge_memory()

    # -- memory accounting ---------------------------------------------------

    def memory_words(self) -> int:
        # Resident state: the hash seed (O(1) words) and one word per
        # bucket for the primary-block address (the table directory).
        return 2 + len(self._buckets)

    def _charge_memory(self) -> None:
        self.ctx.memory.set_charge(self._charge_key, self.memory_words())

    # -- core operations ---------------------------------------------------------

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    def bucket_of(self, key: int) -> int:
        return int(self.h.bucket(key, len(self._buckets)))

    def insert(self, key: int) -> None:
        bucket = self._buckets[self.bucket_of(key)]
        chain_before = bucket.chain_length
        if bucket.insert(key):
            self._chain_blocks += bucket.chain_length - chain_before
            self._size += 1
            self.stats.inserts += 1
            if self.max_load is not None and self.load_factor() > self.max_load:
                self._rebuild(2 * len(self._buckets))

    def lookup(self, key: int) -> bool:
        self.stats.lookups += 1
        found, _ = self._buckets[self.bucket_of(key)].lookup(key)
        if found:
            self.stats.hits += 1
        return found

    def delete(self, key: int) -> bool:
        if self._buckets[self.bucket_of(key)].delete(key):
            self._size -= 1
            self.stats.deletes += 1
            return True
        return False

    # -- batch operations ---------------------------------------------------------

    def insert_batch(self, keys: Sequence[int] | np.ndarray) -> None:
        """Vectorised-hash insert: one ``hash_array`` call for the batch.

        The per-key chain walk (and the resize predicate it may trigger)
        stays in key order, so the charged I/Os are identical to the
        scalar loop; rebuilds mid-batch are handled by re-reducing the
        stored full-entropy hash against the new bucket count.  The
        load-factor probe rides the incremental chain-block counter, so
        the resize predicate is O(1) per key rather than an O(d) sweep.
        """
        key_list, arr = normalize_keys(keys)
        hv = self.h.hash_array(arr).tolist()
        buckets = self._buckets
        for key, h in zip(key_list, hv):
            bucket = buckets[h % len(buckets)]
            chain_before = bucket.chain_length
            if bucket.insert(key):
                self._chain_blocks += bucket.chain_length - chain_before
                self._size += 1
                self.stats.inserts += 1
                if self.max_load is not None and self.load_factor() > self.max_load:
                    self._rebuild(2 * len(buckets))
                    buckets = self._buckets

    def lookup_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        d = len(self._buckets)
        idx = (self.h.hash_array(arr) % np.uint64(d)).tolist()
        buckets = self._buckets
        out = np.empty(n, dtype=bool)
        hits = 0
        for i in range(n):
            found, ios = buckets[idx[i]].lookup(key_list[i])
            out[i] = found
            hits += found
            if cost_out is not None:
                cost_out.append(ios)
        self.stats.lookups += n
        self.stats.hits += hits
        return out

    def delete_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Vectorised-hash deletes; the per-key chain walk stays in key
        order (deletes never resize, so the bucket count is fixed for
        the whole batch)."""
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        d = len(self._buckets)
        idx = (self.h.hash_array(arr) % np.uint64(d)).tolist()
        buckets = self._buckets
        stats = self.ctx.stats
        removed = 0
        for i in range(n):
            if cost_out is None:
                hit = buckets[idx[i]].delete(key_list[i])
            else:
                before = stats.reads + stats.writes
                hit = buckets[idx[i]].delete(key_list[i])
                cost_out.append(stats.reads + stats.writes - before)
            out[i] = hit
            removed += hit
        self._size -= removed
        self.stats.deletes += removed
        return out

    # -- maintenance -----------------------------------------------------------------

    def load_factor(self) -> float:
        """``ceil(n/b) / blocks used`` (paper footnote 1), O(1) via the
        incrementally maintained chain-block counter."""
        blocks = len(self._buckets) + self._chain_blocks
        if blocks == 0:
            return 0.0
        return -(-self._size // self.ctx.b) / blocks

    def fill_fraction(self) -> float:
        """Plain occupancy ``n / (d * b)`` of the primary area."""
        return self._size / (len(self._buckets) * self.ctx.b)

    def _rebuild(self, new_buckets: int) -> None:
        """Migrate into ``new_buckets`` fresh buckets (a full scan).

        The scan order is unchanged from the scalar original (read and
        free each old bucket, then write receiving buckets ascending);
        only the staging is vectorised — one ``hash_array`` over all
        items replaces a per-item ``bucket()`` call.
        """
        self.stats.rebuilds += 1
        old = self._buckets
        self._buckets = ChainedBucket.bulk_row(self.ctx.disk, new_buckets)
        self._charge_memory()
        moved: list[int] = []
        for bkt in old:
            moved.extend(bkt.read_all())
            bkt.free_all()
        arr = np.asarray(moved, dtype=np.uint64)
        parts = partition_by_bucket(arr, self.h.hash_array(arr) % np.uint64(new_buckets))
        bulk_fill_buckets(self._buckets, parts, self.ctx.disk)
        # One O(d) recount per rebuild (replace_all may have grown
        # chains for over-full groups); inserts then stay O(1).
        self._chain_blocks = sum(bkt.chain_length for bkt in self._buckets)

    # -- instrumentation ----------------------------------------------------------------

    def layout_snapshot(self) -> LayoutSnapshot:
        blocks: dict[int, tuple[int, ...]] = {}
        for bkt in self._buckets:
            for bid, items in bkt.peek_blocks():
                blocks[bid] = items
        d = len(self._buckets)
        h = self.h
        primaries = [bkt.primary for bkt in self._buckets]

        def address(key: int, _h: Callable = h.bucket, _p=primaries, _d=d) -> int:
            return _p[int(_h(key, _d))]

        return LayoutSnapshot(
            memory_items=frozenset(),
            blocks=blocks,
            address=address,
            address_description_words=self.memory_words(),
        )

    def check_invariants(self) -> None:
        assert self._chain_blocks == sum(
            bkt.chain_length for bkt in self._buckets
        ), "incremental chain-block counter out of sync"
        seen: set[int] = set()
        total = 0
        for idx, bkt in enumerate(self._buckets):
            items = bkt.peek_all()
            total += len(items)
            for x in items:
                assert self.bucket_of(x) == idx, (
                    f"item {x} stored in bucket {idx}, hashes to {self.bucket_of(x)}"
                )
                assert x not in seen, f"duplicate item {x}"
                seen.add(x)
        assert total == self._size, f"size {self._size} != stored {total}"
