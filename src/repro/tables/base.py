"""Common interface for external-memory dictionaries.

Every table in this library implements :class:`ExternalDictionary`
(insert / lookup / delete over integer keys, I/O-charged through a
shared :class:`~repro.em.storage.EMContext`) and, for the lower-bound
instrumentation, can export a :class:`LayoutSnapshot`: the paper's
abstraction of a hash table as

* a **memory zone** ``M`` — items resident in main memory,
* disk blocks ``B_1 ... B_d`` — at most ``b`` items each, duplicates
  allowed,
* an **address function** ``f`` computable from memory — the block a
  one-I/O lookup would probe.

Items ``x`` with ``x ∈ B_{f(x)}`` form the fast zone; all other
disk-resident items form the slow zone (≥ 2 I/Os).  The zone analyser
in :mod:`repro.lowerbound.zones` consumes these snapshots.

Every table also exposes a **batch operation engine**
(:meth:`ExternalDictionary.insert_batch` /
:meth:`ExternalDictionary.lookup_batch` /
:meth:`ExternalDictionary.delete_batch`): same semantics and — by
contract — bit-identical I/O accounting as the scalar loop, but with
the data-parallel work (hashing, bucket partitioning, bookkeeping)
amortised over the whole batch.  See ``src/repro/workloads/README.md``
for the contract and :mod:`repro.tables.batching` for the shared
vectorised staging primitives.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..em.storage import EMContext


@dataclass(frozen=True)
class LayoutSnapshot:
    """A frozen view of a table's item layout (the Section 2 abstraction)."""

    #: Items resident in main memory (the memory zone ``M``).
    memory_items: frozenset[int]
    #: Disk layout: block id -> items stored in that block.
    blocks: dict[int, tuple[int, ...]]
    #: The one-I/O address function ``f``; ``None`` means the table would
    #: never find this key in one probe (it is structurally slow).
    address: Callable[[int], int | None]
    #: Words of memory the snapshot's ``f`` needs (hash seeds, directory...).
    address_description_words: int = 0

    def disk_items(self) -> set[int]:
        """All items stored on disk (union over blocks, deduplicated)."""
        out: set[int] = set()
        for items in self.blocks.values():
            out.update(items)
        return out

    def item_count(self) -> int:
        """Distinct items in the structure (memory or disk)."""
        return len(self.memory_items | self.disk_items())


@dataclass
class TableStats:
    """Operation counters every table maintains."""

    inserts: int = 0
    lookups: int = 0
    hits: int = 0
    deletes: int = 0
    rebuilds: int = 0
    merges: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        self.extra[name] = self.extra.get(name, 0) + amount


class ExternalDictionary(abc.ABC):
    """A dynamic dictionary in the external-memory model.

    Keys are integers in ``[0, u)``.  The paper studies the membership /
    successful-lookup problem, so values are optional; tables that carry
    values charge ``record_words`` per record.
    """

    def __init__(self, ctx: EMContext, *, name: str | None = None) -> None:
        self.ctx = ctx
        self.name = name or type(self).__name__
        self.stats = TableStats()
        self._size = 0
        #: Memory-budget owner key, cached so per-op charging needs no
        #: string formatting.
        self._charge_key = f"{self.name}@{id(self)}"

    # -- required operations ----------------------------------------------

    @abc.abstractmethod
    def insert(self, key: int) -> None:
        """Insert ``key`` (duplicate inserts are idempotent no-ops)."""

    @abc.abstractmethod
    def lookup(self, key: int) -> bool:
        """Membership query for ``key``."""

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns whether it was present.

        Default: unsupported (the paper's tradeoff is query--insertion).
        """
        raise NotImplementedError(f"{self.name} does not support deletion")

    # -- instrumentation ------------------------------------------------------

    @abc.abstractmethod
    def layout_snapshot(self) -> LayoutSnapshot:
        """Export the Section 2 abstraction of the current layout.

        Must not charge any I/O (it models the analyst, not the
        algorithm); implementations use :meth:`repro.em.disk.Disk.peek`.
        """

    @abc.abstractmethod
    def memory_words(self) -> int:
        """Words of main memory the table currently occupies."""

    def memory_high_water(self) -> int:
        """Peak words charged to this table's memory budget.

        The default reads the shared context budget; the sharded router
        overrides it to aggregate its per-shard budgets.  Drivers report
        this instead of touching ``ctx.memory`` directly.
        """
        return self.ctx.memory.high_water

    def nonempty_disk_blocks(self) -> int:
        """Non-empty disk blocks backing this table (load-factor denominator).

        Default: the context disk's count.  The sharded router overrides
        it to sum over its per-shard disks.
        """
        return self.ctx.disk.nonempty_blocks()

    # -- shared conveniences ----------------------------------------------------

    def insert_many(self, keys: Iterable[int]) -> None:
        """Scalar reference path: one :meth:`insert` call per key.

        Kept deliberately un-vectorised so the parity suite can hold
        :meth:`insert_batch` to its I/O-equivalence contract against it.
        """
        for k in keys:
            self.insert(k)

    def lookup_many(self, keys: Iterable[int]) -> list[bool]:
        """Scalar reference path: one :meth:`lookup` call per key."""
        return [self.lookup(k) for k in keys]

    def delete_many(self, keys: Iterable[int]) -> list[bool]:
        """Scalar reference path: one :meth:`delete` call per key."""
        return [self.delete(k) for k in keys]

    # -- batch operations --------------------------------------------------------

    def insert_batch(self, keys: Sequence[int] | np.ndarray) -> None:
        """Insert a batch of keys.

        **I/O-equivalence contract:** must charge exactly the same
        :class:`~repro.em.iostats.IOStats` counters, produce the same
        :class:`TableStats` and the same :meth:`layout_snapshot` as
        ``insert_many(keys)`` — under every I/O policy.  The base
        implementation *is* the scalar loop; subclasses override it with
        vectorised paths (one ``hash_array`` call, bulk bucket
        partitioning) that honour the contract.
        """
        for k in keys:
            self.insert(int(k))

    def lookup_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Membership queries for a batch of keys, in order.

        Returns a boolean array aligned with ``keys``.  When
        ``cost_out`` is given, the charged I/O total of each individual
        lookup is appended to it (the vectorised replacement for the
        driver-side snapshot/delta loop).  Subject to the same
        I/O-equivalence contract as :meth:`insert_batch`.
        """
        n = len(keys)
        out = np.empty(n, dtype=bool)
        if cost_out is None:
            for i, k in enumerate(keys):
                out[i] = self.lookup(int(k))
            return out
        stats = self.ctx.stats
        for i, k in enumerate(keys):
            before = stats.reads + stats.writes
            out[i] = self.lookup(int(k))
            cost_out.append(stats.reads + stats.writes - before)
        return out

    def delete_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Remove a batch of keys, in order; returns which were present.

        Completes the batch-op triad: subject to the same I/O-equivalence
        contract as :meth:`insert_batch` — bit-identical
        :class:`~repro.em.iostats.IOStats`, :class:`TableStats`, layouts
        and memory peaks as ``delete_many(keys)`` under every policy.
        The base implementation *is* the scalar loop; tables override it
        with vectorised staging (one ``hash_array`` call, precomputed
        membership screens) that honours the contract.  ``cost_out``
        collects the charged I/O total of each individual delete.
        """
        n = len(keys)
        out = np.empty(n, dtype=bool)
        if cost_out is None:
            for i, k in enumerate(keys):
                out[i] = self.delete(int(k))
            return out
        stats = self.ctx.stats
        for i, k in enumerate(keys):
            before = stats.reads + stats.writes
            out[i] = self.delete(int(k))
            cost_out.append(stats.reads + stats.writes - before)
        return out

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self.lookup(key)

    def check_invariants(self) -> None:
        """Optional structural self-check used by property tests."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}(n={self._size}, b={self.ctx.b}, m={self.ctx.m})"


def iter_blocks_items(snapshot: LayoutSnapshot) -> Iterator[tuple[int, int]]:
    """Yield ``(block_id, item)`` pairs from a snapshot."""
    for bid, items in snapshot.blocks.items():
        for x in items:
            yield bid, x
