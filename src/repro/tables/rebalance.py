"""Skew-adaptive slot rebalancing: load accounting, policy, migration.

The static router splits keys ``hash % N`` forever, so a hot key range
(Zipf head, clustered flood, or an adversarial attack aimed at one
router bucket) pins one shard's :class:`~repro.em.memory.MemoryBudget`
and charged I/O while its siblings idle.  The
:class:`~repro.tables.sharded.SlotDirectory` makes the route mutable at
slot granularity; this module supplies the two halves that act on it:

* :class:`Rebalancer` — the *policy*.  ``observe()`` feeds it one
  epoch's per-shard charged I/O and per-slot op counts; ``decide()`` is
  a **pure** function of the windowed history that returns the slot
  moves to perform (empty when balanced, cooling down, or idle);
  ``note_moved()`` records an applied migration.  The observe/decide/
  note split is what makes crash recovery bit-identical: replay feeds
  the same observations and applies the *journaled* moves instead of
  re-deciding, leaving the policy state exactly as the uninterrupted
  run left it.

* :func:`apply_moves` — the *mechanism*.  Drains each moved slot's live
  keys out of the source shard with ``delete_batch`` (memory and disk
  items alike, from the layout snapshot, in sorted order so the drain
  is deterministic) and re-inserts them through ``insert_batch`` into
  the destination shard's own strided block-id namespace, then repoints
  the directory entry.  Every drain and refill is charged to the shard
  ledgers like any other batch — migration I/O is never free.

Cluster size is conserved by construction: only keys the source
actually held (``delete_batch``'s hit mask) are re-inserted, so a stale
snapshot entry can never double-insert.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.config import RebalanceConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import ExternalDictionary
    from .sharded import SlotDirectory

__all__ = [
    "MigrationReport",
    "Rebalancer",
    "SlotMove",
    "apply_moves",
    "slot_keys",
]


@dataclass(frozen=True)
class SlotMove:
    """One directory reassignment: ``slot`` leaves ``src`` for ``dst``."""

    slot: int
    src: int
    dst: int


@dataclass(frozen=True)
class MigrationReport:
    """What one :func:`apply_moves` call did.

    ``keys_moved`` counts keys actually drained and re-inserted (live
    keys of the moved slots); ``moves`` is the applied sequence in
    execution order.
    """

    moves: tuple[SlotMove, ...]
    keys_moved: int

    @property
    def slots_moved(self) -> int:
        return len(self.moves)


def slot_keys(
    table: ExternalDictionary, directory: SlotDirectory, slot: int
) -> np.ndarray:
    """The live keys of ``table`` routed to ``slot``, ascending.

    Candidates come from the layout snapshot (memory residents plus
    every disk item); sorting makes the drain order — and therefore the
    destination shard's merge boundaries — independent of set/hash
    iteration order.
    """
    snap = table.layout_snapshot()
    items = snap.memory_items | snap.disk_items()
    if not items:
        return np.empty(0, dtype=np.uint64)
    arr = np.array(sorted(items), dtype=np.uint64)
    return arr[directory.slots_of(arr) == slot]


def apply_moves(
    directory: SlotDirectory,
    tables: Sequence[ExternalDictionary],
    moves: Sequence[SlotMove | tuple[int, int, int]],
) -> MigrationReport:
    """Execute slot migrations: drain, refill, repoint — in move order.

    Each move is processed independently and deterministically: collect
    the slot's live keys from the source shard, ``delete_batch`` them
    out, ``insert_batch`` the ones that were actually present into the
    destination, then :meth:`SlotDirectory.assign` the slot.  The
    directory is repointed *after* the drain so a crash replay that
    re-executes the move from its journal record sees the same
    pre-move routing.
    """
    applied: list[SlotMove] = []
    keys_moved = 0
    # One snapshot + sort + slot classification per *source shard*, not
    # per move: a slot's live keys only change when its own move drains
    # them (drains remove that slot's keys from the source; refills land
    # on the destination, whose cached view is invalidated below), so
    # the shared view stays exact for every remaining move.
    views: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for mv in moves:
        mv = mv if isinstance(mv, SlotMove) else SlotMove(*mv)
        if int(directory.slot_map[mv.slot]) != mv.src:
            raise ValueError(
                f"slot {mv.slot} maps to shard "
                f"{int(directory.slot_map[mv.slot])}, not {mv.src}"
            )
        if mv.src not in views:
            snap = tables[mv.src].layout_snapshot()
            items = snap.memory_items | snap.disk_items()
            arr = np.array(sorted(items), dtype=np.uint64)
            views[mv.src] = (arr, directory.slots_of(arr) if len(arr) else arr)
        arr, arr_slots = views[mv.src]
        keys = arr[arr_slots == mv.slot] if len(arr) else arr
        views.pop(mv.dst, None)  # refill invalidates the dst's view
        if len(keys):
            removed = tables[mv.src].delete_batch(keys)
            present = keys[removed]
            if len(present):
                tables[mv.dst].insert_batch(present)
            keys_moved += int(removed.sum())
        directory.assign(mv.slot, mv.dst)
        applied.append(mv)
    return MigrationReport(moves=tuple(applied), keys_moved=keys_moved)


@dataclass
class Rebalancer:
    """Windowed imbalance detector + greedy hottest-slot planner.

    State is three pieces, all deterministic functions of the observed
    history: the per-shard charged-I/O window, the per-slot op-count
    window, and the epoch of the last applied migration (for the
    cooldown).  ``decide()`` never mutates — the service (or recovery
    replay) calls ``note_moved()`` only for migrations actually
    applied, so live runs and replays converge on identical state.
    """

    config: RebalanceConfig = field(default_factory=RebalanceConfig)

    def __post_init__(self) -> None:
        self.io_window: deque[np.ndarray] = deque(maxlen=self.config.window)
        self.ops_window: deque[np.ndarray] = deque(maxlen=self.config.window)
        self.last_move_epoch: int | None = None
        self.moves_applied = 0

    def observe(
        self, shard_io: Sequence[int], slot_ops: np.ndarray | Sequence[int]
    ) -> None:
        """Feed one epoch's per-shard charged I/O and per-slot op counts."""
        self.io_window.append(np.asarray(shard_io, dtype=np.int64).copy())
        self.ops_window.append(np.asarray(slot_ops, dtype=np.int64).copy())

    def imbalance(self) -> float:
        """Windowed worst-shard/mean-shard charged-I/O ratio (0 if idle)."""
        if not self.io_window:
            return 0.0
        io = np.sum(self.io_window, axis=0)
        total = int(io.sum())
        if total <= 0:
            return 0.0
        return float(io.max() * len(io) / total)

    def decide(
        self, epoch_idx: int, directory: SlotDirectory
    ) -> list[SlotMove]:
        """The moves to apply after ``epoch_idx`` — pure, possibly empty.

        Triggers on the windowed charged-I/O ratio; *plans* with the
        windowed per-slot op counts (the finest-grained load signal the
        service tracks): hottest slots of the worst shard move greedily
        to the projected-least-loaded shard, but only while the move
        strictly improves the worst/dst pair — the anti-ping-pong rule.
        """
        cfg = self.config
        if not self.io_window:
            return []
        if (
            self.last_move_epoch is not None
            and epoch_idx - self.last_move_epoch <= cfg.cooldown
        ):
            return []
        io = np.sum(self.io_window, axis=0)
        total = int(io.sum())
        if total < cfg.min_io or total <= 0:
            return []
        worst = int(io.argmax())
        if float(io[worst]) * len(io) < cfg.threshold * total:
            return []
        slot_ops = np.sum(self.ops_window, axis=0)
        # Projected per-shard load in op units (the per-slot signal).
        proj = np.bincount(
            directory.slot_map, weights=slot_ops, minlength=directory.shards
        )
        own = [int(s) for s in directory.shard_slots(worst)]
        own.sort(key=lambda s: (-int(slot_ops[s]), s))
        moves: list[SlotMove] = []
        remaining = len(own)
        for slot in own:
            if len(moves) >= cfg.max_moves or remaining <= 1:
                break
            load = float(slot_ops[slot])
            if load <= 0:
                break  # colder slots can't help either
            order = np.argsort(proj, kind="stable")
            dst = int(order[0]) if int(order[0]) != worst else int(order[1])
            # Anti-ping-pong: move only if the pair's max strictly drops.
            if proj[dst] + load >= proj[worst]:
                continue
            proj[worst] -= load
            proj[dst] += load
            moves.append(SlotMove(slot=slot, src=worst, dst=dst))
            remaining -= 1
        return moves

    def note_moved(self, epoch_idx: int, moves: Sequence[SlotMove]) -> None:
        """Record an applied migration (live path and replay alike)."""
        if moves:
            self.last_move_epoch = epoch_idx
            self.moves_applied += len(moves)
