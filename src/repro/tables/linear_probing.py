"""Blocked linear probing (Knuth [13, §6.4]).

``d`` blocks arranged in a circular array.  An item hashes to a home
block and is stored in the first non-full block at or after it
(wrapping).  Lookups probe forward from the home block and may stop at
the first block that has never overflowed — tracked by the classic
per-block *overflow bit* kept in the block header.

With load factor ``α < 1`` the expected successful-lookup cost is
``1 + 1/2^{Ω(b)}`` I/Os: the probability an item overflows its home
block decays geometrically in ``b`` (the carry process analysed
numerically in :mod:`repro.analysis.knuth`).

Deletion uses per-block tombstone-free compaction: deleting from block
``i`` pulls back eligible items from following blocks while their home
precedes the gap — the standard backward-shift repair specialised to
blocks.  (The paper only needs insertions; deletion is provided for API
completeness and is linear in the cluster length.)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..em.storage import EMContext
from ..hashing.base import HashFunction
from .base import ExternalDictionary, LayoutSnapshot
from .batching import normalize_keys


class LinearProbingHashTable(ExternalDictionary):
    """Open addressing with block-granularity linear probing."""

    def __init__(
        self,
        ctx: EMContext,
        hash_fn: HashFunction,
        *,
        blocks: int = 16,
        max_fill: float = 0.9,
    ) -> None:
        super().__init__(ctx)
        if blocks <= 0:
            raise ValueError(f"block count must be positive, got {blocks}")
        if not 0 < max_fill < 1:
            raise ValueError(f"max_fill must lie in (0,1), got {max_fill}")
        self.h = hash_fn
        self.max_fill = max_fill
        self._block_ids = ctx.disk.allocate_many(blocks)
        self._charge_memory()

    # -- memory accounting -----------------------------------------------------

    def memory_words(self) -> int:
        # Seed + base block address + block count: O(1) resident words.
        return 4

    def _charge_memory(self) -> None:
        self.ctx.memory.set_charge(self._charge_key, self.memory_words())

    # -- addressing ----------------------------------------------------------------

    @property
    def block_count(self) -> int:
        return len(self._block_ids)

    def home_of(self, key: int) -> int:
        """Index (not block id) of the home block."""
        return int(self.h.bucket(key, len(self._block_ids)))

    def _probe_sequence(self, start: int):
        d = len(self._block_ids)
        for step in range(d):
            yield (start + step) % d

    # -- operations ---------------------------------------------------------------------

    def insert(self, key: int) -> None:
        if self._size + 1 > self.max_fill * len(self._block_ids) * self.ctx.b:
            self._rebuild(2 * len(self._block_ids))
        self._insert_at(key, self.home_of(key))

    def _insert_at(self, key: int, home: int) -> None:
        """Probe forward from ``home`` and place ``key`` (copy-light I/O)."""
        disk = self.ctx.disk
        ids = self._block_ids
        d = len(ids)
        for step in range(d):
            bid = ids[(home + step) % d]
            blk = disk.load(bid)
            if key in blk:
                return
            if not blk.full:
                blk.append(key)
                disk.store(bid)
                self._size += 1
                self.stats.inserts += 1
                return
            # Overflowing this block: set its overflow bit so lookups
            # know to keep probing past it.
            if not blk.header.get("overflowed"):
                blk.header["overflowed"] = True
                disk.store(bid)
        raise RuntimeError("linear probing table full despite max_fill guard")

    def lookup(self, key: int) -> bool:
        self.stats.lookups += 1
        found, _ = self._lookup_at(key, self.home_of(key))
        if found:
            self.stats.hits += 1
        return found

    def _lookup_at(self, key: int, home: int) -> tuple[bool, int]:
        """Probe forward from ``home``; returns ``(found, blocks read)``."""
        disk = self.ctx.disk
        ids = self._block_ids
        d = len(ids)
        for step in range(d):
            blk = disk.load(ids[(home + step) % d])
            if key in blk:
                return True, step + 1
            if not blk.header.get("overflowed"):
                return False, step + 1
        return False, d

    # -- batch operations ---------------------------------------------------------

    def insert_batch(self, keys: Sequence[int] | np.ndarray) -> None:
        """Vectorised-hash insert; probe walks stay in key order."""
        key_list, arr = normalize_keys(keys)
        hv = self.h.hash_array(arr).tolist()
        max_fill = self.max_fill
        b = self.ctx.b
        for key, h in zip(key_list, hv):
            d = len(self._block_ids)
            if self._size + 1 > max_fill * d * b:
                self._rebuild(2 * d)
                d = len(self._block_ids)
            self._insert_at(key, h % d)

    def lookup_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        d = len(self._block_ids)
        homes = (self.h.hash_array(arr) % np.uint64(d)).tolist()
        out = np.empty(n, dtype=bool)
        hits = 0
        for i in range(n):
            found, ios = self._lookup_at(key_list[i], homes[i])
            out[i] = found
            hits += found
            if cost_out is not None:
                cost_out.append(ios)
        self.stats.lookups += n
        self.stats.hits += hits
        return out

    def delete(self, key: int) -> bool:
        return self._delete_at(key, self.home_of(key))

    def _delete_at(self, key: int, home: int) -> bool:
        """Probe forward from ``home`` and remove ``key`` (backward-shift
        repair on a hit)."""
        for idx in self._probe_sequence(home):
            bid = self._block_ids[idx]
            blk = self.ctx.disk.read(bid)
            if blk.remove(key):
                self.ctx.disk.write(bid, blk)
                self._size -= 1
                self.stats.deletes += 1
                self._compact_after(idx)
                return True
            if not blk.header.get("overflowed"):
                return False
        return False

    def delete_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Vectorised-hash deletes; probe walks and compaction stay in
        key order (the block count never changes on deletion)."""
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        d = len(self._block_ids)
        homes = (self.h.hash_array(arr) % np.uint64(d)).tolist()
        stats = self.ctx.stats
        for i in range(n):
            if cost_out is None:
                out[i] = self._delete_at(key_list[i], homes[i])
            else:
                before = stats.reads + stats.writes
                out[i] = self._delete_at(key_list[i], homes[i])
                cost_out.append(stats.reads + stats.writes - before)
        return out

    def _compact_after(self, gap_idx: int) -> None:
        """Backward-shift repair: refill the gap from overflow runs.

        Walks forward while predecessors had overflowed, pulling back any
        item whose home-to-position run covers the gap.  Conservative
        (may leave stale overflow bits, which only costs extra probes,
        never correctness).
        """
        d = len(self._block_ids)
        gap_bid = self._block_ids[gap_idx]
        cursor = gap_idx
        while True:
            cur_blk = self.ctx.disk.peek(self._block_ids[cursor])
            if not cur_blk.header.get("overflowed"):
                return
            nxt = (cursor + 1) % d
            nxt_bid = self._block_ids[nxt]
            nxt_blk = self.ctx.disk.read(nxt_bid)
            moved = None
            for item in nxt_blk.records():
                home = self.home_of(item)
                if _wraps_before(home, gap_idx, nxt, d):
                    moved = item
                    break
            if moved is None:
                return
            nxt_blk.remove(moved)
            self.ctx.disk.write(nxt_bid, nxt_blk)
            gap_blk = self.ctx.disk.read(gap_bid)
            gap_blk.append(moved)
            self.ctx.disk.write(gap_bid, gap_blk)
            gap_idx = nxt
            gap_bid = nxt_bid
            cursor = nxt

    # -- maintenance -----------------------------------------------------------------------

    def fill_fraction(self) -> float:
        return self._size / (len(self._block_ids) * self.ctx.b)

    def _rebuild(self, new_blocks: int) -> None:
        self.stats.rebuilds += 1
        old_ids = self._block_ids
        items: list[int] = []
        for blk in self.ctx.disk.scan(old_ids):
            items.extend(blk)
        for bid in old_ids:
            self.ctx.disk.free(bid)
        self._block_ids = self.ctx.disk.allocate_many(new_blocks)
        self._charge_memory()
        self._size = 0
        saved = self.stats.inserts
        for item in items:
            self.insert(item)
        self.stats.inserts = saved

    # -- instrumentation --------------------------------------------------------------------

    def layout_snapshot(self) -> LayoutSnapshot:
        blocks = {
            bid: tuple(self.ctx.disk.peek(bid).records()) for bid in self._block_ids
        }
        ids = list(self._block_ids)
        d = len(ids)
        h = self.h

        def address(key: int) -> int:
            return ids[int(h.bucket(key, d))]

        return LayoutSnapshot(
            memory_items=frozenset(),
            blocks=blocks,
            address=address,
            address_description_words=self.memory_words(),
        )

    def check_invariants(self) -> None:
        d = len(self._block_ids)
        total = 0
        seen: set[int] = set()
        for idx, bid in enumerate(self._block_ids):
            blk = self.ctx.disk.peek(bid)
            total += len(blk)
            for x in blk:
                assert x not in seen, f"duplicate item {x}"
                seen.add(x)
                # Every block strictly between home and position must
                # have its overflow bit set (otherwise lookups miss x).
                home = self.home_of(x)
                cur = home
                while cur != idx:
                    between = self.ctx.disk.peek(self._block_ids[cur])
                    assert between.header.get("overflowed"), (
                        f"item {x}: block {cur} between home {home} and "
                        f"position {idx} lacks overflow bit"
                    )
                    cur = (cur + 1) % d
        assert total == self._size


def _wraps_before(home: int, gap: int, pos: int, d: int) -> bool:
    """Is ``home`` positioned at or before ``gap`` on the wrap-around walk to ``pos``?

    True iff moving the item at ``pos`` back to ``gap`` keeps it at or
    after its home block, i.e. the circular interval ``[home, pos]``
    contains ``gap``.
    """
    if home <= pos:
        return home <= gap <= pos
    return gap >= home or gap <= pos
