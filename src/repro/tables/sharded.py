"""A sharded dictionary router: one logical table over N independent shards.

The data-distributed construction strategy (cf. Aghamolaei & Ghodsi in
PAPERS.md) applied to the paper's dictionaries: a
:class:`ShardedDictionary` wraps ``N`` inner
:class:`~repro.tables.base.ExternalDictionary` instances and routes
every operation by a dedicated router hash — one vectorised
shard-of-key split per batch, staged through the same
:func:`~repro.tables.batching.partition_by_bucket` machinery the tables
use for bucket partitioning (with ``stable=True``, because *stream*
order decides each shard's merge/flush boundaries).

The distributed model: ``N`` machines, each with its own ``m``-word
memory and its own disk, sharing one cluster-wide I/O ledger.
Concretely each shard gets a :func:`shard_view` of the parent
:class:`~repro.em.storage.EMContext` —

* the parent's :class:`~repro.em.iostats.IOStats` (cluster I/O total,
  so the drivers' ``t_u``/``t_q`` measurements work unchanged),
* its **own** :class:`~repro.em.disk.Disk` with a strided
  ``first_id`` (shard ``i`` allocates ids from ``i · 2^48``), giving
  every shard a disjoint block-id namespace,
* its **own** :class:`~repro.em.memory.MemoryBudget` of ``m`` words,
* its own storage backend instance of the parent's kind.

The strided namespaces are what make the batch router honest: a shard's
state depends only on its *own* key subsequence, never on how the
cluster interleaved, so ``insert_batch`` (which feeds each shard its
stable-partitioned group in one call) is bit-identical — I/O counters,
layouts, block ids, memory peaks — to the scalar per-key routing loop.
The parity suite extends over shard counts and backends to pin this.

Aggregation: :attr:`stats` sums the shard :class:`TableStats`;
:meth:`layout_snapshot` unions the (disjoint) shard snapshots and
routes the one-I/O address function through the router hash, so the
lower-bound zone analyser consumes a sharded table like any other.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..em.cache import CacheStats
from ..em.errors import ConfigurationError
from ..em.iostats import IOStats
from ..em.storage import EMContext
from ..hashing.base import HashFunction
from ..hashing.family import MULTIPLY_SHIFT
from .base import ExternalDictionary, LayoutSnapshot, TableStats
from .batching import normalize_keys, partition_by_bucket, partition_positions

__all__ = [
    "DEFAULT_SLOTS_PER_SHARD",
    "SHARD_ID_STRIDE",
    "ShardedDictionary",
    "SlotDirectory",
    "make_sharded",
    "shard_view",
]

#: Block-id stride between shard disks.  Far above any realistic
#: allocation count, so shard namespaces can never collide.
SHARD_ID_STRIDE = 1 << 48

#: Default slot-directory fan-out: S = 64·N slots over N shards.  Large
#: enough that single-slot moves shift ~1.5% of a uniform load, small
#: enough that the map stays a cache-resident array.
DEFAULT_SLOTS_PER_SHARD = 64

#: Router seed, fixed and distinct from the table seeds used anywhere in
#: the drivers/benchmarks so shard routing stays independent of bucket
#: hashing.
_ROUTER_SEED = 0x51A2D

#: A factory gets a (per-shard) context and returns the inner table —
#: the same shape as the drivers' ``TableFactory``.
ShardFactory = Callable[[EMContext], ExternalDictionary]


def shard_view(
    parent: EMContext, index: int, *, stats: IOStats | None = None
) -> EMContext:
    """A per-shard context: own disk and memory, shared I/O ledger.

    Models one machine of an ``N``-machine cluster: full ``(b, m, u)``
    geometry, a private disk whose ids start at ``index · 2^48`` (a
    disjoint namespace per shard), a private ``m``-word memory budget,
    and the parent's :class:`IOStats` so the cluster's I/O total
    accumulates in one place.  Passing ``stats`` swaps in a different
    ledger — the service layer gives each shard machine a private one so
    concurrent shards never race on a shared counter object.

    The parent's ``cache_blocks`` axis is inherited: each shard machine
    gets its **own** buffer pool of that many frames, charged against
    its own memory budget (the context builds a
    :class:`~repro.em.cache.CachedDisk` when the axis is positive).
    """
    if stats is None:
        stats = parent.stats
    return EMContext(
        params=parent.params,
        policy=parent.policy,
        record_words=parent.record_words,
        backend=parent.backend,
        cache_blocks=parent.cache_blocks,
        first_id=index * SHARD_ID_STRIDE,
        stats=stats,
        hard_memory=parent.hard_memory,
    )


class SlotDirectory:
    """The two-level route: router hash → one of ``S`` slots → shard.

    The slot map is the unit of load tracking and migration: the router
    hash is fixed for the life of the cluster, but ``slot_map[slot]``
    can be reassigned between epochs, moving every key of that slot to
    another shard without touching the hash.  ``S`` is forced to a
    multiple of ``N`` so the *initial* map (``slot % shards``) composes
    to ``hash % shards`` exactly — default routing is bit-identical to
    the static split, which is what the relabelling contract pins.

    ``version`` increments on every :meth:`assign`; callers that cache
    anything derived from the map (e.g. the open-loop client's per-op
    shard vector) key their cache on it.
    """

    def __init__(
        self,
        router: HashFunction,
        shards: int,
        *,
        slots: int | None = None,
    ) -> None:
        if shards <= 0:
            raise ConfigurationError(f"shard count must be positive, got {shards}")
        if slots is None:
            slots = DEFAULT_SLOTS_PER_SHARD * shards
        if slots <= 0 or slots % shards != 0:
            raise ConfigurationError(
                f"slot count must be a positive multiple of the shard count "
                f"(got slots={slots}, shards={shards}); otherwise the default "
                f"map cannot reproduce hash % shards routing"
            )
        self.router = router
        self.shards = shards
        self.slots = slots
        self.slot_map = (np.arange(slots, dtype=np.int64) % shards).copy()
        self.version = 0

    # -- routing -----------------------------------------------------------

    def slot_of(self, key: int) -> int:
        return int(self.router.hash(key)) % self.slots

    def shard_of(self, key: int) -> int:
        return int(self.slot_map[self.slot_of(key)])

    def slots_of(self, arr: np.ndarray) -> np.ndarray:
        """Vectorised key → slot (one ``hash_array`` call)."""
        return (self.router.hash_array(arr) % np.uint64(self.slots)).astype(
            np.int64
        )

    def shards_of(self, arr: np.ndarray) -> np.ndarray:
        """Vectorised key → shard: the slot map gathered over the slots."""
        return self.slot_map[self.slots_of(arr)]

    # -- migration ---------------------------------------------------------

    def assign(self, slot: int, shard: int) -> None:
        """Repoint one slot; bumps :attr:`version`."""
        if not 0 <= slot < self.slots:
            raise ConfigurationError(f"slot {slot} out of range [0, {self.slots})")
        if not 0 <= shard < self.shards:
            raise ConfigurationError(
                f"shard {shard} out of range [0, {self.shards})"
            )
        self.slot_map[slot] = shard
        self.version += 1

    def shard_slots(self, shard: int) -> np.ndarray:
        """The slots currently mapped to ``shard`` (ascending)."""
        return np.nonzero(self.slot_map == shard)[0]

    def is_static(self) -> bool:
        """True while the map still equals the initial static split."""
        return bool(
            (self.slot_map == np.arange(self.slots, dtype=np.int64) % self.shards)
            .all()
        )


class ShardedDictionary(ExternalDictionary):
    """Routes one logical dictionary over ``N`` independent shards.

    Parameters
    ----------
    ctx:
        The parent context; shards get :func:`shard_view`\\ s of it.
    shard_factory:
        Builds the inner table from a (per-shard) context.
    shards:
        Number of shards ``N >= 1``.
    router:
        Shard-of-key hash; a fixed-seed multiply-shift function by
        default (independent of the tables' bucket hashes).
    slots:
        Slot-directory fan-out (must divide by ``shards``); defaults to
        ``DEFAULT_SLOTS_PER_SHARD * shards``.
    directory:
        An existing :class:`SlotDirectory` to route through (e.g. a
        restored one); built fresh (static map) when omitted.
    """

    def __init__(
        self,
        ctx: EMContext,
        shard_factory: ShardFactory,
        *,
        shards: int = 1,
        router: HashFunction | None = None,
        slots: int | None = None,
        directory: SlotDirectory | None = None,
        name: str | None = None,
    ) -> None:
        if shards <= 0:
            raise ConfigurationError(f"shard count must be positive, got {shards}")
        # Mirrors ExternalDictionary.__init__ except ``stats`` and
        # ``_size``, which are read-only aggregate properties here and
        # must not be assigned.
        self.ctx = ctx
        self.name = name or f"ShardedDictionary[{shards}]"
        self._charge_key = f"{self.name}@{id(self)}"
        self.shards = shards
        self.router = (
            router
            if router is not None
            else MULTIPLY_SHIFT.sample(ctx.u, seed=_ROUTER_SEED)
        )
        if directory is not None:
            if directory.shards != shards:
                raise ConfigurationError(
                    f"directory routes {directory.shards} shards, table has "
                    f"{shards}"
                )
            self.directory = directory
            self.router = directory.router
        else:
            self.directory = SlotDirectory(self.router, shards, slots=slots)
        self._contexts = [shard_view(ctx, i) for i in range(shards)]
        self._shards: list[ExternalDictionary] = [
            shard_factory(sub) for sub in self._contexts
        ]

    # -- routing -----------------------------------------------------------

    def shard_of(self, key: int) -> int:
        """The shard index ``key`` routes to."""
        if self.shards == 1:
            return 0
        return self.directory.shard_of(key)

    def _shard_idx(self, arr: np.ndarray) -> np.ndarray:
        return self.directory.shards_of(arr)

    def _groups(self, arr: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """Stable shard partition returning original positions per group.

        ``[(shard, positions), ...]`` in ascending shard order, each
        ``positions`` preserving arrival order — the index structure
        needed to scatter per-key results and costs back to arrival
        order (see :func:`~repro.tables.batching.partition_positions`).
        """
        return partition_positions(self._shard_idx(arr))

    # -- scalar operations --------------------------------------------------

    def insert(self, key: int) -> None:
        self._shards[self.shard_of(key)].insert(key)

    def lookup(self, key: int) -> bool:
        return self._shards[self.shard_of(key)].lookup(key)

    def delete(self, key: int) -> bool:
        # Routed through the batch helper so the router has no remaining
        # per-key-only operation (one-element batches are I/O-identical
        # by the tables' batch contract).
        return bool(self.delete_batch([key])[0])

    # -- batch operations -----------------------------------------------------

    def insert_batch(self, keys: Sequence[int] | np.ndarray) -> None:
        """Route one stable shard split, then one inner batch per shard.

        Each shard receives exactly the subsequence of ``keys`` the
        scalar loop would have fed it, and shard state is fully
        independent (own disk namespace, own memory), so this is
        bit-identical to ``insert_many`` — including block ids and
        memory peaks — whatever the shard count.
        """
        if self.shards == 1:
            self._shards[0].insert_batch(keys)
            return
        key_list, arr = normalize_keys(keys)
        if not key_list:
            return
        for shard, group in partition_by_bucket(arr, self._shard_idx(arr), stable=True):
            self._shards[shard].insert_batch(group)

    def lookup_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Shard-grouped lookups, scattered back to arrival order.

        Per-query results and I/O costs are state-independent, so the
        grouped order charges the same counters as the scalar loop; the
        group holding the final key runs last so the pending
        read-modify-write block ends where the scalar walk leaves it.
        """
        if self.shards == 1:
            return self._shards[0].lookup_batch(keys, cost_out=cost_out)
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        groups = self._groups(arr)
        last_shard = int(self._shard_idx(arr[-1:])[0])
        groups.sort(key=lambda g: (g[0] == last_shard, g[0]))
        costs = np.zeros(n, dtype=np.int64) if cost_out is not None else None
        for shard, pos in groups:
            sub_costs: list[int] | None = [] if cost_out is not None else None
            out[pos] = self._shards[shard].lookup_batch(arr[pos], cost_out=sub_costs)
            if costs is not None:
                costs[pos] = sub_costs
        if cost_out is not None:
            cost_out.extend(costs.tolist())
        return out

    def delete_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Shard-grouped deletes, scattered back to arrival order.

        A delete mutates only its own shard, and each shard receives
        exactly the subsequence of ``keys`` the scalar loop would feed
        it (stable groups), so results and per-shard charges are
        bit-identical to per-key routing; the group holding the final
        key runs last so the pending read-modify-write block ends where
        the scalar walk leaves it.
        """
        if self.shards == 1:
            return self._shards[0].delete_batch(keys, cost_out=cost_out)
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        groups = self._groups(arr)
        last_shard = int(self._shard_idx(arr[-1:])[0])
        groups.sort(key=lambda g: (g[0] == last_shard, g[0]))
        costs = np.zeros(n, dtype=np.int64) if cost_out is not None else None
        for shard, pos in groups:
            sub_costs: list[int] | None = [] if cost_out is not None else None
            out[pos] = self._shards[shard].delete_batch(arr[pos], cost_out=sub_costs)
            if costs is not None:
                costs[pos] = sub_costs
        if cost_out is not None:
            cost_out.extend(costs.tolist())
        return out

    # -- migration -----------------------------------------------------------

    def migrate_slots(self, moves):
        """Apply slot moves (``[(slot, src, dst), ...]``) to this cluster.

        Thin wrapper over :func:`repro.tables.rebalance.apply_moves`:
        drains each moved slot's live keys out of the source shard with
        ``delete_batch`` and re-inserts them into the destination's own
        namespace, then repoints the directory.  Returns the
        :class:`~repro.tables.rebalance.MigrationReport`.
        """
        from .rebalance import apply_moves

        return apply_moves(self.directory, self._shards, moves)

    # -- aggregation ---------------------------------------------------------

    @property
    def stats(self) -> TableStats:
        """Aggregated operation counters over all shards."""
        agg = TableStats()
        for table in self._shards:
            s = table.stats
            agg.inserts += s.inserts
            agg.lookups += s.lookups
            agg.hits += s.hits
            agg.deletes += s.deletes
            agg.rebuilds += s.rebuilds
            agg.merges += s.merges
            for k, v in s.extra.items():
                agg.extra[k] = agg.extra.get(k, 0) + v
        return agg

    @property
    def _size(self) -> int:
        """Live aggregate size (the base class reads ``_size`` directly)."""
        return sum(len(table) for table in self._shards)

    def shard_tables(self) -> list[ExternalDictionary]:
        """The inner tables, shard order (instrumentation)."""
        return list(self._shards)

    def shard_sizes(self) -> list[int]:
        return [len(table) for table in self._shards]

    def memory_words(self) -> int:
        # Per-machine residency plus the router seed and shard count.
        return sum(table.memory_words() for table in self._shards) + 2

    def memory_high_water(self) -> int:
        """Sum of per-shard memory peaks (each machine peaks on its own)."""
        return sum(sub.memory.high_water for sub in self._contexts)

    def nonempty_disk_blocks(self) -> int:
        return sum(sub.disk.nonempty_blocks() for sub in self._contexts)

    def cache_stats(self):
        """Summed per-shard :class:`~repro.em.cache.CacheStats`, or ``None``.

        ``None`` when the cluster runs uncached (``cache_blocks=0``);
        otherwise a fresh aggregate — pure counter addition over the
        shard pools, so it is independent of shard execution order.
        """
        per_shard = [sub.cache_stats() for sub in self._contexts]
        if not any(s is not None for s in per_shard):
            return None
        agg = CacheStats()
        for s in per_shard:
            if s is not None:
                agg.absorb(s)
        return agg

    # -- instrumentation -------------------------------------------------------

    def layout_snapshot(self) -> LayoutSnapshot:
        """Union of the shard snapshots; the address routes by shard.

        Block-id disjointness is structural (strided disk namespaces),
        so the union never collides and the zone analyser decomposes a
        sharded table exactly like an unsharded one.
        """
        snaps = [table.layout_snapshot() for table in self._shards]
        blocks: dict[int, tuple[int, ...]] = {}
        memory_items: frozenset[int] = frozenset()
        for snap in snaps:
            blocks.update(snap.blocks)
            memory_items |= snap.memory_items
        addresses = [snap.address for snap in snaps]
        directory = self.directory
        shards = self.shards

        def address(key: int) -> int | None:
            if shards == 1:
                return addresses[0](key)
            return addresses[directory.shard_of(key)](key)

        # A static map costs the router seed + shard count to describe
        # (2 words, as before); a migrated map must also be written down
        # slot by slot — the honest description cost of adaptivity.
        route_words = 2 if directory.is_static() else 2 + directory.slots
        return LayoutSnapshot(
            memory_items=memory_items,
            blocks=blocks,
            address=address,
            address_description_words=sum(
                snap.address_description_words for snap in snaps
            )
            + route_words,
        )

    def check_invariants(self) -> None:
        seen_blocks: set[int] = set()
        for i, (table, sub) in enumerate(zip(self._shards, self._contexts)):
            table.check_invariants()
            snap = table.layout_snapshot()
            ids = set(snap.blocks)
            assert not (ids & seen_blocks), f"shard {i} reuses foreign block ids"
            seen_blocks |= ids
            for x in snap.memory_items | snap.disk_items():
                assert self.shard_of(x) == i, (
                    f"item {x} stored in shard {i}, routes to {self.shard_of(x)}"
                )
            lo = i * SHARD_ID_STRIDE
            assert all(lo <= bid < lo + SHARD_ID_STRIDE for bid in ids), (
                f"shard {i} allocated outside its id namespace"
            )


def make_sharded(
    table_factory: ShardFactory,
    shards: int,
    *,
    router: HashFunction | None = None,
    name: str | None = None,
) -> ShardFactory:
    """Wrap a driver ``TableFactory`` into a sharded one.

    ``make_sharded(factory, 8)`` is a drop-in factory for
    :func:`~repro.workloads.drivers.measure_table` and the CLI: the
    returned callable builds a :class:`ShardedDictionary` whose shards
    come from ``table_factory``.
    """
    def factory(ctx: EMContext) -> ExternalDictionary:
        return ShardedDictionary(
            ctx, table_factory, shards=shards, router=router, name=name
        )

    return factory
