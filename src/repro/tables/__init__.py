"""Classic external hash tables: the substrates the paper builds on.

* :class:`~repro.tables.chaining.ChainedHashTable` — the standard table
  (Knuth [13]), the paper's ``1 + 1/2^{Ω(b)}`` upper-bound point.
* :class:`~repro.tables.linear_probing.LinearProbingHashTable` — blocked
  open addressing (Knuth [13, §6.4]).
* :class:`~repro.tables.extendible.ExtendibleHashTable` — Fagin et al. [10].
* :class:`~repro.tables.linear_hashing.LinearHashingTable` — Litwin [14].
"""

from .base import ExternalDictionary, LayoutSnapshot, TableStats, iter_blocks_items
from .chaining import ChainedHashTable
from .extendible import ExtendibleHashTable
from .linear_hashing import LinearHashingTable
from .linear_probing import LinearProbingHashTable
from .overflow import ChainedBucket
from .rebalance import MigrationReport, Rebalancer, SlotMove, apply_moves
from .sharded import ShardedDictionary, SlotDirectory, make_sharded, shard_view

__all__ = [
    "ExternalDictionary",
    "LayoutSnapshot",
    "TableStats",
    "iter_blocks_items",
    "ChainedBucket",
    "ChainedHashTable",
    "ExtendibleHashTable",
    "LinearHashingTable",
    "LinearProbingHashTable",
    "MigrationReport",
    "Rebalancer",
    "ShardedDictionary",
    "SlotDirectory",
    "SlotMove",
    "apply_moves",
    "make_sharded",
    "shard_view",
]
