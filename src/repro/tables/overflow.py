"""Overflow-chain buckets.

Several structures (chained hashing, linear hashing, the big table ``Ĥ``
of Theorem 2) share the same bucket shape: one *primary* block plus a
linked chain of *overflow* blocks, each holding up to ``b`` items, with
the chain pointer kept in the block header (O(1) words, conventionally
un-charged in EM analyses).

:class:`ChainedBucket` encapsulates the I/O discipline:

* a lookup reads the primary block, then overflow blocks until found —
  expected ``1 + 2^{-Ω(b)}`` I/Os at constant load;
* an insert reads/writes the first block with room (one combined I/O
  under the footnote-2 policy), allocating a new tail block when all are
  full.
"""

from __future__ import annotations

from typing import Iterator

from ..em.disk import Disk


class ChainedBucket:
    """A primary disk block with an overflow chain."""

    __slots__ = ("disk", "primary", "_chain")

    def __init__(self, disk: Disk) -> None:
        self.disk = disk
        self.primary = disk.allocate()
        # Chain block ids, in order after the primary.  Kept in memory by
        # the *bucket object* only as a convenience mirror of the header
        # pointers; the I/O discipline below never uses it to skip reads.
        self._chain: list[int] = []

    # -- chain structure -----------------------------------------------------

    @property
    def block_ids(self) -> list[int]:
        return [self.primary, *self._chain]

    @property
    def chain_length(self) -> int:
        """Number of overflow blocks."""
        return len(self._chain)

    # -- charged operations ------------------------------------------------------

    def lookup(self, key: int) -> tuple[bool, int]:
        """Search the chain for ``key``.

        Returns ``(found, ios)`` where ``ios`` is the number of blocks
        read (the chain is walked via header pointers, so the search
        stops one block after the hit or at the chain's end).
        """
        ios = 0
        for bid in self.block_ids:
            blk = self.disk.read(bid)
            ios += 1
            if key in blk:
                return True, ios
            if blk.header.get("next") is None:
                break
        return False, ios

    def insert(self, key: int) -> bool:
        """Insert ``key`` unless present; returns ``True`` if inserted.

        Walks the chain once: the first block with room receives the key
        (read + write, combining to one I/O); a full chain grows a new
        tail block.
        """
        prev_bid: int | None = None
        for bid in self.block_ids:
            blk = self.disk.read(bid)
            if key in blk:
                return False
            if not blk.full:
                blk.append(key)
                self.disk.write(bid, blk)
                return True
            prev_bid = bid
        # Every block full: allocate a tail and link it from the last block.
        new_bid = self.disk.allocate()
        assert prev_bid is not None
        with self.disk.modify(prev_bid) as prev_blk:
            prev_blk.header["next"] = new_bid
        with self.disk.modify(new_bid) as new_blk:
            new_blk.append(key)
        self._chain.append(new_bid)
        return True

    def delete(self, key: int) -> bool:
        """Remove ``key`` from whichever chain block holds it."""
        for bid in self.block_ids:
            blk = self.disk.read(bid)
            if blk.remove(key):
                self.disk.write(bid, blk)
                return True
            if blk.header.get("next") is None:
                break
        return False

    def read_all(self) -> list[int]:
        """Read every block of the chain (charged) and return all items."""
        items: list[int] = []
        for bid in self.block_ids:
            items.extend(self.disk.read(bid).records())
        return items

    def replace_all(self, items: list[int]) -> None:
        """Rewrite the bucket to contain exactly ``items`` (charged writes).

        Packs items ``b`` per block, reusing existing chain blocks and
        allocating/freeing as needed.
        """
        b = self.disk.b // self.disk.record_words
        needed = max(1, -(-len(items) // b)) - 1  # overflow blocks needed
        while len(self._chain) < needed:
            self._chain.append(self.disk.allocate())
        while len(self._chain) > needed:
            victim = self._chain.pop()
            self.disk.free(victim)
        ids = self.block_ids
        for i, bid in enumerate(ids):
            chunk = items[i * b : (i + 1) * b]
            blk = self.disk.peek(bid)
            blk.replace_contents(chunk)
            blk.header.pop("next", None)
            if i + 1 < len(ids):
                blk.header["next"] = ids[i + 1]
            # No rmw invalidation: a rewrite immediately after reading
            # the same block (the read_all → replace_all merge pattern)
            # is footnote 2's one-I/O read-modify-write.
            self.disk.write(bid, blk)

    # -- uncharged introspection ---------------------------------------------------

    def peek_all(self) -> list[int]:
        """All items in the bucket without charging I/O (instrumentation)."""
        items: list[int] = []
        for bid in self.block_ids:
            items.extend(self.disk.peek(bid).records())
        return items

    def peek_blocks(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        for bid in self.block_ids:
            yield bid, tuple(self.disk.peek(bid).records())

    def item_count(self) -> int:
        return len(self.peek_all())

    def free_all(self) -> None:
        """Release every block of the bucket back to the disk."""
        for bid in self.block_ids:
            self.disk.free(bid)
        self._chain.clear()
