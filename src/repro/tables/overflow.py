"""Overflow-chain buckets.

Several structures (chained hashing, linear hashing, the big table ``Ĥ``
of Theorem 2) share the same bucket shape: one *primary* block plus a
linked chain of *overflow* blocks, each holding up to ``b`` items, with
the chain pointer kept in the block header (O(1) words, conventionally
un-charged in EM analyses).

:class:`ChainedBucket` encapsulates the I/O discipline:

* a lookup reads the primary block, then overflow blocks until found —
  expected ``1 + 2^{-Ω(b)}`` I/Os at constant load;
* an insert reads/writes the first block with room (one combined I/O
  under the footnote-2 policy), allocating a new tail block when all are
  full.

All charged accesses ride the disk's copy-light loan API
(:meth:`~repro.em.disk.Disk.load` / :meth:`~repro.em.disk.Disk.store`),
so a read-merge-write cycle moves each record once; the I/O counters are
identical to the copying path by the disk's contract.
"""

from __future__ import annotations

from typing import Iterator

from ..em.disk import Disk


class ChainedBucket:
    """A primary disk block with an overflow chain."""

    __slots__ = ("disk", "primary", "_chain")

    def __init__(self, disk: Disk, *, primary: int | None = None) -> None:
        self.disk = disk
        self.primary = disk.allocate() if primary is None else primary
        # Chain block ids, in order after the primary.  Kept in memory by
        # the *bucket object* only as a convenience mirror of the header
        # pointers; the I/O discipline below never uses it to skip reads.
        self._chain: list[int] = []

    @classmethod
    def bulk_row(cls, disk: Disk, count: int) -> list["ChainedBucket"]:
        """Allocate ``count`` buckets over one bulk primary-block grab.

        Used by the rebuild/merge code so doubling a ``d``-bucket table
        costs one :meth:`~repro.em.disk.Disk.allocate_many` instead of
        ``d`` allocator round trips.  Block ids come out identical to a
        loop of single allocations.
        """
        return [cls(disk, primary=bid) for bid in disk.allocate_many(count)]

    # -- chain structure -----------------------------------------------------

    @property
    def block_ids(self) -> list[int]:
        return [self.primary, *self._chain]

    @property
    def chain_length(self) -> int:
        """Number of overflow blocks."""
        return len(self._chain)

    # -- charged operations ------------------------------------------------------

    def lookup(self, key: int) -> tuple[bool, int]:
        """Search the chain for ``key``.

        Returns ``(found, ios)`` where ``ios`` is the number of blocks
        read (the chain is walked via header pointers, so the search
        stops one block after the hit or at the chain's end).
        """
        disk = self.disk
        if not self._chain:
            # Chain-free bucket: one charged read, served record-level.
            return disk.probe_record(self.primary, key), 1
        ios = 0
        for bid in self.block_ids:
            blk = disk.read(bid, copy=False)
            ios += 1
            if key in blk:
                return True, ios
            if blk.header.get("next") is None:
                break
        return False, ios

    def insert(self, key: int) -> bool:
        """Insert ``key`` unless present; returns ``True`` if inserted.

        Walks the chain once: the first block with room receives the key
        (read + write, combining to one I/O); a full chain grows a new
        tail block.
        """
        disk = self.disk
        prev_bid: int | None = None
        for bid in self.block_ids:
            blk = disk.load(bid)
            if key in blk:
                return False
            if not blk.full:
                blk.append(key)
                disk.store(bid)
                return True
            prev_bid = bid
        # Every block full: allocate a tail and link it from the last block.
        new_bid = disk.allocate()
        assert prev_bid is not None
        with disk.modify(prev_bid) as prev_blk:
            prev_blk.header["next"] = new_bid
        with disk.modify(new_bid) as new_blk:
            new_blk.append(key)
        self._chain.append(new_bid)
        return True

    def delete(self, key: int) -> bool:
        """Remove ``key`` from whichever chain block holds it."""
        disk = self.disk
        if not self._chain:
            # Chain-free bucket: the probe is a single read (+ combining
            # write on a hit), served record-level without materialising
            # a Block — same charge, same resulting record order.
            return disk.remove_record(self.primary, key)
        for bid in self.block_ids:
            blk = disk.load(bid)
            if blk.remove(key):
                disk.store(bid)
                return True
            if blk.header.get("next") is None:
                break
        return False

    def read_all(self) -> list[int]:
        """Read every block of the chain (charged) and return all items."""
        return self.disk.read_records(self.block_ids)

    def absorb(self, incoming: list[int]) -> None:
        """Read the chain, append ``incoming``, rewrite — one RMW pass.

        Charges exactly like ``replace_all(read_all() + incoming)``,
        which is also its literal fallback implementation.
        """
        self.replace_all(self.read_all() + incoming)

    def replace_all(self, items: list[int]) -> None:
        """Rewrite the bucket to contain exactly ``items`` (charged writes).

        Packs items ``b`` per block, reusing existing chain blocks and
        allocating/freeing as needed.
        """
        disk = self.disk
        b = disk.b // disk.record_words
        needed = max(1, -(-len(items) // b)) - 1  # overflow blocks needed
        while len(self._chain) < needed:
            self._chain.append(disk.allocate())
        while len(self._chain) > needed:
            victim = self._chain.pop()
            disk.free(victim)
        ids = self.block_ids
        last = len(ids) - 1
        for i, bid in enumerate(ids):
            blk = disk.stage(bid)
            blk.replace_contents(items[i * b : (i + 1) * b])
            blk.header.pop("next", None)
            if i < last:
                blk.header["next"] = ids[i + 1]
            # No rmw invalidation: a rewrite immediately after reading
            # the same block (the read_all → replace_all merge pattern)
            # is footnote 2's one-I/O read-modify-write.
            disk.store(bid)

    # -- uncharged introspection ---------------------------------------------------

    def peek_all(self) -> list[int]:
        """All items in the bucket without charging I/O (instrumentation)."""
        items: list[int] = []
        for bid in self.block_ids:
            items.extend(self.disk.peek(bid, copy=False).records())
        return items

    def peek_blocks(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        for bid in self.block_ids:
            yield bid, tuple(self.disk.peek(bid, copy=False).records())

    def item_count(self) -> int:
        return len(self.peek_all())

    def free_all(self) -> None:
        """Release every block of the bucket back to the disk."""
        for bid in self.block_ids:
            self.disk.free(bid)
        self._chain.clear()


def bulk_merge_into(
    buckets: list[ChainedBucket],
    parts: list[tuple[int, list[int]]],
    disk: Disk,
) -> None:
    """Merge per-bucket item groups into ``buckets`` at bulk prices.

    ``parts`` is the output of
    :func:`~repro.tables.batching.partition_by_bucket` — the staged
    groups the scalar merge loops feed through ``read_all`` +
    ``replace_all`` one bucket at a time.  The common case (chain-free
    bucket, merged contents still fit one block) is executed as an
    in-place read-modify-write with *deferred bulk charging* that
    reproduces the scalar counter arithmetic exactly:

    * each bucket costs one read, and its write immediately follows the
      read of the same block, so under a ``combine_rmw`` policy it nets
      to ``combined`` instead of ``writes``;
    * a previously empty, header-less block counts one allocation, and
      is uncharged when the policy says allocations are free;
    * the pending read-modify-write block ends as ``None`` (the last
      charged I/O is always a write), exactly as the scalar loop leaves
      it.

    Chained or overflowing buckets fall back to
    :meth:`ChainedBucket.absorb`, which charges through the normal
    path.  I/O totals are bit-identical either way; the parity suite
    exercises both branches.

    On a cached disk each fast-path bucket first consults the buffer
    pool: a resident frame is a **hit** (the read is not charged, the
    frame is invalidated before the backend-level append so it can
    never go stale, and the following write cannot combine — no
    physical read happened), a non-resident one is a charged **miss**
    that combines exactly like the uncached arithmetic.  Reads avoided
    equal hits counted, preserving the
    ``hits + misses == uncached charged reads`` contract.
    """
    if not parts:
        return
    # Record-level backend access plus the disk's generation table:
    # module-internal fast path shared with Disk (same library, see the
    # uncharged record-level API in em.disk).
    backend = disk.backend
    gen = disk._gen
    stats = disk.stats
    cache = disk.cache
    cap = disk.b // disk.record_words
    fast = 0
    nfresh = 0
    hit_count = 0
    hit_fresh = 0
    for idx, incoming in parts:
        bkt = buckets[idx]
        if bkt._chain:
            bkt.absorb(incoming)
            continue
        bid = bkt.primary
        if backend.length(bid) + len(incoming) > cap:
            bkt.absorb(incoming)
            continue
        fresh = backend.is_fresh(bid)
        if fresh:
            nfresh += 1
        if cache is not None and cache.is_resident(bid):
            cache.invalidate(bid, discard=True)
            hit_count += 1
            if fresh:
                hit_fresh += 1
        backend.append(bid, incoming)
        gen[bid] = gen.get(bid, 0) + 1
        fast += 1
    if fast:
        policy = stats.policy
        stats.allocations += nfresh
        if cache is None:
            stats.reads += fast
            charged_writes = fast if policy.charge_allocation else fast - nfresh
            if policy.combine_rmw:
                stats.combined += charged_writes
            else:
                stats.writes += charged_writes
        else:
            miss_count = fast - hit_count
            cache.stats.hits += hit_count
            cache.stats.misses += miss_count
            stats.reads += miss_count
            if policy.charge_allocation:
                miss_charged = miss_count
                hit_charged = hit_count
            else:
                miss_charged = miss_count - (nfresh - hit_fresh)
                hit_charged = hit_count - hit_fresh
            if policy.combine_rmw:
                stats.combined += miss_charged
            else:
                stats.writes += miss_charged
            stats.writes += hit_charged
    stats._last_read_block = None


def bulk_fill_buckets(
    buckets: list[ChainedBucket],
    parts: list[tuple[int, list[int]]],
    disk: Disk,
) -> None:
    """Write staged groups into freshly allocated, never-written buckets.

    The rebuild counterpart of :func:`bulk_merge_into`: every receiving
    bucket is brand new (one empty, header-less primary block), so each
    single-block write is a first write — one allocation, charged as a
    write (or free when the policy says allocations are) and never
    combining, since a fresh block cannot be the pending RMW block.
    Groups too large for one block fall back to
    :meth:`ChainedBucket.replace_all`.  Charges are bit-identical to the
    per-bucket scalar loop.
    """
    if not parts:
        return
    backend = disk.backend
    gen = disk._gen
    stats = disk.stats
    cache = disk.cache
    cap = disk.b // disk.record_words
    written = 0
    for idx, items in parts:
        bkt = buckets[idx]
        if len(items) > cap:
            bkt.replace_all(items)
            continue
        bid = bkt.primary
        if cache is not None:
            # Fresh targets are normally never resident; invalidate
            # defensively so a stale frame can never survive the
            # backend-level overwrite.
            cache.invalidate(bid, discard=True)
        backend.replace(bid, items)
        gen[bid] = gen.get(bid, 0) + 1
        written += 1
    if written:
        stats.allocations += written
        if stats.policy.charge_allocation:
            stats.writes += written
        stats._last_read_block = None
