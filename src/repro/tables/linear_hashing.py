"""Linear hashing (Litwin [14]).

Buckets split one at a time in a fixed cyclic order, controlled by a
*split pointer* ``p`` and *level* ``l``: keys address into
``2^l * n0`` buckets via the low bits, except keys landing before the
split pointer use one more bit.  A split is triggered whenever the
overall fill passes ``split_threshold`` — decoupling *which* bucket
splits from *which* bucket overflowed (overflow chains absorb the
difference).

This is the other classic the paper cites for maintaining the load
factor at ``O(1/b)`` amortized extra cost, and unlike extendible
hashing it needs only O(1) words of memory for addressing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..em.storage import EMContext
from ..hashing.base import HashFunction
from .base import ExternalDictionary, LayoutSnapshot
from .batching import normalize_keys
from .overflow import ChainedBucket


class LinearHashingTable(ExternalDictionary):
    """Litwin's linear hashing with overflow chains."""

    def __init__(
        self,
        ctx: EMContext,
        hash_fn: HashFunction,
        *,
        initial_buckets: int = 4,
        split_threshold: float = 0.75,
    ) -> None:
        super().__init__(ctx)
        if initial_buckets <= 0:
            raise ValueError("initial_buckets must be positive")
        if not 0 < split_threshold:
            raise ValueError("split_threshold must be positive")
        self.h = hash_fn
        self.n0 = initial_buckets
        self.level = 0
        self.split_ptr = 0
        self.split_threshold = split_threshold
        self._buckets: list[ChainedBucket] = [
            ChainedBucket(ctx.disk) for _ in range(initial_buckets)
        ]
        self._charge_memory()

    # -- memory accounting ------------------------------------------------------

    def memory_words(self) -> int:
        # Addressing needs n0, level, split pointer, seed, plus the
        # bucket directory (base addresses).  Litwin's scheme can place
        # buckets contiguously, needing O(1) words; we keep the directory
        # for simulator flexibility but charge the O(1) canonical cost
        # plus one word per bucket to stay honest about our layout.
        return 4 + len(self._buckets)

    def _charge_memory(self) -> None:
        self.ctx.memory.set_charge(self._charge_key, self.memory_words())

    # -- addressing -------------------------------------------------------------------

    def bucket_index(self, key: int) -> int:
        """Litwin addressing: low ``level`` bits, one more before the pointer."""
        hv = int(self.h.hash(key))
        idx = hv % (self.n0 << self.level)
        if idx < self.split_ptr:
            idx = hv % (self.n0 << (self.level + 1))
        return idx

    # -- operations -----------------------------------------------------------------------

    def lookup(self, key: int) -> bool:
        self.stats.lookups += 1
        found, _ = self._buckets[self.bucket_index(key)].lookup(key)
        if found:
            self.stats.hits += 1
        return found

    def insert(self, key: int) -> None:
        if self._buckets[self.bucket_index(key)].insert(key):
            self._size += 1
            self.stats.inserts += 1
            if self.fill_fraction() > self.split_threshold:
                self._split_next()

    def delete(self, key: int) -> bool:
        if self._buckets[self.bucket_index(key)].delete(key):
            self._size -= 1
            self.stats.deletes += 1
            return True
        return False

    # -- batch operations ---------------------------------------------------------

    def insert_batch(self, keys: Sequence[int] | np.ndarray) -> None:
        """Vectorised-hash insert: one ``hash_array`` call for the batch.

        Litwin addressing is re-derived per key from the stored
        full-entropy hash (level and split pointer move mid-batch), so
        the chain walks — and the charged I/Os — stay identical to the
        scalar loop.
        """
        key_list, arr = normalize_keys(keys)
        if not key_list:
            return
        hv = self.h.hash_array(arr).tolist()
        for key, h in zip(key_list, hv):
            idx = h % (self.n0 << self.level)
            if idx < self.split_ptr:
                idx = h % (self.n0 << (self.level + 1))
            if self._buckets[idx].insert(key):
                self._size += 1
                self.stats.inserts += 1
                if self.fill_fraction() > self.split_threshold:
                    self._split_next()

    def lookup_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Vectorised-hash lookups; the chain walk stays per key.

        Same shape as :meth:`ChainedHashTable.lookup_batch`: hashing and
        bookkeeping are amortised over the batch, the data-dependent
        chain walk charges exactly as the scalar loop.
        """
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        hv = self.h.hash_array(arr).tolist()
        buckets = self._buckets
        narrow = self.n0 << self.level
        wide = self.n0 << (self.level + 1)
        sp = self.split_ptr
        hits = 0
        for i in range(n):
            h = hv[i]
            idx = h % narrow
            if idx < sp:
                idx = h % wide
            found, ios = buckets[idx].lookup(key_list[i])
            out[i] = found
            hits += found
            if cost_out is not None:
                cost_out.append(ios)
        self.stats.lookups += n
        self.stats.hits += hits
        return out

    def delete_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Vectorised-hash deletes; the chain walk stays per key.

        Deletion never moves the split pointer or level, so Litwin
        addressing is computed for the whole batch up front.
        """
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        hv = self.h.hash_array(arr)
        narrow = np.uint64(self.n0 << self.level)
        wide = np.uint64(self.n0 << (self.level + 1))
        idx = (hv % narrow).astype(np.int64)
        before_ptr = idx < self.split_ptr
        if before_ptr.any():
            idx[before_ptr] = (hv[before_ptr] % wide).astype(np.int64)
        idx = idx.tolist()
        buckets = self._buckets
        stats = self.ctx.stats
        removed = 0
        for i in range(n):
            if cost_out is None:
                hit = buckets[idx[i]].delete(key_list[i])
            else:
                before = stats.reads + stats.writes
                hit = buckets[idx[i]].delete(key_list[i])
                cost_out.append(stats.reads + stats.writes - before)
            out[i] = hit
            removed += hit
        self._size -= removed
        self.stats.deletes += removed
        return out

    # -- splitting --------------------------------------------------------------------------

    def _split_next(self) -> None:
        """Split the bucket at the split pointer and advance it."""
        self.stats.bump("splits")
        victim = self._buckets[self.split_ptr]
        items = victim.read_all()
        new_bucket = ChainedBucket(self.ctx.disk)
        self._buckets.append(new_bucket)

        wide = self.n0 << (self.level + 1)
        # One hash_array pass decides stay-or-move for the whole bucket.
        arr = np.asarray(items, dtype=np.uint64)
        moving = (self.h.hash_array(arr) % np.uint64(wide)) != self.split_ptr
        keep = arr[~moving].tolist()
        move = arr[moving].tolist()
        victim.replace_all(keep)
        new_bucket.replace_all(move)

        self.split_ptr += 1
        if self.split_ptr == self.n0 << self.level:
            self.split_ptr = 0
            self.level += 1
        self._charge_memory()

    def fill_fraction(self) -> float:
        return self._size / (len(self._buckets) * self.ctx.b)

    def load_factor(self) -> float:
        blocks = sum(1 + bkt.chain_length for bkt in self._buckets)
        if blocks == 0:
            return 0.0
        return -(-self._size // self.ctx.b) / blocks

    # -- instrumentation ----------------------------------------------------------------------

    def layout_snapshot(self) -> LayoutSnapshot:
        blocks: dict[int, tuple[int, ...]] = {}
        for bkt in self._buckets:
            for bid, items in bkt.peek_blocks():
                blocks[bid] = items
        primaries = [bkt.primary for bkt in self._buckets]
        index_of = self.bucket_index

        def address(key: int) -> int:
            return primaries[index_of(key)]

        return LayoutSnapshot(
            memory_items=frozenset(),
            blocks=blocks,
            address=address,
            address_description_words=self.memory_words(),
        )

    def check_invariants(self) -> None:
        assert 0 <= self.split_ptr < (self.n0 << self.level) or (
            self.split_ptr == 0 and self.level >= 0
        )
        assert len(self._buckets) == (self.n0 << self.level) + self.split_ptr
        total = 0
        for idx, bkt in enumerate(self._buckets):
            items = bkt.peek_all()
            total += len(items)
            for x in items:
                assert self.bucket_index(x) == idx, (
                    f"item {x} in bucket {idx}, addresses to {self.bucket_index(x)}"
                )
        assert total == self._size
