"""Hash-family registry and sampling.

A :class:`HashFamily` abstracts "pick a fresh function with seed s" so
tables can be constructed generically and experiments can sweep
families.  The registry maps short names (used on benchmark command
lines and in EXPERIMENTS.md) to families.

The paper's lower bound observes that the table's address-function
family ``F`` must be fixed in advance and describable in memory
(``|F| <= 2^{m log u}``); :meth:`HashFamily.description_words` reports
each family's memory footprint so experiments can charge it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .base import HashFunction
from .ideal import IdealHash, MemoisedIdealHash
from .multiply_shift import MultiplyShiftHash
from .tabulation import TabulationHash
from .universal import CarterWegmanHash, PolynomialHash


@dataclass(frozen=True)
class HashFamily:
    """A named constructor of seeded hash functions."""

    name: str
    factory: Callable[[int, int], HashFunction]
    #: Words of main memory one sampled function occupies (seed/coefficients
    #: or tabulation tables).
    description_words_fn: Callable[[HashFunction], int] = lambda h: 2

    def sample(self, u: int, seed: int) -> HashFunction:
        """Instantiate the family member with the given seed."""
        return self.factory(u, seed)

    def description_words(self, h: HashFunction) -> int:
        return self.description_words_fn(h)


IDEAL = HashFamily("ideal", lambda u, s: IdealHash(u, s))
MEMOISED_IDEAL = HashFamily("memoised-ideal", lambda u, s: MemoisedIdealHash(u, s))
MULTIPLY_SHIFT = HashFamily("multiply-shift", lambda u, s: MultiplyShiftHash(u, s))
CARTER_WEGMAN = HashFamily("carter-wegman", lambda u, s: CarterWegmanHash(u, s))
POLYNOMIAL4 = HashFamily(
    "poly4", lambda u, s: PolynomialHash(u, s, k=4), lambda h: getattr(h, "k", 4)
)
TABULATION = HashFamily(
    "tabulation",
    lambda u, s: TabulationHash(u, s),
    lambda h: h.memory_words() if isinstance(h, TabulationHash) else 2,
)

FAMILIES: dict[str, HashFamily] = {
    f.name: f
    for f in (
        IDEAL,
        MEMOISED_IDEAL,
        MULTIPLY_SHIFT,
        CARTER_WEGMAN,
        POLYNOMIAL4,
        TABULATION,
    )
}


def get_family(name: str) -> HashFamily:
    """Look up a family by registry name (raises ``KeyError`` with choices)."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown hash family {name!r}; choices: {sorted(FAMILIES)}"
        ) from None
