"""Interfaces for hash functions over the universe ``U = {0, ..., u-1}``.

The paper's setting: a hash function ``h`` maps an item ``x`` to a hash
value in ``[0, u)``; the table then uses low-order bits or a range
reduction of ``h(x)`` to pick a bucket.  We separate the two:

* :class:`HashFunction` — the full-entropy map ``U -> [0, u)``;
* :meth:`HashFunction.bucket` — range reduction to ``r`` buckets;
* :meth:`HashFunction.low_bits` — the "k least significant bits"
  addressing that Section 3's logarithmic method requires (so that a
  bucket of ``H_k`` splits into γ consecutive buckets of ``H_{k+1}``).

Implementations must be deterministic given their seed, and must provide
a vectorised ``hash_array`` for numpy batches.
"""

from __future__ import annotations

import abc

import numpy as np


class HashFunction(abc.ABC):
    """A seeded hash function ``h : [0, u) -> [0, u)``."""

    def __init__(self, u: int, seed: int = 0) -> None:
        if u <= 1:
            raise ValueError(f"universe size must exceed 1, got {u}")
        self.u = u
        self.seed = seed

    # -- required ----------------------------------------------------------

    @abc.abstractmethod
    def hash(self, key: int) -> int:
        """The hash value ``h(key)`` in ``[0, u)``."""

    @abc.abstractmethod
    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`hash` over a ``uint64`` array."""

    # -- derived addressing --------------------------------------------------

    def bucket(self, key: int, r: int) -> int:
        """Range-reduce ``h(key)`` to a bucket index in ``[0, r)``.

        Uses the modulo reduction, which composes predictably with the
        low-bits addressing when ``r`` is a power of two.
        """
        return self.hash(key) % r

    def bucket_array(self, keys: np.ndarray, r: int) -> np.ndarray:
        return self.hash_array(keys) % np.uint64(r)

    def low_bits(self, key: int, bits: int) -> int:
        """The ``bits`` least significant bits of ``h(key)``.

        Section 3's tables use ``k log γ + log(m/b)`` low bits so that
        one bucket of ``H_k`` maps onto γ consecutive buckets of
        ``H_{k+1}`` and merges are a parallel scan.
        """
        return self.hash(key) & ((1 << bits) - 1)

    def low_bits_array(self, keys: np.ndarray, bits: int) -> np.ndarray:
        return self.hash_array(keys) & np.uint64((1 << bits) - 1)

    def __call__(self, key: int) -> int:
        return self.hash(key)

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.u:
            raise ValueError(f"key {key} outside universe [0, {self.u})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(u={self.u}, seed={self.seed})"
