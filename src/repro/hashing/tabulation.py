"""Simple tabulation hashing.

Splits a 64-bit key into ``chars`` characters, looks each up in an
independent random table, and XORs the results.  Only 3-wise
independent, but with strong Chernoff-style concentration (Pătraşcu &
Thorup), making it a realistic "practical family" ablation point for
the paper's ideal-hash assumption.

The tables consume ``chars * 2^char_bits`` words — a real memory cost
the experiments charge against the budget via :meth:`memory_words`.
"""

from __future__ import annotations

import numpy as np

from .base import HashFunction
from .ideal import _mulhi_reduce


class TabulationHash(HashFunction):
    """XOR of per-character random table lookups."""

    def __init__(self, u: int, seed: int = 0, *, char_bits: int = 8) -> None:
        if char_bits not in (4, 8, 16):
            raise ValueError(f"char_bits must be 4, 8 or 16, got {char_bits}")
        super().__init__(u, seed)
        self.char_bits = char_bits
        self.chars = (64 + char_bits - 1) // char_bits
        rng = np.random.default_rng(seed)
        self.tables = rng.integers(
            0, 1 << 64, size=(self.chars, 1 << char_bits), dtype=np.uint64
        )
        self._mask = (1 << char_bits) - 1

    def memory_words(self) -> int:
        """Words of memory the lookup tables occupy."""
        return self.tables.size

    def hash(self, key: int) -> int:
        self._check_key(key)
        v = 0
        k = key
        for c in range(self.chars):
            v ^= int(self.tables[c, k & self._mask])
            k >>= self.char_bits
        if self.u & (self.u - 1) == 0:
            return v & (self.u - 1)
        return (v * self.u) >> 64

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        k = np.asarray(keys, dtype=np.uint64)
        v = np.zeros_like(k)
        mask = np.uint64(self._mask)
        for c in range(self.chars):
            idx = (k >> np.uint64(c * self.char_bits)) & mask
            v ^= self.tables[c][idx.astype(np.int64)]
        if self.u & (self.u - 1) == 0:
            return v & np.uint64(self.u - 1)
        return _mulhi_reduce(v, self.u)
