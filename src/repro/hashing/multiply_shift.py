"""Multiply-shift hashing (Dietzfelbinger et al.).

The fastest practically universal family on word-sized keys:
``h_a(x) = (a * x mod 2^64) >> (64 - l)`` with odd ``a``, hashing into
``2^l`` values.  For non-power-of-two universes we follow with a Lemire
reduction.  Fully vectorises — the family the benchmark drivers default
to when they need to hash millions of keys.
"""

from __future__ import annotations

import numpy as np

from .base import HashFunction
from .ideal import _mulhi_reduce
from .mixers import MASK64, splitmix64


class MultiplyShiftHash(HashFunction):
    """2-approximately-universal multiply-shift hashing on 64-bit words."""

    def __init__(self, u: int, seed: int = 0) -> None:
        super().__init__(u, seed)
        self.a = (splitmix64(seed ^ 0xA5A5A5A5A5A5A5A5) | 1) & MASK64
        self.a2 = (splitmix64(seed + 0x1234567) | 1) & MASK64

    def hash(self, key: int) -> int:
        self._check_key(key)
        # Two rounds of multiply-xorshift to decorrelate low bits, which
        # plain multiply-shift leaves weak and the low-bits addressing of
        # Section 3 relies on.
        v = (key * self.a) & MASK64
        v ^= v >> 29
        v = (v * self.a2) & MASK64
        v ^= v >> 32
        if self.u & (self.u - 1) == 0:
            return v & (self.u - 1)
        return (v * self.u) >> 64

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        v = np.asarray(keys, dtype=np.uint64)
        with np.errstate(over="ignore"):
            v = v * np.uint64(self.a)
            v = v ^ (v >> np.uint64(29))
            v = v * np.uint64(self.a2)
            v = v ^ (v >> np.uint64(32))
        if self.u & (self.u - 1) == 0:
            return v & np.uint64(self.u - 1)
        return _mulhi_reduce(v, self.u)
