"""Ideal (fully random) hashing.

The paper's analysis — like Knuth's — assumes ``h`` is an *ideal* hash
function: each key's hash value is independently uniform on ``[0, u)``
(an assumption justified for realistic data by Mitzenmacher--Vadhan
[15]).  :class:`IdealHash` realises this with a keyed splitmix64 chain:
for practical purposes the values are indistinguishable from fresh
uniform draws, they are deterministic given the seed (so experiments
replay), and — unlike a memoised table of true random draws — batch
hashing vectorises.

:class:`MemoisedIdealHash` instead draws honest uniform values from a
PCG64 stream and memoises them, for tests that want the literal model.
"""

from __future__ import annotations

import numpy as np

from .base import HashFunction
from .mixers import MASK64, mix_seed, splitmix64, splitmix64_array


class IdealHash(HashFunction):
    """Deterministic stand-in for a fully random function ``U -> [0, u)``.

    For a power-of-two universe the masked splitmix64 output is exactly
    uniform; for general ``u`` we reject-free reduce by multiplying into
    the range (Lemire reduction), whose bias is ``< 2^-40`` for the
    universes used here.
    """

    def hash(self, key: int) -> int:
        self._check_key(key)
        v = mix_seed(self.seed, key)
        if self.u & (self.u - 1) == 0:
            return v & (self.u - 1)
        return (v * self.u) >> 64

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        seeded = splitmix64_array(keys) ^ np.uint64(self.seed & MASK64)
        v = splitmix64_array(seeded)
        if self.u & (self.u - 1) == 0:
            return v & np.uint64(self.u - 1)
        # 128-bit multiply-high via split into 32-bit halves.
        return _mulhi_reduce(v, self.u)


def _mulhi_reduce(v: np.ndarray, u: int) -> np.ndarray:
    """Vectorised Lemire reduction ``(v * u) >> 64`` for uint64 ``v``."""
    lo32 = np.uint64(0xFFFFFFFF)
    v_lo = v & lo32
    v_hi = v >> np.uint64(32)
    u_lo = np.uint64(u & 0xFFFFFFFF)
    u_hi = np.uint64((u >> 32) & 0xFFFFFFFF)
    with np.errstate(over="ignore"):
        ll = v_lo * u_lo
        lh = v_lo * u_hi
        hl = v_hi * u_lo
        hh = v_hi * u_hi
        carry = ((ll >> np.uint64(32)) + (lh & lo32) + (hl & lo32)) >> np.uint64(32)
        out = hh + (lh >> np.uint64(32)) + (hl >> np.uint64(32)) + carry
    return out


class MemoisedIdealHash(HashFunction):
    """Literal ideal hashing: fresh uniform draws, memoised per key.

    Mirrors the lower-bound construction exactly (each ``h(x)`` is an
    independent uniform sample).  Memory usage grows with the number of
    distinct keys hashed, so use only in tests and small experiments.
    """

    def __init__(self, u: int, seed: int = 0) -> None:
        super().__init__(u, seed)
        self._rng = np.random.default_rng(seed)
        self._memo: dict[int, int] = {}

    def hash(self, key: int) -> int:
        self._check_key(key)
        v = self._memo.get(key)
        if v is None:
            v = int(self._rng.integers(0, self.u, dtype=np.uint64))
            self._memo[key] = v
        return v

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        return np.array([self.hash(int(k)) for k in np.asarray(keys)], dtype=np.uint64)
