"""Hash functions over ``U = {0, ..., u-1}``.

Provides the ideal hashing the paper assumes plus realistic families
(multiply-shift, Carter--Wegman, degree-4 polynomial, tabulation) used
for sensitivity ablations.
"""

from .base import HashFunction
from .family import (
    CARTER_WEGMAN,
    FAMILIES,
    HashFamily,
    IDEAL,
    MEMOISED_IDEAL,
    MULTIPLY_SHIFT,
    POLYNOMIAL4,
    TABULATION,
    get_family,
)
from .ideal import IdealHash, MemoisedIdealHash
from .mixers import MERSENNE61, mod_mersenne61, next_prime, splitmix64, splitmix64_array
from .multiply_shift import MultiplyShiftHash
from .tabulation import TabulationHash
from .universal import CarterWegmanHash, PolynomialHash

__all__ = [
    "HashFunction",
    "HashFamily",
    "FAMILIES",
    "get_family",
    "IDEAL",
    "MEMOISED_IDEAL",
    "MULTIPLY_SHIFT",
    "CARTER_WEGMAN",
    "POLYNOMIAL4",
    "TABULATION",
    "IdealHash",
    "MemoisedIdealHash",
    "MultiplyShiftHash",
    "CarterWegmanHash",
    "PolynomialHash",
    "TabulationHash",
    "MERSENNE61",
    "mod_mersenne61",
    "next_prime",
    "splitmix64",
    "splitmix64_array",
]
