"""Bit-mixing primitives shared by the hash families.

All mixers are deterministic functions of ``(seed, key)`` on 64-bit
words, implemented both scalar (Python int) and vectorised (numpy
``uint64``) so drivers can hash large key batches without interpreter
overhead — the hot path the HPC guide tells us to vectorise.
"""

from __future__ import annotations

import numpy as np

MASK64 = (1 << 64) - 1

#: 2^61 - 1, the Mersenne prime used by the Carter--Wegman family.
MERSENNE61 = (1 << 61) - 1

_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64(x: int) -> int:
    """One round of the splitmix64 finaliser (a high-quality 64-bit mixer)."""
    x = (x + _SPLITMIX_GAMMA) & MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & MASK64
    return x ^ (x >> 31)


def splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorised :func:`splitmix64` over a ``uint64`` array."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(_SPLITMIX_GAMMA)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
    return x ^ (x >> np.uint64(31))


def mix_seed(seed: int, key: int) -> int:
    """Combine a seed and a key into one well-mixed 64-bit word."""
    return splitmix64((seed ^ splitmix64(key)) & MASK64)


def mod_mersenne61(x: int) -> int:
    """Reduce a (possibly large) non-negative int modulo ``2^61 - 1``.

    Uses the classic shift-add reduction: with ``p = 2^61 - 1``,
    ``x mod p`` can be computed by repeatedly folding the high bits.
    """
    p = MERSENNE61
    # Fold on the bit width, not on >= p: x == p is a fixed point of the
    # fold ((p & p) + 0 == p) and would loop forever.
    while x >> 61:
        x = (x & p) + (x >> 61)
    return 0 if x == p else x


def pow_mod(base: int, exp: int, mod: int) -> int:
    """Modular exponentiation (thin wrapper for symmetry/testing)."""
    return pow(base, exp, mod)


def is_probable_prime(n: int, *, rounds: int = 16) -> bool:
    """Deterministic-for-64-bit Miller--Rabin primality test."""
    if n < 2:
        return False
    small = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are exact for n < 3.3e24; plenty for our universes.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime ``>= n``."""
    if n <= 2:
        return 2
    candidate = n | 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate
