"""Carter--Wegman universal hashing [7].

The classic 2-universal family ``h_{a,b}(x) = ((a x + b) mod p) mod u``
with ``p`` prime ``>= u`` and ``a in [1, p)``, ``b in [0, p)``.  We use
the Mersenne prime ``p = 2^61 - 1`` when the universe fits (fast
shift-add reduction) and otherwise the smallest prime above ``u``.

Also provides :class:`PolynomialHash`, the degree-``k`` extension giving
k-wise independence, used by the sensitivity ablations.
"""

from __future__ import annotations

import numpy as np

from .base import HashFunction
from .mixers import MERSENNE61, mod_mersenne61, next_prime, splitmix64


def _derive(seed: int, i: int, p: int) -> int:
    """Derive the i-th coefficient in ``[0, p)`` from ``seed``."""
    return splitmix64(seed * 0x9E3779B9 + i * 0xDEADBEEF + 1) % p


class CarterWegmanHash(HashFunction):
    """2-universal multiply-add-mod-prime hashing."""

    def __init__(self, u: int, seed: int = 0) -> None:
        super().__init__(u, seed)
        self.p = MERSENNE61 if u <= MERSENNE61 else next_prime(u)
        a = _derive(seed, 0, self.p - 1) + 1  # a in [1, p)
        b = _derive(seed, 1, self.p)
        self.a, self.b = a, b

    def hash(self, key: int) -> int:
        self._check_key(key)
        if self.p == MERSENNE61:
            v = mod_mersenne61(self.a * key + self.b)
        else:
            v = (self.a * key + self.b) % self.p
        return v % self.u

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        # Coefficients exceed 32 bits, so the product needs >128-bit
        # headroom; fall back to object-dtype exact arithmetic in chunks.
        ks = np.asarray(keys, dtype=np.uint64)
        out = np.empty(ks.shape, dtype=np.uint64)
        flat = ks.reshape(-1)
        res = out.reshape(-1)
        for i, k in enumerate(flat):
            res[i] = self.hash(int(k))
        return out


class PolynomialHash(HashFunction):
    """Degree-(k-1) polynomial hashing: k-wise independent.

    ``h(x) = (sum_i a_i x^i mod p) mod u`` with independent coefficients.
    ``k = 2`` recovers :class:`CarterWegmanHash` up to coefficient
    derivation.
    """

    def __init__(self, u: int, seed: int = 0, *, k: int = 4) -> None:
        if k < 2:
            raise ValueError(f"independence degree k must be >= 2, got {k}")
        super().__init__(u, seed)
        self.k = k
        self.p = MERSENNE61 if u <= MERSENNE61 else next_prime(u)
        self.coeffs = [_derive(seed, i, self.p) for i in range(k)]
        if self.coeffs[-1] == 0:
            self.coeffs[-1] = 1  # keep the polynomial at full degree

    def hash(self, key: int) -> int:
        self._check_key(key)
        # Horner evaluation mod p.
        acc = 0
        for a in reversed(self.coeffs):
            acc = (acc * key + a) % self.p
        return acc % self.u

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        ks = np.asarray(keys, dtype=np.uint64)
        out = np.empty(ks.shape, dtype=np.uint64)
        flat = ks.reshape(-1)
        res = out.reshape(-1)
        for i, k in enumerate(flat):
            res[i] = self.hash(int(k))
        return out
