"""Parameter derivations for the paper's constructions and bounds.

Centralises the translations between the exponent ``c`` of the target
query cost ``t_q = 1 + Θ(1/b^c)`` and the construction/lower-bound
parameters:

* Theorem 2 (upper bounds): ``β = b^c`` for the ``c < 1`` regime, or
  ``β = ε b / (2 c')`` for the ``t_u = ε`` regime.
* Theorem 1 (lower bounds): the per-case tuples ``(δ, φ, ρ, s)`` from
  Section 2's proof.

It also hosts :class:`StorageConfig`, the system-level knobs that are
orthogonal to the paper's parameters: which storage backend the disk
runs on and how many shards the dictionary router fans out over.  The
CLI, drivers and throughput benchmark all consume one of these.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..em.backends import BACKENDS
from ..em.errors import ConfigurationError


@dataclass(frozen=True)
class StorageConfig:
    """System configuration: storage backend, shard fan-out, caching.

    Attributes
    ----------
    backend:
        Registry name of the block store behind every disk
        (:data:`repro.em.backends.BACKENDS`): ``"mapping"``,
        ``"arena"``, or the memmap-persistent ``"durable-arena"``.
        Never changes I/O accounting, only wall-clock.
    shards:
        Number of independent shards the dictionary router splits a
        logical table over (1 = unsharded).
    cache_blocks:
        Per-shard :class:`~repro.em.cache.BufferPool` capacity in
        blocks (0 = uncached).  The third I/O-policy axis: cache hits
        are served uncharged, and every cached run satisfies
        ``hits + misses == uncached charged reads`` while producing
        bit-identical results and layouts.
    """

    backend: str = "mapping"
    shards: int = 1
    cache_blocks: int = 0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown storage backend {self.backend!r}; "
                f"choose from {sorted(BACKENDS)}"
            )
        if self.shards <= 0:
            raise ConfigurationError(
                f"shard count must be positive, got {self.shards}"
            )
        if self.cache_blocks < 0:
            raise ConfigurationError(
                f"cache_blocks must be non-negative, got {self.cache_blocks}"
            )


@dataclass(frozen=True)
class DurabilityConfig:
    """Knobs of the service durability subsystem (journal + recovery).

    Attributes
    ----------
    journal_path:
        Where the epoch write-ahead journal lives (``None`` disables
        journaling).
    snapshot_path:
        Where :func:`repro.service.recovery.snapshot_service` writes
        its checkpoint (``None`` disables snapshotting).
    fsync:
        Whether the journal fsyncs every record — the durability
        guarantee; disable only to measure pure encoding overhead.
    max_retries:
        Bounded retry budget for transient storage faults
        (:class:`repro.service.faults.RetryingBackend`).
    backoff_s:
        Base of the exponential retry backoff, in seconds.
    """

    journal_path: str | None = None
    snapshot_path: str | None = None
    fsync: bool = True
    max_retries: int = 4
    backoff_s: float = 0.0005

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(
                f"backoff_s must be non-negative, got {self.backoff_s}"
            )


@dataclass(frozen=True)
class RebalanceConfig:
    """Knobs of the skew-adaptive slot rebalancer.

    The rebalancer watches per-shard charged I/O over a sliding window
    of epochs and, when the worst shard's share exceeds ``threshold``
    times the mean, migrates that shard's hottest slots (by windowed op
    count) to the least-loaded shards — at most ``max_moves`` slots per
    decision, then ``cooldown`` epochs of quiet so each migration's
    effect is observed before the next.

    Attributes
    ----------
    threshold:
        Worst-shard/mean-shard charged-I/O ratio that triggers a
        migration decision (``> 1``).
    window:
        Sliding-window length in epochs for both the I/O ratio and the
        per-slot op counts (``>= 1``).
    max_moves:
        Upper bound on slots migrated per decision (``>= 1``).
    cooldown:
        Epochs to wait after a migration before deciding again
        (``>= 0``).
    min_io:
        Windowed cluster charged-I/O floor below which no decision is
        made — idle or tiny windows carry no load signal.
    """

    threshold: float = 1.5
    window: int = 4
    max_moves: int = 8
    cooldown: int = 2
    min_io: int = 64

    def __post_init__(self) -> None:
        if not self.threshold > 1.0:
            raise ConfigurationError(
                f"rebalance threshold must exceed 1, got {self.threshold}"
            )
        if self.window < 1:
            raise ConfigurationError(
                f"rebalance window must be >= 1 epoch, got {self.window}"
            )
        if self.max_moves < 1:
            raise ConfigurationError(
                f"max_moves must be >= 1, got {self.max_moves}"
            )
        if self.cooldown < 0:
            raise ConfigurationError(
                f"cooldown must be non-negative, got {self.cooldown}"
            )
        if self.min_io < 0:
            raise ConfigurationError(
                f"min_io must be non-negative, got {self.min_io}"
            )


#: Load-model names the CLI accepts: the closed-loop client plus the
#: open-loop arrival processes (:data:`repro.service.traffic.ARRIVALS`).
ARRIVAL_KINDS = ("closed", "poisson", "diurnal", "bursty")

#: Key-distribution names the CLI and benches accept
#: (:data:`repro.workloads.generators._GENERATORS` plus the router-aware
#: adversarial attack).
KEY_DISTS = ("uniform", "zipf", "clustered", "sequential", "adversarial")

#: Overload policies (:data:`repro.service.admission.SHED_POLICIES`).
OVERLOAD_POLICIES = ("reject", "shed", "adapt")


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of the load model a service run is driven under.

    Attributes
    ----------
    arrival:
        ``"closed"`` (closed-loop client: offered load adapts to
        service speed) or an open-loop arrival process name —
        ``"poisson"``, ``"diurnal"``, ``"bursty"``.
    rate:
        Mean offered load in ops/sec (open-loop only; required there).
    queue_depth:
        Bound on the admission queue (open-loop; ``None`` = unbounded).
    deadline_s:
        Per-op queueing deadline in virtual seconds (open-loop;
        ``None`` = none).  Expired ops are accounted, never executed.
    shed_policy:
        What happens past the high-water mark: ``"reject"`` new work,
        ``"shed"`` lowest-priority queued work, or ``"adapt"`` the
        dispatch batch down to drain faster.
    """

    arrival: str = "closed"
    rate: float | None = None
    queue_depth: int | None = None
    deadline_s: float | None = None
    shed_policy: str = "reject"

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrival kind {self.arrival!r}; "
                f"choose from {ARRIVAL_KINDS}"
            )
        if self.shed_policy not in OVERLOAD_POLICIES:
            raise ConfigurationError(
                f"unknown shed policy {self.shed_policy!r}; "
                f"choose from {OVERLOAD_POLICIES}"
            )
        if self.open_loop:
            if self.rate is None or not self.rate > 0:
                raise ConfigurationError(
                    f"open-loop traffic needs a positive --rate, got {self.rate}"
                )
        elif (
            self.rate is not None
            or self.queue_depth is not None
            or self.deadline_s is not None
        ):
            raise ConfigurationError(
                "--rate/--queue-depth/--deadline only apply to open-loop "
                "arrivals (closed-loop load adapts to service speed)"
            )
        if self.queue_depth is not None and self.queue_depth <= 0:
            raise ConfigurationError(
                f"queue_depth must be positive, got {self.queue_depth}"
            )
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ConfigurationError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    @property
    def open_loop(self) -> bool:
        return self.arrival != "closed"


@dataclass(frozen=True)
class ObsConfig:
    """Knobs of the observability layer (:mod:`repro.obs`).

    Observability is strictly relabelling: enabling it never changes
    ledgers, layouts, or results — it only attributes the charges the
    service already makes to spans and metric series.

    Attributes
    ----------
    trace_path:
        Destination for the crc-framed JSONL span trace (``serve
        --trace out.jsonl``); ``None`` disables span tracing (the
        metrics registry stays on — it is a handful of integer folds
        per epoch).
    metrics_every:
        Emit a Prometheus-style metrics dump to the service's
        ``metrics_listener`` every N closed epochs; ``0`` disables
        periodic dumps.
    wall_clock:
        Stamp trace records with wall-clock fields.  Disable for
        byte-reproducible trace files (virtual-clock stamps remain).
    """

    trace_path: str | None = None
    metrics_every: int = 0
    wall_clock: bool = True

    def __post_init__(self) -> None:
        if self.metrics_every < 0:
            raise ConfigurationError(
                f"metrics_every must be non-negative, got {self.metrics_every}"
            )
        if self.trace_path is not None and not str(self.trace_path):
            raise ConfigurationError("trace_path must be a non-empty path")


@dataclass(frozen=True)
class BufferedParams:
    """Parameters of the Theorem 2 construction.

    Attributes
    ----------
    beta:
        Scan frequency: the big table ``Ĥ`` is merged/scanned ``β``
        times per doubling round; at most a ``1/β`` fraction of items
        lives outside ``Ĥ``.  Must satisfy ``2 <= β <= b``.
    gamma:
        Growth factor of the inner logarithmic method (``γ >= 2``).
    """

    beta: int
    gamma: int = 2

    def __post_init__(self) -> None:
        if self.beta < 2:
            raise ConfigurationError(f"β must be at least 2, got {self.beta}")
        if self.gamma < 2:
            raise ConfigurationError(f"γ must be at least 2, got {self.gamma}")

    @classmethod
    def for_query_exponent(cls, b: int, c: float, *, gamma: int = 2) -> "BufferedParams":
        """``β = b^c`` — Theorem 2's ``t_q = 1 + O(1/b^c)`` regime (``c < 1``)."""
        if not 0 < c < 1:
            raise ConfigurationError(f"query exponent must satisfy 0 < c < 1, got {c}")
        beta = max(2, min(b, round(b**c)))
        return cls(beta=beta, gamma=gamma)

    @classmethod
    def for_insert_budget(
        cls, b: int, epsilon: float, *, constant: float = 2.0, gamma: int = 2
    ) -> "BufferedParams":
        """``β = ε b / (2 c')`` — Theorem 2's ``t_u = ε`` regime.

        ``constant`` plays the role of ``2 c'`` (the hidden constant in
        the insertion-cost analysis).
        """
        if epsilon <= 0:
            raise ConfigurationError(f"ε must be positive, got {epsilon}")
        beta = max(2, min(b, round(epsilon * b / constant)))
        return cls(beta=beta, gamma=gamma)

    def predicted_query_excess(self) -> float:
        """The ``O(1/β)`` excess over 1 I/O of a successful lookup."""
        return 1.0 / self.beta

    def predicted_insert_cost(self, b: int, n: int, m: int) -> float:
        """The ``O((β + γ log(n/m)) / b)`` amortized insertion cost."""
        log_term = math.log2(max(n / m, 2.0))
        return (self.beta + self.gamma * log_term) / b


@dataclass(frozen=True)
class LowerBoundParams:
    """The tuple ``(δ, φ, ρ, s)`` of Section 2's proof, per tradeoff case.

    * ``δ``  — allowed query excess: ``t_q <= 1 + δ``.
    * ``φ``  — failure-probability / slack parameter.
    * ``ρ``  — characteristic-vector threshold: indices with
      ``α_i > ρ`` form the bad index area.
    * ``s``  — items per insertion round.
    """

    delta: float
    phi: float
    rho: float
    s: int
    case: int

    @classmethod
    def case1(cls, b: int, n: int, c: float) -> "LowerBoundParams":
        """``t_q <= 1 + O(1/b^c)``, ``c > 1``: δ=1/b^c, φ=1/b^{(c-1)/4},
        ρ=2 b^{(c+3)/4}/n, s=n/b^{(c+1)/2}."""
        if c <= 1:
            raise ConfigurationError(f"case 1 needs c > 1, got {c}")
        return cls(
            delta=b**-c,
            phi=b ** (-(c - 1) / 4),
            rho=2 * b ** ((c + 3) / 4) / n,
            s=max(1, round(n / b ** ((c + 1) / 2))),
            case=1,
        )

    @classmethod
    def case2(cls, b: int, n: int, kappa: float = 4.0) -> "LowerBoundParams":
        """``t_q <= 1 + O(1/b)``: φ=1/κ, ρ=2κb/n, s=n/(κ²b), δ=1/(κ⁴b)."""
        if kappa <= 1:
            raise ConfigurationError(f"κ must exceed 1, got {kappa}")
        return cls(
            delta=1.0 / (kappa**4 * b),
            phi=1.0 / kappa,
            rho=2 * kappa * b / n,
            s=max(1, round(n / (kappa**2 * b))),
            case=2,
        )

    @classmethod
    def case3(cls, b: int, n: int, c: float) -> "LowerBoundParams":
        """``t_q <= 1 + O(1/b^c)``, ``c < 1``: φ=1/8, ρ=16b/n, s=32n/b^c, δ=1/b^c."""
        if not 0 < c < 1:
            raise ConfigurationError(f"case 3 needs 0 < c < 1, got {c}")
        return cls(
            delta=b**-c,
            phi=0.125,
            rho=16 * b / n,
            s=max(1, round(32 * n / b**c)),
            case=3,
        )

    @classmethod
    def for_exponent(cls, b: int, n: int, c: float, **kw) -> "LowerBoundParams":
        """Dispatch on ``c`` to the matching case."""
        if c > 1:
            return cls.case1(b, n, c)
        if c == 1:
            return cls.case2(b, n, **kw)
        return cls.case3(b, n, c)

    def bad_index_capacity(self, b: int, lambda_f: float) -> float:
        """Fast-zone items the bad index area can hold: ``b · λ_f / ρ``
        (at most ``λ_f/ρ`` bad indices, each block holding ``b`` items)."""
        return b * lambda_f / self.rho


def insertion_lower_bound(b: int, c: float, *, constant: float = 1.0) -> float:
    """Theorem 1's insertion lower bound ``t_u`` for query target
    ``t_q = 1 + Θ(1/b^c)``.

    Returns the leading-order value with ``constant`` standing in for
    the suppressed big-O constant:

    * ``c > 1``:  ``1 - constant / b^{(c-1)/4}``
    * ``c = 1``:  ``constant`` (the Ω(1) case; constant ≤ 1)
    * ``c < 1``:  ``constant * b^{c-1}``
    """
    if c > 1:
        return max(0.0, 1.0 - constant * b ** (-(c - 1) / 4))
    if c == 1:
        return constant
    return constant * b ** (c - 1)


def insertion_upper_bound(b: int, c: float, n: int, m: int, *, gamma: int = 2) -> float:
    """The matching constructive upper bound on ``t_u``.

    * ``c >= 1``: the standard table's ``1 + 1/2^{Ω(b)}`` (``c > 1``), or
      any constant ``ε`` via Theorem 2 (``c = 1``; we report the β=b/2
      instantiation).
    * ``c < 1``: Theorem 2's ``O((b^c + γ log(n/m))/b)``.
    """
    if c > 1:
        return 1.0 + 2.0 ** (-min(b / 4.0, 60.0))
    log_term = math.log2(max(n / m, 2.0))
    if c == 1:
        beta = b / 2
        return (beta + gamma * log_term) / b
    return (b**c + gamma * log_term) / b


def query_cost_target(b: int, c: float) -> float:
    """The query target ``1 + 1/b^c``."""
    return 1.0 + b**-c
