"""The logarithmic method applied to external hashing (Lemma 5).

A series of hash tables ``H_0, H_1, H_2, ...`` where ``H_k`` has
``γ^k · (m/b)`` buckets and stores up to ``(1/2) γ^k m`` items (load
factor ≤ 1/2).  ``H_0`` lives in memory; the rest on disk.  New items
go to ``H_0``; when ``H_k`` fills, its items migrate into ``H_{k+1}``
by a parallel scan costing ``O(γ^{k+1} m/b)`` I/Os — each ``H_k``
bucket maps onto γ buckets of ``H_{k+1}`` determined by more bits of
the hash value.

Costs (Lemma 5): insertion ``O((γ/b) log(n/m))`` amortized; lookup
``O(log_γ(n/m))`` expected (one bucket probe per non-empty level).

Addressing detail: level ``k`` assigns ``x`` to bucket
``h(x) mod d_k`` with ``d_k = γ^k d_0``; bucket ``j`` of ``H_k``
corresponds to the γ buckets ``{j + i·d_k}`` of ``H_{k+1}`` — a strided
rather than consecutive grouping, with the identical merge cost.  The
per-level bucket directory is an arithmetic base+offset (buckets are
allocated contiguously), so addressing needs O(1) memory words per
level, matching the paper.
"""

from __future__ import annotations

from ..em.storage import EMContext
from ..hashing.base import HashFunction
from ..tables.base import ExternalDictionary, LayoutSnapshot
from ..tables.overflow import ChainedBucket


class _DiskLevel:
    """One disk-resident level ``H_k``: an array of chained buckets."""

    __slots__ = ("k", "buckets", "count", "capacity")

    def __init__(self, ctx: EMContext, k: int, d_k: int, capacity: int) -> None:
        self.k = k
        self.buckets = [ChainedBucket(ctx.disk) for _ in range(d_k)]
        self.count = 0
        self.capacity = capacity

    @property
    def full(self) -> bool:
        return self.count >= self.capacity

    @property
    def empty(self) -> bool:
        return self.count == 0

    def free_all(self) -> None:
        for bkt in self.buckets:
            bkt.free_all()


class LogMethodHashTable(ExternalDictionary):
    """Bentley's logarithmic method over external hash tables.

    Parameters
    ----------
    ctx, hash_fn:
        Context and hash function.
    gamma:
        Level growth factor ``γ >= 2``.
    h0_capacity:
        Items ``H_0`` holds before migrating; defaults to ``m/2``
        (load factor 1/2 on the memory table, as in the paper).
    base_buckets:
        ``d_0 = m/b`` by default.
    """

    def __init__(
        self,
        ctx: EMContext,
        hash_fn: HashFunction,
        *,
        gamma: int = 2,
        h0_capacity: int | None = None,
        base_buckets: int | None = None,
    ) -> None:
        super().__init__(ctx)
        if gamma < 2:
            raise ValueError(f"γ must be at least 2, got {gamma}")
        self.h = hash_fn
        self.gamma = gamma
        self.h0_capacity = h0_capacity if h0_capacity is not None else max(1, ctx.m // 2)
        self.d0 = base_buckets if base_buckets is not None else max(1, ctx.m // ctx.b)
        self._h0: set[int] = set()
        self._levels: list[_DiskLevel | None] = []
        # Simulator-side membership shadow for set semantics.  The paper
        # inserts distinct items and its structure performs no duplicate
        # probe on insertion; the shadow keeps the Python API honest
        # without charging I/Os the modelled algorithm would not do.
        self._shadow: set[int] = set()
        self._charge_memory()

    # -- memory accounting ---------------------------------------------------

    def memory_words(self) -> int:
        # H0's items plus O(1) addressing words per level (contiguous
        # bucket arrays) plus the hash seed.
        return len(self._h0) + 2 * len(self._levels) + 2

    def _charge_memory(self) -> None:
        self.ctx.memory.set_charge(f"{self.name}@{id(self)}", self.memory_words())

    # -- level geometry --------------------------------------------------------

    def level_buckets(self, k: int) -> int:
        """``d_k = γ^k d_0`` (k >= 1 for disk levels)."""
        return self.gamma**k * self.d0

    def level_capacity(self, k: int) -> int:
        """``(1/2) γ^k m`` scaled from the H0 capacity."""
        return self.gamma**k * self.h0_capacity

    def nonempty_levels(self) -> list[int]:
        return [
            lvl.k for lvl in self._levels if lvl is not None and not lvl.empty
        ]

    # -- operations ----------------------------------------------------------------

    def insert(self, key: int) -> None:
        if key in self._shadow:
            return
        self._shadow.add(key)
        self._h0.add(key)
        self._size += 1
        self.stats.inserts += 1
        if len(self._h0) >= self.h0_capacity:
            self._migrate_h0()
        self._charge_memory()

    def lookup(self, key: int) -> bool:
        self.stats.lookups += 1
        if key in self._h0:
            self.stats.hits += 1
            return True
        if self.lookup_disk_only(key, charge=True):
            self.stats.hits += 1
            return True
        return False

    def lookup_disk_only(self, key: int, *, charge: bool) -> bool:
        """Probe each non-empty disk level once.

        ``charge=False`` is used for the duplicate check on insertion,
        which a set-semantics table needs but the paper's insert-only
        accounting does not charge; the cost ablation in the benchmarks
        flips it.
        """
        hv = int(self.h.hash(key))
        for lvl in self._levels:
            if lvl is None or lvl.empty:
                continue
            bucket = lvl.buckets[hv % len(lvl.buckets)]
            if charge:
                found, _ = bucket.lookup(key)
            else:
                found = key in bucket.peek_all()
            if found:
                return True
        return False

    # -- migration -------------------------------------------------------------------

    def _migrate_h0(self) -> None:
        """Flush ``H_0`` into ``H_1``, cascading full levels downward."""
        items = list(self._h0)
        self._h0.clear()
        self._merge_into_level(1, items)
        k = 1
        while True:
            lvl = self._get_level(k)
            if not lvl.full:
                break
            moving = self._drain_level(k)
            self._merge_into_level(k + 1, moving)
            k += 1

    def _get_level(self, k: int) -> _DiskLevel:
        while len(self._levels) < k:
            self._levels.append(None)
        if self._levels[k - 1] is None:
            self._levels[k - 1] = _DiskLevel(
                self.ctx, k, self.level_buckets(k), self.level_capacity(k)
            )
            self._charge_memory()
        return self._levels[k - 1]  # type: ignore[return-value]

    def _drain_level(self, k: int) -> list[int]:
        """Read out every item of ``H_k`` (charged) and empty it."""
        lvl = self._get_level(k)
        items: list[int] = []
        for bkt in lvl.buckets:
            got = bkt.read_all()
            if got:
                items.extend(got)
                bkt.replace_all([])
        lvl.count = 0
        return items

    def _merge_into_level(self, k: int, items: list[int]) -> None:
        """Merge ``items`` (already in memory) into ``H_k`` by bucket scan.

        For each target bucket receiving items: read its chain, append,
        rewrite — the "scan the two tables in parallel" of the paper,
        bucket-group at a time so peak memory stays O(γ·b) words.
        """
        if not items:
            return
        self.stats.merges += 1
        lvl = self._get_level(k)
        d_k = len(lvl.buckets)
        staged: dict[int, list[int]] = {}
        for x in items:
            staged.setdefault(int(self.h.hash(x)) % d_k, []).append(x)
        for idx, incoming in sorted(staged.items()):
            bucket = lvl.buckets[idx]
            existing = bucket.read_all()
            bucket.replace_all(existing + incoming)
        lvl.count += len(items)

    # -- instrumentation --------------------------------------------------------------

    def layout_snapshot(self) -> LayoutSnapshot:
        blocks: dict[int, tuple[int, ...]] = {}
        for lvl in self._levels:
            if lvl is None:
                continue
            for bkt in lvl.buckets:
                for bid, blk_items in bkt.peek_blocks():
                    blocks[bid] = blk_items
        # One-I/O address: the deepest (largest) non-empty level's bucket —
        # the best single guess for where an item lives.
        deepest = None
        for lvl in self._levels:
            if lvl is not None and not lvl.empty:
                deepest = lvl
        h = self.h

        def address(key: int) -> int | None:
            if deepest is None:
                return None
            return deepest.buckets[int(h.hash(key)) % len(deepest.buckets)].primary

        return LayoutSnapshot(
            memory_items=frozenset(self._h0),
            blocks=blocks,
            address=address,
            address_description_words=self.memory_words(),
        )

    def check_invariants(self) -> None:
        assert len(self._h0) < self.h0_capacity or self.h0_capacity == 0
        total = len(self._h0)
        seen = set(self._h0)
        for lvl in self._levels:
            if lvl is None:
                continue
            stored = 0
            for idx, bkt in enumerate(lvl.buckets):
                for x in bkt.peek_all():
                    assert int(self.h.hash(x)) % len(lvl.buckets) == idx
                    assert x not in seen, f"duplicate {x}"
                    seen.add(x)
                    stored += 1
            assert stored == lvl.count, f"level {lvl.k}: {stored} != {lvl.count}"
            total += stored
        assert total == self._size

    def clear(self) -> None:
        """Free all disk state and reset to empty (used by Theorem 2's table)."""
        self._h0.clear()
        self._shadow.clear()
        for lvl in self._levels:
            if lvl is not None:
                lvl.free_all()
        self._levels = []
        self._size = 0
        self._charge_memory()

    def drain_all(self) -> list[int]:
        """Read out *all* items (charged), leaving the table empty.

        Used by the bootstrapped table when merging the recent items
        into ``Ĥ``.
        """
        items = list(self._h0)
        self._h0.clear()
        for lvl in self._levels:
            if lvl is None or lvl.empty:
                continue
            items.extend(self._drain_level(lvl.k))
        for lvl in self._levels:
            if lvl is not None:
                lvl.free_all()
        self._levels = []
        self._size = 0
        self._shadow.clear()
        self._charge_memory()
        return items
