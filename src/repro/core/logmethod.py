"""The logarithmic method applied to external hashing (Lemma 5).

A series of hash tables ``H_0, H_1, H_2, ...`` where ``H_k`` has
``γ^k · (m/b)`` buckets and stores up to ``(1/2) γ^k m`` items (load
factor ≤ 1/2).  ``H_0`` lives in memory; the rest on disk.  New items
go to ``H_0``; when ``H_k`` fills, its items migrate into ``H_{k+1}``
by a parallel scan costing ``O(γ^{k+1} m/b)`` I/Os — each ``H_k``
bucket maps onto γ buckets of ``H_{k+1}`` determined by more bits of
the hash value.

Costs (Lemma 5): insertion ``O((γ/b) log(n/m))`` amortized; lookup
``O(log_γ(n/m))`` expected (one bucket probe per non-empty level).

Addressing detail: level ``k`` assigns ``x`` to bucket
``h(x) mod d_k`` with ``d_k = γ^k d_0``; bucket ``j`` of ``H_k``
corresponds to the γ buckets ``{j + i·d_k}`` of ``H_{k+1}`` — a strided
rather than consecutive grouping, with the identical merge cost.  The
per-level bucket directory is an arithmetic base+offset (buckets are
allocated contiguously), so addressing needs O(1) memory words per
level, matching the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..em.storage import EMContext
from ..hashing.base import HashFunction
from ..tables.base import ExternalDictionary, LayoutSnapshot
from ..tables.batching import (
    concat_records,
    fresh_in_order,
    membership,
    normalize_keys,
    partition_by_bucket,
)
from ..tables.overflow import ChainedBucket, bulk_merge_into


class _DiskLevel:
    """One disk-resident level ``H_k``: an array of chained buckets."""

    __slots__ = ("k", "buckets", "count", "capacity")

    def __init__(self, ctx: EMContext, k: int, d_k: int, capacity: int) -> None:
        self.k = k
        self.buckets = ChainedBucket.bulk_row(ctx.disk, d_k)
        self.count = 0
        self.capacity = capacity

    @property
    def full(self) -> bool:
        return self.count >= self.capacity

    @property
    def empty(self) -> bool:
        return self.count == 0

    def free_all(self) -> None:
        for bkt in self.buckets:
            bkt.free_all()


class LogMethodHashTable(ExternalDictionary):
    """Bentley's logarithmic method over external hash tables.

    Parameters
    ----------
    ctx, hash_fn:
        Context and hash function.
    gamma:
        Level growth factor ``γ >= 2``.
    h0_capacity:
        Items ``H_0`` holds before migrating; defaults to ``m/2``
        (load factor 1/2 on the memory table, as in the paper).
    base_buckets:
        ``d_0 = m/b`` by default.
    """

    def __init__(
        self,
        ctx: EMContext,
        hash_fn: HashFunction,
        *,
        gamma: int = 2,
        h0_capacity: int | None = None,
        base_buckets: int | None = None,
    ) -> None:
        super().__init__(ctx)
        if gamma < 2:
            raise ValueError(f"γ must be at least 2, got {gamma}")
        self.h = hash_fn
        self.gamma = gamma
        self.h0_capacity = h0_capacity if h0_capacity is not None else max(1, ctx.m // 2)
        self.d0 = base_buckets if base_buckets is not None else max(1, ctx.m // ctx.b)
        self._h0: set[int] = set()
        self._levels: list[_DiskLevel | None] = []
        # Simulator-side membership shadow for set semantics.  The paper
        # inserts distinct items and its structure performs no duplicate
        # probe on insertion; the shadow keeps the Python API honest
        # without charging I/Os the modelled algorithm would not do.
        self._shadow: set[int] = set()
        self._charge_memory()

    # -- memory accounting ---------------------------------------------------

    def memory_words(self) -> int:
        # H0's items plus O(1) addressing words per level (contiguous
        # bucket arrays) plus the hash seed.
        return len(self._h0) + 2 * len(self._levels) + 2

    def _charge_memory(self) -> None:
        self.ctx.memory.set_charge(self._charge_key, self.memory_words())

    # -- level geometry --------------------------------------------------------

    def level_buckets(self, k: int) -> int:
        """``d_k = γ^k d_0`` (k >= 1 for disk levels)."""
        return self.gamma**k * self.d0

    def level_capacity(self, k: int) -> int:
        """``(1/2) γ^k m`` scaled from the H0 capacity."""
        return self.gamma**k * self.h0_capacity

    def nonempty_levels(self) -> list[int]:
        return [
            lvl.k for lvl in self._levels if lvl is not None and not lvl.empty
        ]

    # -- operations ----------------------------------------------------------------

    def insert(self, key: int) -> None:
        if key in self._shadow:
            return
        self._shadow.add(key)
        self._h0.add(key)
        self._size += 1
        self.stats.inserts += 1
        if len(self._h0) >= self.h0_capacity:
            self._migrate_h0()
        self._charge_memory()

    def lookup(self, key: int) -> bool:
        self.stats.lookups += 1
        if key in self._h0:
            self.stats.hits += 1
            return True
        if self.lookup_disk_only(key, charge=True):
            self.stats.hits += 1
            return True
        return False

    def delete(self, key: int) -> bool:
        """Remove ``key``: free from ``H_0``, else one chain walk per
        non-empty level until found (charged like a lookup)."""
        if key in self._h0:
            self._h0.discard(key)
            self._shadow.discard(key)
            self._size -= 1
            self.stats.deletes += 1
            self._charge_memory()
            return True
        return self.delete_disk_only(key)

    def delete_disk_only(self, key: int, *, hashed: int | None = None) -> bool:
        """Remove ``key`` from whichever disk level holds it.

        The deletion counterpart of :meth:`lookup_disk_only`: probes the
        key's bucket in each non-empty level (charged chain walk) and
        rewrites the block it is found in.  ``hashed`` lets batch
        callers pass a precomputed ``h(key)``.
        """
        hv = int(self.h.hash(key)) if hashed is None else hashed
        for lvl in self._levels:
            if lvl is None or lvl.empty:
                continue
            if lvl.buckets[hv % len(lvl.buckets)].delete(key):
                lvl.count -= 1
                self._shadow.discard(key)
                self._size -= 1
                self.stats.deletes += 1
                return True
        return False

    def in_memory(self, key: int) -> bool:
        """Is ``key`` resident in the memory table ``H_0`` (no I/O)?

        Public accessor so wrappers (e.g. the Theorem 2 table's probe
        order) never reach into the private ``_h0`` set.
        """
        return key in self._h0

    def lookup_disk_only(
        self, key: int, *, charge: bool, hashed: int | None = None
    ) -> bool:
        """Probe each non-empty disk level once.

        ``charge=False`` is used for the duplicate check on insertion,
        which a set-semantics table needs but the paper's insert-only
        accounting does not charge; the cost ablation in the benchmarks
        flips it.  ``hashed`` lets batch callers pass a precomputed
        ``h(key)``.
        """
        hv = int(self.h.hash(key)) if hashed is None else hashed
        for lvl in self._levels:
            if lvl is None or lvl.empty:
                continue
            bucket = lvl.buckets[hv % len(lvl.buckets)]
            if charge:
                found, _ = bucket.lookup(key)
            else:
                found = key in bucket.peek_all()
            if found:
                return True
        return False

    # -- batch operations -------------------------------------------------------------

    def insert_batch(self, keys: Sequence[int] | np.ndarray) -> None:
        """Bulk insert with the scalar path's exact migration schedule.

        Keys are deduplicated against the shadow in one pass, then fed
        to ``H_0`` in segments that stop precisely where the scalar loop
        would trigger :meth:`_migrate_h0`; the per-insert bookkeeping
        (size, stats, memory charge) is amortised over each segment.
        """
        fresh = fresh_in_order(keys, self._shadow)
        if fresh:
            self._insert_fresh(fresh)

    def _insert_fresh(self, fresh: list[int]) -> None:
        """Segmented ``H_0`` fill for keys guaranteed new to this table.

        ``insert_batch`` calls this after its shadow dedup; wrappers
        with their own duplicate screen (the Theorem 2 table) call it
        directly, skipping a second per-key pass — every key they feed
        is globally fresh, so this table's shadow never needs to see it.
        """
        h0 = self._h0
        cap = self.h0_capacity
        pos = 0
        n = len(fresh)
        while pos < n:
            seg = fresh[pos : pos + cap - len(h0)]
            # Bulk add is order-safe: drains emit H_0 in sorted order, so
            # the set's internal build history is unobservable.
            h0.update(seg)
            took = len(seg)
            pos += took
            self._size += took
            self.stats.inserts += took
            if len(h0) >= cap:
                # The scalar loop's memory peak is the charge taken at
                # the end of the insert *before* the migrating one, when
                # H_0 held cap-1 items; replicate it before migrating.
                self.ctx.memory.set_charge(self._charge_key, self.memory_words() - 1)
                self._migrate_h0()
        self._charge_memory()

    def lookup_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        # The whole-level materialisation only pays off for batches that
        # are not tiny relative to the table (cf. the LSM screen gate).
        # Cached runs take the scalar probes so every read is labelled
        # hit or miss against the buffer pool.
        if (
            cost_out is None
            and 24 * n >= self._size
            and self.ctx.disk.cache is None
            and self.levels_chain_free()
        ):
            # Fully vectorised: membership per level via np.isin (an
            # item always lives in its own hash bucket, so level-wide
            # membership equals bucket membership), reads charged in
            # bulk per level.
            self.stats.lookups += n
            in_h0 = self.memory_membership(arr)
            found = self.probe_levels_batch(arr, ~in_h0)
            idxs = np.flatnonzero(~in_h0)
            if idxs.size and self.nonempty_levels():
                i = int(idxs[-1])
                self.ctx.stats._last_read_block = self._final_probe_block(
                    key_list[i], int(self.h.hash(key_list[i]))
                )
            out = in_h0 | found
            self.stats.hits += int(np.count_nonzero(out))
            return out
        hv = self.h.hash_array(arr).tolist()
        out = np.empty(n, dtype=bool)
        in_mem = self._h0.__contains__
        stats = self.ctx.stats
        hits = 0
        for i in range(n):
            key = key_list[i]
            if in_mem(key):
                found = True
                if cost_out is not None:
                    cost_out.append(0)
            elif cost_out is None:
                found = self.lookup_disk_only(key, charge=True, hashed=hv[i])
            else:
                before = stats.reads
                found = self.lookup_disk_only(key, charge=True, hashed=hv[i])
                cost_out.append(stats.reads - before)
            out[i] = found
            hits += found
        self.stats.lookups += n
        self.stats.hits += hits
        return out

    def delete_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Vectorised-hash deletes; the level walk stays per key.

        Deletion never migrates levels, so one ``hash_array`` call
        serves the whole batch; ``H_0`` hits stay free, disk hits charge
        exactly the scalar chain walk.
        """
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        hv = self.h.hash_array(arr).tolist()
        h0 = self._h0
        stats = self.ctx.stats
        for i in range(n):
            key = key_list[i]
            if key in h0:
                h0.discard(key)
                self._shadow.discard(key)
                self._size -= 1
                self.stats.deletes += 1
                self._charge_memory()
                out[i] = True
                if cost_out is not None:
                    cost_out.append(0)
                continue
            if cost_out is None:
                out[i] = self.delete_disk_only(key, hashed=hv[i])
            else:
                before = stats.reads + stats.writes
                out[i] = self.delete_disk_only(key, hashed=hv[i])
                cost_out.append(stats.reads + stats.writes - before)
        return out

    # -- vectorised probing helpers ---------------------------------------------------

    def levels_chain_free(self) -> bool:
        """Do all disk-level buckets consist of a single block?

        Precondition for the fully vectorised lookup path, where each
        probed level must cost exactly one read per key.
        """
        return all(
            not bkt._chain
            for lvl in self._levels
            if lvl is not None
            for bkt in lvl.buckets
        )

    def memory_membership(self, arr: np.ndarray) -> np.ndarray:
        """Vectorised ``in_memory`` over a uint64 key array (no I/O)."""
        if not self._h0:
            return np.zeros(len(arr), dtype=bool)
        h0_arr = np.fromiter(self._h0, dtype=np.uint64, count=len(self._h0))
        return membership(arr, h0_arr)

    def probe_levels_batch(self, arr: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Vectorised ``lookup_disk_only(charge=True)`` for ``arr[mask]``.

        Requires :meth:`levels_chain_free`.  Charges one read per key
        per probed level (a key stops probing at its first hit), in
        bulk.  The pending read-modify-write block is left for the
        caller to fix up — see the fast path in :meth:`lookup_batch`.
        """
        stats = self.ctx.stats
        found = np.zeros(len(arr), dtype=bool)
        searching = np.flatnonzero(mask)
        records_arr = self.ctx.disk.records_arr
        for lvl in self._levels:
            if lvl is None or lvl.empty:
                continue
            if searching.size == 0:
                break
            stats.reads += int(searching.size)
            items = concat_records(
                records_arr(bkt.primary) for bkt in lvl.buckets
            )
            hit = membership(arr[searching], items)
            found[searching[hit]] = True
            searching = searching[~hit]
        return found

    def _final_probe_block(self, key: int, hv: int) -> int | None:
        """The block id of ``key``'s last charged level probe.

        Mirrors the walk of :meth:`lookup_disk_only`: levels in order,
        stopping at the first hit; used to restore the pending RMW
        block after a bulk probe.
        """
        key_in = self.ctx.disk.key_in
        last: int | None = None
        for lvl in self._levels:
            if lvl is None or lvl.empty:
                continue
            primary = lvl.buckets[hv % len(lvl.buckets)].primary
            last = primary
            if key_in(primary, key):
                break
        return last

    # -- migration -------------------------------------------------------------------

    def _migrate_h0(self) -> None:
        """Flush ``H_0`` into ``H_1``, cascading full levels downward.

        ``H_0`` is drained in sorted order: within-bucket placement is
        order-insensitive for cost, and a canonical order keeps block
        contents independent of the set's build history (the batch and
        scalar paths then agree bit-for-bit by construction).
        """
        items = np.sort(
            np.fromiter(self._h0, dtype=np.uint64, count=len(self._h0))
        ).tolist()
        self._h0.clear()
        self._merge_into_level(1, items)
        k = 1
        while True:
            lvl = self._get_level(k)
            if not lvl.full:
                break
            moving = self._drain_level(k)
            self._merge_into_level(k + 1, moving)
            k += 1

    def _get_level(self, k: int) -> _DiskLevel:
        while len(self._levels) < k:
            self._levels.append(None)
        if self._levels[k - 1] is None:
            self._levels[k - 1] = _DiskLevel(
                self.ctx, k, self.level_buckets(k), self.level_capacity(k)
            )
            self._charge_memory()
        return self._levels[k - 1]  # type: ignore[return-value]

    def _drain_level(self, k: int) -> list[int]:
        """Read out every item of ``H_k`` (charged) and empty it.

        Equivalent to ``read_all()`` + ``replace_all([])`` per bucket —
        every bucket is read (empty ones too), non-empty ones are
        rewritten empty — but the common chain-free case is charged in
        bulk: one read per bucket, one combining write per non-empty
        bucket, and the pending RMW block left exactly as the scalar
        loop's last bucket would.
        """
        lvl = self._get_level(k)
        disk = self.ctx.disk
        stats = disk.stats
        cache = disk.cache
        drain = disk.drain_uncharged
        items: list[int] = []
        reads = 0
        drained = 0
        hits = 0
        hit_drained = 0
        last_nonempty = False
        last_was_hit = False
        for bkt in lvl.buckets:
            if bkt._chain:
                last_was_hit = cache is not None and cache.is_resident(
                    bkt.block_ids[-1]
                )
                got = bkt.read_all()
                last_nonempty = bool(got)
                if got:
                    items.extend(got)
                    bkt.replace_all([])
                continue
            reads += 1
            # Residency must be sampled before the drain: a cached
            # drain_uncharged drops the frame for coherence.
            hit = cache is not None and cache.is_resident(bkt.primary)
            if hit:
                hits += 1
            last_was_hit = hit
            got = drain(bkt.primary)
            if got:
                items.extend(got)
                drained += 1
                if hit:
                    hit_drained += 1
                last_nonempty = True
            else:
                last_nonempty = False
        if cache is None:
            if reads:
                stats.reads += reads
            if drained:
                # Each rewrite immediately follows the read of its own
                # block: a combining policy nets it out, and a non-empty
                # block is never an allocation.
                if stats.policy.combine_rmw:
                    stats.combined += drained
                else:
                    stats.writes += drained
            last = lvl.buckets[-1]
            stats._last_read_block = None if last_nonempty else last.block_ids[-1]
        else:
            # Resident buckets are hits: read not charged, and their
            # rewrites cannot combine (no physical read preceded them).
            cache.stats.hits += hits
            cache.stats.misses += reads - hits
            stats.reads += reads - hits
            miss_drained = drained - hit_drained
            if miss_drained:
                if stats.policy.combine_rmw:
                    stats.combined += miss_drained
                else:
                    stats.writes += miss_drained
            stats.writes += hit_drained
            # The pending RMW block must name the last *physical* read;
            # that is only knowable when the final bucket was an empty
            # miss (read charged, nothing written after it).
            if not last_nonempty and not last_was_hit:
                stats._last_read_block = lvl.buckets[-1].block_ids[-1]
            else:
                stats._last_read_block = None
        lvl.count = 0
        return items

    def _merge_into_level(self, k: int, items: list[int]) -> None:
        """Merge ``items`` (already in memory) into ``H_k`` by bucket scan.

        For each target bucket receiving items: read its chain, append,
        rewrite — the "scan the two tables in parallel" of the paper,
        bucket-group at a time so peak memory stays O(γ·b) words.
        """
        if not items:
            return
        self.stats.merges += 1
        lvl = self._get_level(k)
        d_k = len(lvl.buckets)
        arr = np.asarray(items, dtype=np.uint64)
        parts = partition_by_bucket(arr, self.h.hash_array(arr) % np.uint64(d_k))
        bulk_merge_into(lvl.buckets, parts, self.ctx.disk)
        lvl.count += len(items)

    # -- instrumentation --------------------------------------------------------------

    def layout_snapshot(self) -> LayoutSnapshot:
        blocks: dict[int, tuple[int, ...]] = {}
        for lvl in self._levels:
            if lvl is None:
                continue
            for bkt in lvl.buckets:
                for bid, blk_items in bkt.peek_blocks():
                    blocks[bid] = blk_items
        # One-I/O address: the deepest (largest) non-empty level's bucket —
        # the best single guess for where an item lives.
        deepest = None
        for lvl in self._levels:
            if lvl is not None and not lvl.empty:
                deepest = lvl
        h = self.h

        def address(key: int) -> int | None:
            if deepest is None:
                return None
            return deepest.buckets[int(h.hash(key)) % len(deepest.buckets)].primary

        return LayoutSnapshot(
            memory_items=frozenset(self._h0),
            blocks=blocks,
            address=address,
            address_description_words=self.memory_words(),
        )

    def check_invariants(self) -> None:
        assert len(self._h0) < self.h0_capacity or self.h0_capacity == 0
        total = len(self._h0)
        seen = set(self._h0)
        for lvl in self._levels:
            if lvl is None:
                continue
            stored = 0
            for idx, bkt in enumerate(lvl.buckets):
                for x in bkt.peek_all():
                    assert int(self.h.hash(x)) % len(lvl.buckets) == idx
                    assert x not in seen, f"duplicate {x}"
                    seen.add(x)
                    stored += 1
            assert stored == lvl.count, f"level {lvl.k}: {stored} != {lvl.count}"
            total += stored
        assert total == self._size

    def clear(self) -> None:
        """Free all disk state and reset to empty (used by Theorem 2's table)."""
        self._h0.clear()
        self._shadow.clear()
        for lvl in self._levels:
            if lvl is not None:
                lvl.free_all()
        self._levels = []
        self._size = 0
        self._charge_memory()

    def drain_all(self) -> list[int]:
        """Read out *all* items (charged), leaving the table empty.

        Used by the bootstrapped table when merging the recent items
        into ``Ĥ``.  ``H_0`` items lead, in sorted order (see
        :meth:`_migrate_h0`).
        """
        items = np.sort(
            np.fromiter(self._h0, dtype=np.uint64, count=len(self._h0))
        ).tolist()
        self._h0.clear()
        for lvl in self._levels:
            if lvl is None or lvl.empty:
                continue
            items.extend(self._drain_level(lvl.k))
        for lvl in self._levels:
            if lvl is not None:
                lvl.free_all()
        self._levels = []
        self._size = 0
        self._shadow.clear()
        self._charge_memory()
        return items
