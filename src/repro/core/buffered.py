"""The bootstrapped buffered hash table (Theorem 2) — the paper's upper bound.

The construction keeps the *majority* of items in one big on-disk hash
table ``Ĥ`` so that most successful lookups cost exactly one I/O, while
recent insertions ride the logarithmic method:

* Round ``i`` starts with ``|Ĥ| = 2^{i-1} m`` and ends at ``2^i m``.
* Within a round, the next ``|Ĥ|/β`` insertions accumulate in a
  :class:`~repro.core.logmethod.LogMethodHashTable` (whose ``H_0`` is
  the memory buffer); then the accumulated chunk is merged into ``Ĥ``
  by a scan.  ``Ĥ`` is scanned ``β`` times per round, charging
  ``O(β/b)`` I/Os amortized to each item, and the log method adds
  ``O((γ/b) log(n/m))``.
* At every instant ``Ĥ`` holds at least a ``1 − 1/β`` fraction of all
  items, and the log-method levels are geometrically separated, so the
  expected successful-lookup cost is
  ``(1 + 2^{-Ω(b)}) · ((1 − 1/β) · 1 + (1/β)(2·½ + 3·¼ + ...)) = 1 + O(1/β)``.

With ``β = b^c`` this gives Theorem 2's
``t_u = O(b^{c-1})``, ``t_q = 1 + O(1/b^c)`` for any ``c < 1``; with
``β = εb/(2c')`` it gives ``t_u = ε``, ``t_q = 1 + O(1/b)``.

``Ĥ`` is a blocked chaining table kept at load factor ≤ ``hhat_load``;
its bucket count is fixed for the duration of a round and doubles at
the round boundary (folded into the first merge scan of the new round).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..em.storage import EMContext
from ..hashing.base import HashFunction
from ..tables.base import ExternalDictionary, LayoutSnapshot
from ..tables.batching import (
    concat_records,
    fresh_in_order,
    membership,
    normalize_keys,
    partition_by_bucket,
)
from ..tables.overflow import ChainedBucket, bulk_fill_buckets, bulk_merge_into
from .config import BufferedParams
from .logmethod import LogMethodHashTable


class BufferedHashTable(ExternalDictionary):
    """Theorem 2's dynamic hash table: ``o(1)`` inserts, ``1 + O(1/β)`` lookups.

    Parameters
    ----------
    ctx, hash_fn:
        Context and hash function.
    params:
        ``β`` and ``γ`` (see :class:`~repro.core.config.BufferedParams`).
    hhat_load:
        Target load factor of ``Ĥ`` (items per block-slot); the paper
        uses a constant < 1, we default to 1/2.
    """

    def __init__(
        self,
        ctx: EMContext,
        hash_fn: HashFunction,
        *,
        params: BufferedParams | None = None,
        hhat_load: float = 0.5,
    ) -> None:
        super().__init__(ctx)
        if not 0 < hhat_load < 1:
            raise ValueError(f"hhat_load must lie in (0,1), got {hhat_load}")
        self.h = hash_fn
        self.params = params if params is not None else BufferedParams(beta=8)
        self.hhat_load = hhat_load

        #: Bootstrap buffer: the first ~``m`` items accumulate in memory
        #: before Ĥ is first built ("dump them in a hash table Ĥ on disk").
        #: Leaves headroom for the O(1) addressing words and the inner
        #: log-method table's own O(1) residency so the total stays ≤ m.
        #: Insertion-ordered (dict keys): O(1) membership/delete for
        #: the batch paths while _finish_bootstrap sees list order.
        self._bootstrap: dict[int, None] = {}
        self._bootstrap_capacity = max(1, ctx.m - 16)
        self._bootstrapping = True

        #: The big table: chained buckets (None until first built).
        self._hhat: list[ChainedBucket] = []
        self._hhat_count = 0
        #: Round index i: Ĥ grows from 2^{i-1} m to 2^i m within round i.
        self._round = 0
        #: Items remaining before the next merge of recent items into Ĥ.
        self._until_merge = 0

        #: Recent insertions (the bootstrapped log method).
        self._recent = LogMethodHashTable(
            ctx, hash_fn, gamma=self.params.gamma, h0_capacity=max(1, ctx.m // 2)
        )

        # Simulator-side membership shadow (set semantics without
        # charging duplicate-probe I/Os the paper's insert path lacks).
        self._shadow: set[int] = set()
        self._charge_memory()

    # -- memory accounting ---------------------------------------------------

    def memory_words(self) -> int:
        # Bootstrap buffer + recent structure's H0 + O(1) Ĥ addressing.
        return len(self._bootstrap) + self._recent.memory_words() + 4

    def _charge_memory(self) -> None:
        # The inner log-method table charges the shared budget under its
        # own name; charge only the words owned directly by this wrapper
        # to avoid double counting.
        self.ctx.memory.set_charge(self._charge_key, len(self._bootstrap) + 4)

    # -- geometry ----------------------------------------------------------------

    @property
    def beta(self) -> int:
        return self.params.beta

    @property
    def hhat_size(self) -> int:
        """Items currently in ``Ĥ``."""
        return self._hhat_count

    @property
    def round_index(self) -> int:
        return self._round

    def _buckets_for(self, capacity: int) -> int:
        """Bucket count holding ``capacity`` items at the target load."""
        per_bucket = max(1, int(self.ctx.b * self.hhat_load))
        return max(1, -(-capacity // per_bucket))

    def _round_capacity(self) -> int:
        """Ĥ size at which round ``i`` ends: ``2^i · m``."""
        return (2**self._round) * self.ctx.m

    def _chunk_size(self) -> int:
        """Insertions accumulated between merges: ``2^{i-1} m / β``."""
        start = max(1, self._round_capacity() // 2)
        return max(1, start // self.beta)

    # -- operations -----------------------------------------------------------------

    def insert(self, key: int) -> None:
        if key in self._shadow:
            return
        self._shadow.add(key)
        self._size += 1
        self.stats.inserts += 1

        if self._bootstrapping:
            self._bootstrap[key] = None
            if len(self._bootstrap) >= self._bootstrap_capacity:
                self._finish_bootstrap()
            self._charge_memory()
            return

        self._recent.insert(key)
        self._until_merge -= 1
        if self._until_merge <= 0:
            self._merge_recent()
        self._charge_memory()

    def lookup(self, key: int) -> bool:
        """Successful lookups cost ``1 + O(1/β)`` expected I/Os.

        Probe order: memory (free) → ``Ĥ`` (one I/O for the
        ``1 − 1/β`` majority) → log-method levels, largest first.
        """
        self.stats.lookups += 1
        if self._bootstrapping:
            if key in self._bootstrap:
                self.stats.hits += 1
                return True
            return False
        if self._recent.in_memory(key):
            self.stats.hits += 1
            return True
        bucket = self._hhat[int(self.h.hash(key)) % len(self._hhat)]
        found, _ = bucket.lookup(key)
        if not found:
            found = self._recent.lookup_disk_only(key, charge=True)
        if found:
            self.stats.hits += 1
        return found

    def delete(self, key: int) -> bool:
        """Remove ``key``, probing in lookup order: memory (free) → ``Ĥ``
        (one read-modify-write) → log-method levels."""
        return self._delete_hashed(key, None)

    def _delete_hashed(self, key: int, hv: int | None) -> bool:
        if self._bootstrapping:
            if key in self._bootstrap:
                del self._bootstrap[key]
                self._shadow.discard(key)
                self._size -= 1
                self.stats.deletes += 1
                self._charge_memory()
                return True
            return False
        if self._recent.in_memory(key):
            self._recent.delete(key)  # the free H_0 branch
            self._shadow.discard(key)
            self._size -= 1
            self.stats.deletes += 1
            return True
        if hv is None:
            hv = int(self.h.hash(key))
        if self._hhat[hv % len(self._hhat)].delete(key):
            self._hhat_count -= 1
            self._shadow.discard(key)
            self._size -= 1
            self.stats.deletes += 1
            return True
        if self._recent.delete_disk_only(key, hashed=hv):
            self._shadow.discard(key)
            self._size -= 1
            self.stats.deletes += 1
            return True
        return False

    # -- batch operations ---------------------------------------------------------------

    def insert_batch(self, keys: Sequence[int] | np.ndarray) -> None:
        """Bulk insert with the scalar path's exact merge schedule.

        One shadow-dedup pass, then segments cut at the scalar loop's
        event boundaries: the bootstrap build, the inner log-method's
        ``H_0`` migrations (handled by its own ``insert_batch``), and
        every ``|Ĥ|/β``-insertion merge into ``Ĥ``.  All staging inside
        those events is vectorised; the charged I/O sequence is
        bit-identical to ``insert_many``.
        """
        fresh = fresh_in_order(keys, self._shadow)
        if not fresh:
            return
        pos = 0
        n = len(fresh)
        while pos < n:
            if self._bootstrapping:
                seg = fresh[pos : pos + self._bootstrap_capacity - len(self._bootstrap)]
                self._bootstrap.update(dict.fromkeys(seg))
                pos += len(seg)
                self._size += len(seg)
                self.stats.inserts += len(seg)
                if len(self._bootstrap) >= self._bootstrap_capacity:
                    # Replicate the scalar memory peak: the last charge
                    # before the bootstrap build saw capacity-1 items.
                    self.ctx.memory.set_charge(
                        self._charge_key, len(self._bootstrap) + 3
                    )
                    self._finish_bootstrap()
                    self._charge_memory()
                continue
            take = min(self._until_merge, n - pos)
            seg = fresh[pos : pos + take]
            # Keys fresh to the outer shadow are necessarily fresh to the
            # inner table, whose own dedup shadow is only ever consulted
            # for keys this wrapper has already screened — skip both its
            # dedup pass and its shadow upkeep.
            self._recent._insert_fresh(seg)
            pos += take
            self._size += take
            self.stats.inserts += take
            self._until_merge -= take
            if self._until_merge <= 0:
                self._merge_recent()
        self._charge_memory()

    def lookup_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.empty(n, dtype=bool)
        self.stats.lookups += n
        if self._bootstrapping:
            resident = set(self._bootstrap)
            for i in range(n):
                out[i] = key_list[i] in resident
            if cost_out is not None:
                cost_out.extend([0] * n)
            self.stats.hits += int(np.count_nonzero(out))
            return out
        hhat = self._hhat
        d = len(hhat)
        stats = self.ctx.stats
        if (
            cost_out is None
            # Crossover: materialising + sorting Ĥ costs O(stored), so
            # the vectorised path only pays off for batches that are
            # not tiny relative to the table (cf. the LSM screen gate).
            and 24 * n >= self._hhat_count
            # The bulk branch charges reads wholesale without consulting
            # the buffer pool; cached runs take the scalar probes so
            # every read is labelled hit or miss.
            and self.ctx.disk.cache is None
            and self._recent.levels_chain_free()
            and all(not bkt._chain for bkt in hhat)
        ):
            # Fully vectorised: one bulk Ĥ probe (membership in Ĥ's
            # item set equals membership in the key's own bucket, since
            # items live where they hash) plus bulk level probes for
            # the Ĥ misses.  Reads are charged in bulk; the pending
            # read-modify-write block is restored to what the scalar
            # walk would have left.
            in_mem = self._recent.memory_membership(arr)
            rest = ~in_mem
            nprobe = int(np.count_nonzero(rest))
            if nprobe == 0:
                self.stats.hits += int(np.count_nonzero(in_mem))
                return in_mem
            stats.reads += nprobe
            records_arr = self.ctx.disk.records_arr
            hhat_items = concat_records(
                records_arr(bkt.primary) for bkt in hhat
            )
            found_hhat = membership(arr, hhat_items) & rest
            found_lvl = self._recent.probe_levels_batch(arr, rest & ~found_hhat)
            i = int(np.flatnonzero(rest)[-1])
            hv_i = int(self.h.hash(key_list[i]))
            if found_hhat[i] or not self._recent.nonempty_levels():
                stats._last_read_block = hhat[hv_i % d].primary
            else:
                stats._last_read_block = self._recent._final_probe_block(
                    key_list[i], hv_i
                )
            out = in_mem | found_hhat | found_lvl
            self.stats.hits += int(np.count_nonzero(out))
            return out
        hv_list = self.h.hash_array(arr).tolist()
        in_mem_one = self._recent.in_memory
        recent_disk = self._recent.lookup_disk_only
        hits = 0
        for i in range(n):
            key = key_list[i]
            if in_mem_one(key):
                found = True
                if cost_out is not None:
                    cost_out.append(0)
            else:
                h = hv_list[i]
                before = stats.reads if cost_out is not None else 0
                found, _ = hhat[h % d].lookup(key)
                if not found:
                    found = recent_disk(key, charge=True, hashed=h)
                if cost_out is not None:
                    cost_out.append(stats.reads - before)
            out[i] = found
            hits += found
        self.stats.hits += hits
        return out

    def delete_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        *,
        cost_out: list[int] | None = None,
    ) -> np.ndarray:
        """Vectorised-hash deletes in lookup probe order.

        Deletion never triggers merges or round boundaries, so one
        ``hash_array`` call serves the batch and the per-key probe
        (memory → ``Ĥ`` → levels) charges exactly like
        :meth:`delete`.
        """
        key_list, arr = normalize_keys(keys)
        n = len(key_list)
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        if self._bootstrapping:
            for i in range(n):
                out[i] = self._delete_hashed(key_list[i], None)
                if cost_out is not None:
                    cost_out.append(0)
            return out
        hv = self.h.hash_array(arr).tolist()
        stats = self.ctx.stats
        for i in range(n):
            if cost_out is None:
                out[i] = self._delete_hashed(key_list[i], hv[i])
            else:
                before = stats.reads + stats.writes
                out[i] = self._delete_hashed(key_list[i], hv[i])
                cost_out.append(stats.reads + stats.writes - before)
        return out

    # -- bootstrap / rounds -------------------------------------------------------------

    def _finish_bootstrap(self) -> None:
        """Build ``Ĥ`` from the first ``m`` items and enter round 1."""
        self._bootstrapping = False
        items = list(self._bootstrap)
        self._bootstrap = {}
        self._round = 1
        self._rebuild_hhat(items, capacity=self._round_capacity())
        self._until_merge = self._chunk_size()

    def _rebuild_hhat(self, items: list[int], *, capacity: int) -> None:
        """(Re)build ``Ĥ`` sized for ``capacity`` and write ``items`` into it."""
        self.stats.rebuilds += 1
        for bkt in self._hhat:
            bkt.free_all()
        d = self._buckets_for(capacity)
        self._hhat = ChainedBucket.bulk_row(self.ctx.disk, d)
        arr = np.asarray(items, dtype=np.uint64)
        parts = partition_by_bucket(arr, self.h.hash_array(arr) % np.uint64(d))
        bulk_fill_buckets(self._hhat, parts, self.ctx.disk)
        self._hhat_count = len(items)

    def _merge_recent(self) -> None:
        """Merge the accumulated recent items into ``Ĥ``.

        The paper merges by *scanning* ``Ĥ`` once, charging ``O(β/b)``
        I/Os per item; when the chunk is small relative to ``Ĥ``'s
        block count, touching only the receiving buckets is cheaper.
        We take whichever costs less — the scan bound of the paper is
        an upper bound either way.

        At a round boundary the merge doubles ``Ĥ``'s bucket count by
        rebuilding — the same full scan, so the cost class is unchanged.
        """
        self.stats.merges += 1
        chunk = self._recent.drain_all()
        new_size = self._hhat_count + len(chunk)

        if new_size >= self._round_capacity():
            # Round boundary: rebuild at double capacity.
            all_items: list[int] = list(chunk)
            for bkt in self._hhat:
                all_items.extend(bkt.read_all())
            self._round += 1
            self._rebuild_hhat(all_items, capacity=self._round_capacity())
        else:
            # In-round merge: read-modify-write each receiving bucket.
            # This touches a subset of the blocks the paper's full scan
            # would stream, so its cost is bounded by the scan's
            # O(|Ĥ|/b) I/Os per |Ĥ|/β-item chunk — the O(β/b)-per-item
            # charge of Theorem 2's analysis.
            d = len(self._hhat)
            arr = np.asarray(chunk, dtype=np.uint64)
            parts = partition_by_bucket(arr, self.h.hash_array(arr) % np.uint64(d))
            bulk_merge_into(self._hhat, parts, self.ctx.disk)
            self._hhat_count = new_size

        self._until_merge = self._chunk_size()
        self._charge_memory()

    # -- instrumentation ---------------------------------------------------------------

    def recent_fraction(self) -> float:
        """Fraction of items outside ``Ĥ`` — the paper's ``≤ 1/β`` invariant."""
        if self._size == 0:
            return 0.0
        outside = self._size - self._hhat_count
        return outside / self._size

    def hhat_load_factor(self) -> float:
        if not self._hhat:
            return 0.0
        blocks = sum(1 + bkt.chain_length for bkt in self._hhat)
        return -(-self._hhat_count // self.ctx.b) / blocks if blocks else 0.0

    def layout_snapshot(self) -> LayoutSnapshot:
        recent_snap = self._recent.layout_snapshot()
        blocks: dict[int, tuple[int, ...]] = dict(recent_snap.blocks)
        for bkt in self._hhat:
            for bid, items in bkt.peek_blocks():
                blocks[bid] = items
        memory_items = frozenset(self._bootstrap) | recent_snap.memory_items
        hhat = self._hhat
        h = self.h

        def address(key: int) -> int | None:
            # The one-I/O guess is the Ĥ bucket: correct for the 1−1/β
            # majority; recent items on disk are in the slow zone.
            if not hhat:
                return None
            return hhat[int(h.hash(key)) % len(hhat)].primary

        return LayoutSnapshot(
            memory_items=memory_items,
            blocks=blocks,
            address=address,
            address_description_words=self.memory_words(),
        )

    def check_invariants(self) -> None:
        if self._bootstrapping:
            assert len(self._bootstrap) == self._size
            return
        # Ĥ integrity.
        stored = 0
        for idx, bkt in enumerate(self._hhat):
            items = bkt.peek_all()
            stored += len(items)
            for x in items:
                assert int(self.h.hash(x)) % len(self._hhat) == idx
        assert stored == self._hhat_count
        # The ≤ 1/β staleness invariant, with slack for the current
        # partially-accumulated chunk at small sizes.
        assert self._size - self._hhat_count <= max(
            self._chunk_size(), self._size / self.beta + self._chunk_size()
        )
        self._recent.check_invariants()
        assert stored + len(self._recent) == self._size
