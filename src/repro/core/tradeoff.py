"""Figure 1: the query--insertion tradeoff, as data.

Generates the upper- and lower-bound envelopes of the paper's Figure 1
for a concrete ``(b, n, m)`` instantiation, and pairs them with
*measured* points produced by the workload drivers.  The x-axis is the
query-cost exponent ``c`` (query target ``t_q = 1 + 1/b^c``), the
y-axis the amortized insertion cost ``t_u`` in I/Os.

Regimes:

* ``c > 1``      — buffering useless: ``t_u ≥ 1 − O(1/b^{(c−1)/4})``,
  matched by the standard table at ``1 + 1/2^{Ω(b)}``.
* ``c = 1``      — the boundary: ``t_u = Θ(1)`` (any constant ε > 0
  achievable).
* ``0 < c < 1``  — buffering wins: ``t_u = Θ(b^{c−1}) = o(1)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import insertion_lower_bound, insertion_upper_bound, query_cost_target


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the tradeoff plane."""

    c: float
    query_cost: float
    insert_cost: float
    kind: str  # "lower", "upper", or "measured"
    label: str = ""


@dataclass
class TradeoffCurves:
    """The Figure 1 envelopes for a concrete instantiation."""

    b: int
    n: int
    m: int
    lower: list[TradeoffPoint] = field(default_factory=list)
    upper: list[TradeoffPoint] = field(default_factory=list)
    measured: list[TradeoffPoint] = field(default_factory=list)

    def add_measured(self, c: float, query_cost: float, insert_cost: float, label: str) -> None:
        self.measured.append(
            TradeoffPoint(c, query_cost, insert_cost, "measured", label)
        )

    def rows(self) -> list[dict[str, float | str]]:
        """Flat row dicts for tabular printing (benchmark output)."""
        out: list[dict[str, float | str]] = []
        for pt in [*self.lower, *self.upper, *self.measured]:
            out.append(
                {
                    "c": round(pt.c, 4),
                    "t_q": round(pt.query_cost, 6),
                    "t_u": round(pt.insert_cost, 6),
                    "kind": pt.kind,
                    "label": pt.label,
                }
            )
        return out


def regime_of(c: float) -> str:
    """Which Figure 1 regime an exponent falls in."""
    if c > 1:
        return "buffering-useless"
    if c == 1:
        return "boundary"
    if c > 0:
        return "buffering-effective"
    raise ValueError(f"query exponent must be positive, got {c}")


def figure1_curves(
    b: int,
    n: int,
    m: int,
    *,
    c_grid: np.ndarray | None = None,
    lower_constant: float = 1.0,
    gamma: int = 2,
) -> TradeoffCurves:
    """Sample the Figure 1 envelopes on a grid of exponents."""
    if c_grid is None:
        c_grid = np.concatenate(
            [np.linspace(0.2, 0.95, 16), np.array([1.0]), np.linspace(1.05, 2.0, 16)]
        )
    curves = TradeoffCurves(b=b, n=n, m=m)
    for c in np.asarray(c_grid, dtype=float):
        c = float(c)
        tq = query_cost_target(b, c)
        curves.lower.append(
            TradeoffPoint(
                c,
                tq,
                insertion_lower_bound(b, c, constant=lower_constant),
                "lower",
                f"Thm1 case {1 if c > 1 else (2 if c == 1 else 3)}",
            )
        )
        curves.upper.append(
            TradeoffPoint(
                c,
                tq,
                insertion_upper_bound(b, c, n, m, gamma=gamma),
                "upper",
                "standard table" if c > 1 else "Thm2 buffered",
            )
        )
    return curves


def crossover_exponent(curves: TradeoffCurves, threshold: float = 0.5) -> float | None:
    """Smallest ``c`` on the upper envelope where ``t_u`` exceeds ``threshold``.

    Locates the empirical "limit of buffering": the paper predicts the
    jump happens at ``c = 1``.
    """
    pts = sorted(curves.upper, key=lambda p: p.c)
    for pt in pts:
        if pt.insert_cost > threshold:
            return pt.c
    return None
