"""A Jensen–Pagh-style high-load hash table (the paper's prior work).

Jensen and Pagh [12] showed how to keep the load factor at
``α = 1 − O(1/√b)`` while supporting queries *and* updates in
``1 + O(1/√b)`` I/Os — and then asked whether buffering could push the
update cost below 1, the question this paper answers.  This module
implements a structure with the same cost profile so benchmarks can
place [12] on the tradeoff plane next to Theorems 1 and 2.

Design (shape-faithful to [12]'s parameters, simplified mechanics):

* ``d ≈ n/(αb)`` primary blocks, target load ``α = 1 − 1/√b``;
* an item hashes to one primary block; if that block is full the item
  goes to a shared **overflow table** (blocked chaining at load ½);
* with ``α = 1 − 1/√b``, a ``Θ(1/√b)`` fraction of items overflows
  (Poisson tail at occupancy ``αb``), so

  - a successful lookup costs ``1 + O(1/√b)`` expected I/Os
    (primary block, plus the overflow probe for the overflowed few),
  - an insertion costs ``1 + O(1/√b)`` amortized
    (read-modify-write the primary block; occasionally the overflow
    table; a rebuild doubling adds ``O(1/b)``),
  - total space is ``n/(αb)·(1 + O(1/√b))`` blocks: load ``1 − O(1/√b)``.

The structure deliberately does **not** buffer insertions — it is the
best known point on the "no buffering" frontier, which is exactly why
the paper's Theorem 1 (buffering can't beat it when queries stay this
fast) resolves [12]'s conjecture.
"""

from __future__ import annotations

import math

from ..em.block import Block
from ..em.storage import EMContext
from ..hashing.base import HashFunction
from ..tables.base import ExternalDictionary, LayoutSnapshot
from ..tables.overflow import ChainedBucket


class JensenPaghTable(ExternalDictionary):
    """High-load external hash table: queries and updates ``1 + O(1/√b)``.

    Parameters
    ----------
    ctx, hash_fn:
        Context and hash function.
    alpha:
        Target primary load factor; defaults to ``1 − 1/√b``.
    initial_capacity:
        Items the initial primary area is sized for (defaults to ``4b``).
    """

    def __init__(
        self,
        ctx: EMContext,
        hash_fn: HashFunction,
        *,
        alpha: float | None = None,
        initial_capacity: int | None = None,
    ) -> None:
        super().__init__(ctx)
        b = ctx.b
        self.h = hash_fn
        self.alpha = alpha if alpha is not None else 1.0 - 1.0 / math.sqrt(b)
        if not 0 < self.alpha < 1:
            raise ValueError(f"α must lie in (0,1), got {self.alpha}")
        capacity = initial_capacity if initial_capacity is not None else 4 * b
        self._primary: list[int] = []  # block ids
        self._overflow_buckets: list[ChainedBucket] = []
        self._overflow_count = 0
        self._build_primary(capacity)
        self._charge_memory()

    # -- geometry ------------------------------------------------------------

    def _build_primary(self, capacity: int) -> None:
        d = max(1, math.ceil(capacity / (self.alpha * self.ctx.b)))
        self._capacity = capacity
        for bid in self._primary:
            self.ctx.disk.free(bid)
        self._primary = self.ctx.disk.allocate_many(d)
        for bkt in self._overflow_buckets:
            bkt.free_all()
        # Overflow area: chaining sized for the expected Θ(n/√b)
        # overflow at load ½, at least one bucket.
        overflow_capacity = max(1, int(2 * capacity / math.sqrt(self.ctx.b)))
        n_overflow = max(1, -(-overflow_capacity // self.ctx.b))
        self._overflow_buckets = [
            ChainedBucket(self.ctx.disk) for _ in range(n_overflow)
        ]
        self._overflow_count = 0

    def _primary_index(self, key: int) -> int:
        return int(self.h.bucket(key, len(self._primary)))

    def _overflow_bucket(self, key: int) -> ChainedBucket:
        # A different slice of the hash avoids correlation with the
        # primary index.
        idx = int(self.h.hash(key) // max(1, len(self._primary))) % len(
            self._overflow_buckets
        )
        return self._overflow_buckets[idx]

    # -- memory ------------------------------------------------------------

    def memory_words(self) -> int:
        # Hash seed + table geometry + the two directories.
        return 4 + len(self._primary) + len(self._overflow_buckets)

    def _charge_memory(self) -> None:
        self.ctx.memory.set_charge(self._charge_key, self.memory_words())

    # -- operations ------------------------------------------------------------

    def insert(self, key: int) -> None:
        bid = self._primary[self._primary_index(key)]
        inserted = overflowed = False
        with self.ctx.disk.modify(bid) as blk:
            if key in blk:
                pass  # duplicate: idempotent no-op
            elif not blk.full:
                blk.append(key)
                inserted = True
            else:
                # Sticky marker: this block has spilled at least once,
                # so a miss here can no longer rule out the overflow
                # area (deletions may later un-fill the block).
                blk.header["ovf"] = True
                overflowed = True
        # Growth must happen outside the modify context: the rebuild
        # frees the very block the context would write back.
        if overflowed:
            if self._overflow_bucket(key).insert(key):
                self._size += 1
                self._overflow_count += 1
                self.stats.inserts += 1
                self.stats.bump("overflow_inserts")
                self._maybe_grow()
        elif inserted:
            self._size += 1
            self.stats.inserts += 1
            self._maybe_grow()

    def lookup(self, key: int) -> bool:
        self.stats.lookups += 1
        bid = self._primary[self._primary_index(key)]
        blk = self.ctx.disk.read(bid)
        if key in blk:
            self.stats.hits += 1
            return True
        if not blk.header.get("ovf"):
            # This block never spilled, so the key cannot be in the
            # overflow area: definitive miss in one I/O.
            return False
        found, _ = self._overflow_bucket(key).lookup(key)
        if found:
            self.stats.hits += 1
        return found

    def delete(self, key: int) -> bool:
        bid = self._primary[self._primary_index(key)]
        with self.ctx.disk.modify(bid) as blk:
            if blk.remove(key):
                self._size -= 1
                self.stats.deletes += 1
                return True
            spilled = bool(blk.header.get("ovf"))
        if not spilled:
            return False
        if self._overflow_bucket(key).delete(key):
            self._size -= 1
            self._overflow_count -= 1
            self.stats.deletes += 1
            return True
        return False

    def _maybe_grow(self) -> None:
        """Double when the primary area is past its design load.

        The rebuild reads every block once and writes the new area —
        ``O(1/b)`` amortized per insertion, as in extendible/linear
        hashing [10, 14].
        """
        if self._size <= self._capacity:
            return
        self.stats.rebuilds += 1
        items: list[int] = []
        for bid in self._primary:
            items.extend(self.ctx.disk.read(bid).records())
        for bkt in self._overflow_buckets:
            items.extend(bkt.read_all())
        self._build_primary(2 * self._capacity)
        # Stage per target block and write each block exactly once —
        # the whole rebuild is one read pass + one write pass, O(n/b).
        staged: dict[int, list[int]] = {}
        overflowed: list[int] = []
        for x in items:
            lst = staged.setdefault(self._primary_index(x), [])
            if len(lst) < self.ctx.b:
                lst.append(x)
            else:
                overflowed.append(x)
        for idx, lst in staged.items():
            self.ctx.disk.write(self._primary[idx], Block(self.ctx.b, data=lst))
        for x in overflowed:
            self._overflow_bucket(x).insert(x)
            self._overflow_count += 1
        self._charge_memory()

    # -- instrumentation ---------------------------------------------------------

    def overflow_fraction(self) -> float:
        """Fraction of items in the overflow area — the Θ(1/√b) tail."""
        return self._overflow_count / self._size if self._size else 0.0

    def load_factor(self) -> float:
        """Footnote-1 load: minimal blocks over blocks in use."""
        used = len(self._primary) + sum(
            1 + bkt.chain_length
            for bkt in self._overflow_buckets
            if bkt.item_count() > 0
        )
        if used == 0:
            return 0.0
        return -(-self._size // self.ctx.b) / used

    def layout_snapshot(self) -> LayoutSnapshot:
        blocks: dict[int, tuple[int, ...]] = {}
        for bid in self._primary:
            blocks[bid] = tuple(self.ctx.disk.peek(bid).records())
        for bkt in self._overflow_buckets:
            for bid, items in bkt.peek_blocks():
                blocks[bid] = items
        primary = self._primary
        h = self.h

        def address(key: int) -> int | None:
            return primary[int(h.bucket(key, len(primary)))]

        return LayoutSnapshot(
            memory_items=frozenset(),
            blocks=blocks,
            address=address,
            address_description_words=self.memory_words(),
        )

    def check_invariants(self) -> None:
        primary_items: list[int] = []
        for idx, bid in enumerate(self._primary):
            records = self.ctx.disk.peek(bid).records()
            for x in records:
                assert self._primary_index(x) == idx, "item in wrong primary block"
            primary_items.extend(records)
        overflow_items: list[int] = []
        for bkt in self._overflow_buckets:
            overflow_items.extend(bkt.peek_all())
        assert len(overflow_items) == self._overflow_count
        all_items = primary_items + overflow_items
        assert len(all_items) == len(set(all_items)) == self._size
        # Every overflowed item's primary block carries the spill marker
        # (it was full at spill time; deletions may have un-filled it).
        for x in overflow_items:
            bid = self._primary[self._primary_index(x)]
            assert self.ctx.disk.peek(bid).header.get(
                "ovf"
            ), "overflow without a spill marker on the primary block"
