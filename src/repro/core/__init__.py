"""The paper's primary contribution, executable.

* :class:`~repro.core.logmethod.LogMethodHashTable` — Lemma 5.
* :class:`~repro.core.buffered.BufferedHashTable` — Theorem 2.
* :class:`~repro.core.jensen_pagh.JensenPaghTable` — the prior work
  [12] whose conjecture the paper settles: load ``1 − O(1/√b)``,
  queries and (unbuffered) updates ``1 + O(1/√b)``.
* :mod:`~repro.core.config` — parameter derivations (β = b^c, the
  (δ, φ, ρ, s) tuples of Theorem 1) and closed-form bound values.
* :mod:`~repro.core.tradeoff` — Figure 1 as data.
"""

from .buffered import BufferedHashTable
from .jensen_pagh import JensenPaghTable
from .config import (
    BufferedParams,
    LowerBoundParams,
    insertion_lower_bound,
    insertion_upper_bound,
    query_cost_target,
)
from .logmethod import LogMethodHashTable
from .tradeoff import (
    TradeoffCurves,
    TradeoffPoint,
    crossover_exponent,
    figure1_curves,
    regime_of,
)

__all__ = [
    "BufferedHashTable",
    "BufferedParams",
    "JensenPaghTable",
    "LogMethodHashTable",
    "LowerBoundParams",
    "TradeoffCurves",
    "TradeoffPoint",
    "crossover_exponent",
    "figure1_curves",
    "insertion_lower_bound",
    "insertion_upper_bound",
    "query_cost_target",
    "regime_of",
]
