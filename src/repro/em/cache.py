"""An LRU buffer pool over the simulated disk.

The paper's structures manage their memory explicitly (H0 lives in
memory, everything else on disk), but classic engines and our baselines
(B-tree, LSM) are more naturally written against a buffer pool: reads
hit the cache when possible, dirty blocks are written back on eviction.
A cache of ``capacity_blocks`` blocks consumes
``capacity_blocks * b`` words of the memory budget.

Cache hits charge **no** I/O — that is the entire point of buffering and
exactly the effect whose limits the paper studies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .block import Block
from .disk import Disk
from .errors import ConfigurationError
from .memory import MemoryBudget


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for a :class:`BufferPool`."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class BufferPool:
    """Write-back LRU cache of disk blocks.

    Parameters
    ----------
    disk:
        Underlying disk; all misses and writebacks are charged there.
    capacity_blocks:
        Number of block frames; total memory footprint is
        ``capacity_blocks * disk.b`` words.
    budget:
        Optional memory budget to charge the frames against.
    owner:
        Charge label used with ``budget``.
    """

    def __init__(
        self,
        disk: Disk,
        capacity_blocks: int,
        *,
        budget: MemoryBudget | None = None,
        owner: str = "buffer-pool",
    ) -> None:
        if capacity_blocks <= 0:
            raise ConfigurationError(
                f"cache capacity must be positive, got {capacity_blocks}"
            )
        self.disk = disk
        self.capacity_blocks = capacity_blocks
        self.budget = budget
        self.owner = owner
        if budget is not None:
            budget.charge(owner, capacity_blocks * disk.b)
        self._frames: OrderedDict[int, Block] = OrderedDict()
        self._dirty: set[int] = set()
        self.stats = CacheStats()

    # -- core operations -----------------------------------------------------

    def get(self, block_id: int) -> Block:
        """Return the cached block, faulting it in from disk on a miss."""
        if block_id in self._frames:
            self.stats.hits += 1
            self._frames.move_to_end(block_id)
            return self._frames[block_id]
        self.stats.misses += 1
        blk = self.disk.read(block_id)
        self._install(block_id, blk)
        return blk

    def put(self, block_id: int, block: Block) -> None:
        """Install ``block`` as the new contents of ``block_id`` (dirty)."""
        if block_id in self._frames:
            self._frames[block_id] = block
            self._frames.move_to_end(block_id)
        else:
            self._install(block_id, block)
        self._dirty.add(block_id)

    def mark_dirty(self, block_id: int) -> None:
        """Mark an already-cached block as modified in place."""
        if block_id not in self._frames:
            raise KeyError(f"block {block_id} not resident in cache")
        self._dirty.add(block_id)

    def _install(self, block_id: int, block: Block) -> None:
        while len(self._frames) >= self.capacity_blocks:
            self._evict_lru()
        self._frames[block_id] = block
        self._frames.move_to_end(block_id)

    def _evict_lru(self) -> None:
        victim, blk = self._frames.popitem(last=False)
        self.stats.evictions += 1
        if victim in self._dirty:
            # Eviction write-backs are "cold" writes: the read that brought
            # the block in is long past, so footnote-2 combining must not
            # apply.
            self.disk.stats.invalidate_rmw()
            self.disk.write(victim, blk)
            self._dirty.discard(victim)
            self.stats.writebacks += 1

    # -- maintenance -----------------------------------------------------------

    def flush(self) -> int:
        """Write back every dirty block; return the number written."""
        written = 0
        for bid in sorted(self._dirty):
            self.disk.stats.invalidate_rmw()
            self.disk.write(bid, self._frames[bid])
            written += 1
            self.stats.writebacks += 1
        self._dirty.clear()
        return written

    def invalidate(self, block_id: int, *, discard: bool = False) -> None:
        """Drop a block from the cache (writing it back unless ``discard``)."""
        if block_id not in self._frames:
            return
        blk = self._frames.pop(block_id)
        if block_id in self._dirty:
            self._dirty.discard(block_id)
            if not discard:
                self.disk.stats.invalidate_rmw()
                self.disk.write(block_id, blk)
                self.stats.writebacks += 1

    def clear(self) -> None:
        """Flush and empty the pool."""
        self.flush()
        self._frames.clear()

    def close(self) -> None:
        """Flush and release the memory charge."""
        self.clear()
        if self.budget is not None:
            self.budget.release(self.owner)

    # -- inspection -------------------------------------------------------------

    def resident(self) -> list[int]:
        """Block ids currently cached, LRU first."""
        return list(self._frames)

    def is_resident(self, block_id: int) -> bool:
        return block_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)
