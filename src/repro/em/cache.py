"""Caching as a policy axis: the LRU buffer pool and the cached disk.

The paper's whole subject is the limit of what buffering can buy an
external-memory dictionary.  This module makes that buying power an
explicit **third I/O-policy axis**, alongside PAPER/STRICT read-modify-
write combining and the mapping/arena/durable-arena storage backends:

* :class:`BufferPool` — a write-back LRU cache of disk blocks with
  hit/dirty accounting, usable standalone by baselines;
* :class:`CachedDisk` — a :class:`~repro.em.disk.Disk` whose charged hot
  paths (``read``/``write``/``modify``/``load``/``store`` plus the
  record-level ``probe_record``/``remove_record``/``scan``/
  ``read_records``) route through a private pool.

Cache hits charge **no** I/O — that is the entire point of buffering and
exactly the effect whose limits the paper studies.  Exactness is
preserved, not abandoned:

* uncached configs (``cache_blocks=0``) never construct a pool and stay
  bit-identical to the uncached ledgers and layouts;
* in a cached run every charged backend read is counted as a **miss**
  and every avoided one as a **hit**, so
  ``hits + misses == uncached charged reads`` — the cache only
  *relabels* I/Os, it never loses them.  (Bloom-filter rejections, which
  charge nothing in either configuration, are counted separately as
  ``negative_hits``.)

Coherence discipline of :class:`CachedDisk`: frames are always *clean
copies* of committed backend state.  Every mutating path —
``write``/``store``/``free``, the copy-light loans (``load``/``stage``),
``remove_record`` on a hit, and the uncharged bulk mutators — drops the
resident frame first (write-invalidate), so a frame can never go stale
behind an outstanding loan or a backend-level bulk append.  Streaming
bulk reads (``scan``/``read_records``) count hits and misses but never
install frames, keeping one cold table scan from flushing the pool
(scan resistance).

A cache of ``capacity_blocks`` blocks consumes ``capacity_blocks * b``
words of the memory budget.  Cached contexts model a machine with ``m``
structure words *plus* a dedicated cache — the structures' layout under
``m`` stays identical to the uncached run, which is what makes the
cold-vs-warm comparison a controlled experiment.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from .block import Block
from .disk import Disk
from .errors import ConfigurationError, InvalidBlockError
from .iostats import IOStats
from .memory import MemoryBudget


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for a :class:`BufferPool`.

    ``negative_hits`` counts lookups answered by a Bloom filter acting
    as a negative cache: the probe skipped the pool *and* the disk.
    Those charge no I/O in uncached runs either, so they sit outside the
    ``hits + misses == uncached reads`` exactness contract.
    """

    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    writebacks: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    # -- checkpointing (mirrors IOStats.snapshot/delta_since/absorb) --------

    def snapshot(self) -> "CacheStats":
        """Capture the current counter values."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            negative_hits=self.negative_hits,
            writebacks=self.writebacks,
            evictions=self.evictions,
        )

    def delta_since(self, snap: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``snap`` was taken."""
        return CacheStats(
            hits=self.hits - snap.hits,
            misses=self.misses - snap.misses,
            negative_hits=self.negative_hits - snap.negative_hits,
            writebacks=self.writebacks - snap.writebacks,
            evictions=self.evictions - snap.evictions,
        )

    def absorb(self, delta: "CacheStats") -> None:
        """Fold another pool's counter delta into this one.

        Used by the service layer to merge per-shard cache ledgers into
        a cluster total at epoch close; pure counter addition, so the
        merged result is independent of shard execution order.
        """
        self.hits += delta.hits
        self.misses += delta.misses
        self.negative_hits += delta.negative_hits
        self.writebacks += delta.writebacks
        self.evictions += delta.evictions

    def as_dict(self) -> dict:
        """Plain-dict counter view (trace spans, metrics folding)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "negative_hits": self.negative_hits,
            "writebacks": self.writebacks,
            "evictions": self.evictions,
        }


class BufferPool:
    """Write-back LRU cache of disk blocks.

    Parameters
    ----------
    disk:
        Underlying disk; all misses and writebacks are charged there.
    capacity_blocks:
        Number of block frames; total memory footprint is
        ``capacity_blocks * disk.b`` words.
    budget:
        Optional memory budget to charge the frames against.
    owner:
        Charge label used with ``budget``.

    Copy semantics: :meth:`get` returns a **private copy** of the cached
    block, matching :meth:`Disk.read` — mutating the returned block
    never silently mutates the frame (which would bypass
    :meth:`mark_dirty` tracking).  ``get(..., copy=False)`` loans the
    live frame for read-only bulk inspection, mirroring
    ``Disk.read(copy=False)``'s backend-handle loan.

    :attr:`on_evict` is an optional hook called with the block id
    whenever a frame leaves the pool (LRU eviction, :meth:`invalidate`,
    or :meth:`clear`); :class:`CachedDisk` uses it to keep its
    record-membership index in sync with residency.
    """

    def __init__(
        self,
        disk: Disk,
        capacity_blocks: int,
        *,
        budget: MemoryBudget | None = None,
        owner: str = "buffer-pool",
    ) -> None:
        if capacity_blocks <= 0:
            raise ConfigurationError(
                f"cache capacity must be positive, got {capacity_blocks}"
            )
        self.disk = disk
        self.capacity_blocks = capacity_blocks
        self.budget = budget
        self.owner = owner
        if budget is not None:
            budget.charge(owner, capacity_blocks * disk.b)
        self._frames: OrderedDict[int, Block] = OrderedDict()
        self._dirty: set[int] = set()
        self.stats = CacheStats()
        self.on_evict: Callable[[int], None] | None = None

    # -- core operations -----------------------------------------------------

    def get(self, block_id: int, *, copy: bool = True) -> Block:
        """Return the cached block, faulting it in from disk on a miss.

        Returns a private copy by default (see class docstring);
        ``copy=False`` loans the live frame, read-only by convention.
        """
        frame = self._frames.get(block_id)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(block_id)
            return frame.copy() if copy else frame
        self.stats.misses += 1
        blk = self.disk.read(block_id)
        self._install(block_id, blk)
        return blk.copy() if copy else blk

    def put(self, block_id: int, block: Block) -> None:
        """Install ``block`` as the new contents of ``block_id`` (dirty).

        Ownership transfers to the pool: the caller must not mutate
        ``block`` afterwards.
        """
        if block_id in self._frames:
            self._frames[block_id] = block
            self._frames.move_to_end(block_id)
        else:
            self._install(block_id, block)
        self._dirty.add(block_id)

    def mark_dirty(self, block_id: int) -> None:
        """Mark an already-cached block as modified in place."""
        if block_id not in self._frames:
            raise KeyError(f"block {block_id} not resident in cache")
        self._dirty.add(block_id)

    def peek_frame(self, block_id: int) -> Block | None:
        """The resident frame or ``None``, refreshing its LRU position.

        No hit/miss accounting — :class:`CachedDisk` uses this and does
        its own counting against the charged-read contract.
        """
        frame = self._frames.get(block_id)
        if frame is not None:
            self._frames.move_to_end(block_id)
        return frame

    def install_clean(self, block_id: int, block: Block) -> None:
        """Install ``block`` as a clean frame (no dirty mark, no accounting).

        Ownership transfers to the pool.  Replacing a resident frame
        clears any dirty mark: the new contents are committed state.
        """
        if block_id in self._frames:
            self._frames[block_id] = block
            self._frames.move_to_end(block_id)
            self._dirty.discard(block_id)
        else:
            self._install(block_id, block)

    def _install(self, block_id: int, block: Block) -> None:
        while len(self._frames) >= self.capacity_blocks:
            self._evict_lru()
        self._frames[block_id] = block
        self._frames.move_to_end(block_id)

    def _evict_lru(self) -> None:
        victim, blk = self._frames.popitem(last=False)
        self.stats.evictions += 1
        if victim in self._dirty:
            # Eviction write-backs are "cold" writes: the read that brought
            # the block in is long past, so footnote-2 combining must not
            # apply.
            self.disk.stats.invalidate_rmw()
            self.disk.write(victim, blk)
            self._dirty.discard(victim)
            self.stats.writebacks += 1
        if self.on_evict is not None:
            self.on_evict(victim)

    # -- maintenance -----------------------------------------------------------

    def flush(self) -> int:
        """Write back every dirty block; return the number written."""
        written = 0
        for bid in sorted(self._dirty):
            self.disk.stats.invalidate_rmw()
            self.disk.write(bid, self._frames[bid])
            written += 1
            self.stats.writebacks += 1
        self._dirty.clear()
        return written

    def invalidate(self, block_id: int, *, discard: bool = False) -> None:
        """Drop a block from the cache (writing it back unless ``discard``)."""
        if block_id not in self._frames:
            return
        blk = self._frames.pop(block_id)
        if block_id in self._dirty:
            self._dirty.discard(block_id)
            if not discard:
                self.disk.stats.invalidate_rmw()
                self.disk.write(block_id, blk)
                self.stats.writebacks += 1
        if self.on_evict is not None:
            self.on_evict(block_id)

    def clear(self) -> None:
        """Flush and empty the pool.  Counters survive for post-run reporting."""
        self.flush()
        if self.on_evict is not None:
            for bid in list(self._frames):
                self.on_evict(bid)
        self._frames.clear()

    def close(self) -> None:
        """Flush, empty, and release the memory charge.

        :attr:`stats` is deliberately left intact so hit rates can be
        reported after the run is torn down.
        """
        self.clear()
        if self.budget is not None:
            self.budget.release(self.owner)

    # -- inspection -------------------------------------------------------------

    def resident(self) -> list[int]:
        """Block ids currently cached, LRU first."""
        return list(self._frames)

    def is_resident(self, block_id: int) -> bool:
        return block_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)


class CachedDisk(Disk):
    """A disk whose charged hot paths route through a private buffer pool.

    Constructed by :class:`~repro.em.storage.EMContext` when its
    ``cache_blocks`` axis is positive; ``disk.cache`` is the pool
    (``None`` on a plain :class:`Disk`), which is how the batch engine's
    vectorized bulk-charging branches detect a cached run and fall back
    to the cache-aware scalar paths.

    Accounting contract (see module docstring): every read the uncached
    configuration would charge is either charged here (a **miss**) or
    served from a frame (a **hit**), so ``hits + misses`` equals the
    uncached run's charged reads access for access.  Writes are
    write-through and charged exactly as uncached; frames are therefore
    always clean and evictions never write back.  A cache hit does *not*
    update the pending read-modify-write block — no physical seek
    happened — so a store after a hit-load charges a full write where
    the uncached run charged read + combined write: the same total,
    relabelled.

    The pool's frames are managed exclusively by the disk; use the
    standalone :class:`BufferPool` API (``get``/``put``) only over a
    plain :class:`Disk`.
    """

    def __init__(
        self,
        block_size_words: int,
        *,
        cache_blocks: int,
        budget: MemoryBudget | None = None,
        cache_owner: str = "buffer-pool",
        stats: IOStats | None = None,
        record_words: int = 1,
        backend=None,
        first_id: int = 0,
    ) -> None:
        super().__init__(
            block_size_words,
            stats=stats,
            record_words=record_words,
            backend=backend,
            first_id=first_id,
        )
        self.cache = BufferPool(
            self, cache_blocks, budget=budget, owner=cache_owner
        )
        #: Record-membership index per resident frame: O(1) probe hits.
        self._sets: dict[int, set[int]] = {}
        self.cache.on_evict = self._on_frame_drop

    def _on_frame_drop(self, block_id: int) -> None:
        self._sets.pop(block_id, None)

    def _admit(self, block_id: int, block: Block) -> None:
        """Install a clean frame (pool takes ownership of ``block``)."""
        self._sets[block_id] = set(block)
        self.cache.install_clean(block_id, block)

    def _drop_frame(self, block_id: int) -> None:
        """Invalidate before a mutation; frames are clean, nothing writes back."""
        self.cache.invalidate(block_id, discard=True)

    # -- copying I/O ---------------------------------------------------------

    def read(self, block_id: int, *, copy: bool = True) -> Block:
        frame = self.cache.peek_frame(block_id)
        if frame is not None:
            self.cache.stats.hits += 1
            return frame.copy() if copy else frame
        blk = super().read(block_id)
        self.cache.stats.misses += 1
        self._admit(block_id, blk)
        return blk.copy() if copy else blk

    def write(self, block_id: int, block: Block) -> None:
        self._drop_frame(block_id)
        super().write(block_id, block)

    # -- copy-light I/O ------------------------------------------------------

    def load(self, block_id: int) -> Block:
        frame = self.cache.peek_frame(block_id)
        if frame is not None:
            # Hit: the charged read is avoided, but the caller needs the
            # live backend handle for the in-place store, so the frame is
            # dropped for the duration of the loan (invalidate-on-loan).
            self.cache.stats.hits += 1
            self._drop_frame(block_id)
            blk = self._fetch(block_id)
            self._loans[block_id] = (
                self._gen.get(block_id, 0),
                blk.empty and not blk.header,
                blk,
            )
            return blk
        self.cache.stats.misses += 1
        return super().load(block_id)

    def stage(self, block_id: int) -> Block:
        # Uncharged in both configurations: no hit/miss accounting.
        self._drop_frame(block_id)
        return super().stage(block_id)

    def store(self, block_id: int, block: Block | None = None) -> None:
        self._drop_frame(block_id)
        super().store(block_id, block)

    # -- streaming bulk reads (count, never install) -------------------------

    def scan(self, block_ids, visit=None):
        pool = self.cache
        fetch = self.backend.fetch
        out: list[Block] = []
        missed: list[int] = []
        hits = 0
        try:
            for bid in block_ids:
                frame = pool.peek_frame(bid)
                if frame is not None:
                    hits += 1
                    out.append(frame)
                else:
                    missed.append(bid)
                    out.append(fetch(bid))
        except KeyError as exc:
            raise InvalidBlockError(f"access to unknown block {exc.args[0]}") from None
        pool.stats.hits += hits
        pool.stats.misses += len(missed)
        self.stats.record_reads(missed)
        if visit is not None:
            for bid, blk in zip(block_ids, out):
                visit(bid, blk)
        return out

    def read_records(self, block_ids):
        pool = self.cache
        records = self.backend.records
        out: list[int] = []
        missed: list[int] = []
        hits = 0
        try:
            for bid in block_ids:
                frame = pool.peek_frame(bid)
                if frame is not None:
                    hits += 1
                    out.extend(frame.records())
                else:
                    missed.append(bid)
                    out.extend(records(bid))
        except KeyError as exc:
            raise InvalidBlockError(f"access to unknown block {exc.args[0]}") from None
        pool.stats.hits += hits
        pool.stats.misses += len(missed)
        self.stats.record_reads(missed)
        return out

    # -- record-level fast paths ---------------------------------------------

    def probe_record(self, block_id: int, key: int) -> bool:
        if self.cache.peek_frame(block_id) is not None:
            self.cache.stats.hits += 1
            return key in self._sets[block_id]
        backend = self.backend
        if block_id not in backend:
            raise InvalidBlockError(f"access to unknown block {block_id}")
        self.cache.stats.misses += 1
        self.stats.record_read(block_id)
        blk = backend.fetch(block_id).copy()
        self._admit(block_id, blk)
        return key in self._sets[block_id]

    def remove_record(self, block_id: int, key: int) -> bool:
        if self.cache.peek_frame(block_id) is not None:
            self.cache.stats.hits += 1
            if key not in self._sets[block_id]:
                return False
            self._drop_frame(block_id)
            backend = self.backend
            fresh = backend.is_fresh(block_id)
            backend.remove_key(block_id, key)
            self._gen[block_id] = self._gen.get(block_id, 0) + 1
            self._loans.pop(block_id, None)
            self.stats.record_write(block_id, fresh=fresh)
            return True
        self.cache.stats.misses += 1
        return super().remove_record(block_id, key)

    # -- mutation coherence ----------------------------------------------------

    def free(self, block_id: int) -> None:
        self._drop_frame(block_id)
        super().free(block_id)

    def append_uncharged(self, block_id: int, items) -> None:
        self._drop_frame(block_id)
        super().append_uncharged(block_id, items)

    def replace_uncharged(self, block_id: int, items) -> None:
        self._drop_frame(block_id)
        super().replace_uncharged(block_id, items)

    def drain_uncharged(self, block_id: int):
        self._drop_frame(block_id)
        return super().drain_uncharged(block_id)
