"""The external-memory context: model parameters + disk + memory budget.

Every structure in this library is constructed against an
:class:`EMContext`, which bundles the Aggarwal--Vitter parameters

* ``b`` — words per block (one item = one word, so also items/block),
* ``m`` — words of main memory,
* ``u`` — universe size; keys are drawn from ``U = {0, ..., u-1}``,

with a shared :class:`~repro.em.disk.Disk`, a shared
:class:`~repro.em.iostats.IOStats`, and a shared
:class:`~repro.em.memory.MemoryBudget`.

The paper's parameter regime (Section 1) is
``Ω(b^{1+2c}) < n/m < 2^{o(b)}`` with ``b > log u``;
:meth:`EMContext.validate_regime` checks a concrete instantiation
against it and is used by the lower-bound experiment drivers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .cache import CachedDisk
from .disk import Disk
from .errors import ConfigurationError
from .iostats import IOPolicy, IOStats, PAPER_POLICY
from .memory import MemoryBudget


@dataclass(frozen=True)
class ModelParams:
    """The triple ``(b, m, u)`` of the external-memory model.

    ``b`` and ``m`` are in words; ``u`` is the universe size, so a word
    has ``log2(u)`` bits.  The model requires ``b > log u`` ("each block
    is not too small").
    """

    b: int
    m: int
    u: int

    def __post_init__(self) -> None:
        if self.b <= 0:
            raise ConfigurationError(f"b must be positive, got {self.b}")
        if self.m <= 0:
            raise ConfigurationError(f"m must be positive, got {self.m}")
        if self.u <= 1:
            raise ConfigurationError(f"u must exceed 1, got {self.u}")

    @property
    def word_bits(self) -> float:
        """Bits per word, ``log2 u``."""
        return math.log2(self.u)

    @property
    def memory_blocks(self) -> int:
        """How many whole blocks fit in memory, ``m // b``."""
        return self.m // self.b

    def block_not_too_small(self) -> bool:
        """The paper's assumption ``b > log u``."""
        return self.b > self.word_bits

    def regime_ok(self, n: int, c: float, *, constant: float = 1.0) -> bool:
        """Check ``constant * b^{1+2c} < n/m < 2^{o(b)}``.

        ``2^{o(b)}`` is asymptotic; concretely we accept
        ``n/m < 2^{b / log2(b)}`` (a canonical ``o(b)`` exponent) capped
        to avoid overflow for big ``b``.
        """
        ratio = n / self.m
        lower = constant * self.b ** (1 + 2 * c)
        exponent = min(self.b / max(math.log2(self.b), 1.0), 60.0)
        upper = 2.0 ** exponent
        return lower < ratio < upper


@dataclass
class EMContext:
    """Shared machinery for one experiment: parameters, disk, memory, stats.

    ``backend`` selects the block store behind the disk by registry name
    (see :mod:`repro.em.backends`): ``"mapping"`` for the dict-of-Block
    store, ``"arena"`` for contiguous numpy record arenas.  The choice
    never changes I/O accounting — the backend-parity suite pins the
    counters bit-for-bit across backends.

    ``cache_blocks`` is the third I/O-policy axis (caching, see
    :mod:`repro.em.cache`): ``0`` builds a plain uncached
    :class:`~repro.em.disk.Disk`; a positive value builds a
    :class:`~repro.em.cache.CachedDisk` whose ``cache_blocks``-frame
    pool is charged against this context's memory budget.  The budget is
    provisioned with ``m + cache_blocks * b`` words — the structures
    still see ``m`` (``ctx.m`` is unchanged), modelling a machine with
    ``m`` structure words plus a dedicated cache, so cached and uncached
    runs lay blocks out identically and differ only in I/O labelling.
    """

    params: ModelParams
    policy: IOPolicy = field(default_factory=lambda: PAPER_POLICY)
    record_words: int = 1
    backend: str = "mapping"
    cache_blocks: int = 0
    #: First block id the built disk hands out; sharded dictionaries use
    #: a strided ``first_id`` per shard so id namespaces stay disjoint.
    first_id: int = 0
    #: Stats, disk and memory are built from the parameters when left
    #: ``None``; passing them in shares or replaces the machinery (the
    #: sharded router injects a shared stats ledger and a per-shard
    #: strided ``first_id``).
    stats: IOStats | None = None
    disk: Disk | None = None
    memory: MemoryBudget | None = None
    hard_memory: bool = True

    def __post_init__(self) -> None:
        if self.cache_blocks < 0:
            raise ConfigurationError(
                f"cache_blocks must be non-negative, got {self.cache_blocks}"
            )
        if self.stats is None:
            self.stats = IOStats(policy=self.policy)
        if self.memory is None:
            capacity = self.params.m + self.cache_blocks * self.params.b
            self.memory = MemoryBudget(capacity, hard=self.hard_memory)
        if self.disk is None:
            if self.cache_blocks > 0:
                self.disk = CachedDisk(
                    self.params.b,
                    cache_blocks=self.cache_blocks,
                    budget=self.memory,
                    stats=self.stats,
                    record_words=self.record_words,
                    backend=self.backend,
                    first_id=self.first_id,
                )
            else:
                self.disk = Disk(
                    self.params.b,
                    stats=self.stats,
                    record_words=self.record_words,
                    backend=self.backend,
                    first_id=self.first_id,
                )
        elif self.cache_blocks > 0:
            raise ConfigurationError(
                "cache_blocks requires a context-built disk; "
                "pass first_id= instead of an explicit disk="
            )

    # -- convenience accessors ---------------------------------------------

    @property
    def b(self) -> int:
        return self.params.b

    @property
    def m(self) -> int:
        return self.params.m

    @property
    def u(self) -> int:
        return self.params.u

    def io_total(self) -> int:
        return self.stats.total

    def cache_stats(self):
        """The disk's :class:`~repro.em.cache.CacheStats`, or ``None`` uncached."""
        return self.disk.cache.stats if self.disk.cache is not None else None

    def reset_stats(self) -> None:
        self.stats.reset()

    def validate_regime(self, n: int, c: float) -> None:
        """Raise if ``(n, c)`` falls outside the paper's parameter regime."""
        if not self.params.block_not_too_small():
            raise ConfigurationError(
                f"model requires b > log u: b={self.b}, log2 u={self.params.word_bits:.1f}"
            )
        if not self.params.regime_ok(n, c):
            raise ConfigurationError(
                f"(n={n}, c={c}) outside regime b^(1+2c) < n/m < 2^o(b) "
                f"for b={self.b}, m={self.m}"
            )

    def load_factor(self, n: int) -> float:
        """Load factor α = ceil(n/b) / blocks-in-use (paper footnote 1)."""
        used = self.disk.nonempty_blocks()
        if used == 0:
            return 0.0
        return math.ceil(n / self.b) / used


def make_context(
    b: int = 128,
    m: int = 4096,
    u: int = 2**61 - 1,
    *,
    policy: IOPolicy | None = None,
    record_words: int = 1,
    backend: str = "mapping",
    cache_blocks: int = 0,
    hard_memory: bool = True,
) -> EMContext:
    """Build an :class:`EMContext` with sensible experiment defaults.

    Defaults model a 1 KiB block of 8-byte words (``b = 128``), a 32 KiB
    memory (``m = 4096`` words), 61-bit keys (a Mersenne-prime-sized
    universe that the Carter--Wegman family likes), the mapping storage
    backend, and no cache (``cache_blocks=0`` keeps the disk uncached
    and the accounting bit-identical to the pre-cache ledgers).
    """
    return EMContext(
        params=ModelParams(b=b, m=m, u=u),
        policy=policy if policy is not None else PAPER_POLICY,
        record_words=record_words,
        backend=backend,
        cache_blocks=cache_blocks,
        hard_memory=hard_memory,
    )
