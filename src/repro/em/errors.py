"""Exception hierarchy for the external-memory substrate.

The simulator enforces the Aggarwal--Vitter model invariants strictly:
blocks never exceed ``b`` words, memory charges never exceed ``m`` words
(when a hard budget is requested), and I/O is only possible through the
:class:`~repro.em.disk.Disk` interface.  Violations raise subclasses of
:class:`EMError` so tests can assert on precise failure modes.
"""

from __future__ import annotations


class EMError(Exception):
    """Base class for all external-memory model violations."""


class BlockOverflowError(EMError):
    """Raised when more than ``b`` words are written into a single block."""


class MemoryBudgetExceededError(EMError):
    """Raised when a structure charges more than ``m`` words of memory."""


class InvalidBlockError(EMError):
    """Raised when a block id is malformed or refers to a freed block."""


class FrozenBlockError(EMError):
    """Raised when code mutates a block snapshot that was handed out read-only."""


class ConfigurationError(EMError):
    """Raised for invalid model parameters (``b``, ``m``, ``u`` ...)."""


class StorageFault(EMError):
    """A (possibly transient) storage-level failure of one backend primitive.

    Raised by fault-injecting backends to model a read or write that
    failed at the device.  Transient faults heal when the primitive is
    retried; the retry discipline lives in
    :class:`repro.service.faults.RetryingBackend`.
    """


class RetryExhausted(StorageFault):
    """A storage fault persisted through every allowed retry.

    The service layer re-raises these with the owning shard and epoch
    named in the message, so an operator can tell *where* the device
    gave up.
    """


class ServiceOverloadError(EMError):
    """The admission queue is full and the policy refuses new work.

    Raised (in strict mode) or accounted as a ``rejected`` outcome by
    :class:`repro.service.admission.AdmissionController` when offered
    load exceeds capacity and back-pressure is configured to reject
    rather than shed — the service's explicit "try again later".
    """


class SimulatedCrash(EMError):
    """A scheduled hard crash point fired (fault-injection harness).

    Models ``kill -9`` mid-operation: whoever catches it must abandon
    the in-memory state entirely and recover from the last snapshot
    plus the committed journal suffix — never from the crashed objects.
    """
