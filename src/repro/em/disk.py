"""The simulated disk.

The disk is an infinite array of :class:`~repro.em.block.Block` slots
addressed by integer block ids.  Every access goes through the charged
I/O methods, which update the shared :class:`~repro.em.iostats.IOStats`.
A convenience :meth:`modify` context manager expresses the ubiquitous
read-modify-write pattern and benefits from the footnote-2 combining in
the I/O policy.

Two access disciplines coexist:

* the **copying** API (:meth:`read` / :meth:`write`) hands back and
  stores deep copies, which keeps the model honest by construction:
  mutating memory-resident state never silently mutates the disk;
* the **copy-light** API (:meth:`load` / :meth:`stage` / :meth:`store`)
  loans out the stored block itself so a read-merge-write cycle moves
  each record once instead of three times.  Honesty is preserved by
  *generation tagging*: every committed write bumps the block's
  generation, a loan remembers the generation (and the freshness used
  for allocation accounting) at loan time, and :meth:`store` falls back
  to re-inspecting the stored block when the loan went stale.  Both
  disciplines charge the :class:`IOStats` identically — the parity
  suite in ``tests/test_batch_parity.py`` pins this down.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

from .block import Block
from .errors import ConfigurationError, InvalidBlockError
from .iostats import IOStats


class Disk:
    """An unbounded array of ``b``-word blocks with I/O accounting.

    Parameters
    ----------
    block_size_words:
        The model parameter ``b``.
    stats:
        Shared I/O counters; a fresh one is created when omitted.
    record_words:
        Default words-per-record for blocks allocated by this disk.
    """

    def __init__(
        self,
        block_size_words: int,
        *,
        stats: IOStats | None = None,
        record_words: int = 1,
    ) -> None:
        if block_size_words <= 0:
            raise ConfigurationError(f"b must be positive, got {block_size_words}")
        if record_words <= 0 or record_words > block_size_words:
            raise ConfigurationError(
                f"record_words must lie in [1, b], got {record_words}"
            )
        self.b = block_size_words
        self.record_words = record_words
        self.stats = stats if stats is not None else IOStats()
        self._blocks: dict[int, Block] = {}
        self._next_id = 0
        #: Generation counter per block id, bumped on every committed write.
        self._gen: dict[int, int] = {}
        #: Outstanding copy-light loans: block id -> (generation, fresh).
        self._loans: dict[int, tuple[int, bool]] = {}

    # -- allocation ---------------------------------------------------------

    def allocate(self, *, record_words: int | None = None) -> int:
        """Reserve a fresh block id (no I/O is charged until first write)."""
        bid = self._next_id
        self._next_id += 1
        self._blocks[bid] = Block(
            self.b, record_words=record_words or self.record_words
        )
        return bid

    def allocate_many(self, count: int, *, record_words: int | None = None) -> list[int]:
        """Reserve ``count`` consecutive fresh block ids in one bulk step.

        Equivalent to ``count`` :meth:`allocate` calls but without the
        per-call overhead: the id range is claimed once and the empty
        blocks are built in a single dict update.
        """
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        rw = record_words or self.record_words
        b = self.b
        start = self._next_id
        self._next_id = start + count
        ids = list(range(start, start + count))
        self._blocks.update((bid, Block(b, record_words=rw)) for bid in ids)
        return ids

    def free(self, block_id: int) -> None:
        """Release a block id; later access raises :class:`InvalidBlockError`."""
        if block_id not in self._blocks:
            raise InvalidBlockError(f"free of unknown block {block_id}")
        del self._blocks[block_id]
        self._gen.pop(block_id, None)
        self._loans.pop(block_id, None)

    # -- copying I/O --------------------------------------------------------

    def read(self, block_id: int, *, copy: bool = True) -> Block:
        """Fetch a block into memory, charging one read I/O."""
        blk = self._fetch(block_id)
        self.stats.record_read(block_id)
        return blk.copy() if copy else blk

    def write(self, block_id: int, block: Block) -> None:
        """Store a copy of ``block`` at ``block_id``, charging one write I/O.

        The very first write of a freshly allocated block is recorded as
        an allocation (chargeable per policy).
        """
        existing = self._fetch(block_id)
        fresh = existing.empty and not existing.header
        if block.capacity_words != self.b:
            raise InvalidBlockError(
                f"block capacity {block.capacity_words} != disk b {self.b}"
            )
        self._blocks[block_id] = block.copy()
        self._gen[block_id] = self._gen.get(block_id, 0) + 1
        self.stats.record_write(block_id, fresh=fresh)

    # -- copy-light I/O -----------------------------------------------------

    def load(self, block_id: int) -> Block:
        """Charged read returning the *live* stored block (no copy).

        The caller must either treat the block as read-only or commit
        in-place mutations with :meth:`store`.  The loan records the
        block's generation and allocation-freshness so a later
        :meth:`store` charges exactly what a copying read/write round
        trip would have.
        """
        blk = self._fetch(block_id)
        self._loans[block_id] = (
            self._gen.get(block_id, 0),
            blk.empty and not blk.header,
        )
        self.stats.record_read(block_id)
        return blk

    def stage(self, block_id: int) -> Block:
        """Uncharged fetch of the live stored block for wholesale rewrite.

        The write-only analogue of :meth:`load`: the caller overwrites
        the returned block in place and commits with :meth:`store`,
        charging a single write I/O.  Freshness is captured now, before
        the mutation, matching what :meth:`write` would have inferred
        from the pre-write contents.
        """
        blk = self._fetch(block_id)
        self._loans[block_id] = (
            self._gen.get(block_id, 0),
            blk.empty and not blk.header,
        )
        return blk

    def store(self, block_id: int, block: Block | None = None) -> None:
        """Commit a copy-light write of ``block_id``, charging one write I/O.

        With ``block=None`` the stored block was mutated in place via a
        :meth:`load`/:meth:`stage` loan.  Passing a foreign ``block``
        transfers ownership without copying — the caller must not mutate
        it afterwards.  A stale loan (the block was overwritten since
        loan time) falls back to inferring freshness from the current
        stored contents, which is what :meth:`write` would see.
        """
        existing = self._fetch(block_id)
        gen = self._gen.get(block_id, 0)
        loan = self._loans.pop(block_id, None)
        if loan is not None and loan[0] == gen:
            fresh = loan[1]
        else:
            fresh = existing.empty and not existing.header
        if block is not None and block is not existing:
            if block.capacity_words != self.b:
                raise InvalidBlockError(
                    f"block capacity {block.capacity_words} != disk b {self.b}"
                )
            self._blocks[block_id] = block
        self._gen[block_id] = gen + 1
        self.stats.record_write(block_id, fresh=fresh)

    @contextlib.contextmanager
    def modify(self, block_id: int) -> Iterator[Block]:
        """Read-modify-write ``block_id`` (one I/O under the paper policy).

        Copy-light: yields the live stored block and commits the
        mutation on exit, charging read + write exactly as the copying
        path would (the write combines under the footnote-2 policy).
        If the body raises, the block is rolled back to its pre-entry
        contents — an aborted modify must not silently mutate the disk.
        """
        blk = self.load(block_id)
        backup = blk.copy()
        try:
            yield blk
        except BaseException:
            self._blocks[block_id] = backup
            self._loans.pop(block_id, None)
            raise
        self.store(block_id)

    def peek(self, block_id: int, *, copy: bool = True) -> Block:
        """Inspect a block **without charging I/O** (instrumentation only).

        Used by the lower-bound machinery to take layout snapshots; never
        by the data structures themselves.  ``copy=False`` returns the
        live block for read-only bulk instrumentation.
        """
        blk = self._fetch(block_id)
        return blk.copy() if copy else blk

    def scan(
        self, block_ids: list[int], visit: Callable[[int, Block], None] | None = None
    ) -> list[Block]:
        """Read a sequence of blocks, charging one I/O each.

        The ``n`` reads are charged in one bulk :meth:`IOStats.record_reads`
        call; the returned blocks are the live stored blocks (read-only
        by convention — use :meth:`read` for mutable copies).
        """
        blocks = self._blocks
        try:
            out = [blocks[bid] for bid in block_ids]
        except KeyError as exc:
            raise InvalidBlockError(f"access to unknown block {exc.args[0]}") from None
        self.stats.record_reads(block_ids)
        if visit is not None:
            for bid, blk in zip(block_ids, out):
                visit(bid, blk)
        return out

    # -- introspection -------------------------------------------------------

    def block_ids(self) -> list[int]:
        """All live block ids (instrumentation; no I/O charged)."""
        return sorted(self._blocks)

    def blocks_in_use(self) -> int:
        """Number of live blocks, the denominator of the load factor."""
        return len(self._blocks)

    def nonempty_blocks(self) -> int:
        return sum(1 for blk in self._blocks.values() if not blk.empty)

    def words_stored(self) -> int:
        return sum(blk.used_words for blk in self._blocks.values())

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    def _fetch(self, block_id: int) -> Block:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise InvalidBlockError(f"access to unknown block {block_id}") from None
