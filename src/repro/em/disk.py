"""The simulated disk.

The disk is an infinite array of :class:`~repro.em.block.Block` slots
addressed by integer block ids.  Every access goes through the charged
I/O methods, which update the shared :class:`~repro.em.iostats.IOStats`.
A convenience :meth:`modify` context manager expresses the ubiquitous
read-modify-write pattern and benefits from the footnote-2 combining in
the I/O policy.

Since the pluggable-backend refactor the disk no longer stores blocks
itself: a :class:`~repro.em.backends.StorageBackend` does (the
dict-of-``Block`` :class:`~repro.em.backends.MappingBackend` by
default, or the numpy-arena :class:`~repro.em.backends.ArenaBackend`).
The disk keeps everything *accounting*: charged I/Os, generation tags,
loans, and the allocation id space.

Two access disciplines coexist:

* the **copying** API (:meth:`read` / :meth:`write`) hands back and
  stores deep copies, which keeps the model honest by construction:
  mutating memory-resident state never silently mutates the disk;
* the **copy-light** API (:meth:`load` / :meth:`stage` / :meth:`store`)
  loans out a handle on the stored block so a read-merge-write cycle
  moves each record once instead of three times.  Honesty is preserved
  by *generation tagging*: every committed write bumps the block's
  generation, a loan remembers the generation (and the freshness used
  for allocation accounting) at loan time, and :meth:`store` falls back
  to re-inspecting the stored block when the loan went stale.  Both
  disciplines charge the :class:`IOStats` identically — the parity
  suite in ``tests/test_batch_parity.py`` pins this down.

A third tier, the **uncharged record-level API**
(:meth:`records_arr`, :meth:`append_uncharged`, :meth:`drain_uncharged`,
...), exists for the batch engine's deferred-charging fast paths
(:func:`~repro.tables.overflow.bulk_merge_into` and friends): it
mutates the backend directly — no :class:`Block` handle, no charge —
and leaves the caller responsible for reproducing the scalar counter
arithmetic in bulk.  It replaces the backend-specific dict reaching the
fast paths used to do.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

import numpy as np

from .backends import StorageBackend, make_backend
from .block import Block
from .errors import ConfigurationError, InvalidBlockError
from .iostats import IOStats


class Disk:
    """An unbounded array of ``b``-word blocks with I/O accounting.

    ``cache`` is the caching policy axis: ``None`` here (uncached —
    every charged method talks straight to the backend), a
    :class:`~repro.em.cache.BufferPool` on the
    :class:`~repro.em.cache.CachedDisk` subclass.  Hot paths branch on
    ``disk.cache is None`` to keep the uncached configuration
    bit-identical to the pre-cache ledgers.

    Parameters
    ----------
    block_size_words:
        The model parameter ``b``.
    stats:
        Shared I/O counters; a fresh one is created when omitted.
    record_words:
        Default words-per-record for blocks allocated by this disk.
    backend:
        The block store: a :class:`StorageBackend` instance, a registry
        name (``"mapping"`` / ``"arena"``), or ``None`` for the default
        mapping backend.
    first_id:
        First block id this disk hands out.  Sharded dictionaries give
        each shard's disk a strided ``first_id`` so block-id namespaces
        stay disjoint and allocation order is per-shard deterministic.
    """

    #: The caching axis: a BufferPool on CachedDisk, None when uncached.
    cache = None

    def __init__(
        self,
        block_size_words: int,
        *,
        stats: IOStats | None = None,
        record_words: int = 1,
        backend: StorageBackend | str | None = None,
        first_id: int = 0,
    ) -> None:
        if block_size_words <= 0:
            raise ConfigurationError(f"b must be positive, got {block_size_words}")
        if record_words <= 0 or record_words > block_size_words:
            raise ConfigurationError(
                f"record_words must lie in [1, b], got {record_words}"
            )
        self.b = block_size_words
        self.record_words = record_words
        self.stats = stats if stats is not None else IOStats()
        if backend is None:
            backend = "mapping"
        if isinstance(backend, str):
            backend = make_backend(backend, block_size_words, record_words)
        self.backend = backend
        self._next_id = first_id
        #: Generation counter per block id, bumped on every committed write.
        self._gen: dict[int, int] = {}
        #: Outstanding copy-light loans: id -> (generation, fresh, handle).
        self._loans: dict[int, tuple[int, bool, Block]] = {}

    def describe(self) -> dict:
        """Telemetry descriptor of geometry + caching axis.

        Consumed by the observability layer's ``run_start`` span so a
        trace is self-describing; pure metadata, charges nothing.
        """
        pool = self.cache
        return {
            "b": self.b,
            "record_words": self.record_words,
            "backend": type(self.backend).__name__,
            "cache_blocks": pool.capacity_blocks if pool is not None else 0,
        }

    # -- allocation ---------------------------------------------------------

    def allocate(self, *, record_words: int | None = None) -> int:
        """Reserve a fresh block id (no I/O is charged until first write)."""
        bid = self._next_id
        self._next_id += 1
        self.backend.create(bid, record_words=record_words)
        return bid

    def allocate_many(self, count: int, *, record_words: int | None = None) -> list[int]:
        """Reserve ``count`` consecutive fresh block ids in one bulk step.

        Equivalent to ``count`` :meth:`allocate` calls but without the
        per-call overhead: the id range is claimed once and the empty
        blocks are built in a single backend bulk-create.
        """
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        start = self._next_id
        self._next_id = start + count
        ids = list(range(start, start + count))
        self.backend.create_many(ids, record_words=record_words)
        return ids

    def free(self, block_id: int) -> None:
        """Release a block id; later access raises :class:`InvalidBlockError`."""
        try:
            self.backend.delete(block_id)
        except KeyError:
            raise InvalidBlockError(f"free of unknown block {block_id}") from None
        self._gen.pop(block_id, None)
        self._loans.pop(block_id, None)

    # -- copying I/O --------------------------------------------------------

    def read(self, block_id: int, *, copy: bool = True) -> Block:
        """Fetch a block into memory, charging one read I/O."""
        blk = self._fetch(block_id)
        self.stats.record_read(block_id)
        return blk.copy() if copy else blk

    def write(self, block_id: int, block: Block) -> None:
        """Store a copy of ``block`` at ``block_id``, charging one write I/O.

        The very first write of a freshly allocated block is recorded as
        an allocation (chargeable per policy).
        """
        fresh = self._is_fresh(block_id)
        if block.capacity_words != self.b:
            raise InvalidBlockError(
                f"block capacity {block.capacity_words} != disk b {self.b}"
            )
        self.backend.commit(block_id, block, copy=True)
        self._gen[block_id] = self._gen.get(block_id, 0) + 1
        self.stats.record_write(block_id, fresh=fresh)

    # -- copy-light I/O -----------------------------------------------------

    def load(self, block_id: int) -> Block:
        """Charged read returning a loaned handle on the stored block.

        The caller must either treat the block as read-only or commit
        in-place mutations with :meth:`store`.  The loan records the
        block's generation and allocation-freshness so a later
        :meth:`store` charges exactly what a copying read/write round
        trip would have.  (The mapping backend loans the live stored
        object; the arena loans a materialised handle that ``store``
        writes back.)
        """
        blk = self._fetch(block_id)
        self._loans[block_id] = (
            self._gen.get(block_id, 0),
            blk.empty and not blk.header,
            blk,
        )
        self.stats.record_read(block_id)
        return blk

    def stage(self, block_id: int) -> Block:
        """Uncharged fetch of a loaned block handle for wholesale rewrite.

        The write-only analogue of :meth:`load`: the caller overwrites
        the returned block in place and commits with :meth:`store`,
        charging a single write I/O.  Freshness is captured now, before
        the mutation, matching what :meth:`write` would have inferred
        from the pre-write contents.
        """
        blk = self._fetch(block_id)
        self._loans[block_id] = (
            self._gen.get(block_id, 0),
            blk.empty and not blk.header,
            blk,
        )
        return blk

    def store(self, block_id: int, block: Block | None = None) -> None:
        """Commit a copy-light write of ``block_id``, charging one write I/O.

        With ``block=None`` the loaned handle from :meth:`load` /
        :meth:`stage` (mutated in place) is committed.  Passing a
        foreign ``block`` transfers ownership without copying — the
        caller must not mutate it afterwards.  A stale loan (the block
        was overwritten since loan time) falls back to inferring
        freshness from the current stored contents, which is what
        :meth:`write` would see, and commits nothing of the dead
        handle.
        """
        if block_id not in self.backend:
            raise InvalidBlockError(f"access to unknown block {block_id}")
        gen = self._gen.get(block_id, 0)
        loan = self._loans.pop(block_id, None)
        live = loan is not None and loan[0] == gen
        fresh = loan[1] if live else self._is_fresh(block_id)
        if block is not None:
            if block.capacity_words != self.b:
                raise InvalidBlockError(
                    f"block capacity {block.capacity_words} != disk b {self.b}"
                )
            self.backend.commit(block_id, block)
        elif live:
            self.backend.commit(block_id, loan[2])
        self._gen[block_id] = gen + 1
        self.stats.record_write(block_id, fresh=fresh)

    @contextlib.contextmanager
    def modify(self, block_id: int) -> Iterator[Block]:
        """Read-modify-write ``block_id`` (one I/O under the paper policy).

        Copy-light: yields the loaned block handle and commits the
        mutation on exit, charging read + write exactly as the copying
        path would (the write combines under the footnote-2 policy).
        If the body raises, the block is rolled back to its pre-entry
        contents — an aborted modify must not silently mutate the disk.
        """
        blk = self.load(block_id)
        backup = blk.copy()
        try:
            yield blk
        except BaseException:
            self.backend.commit(block_id, backup)
            self._loans.pop(block_id, None)
            raise
        self.store(block_id)

    def peek(self, block_id: int, *, copy: bool = True) -> Block:
        """Inspect a block **without charging I/O** (instrumentation only).

        Used by the lower-bound machinery to take layout snapshots; never
        by the data structures themselves.  ``copy=False`` returns the
        backend's handle for read-only bulk instrumentation.
        """
        blk = self._fetch(block_id)
        return blk.copy() if copy else blk

    def scan(
        self, block_ids: list[int], visit: Callable[[int, Block], None] | None = None
    ) -> list[Block]:
        """Read a sequence of blocks, charging one I/O each.

        The ``n`` reads are charged in one bulk :meth:`IOStats.record_reads`
        call; the returned blocks are backend handles (read-only by
        convention — use :meth:`read` for mutable copies).
        """
        fetch = self.backend.fetch
        try:
            out = [fetch(bid) for bid in block_ids]
        except KeyError as exc:
            raise InvalidBlockError(f"access to unknown block {exc.args[0]}") from None
        self.stats.record_reads(block_ids)
        if visit is not None:
            for bid, blk in zip(block_ids, out):
                visit(bid, blk)
        return out

    def probe_record(self, block_id: int, key: int) -> bool:
        """Charged single-block membership probe (one read I/O).

        Equivalent to ``key in read(bid, copy=False)`` — one charged
        read, pending-RMW block updated — but answered by the backend's
        record-level :meth:`~StorageBackend.contains_key`, so the arena
        backend does not materialise a :class:`Block` per probe.  The
        per-key probe loops (bucket walks of lookups and deletes) use
        this for chain-free buckets.
        """
        backend = self.backend
        if block_id not in backend:
            raise InvalidBlockError(f"access to unknown block {block_id}")
        self.stats.record_read(block_id)
        return backend.contains_key(block_id, key)

    def remove_record(self, block_id: int, key: int) -> bool:
        """Charged single-block delete probe: read + RMW write on a hit.

        Equivalent, counter for counter, to the copy-light cycle
        ``blk = load(bid); hit = blk.remove(key); store(bid) if hit``
        — one charged read, then (only on a hit) one charged write that
        combines under the footnote-2 policy — but executed through the
        backend's record-level :meth:`~StorageBackend.remove_key`, so
        no :class:`Block` handle is materialised.  The deletion batch
        paths use this for the ubiquitous chain-free bucket probe.
        """
        backend = self.backend
        if block_id not in backend:
            raise InvalidBlockError(f"access to unknown block {block_id}")
        fresh = backend.is_fresh(block_id)
        self.stats.record_read(block_id)
        if not backend.remove_key(block_id, key):
            return False
        self._gen[block_id] = self._gen.get(block_id, 0) + 1
        self._loans.pop(block_id, None)
        self.stats.record_write(block_id, fresh=fresh)
        return True

    def read_records(self, block_ids: list[int]) -> list[int]:
        """Read a sequence of blocks, returning their concatenated records.

        Charges exactly like :meth:`scan` (one read per block, in one
        bulk call) without materialising :class:`Block` handles — the
        charged counterpart of :meth:`records` used by chain drains.
        """
        records = self.backend.records
        out: list[int] = []
        try:
            for bid in block_ids:
                out.extend(records(bid))
        except KeyError as exc:
            raise InvalidBlockError(f"access to unknown block {exc.args[0]}") from None
        self.stats.record_reads(block_ids)
        return out

    # -- uncharged record-level API (batch-engine internals) -----------------
    #
    # These mutators bump the generation tag (they are committed writes
    # as far as loan staleness is concerned) but charge nothing: callers
    # reproduce the scalar charging arithmetic in bulk — see
    # ``repro.tables.overflow.bulk_merge_into`` for the pattern.

    @property
    def record_capacity(self) -> int:
        """Records per block at the disk's default record width."""
        return self.b // self.record_words

    def block_len(self, block_id: int) -> int:
        """Number of records in ``block_id`` (uncharged)."""
        return self.backend.length(block_id)

    def records(self, block_id: int) -> list[int]:
        """The records of ``block_id`` as Python ints (uncharged, read-only)."""
        return self.backend.records(block_id)

    def records_arr(self, block_id: int) -> np.ndarray:
        """The records of ``block_id`` as a uint64 array (uncharged, read-only)."""
        return self.backend.records_arr(block_id)

    def key_in(self, block_id: int, key: int) -> bool:
        """Record membership probe (uncharged)."""
        return self.backend.contains_key(block_id, key)

    def is_fresh(self, block_id: int) -> bool:
        """Has ``block_id`` never been written (no records, no header)?"""
        return self.backend.is_fresh(block_id)

    def append_uncharged(self, block_id: int, items: list[int]) -> None:
        """Append ``items`` to ``block_id`` without charging (bulk engine)."""
        self.backend.append(block_id, items)
        self._gen[block_id] = self._gen.get(block_id, 0) + 1

    def replace_uncharged(self, block_id: int, items: list[int]) -> None:
        """Overwrite ``block_id``'s records without charging (bulk engine)."""
        self.backend.replace(block_id, items)
        self._gen[block_id] = self._gen.get(block_id, 0) + 1

    def drain_uncharged(self, block_id: int) -> list[int]:
        """Empty ``block_id`` and return its records without charging.

        The generation is bumped only when something was drained — an
        empty block was not written, so outstanding loans stay valid,
        matching the scalar read-then-skip behaviour.
        """
        out = self.backend.drain(block_id)
        if out:
            self._gen[block_id] = self._gen.get(block_id, 0) + 1
        return out

    # -- introspection -------------------------------------------------------

    def block_ids(self) -> list[int]:
        """All live block ids (instrumentation; no I/O charged)."""
        return self.backend.ids()

    def blocks_in_use(self) -> int:
        """Number of live blocks, the denominator of the load factor."""
        return self.backend.count()

    def nonempty_blocks(self) -> int:
        return self.backend.nonempty()

    def words_stored(self) -> int:
        return self.backend.words_stored()

    def __contains__(self, block_id: int) -> bool:
        return block_id in self.backend

    def _fetch(self, block_id: int) -> Block:
        try:
            return self.backend.fetch(block_id)
        except KeyError:
            raise InvalidBlockError(f"access to unknown block {block_id}") from None

    def _is_fresh(self, block_id: int) -> bool:
        try:
            return self.backend.is_fresh(block_id)
        except KeyError:
            raise InvalidBlockError(f"access to unknown block {block_id}") from None
