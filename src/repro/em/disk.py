"""The simulated disk.

The disk is an infinite array of :class:`~repro.em.block.Block` slots
addressed by integer block ids.  Every access goes through :meth:`read`
or :meth:`write`, which charge the shared :class:`~repro.em.iostats.IOStats`.
A convenience :meth:`modify` context manager expresses the ubiquitous
read-modify-write pattern and benefits from the footnote-2 combining in
the I/O policy.

Reads hand back a *copy* of the stored block by default, which keeps
the model honest: mutating memory-resident state never silently mutates
the disk.  Structures that have just written a block they own may use
``copy=False`` for speed after the invariant is established by tests.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

from .block import Block
from .errors import ConfigurationError, InvalidBlockError
from .iostats import IOStats


class Disk:
    """An unbounded array of ``b``-word blocks with I/O accounting.

    Parameters
    ----------
    block_size_words:
        The model parameter ``b``.
    stats:
        Shared I/O counters; a fresh one is created when omitted.
    record_words:
        Default words-per-record for blocks allocated by this disk.
    """

    def __init__(
        self,
        block_size_words: int,
        *,
        stats: IOStats | None = None,
        record_words: int = 1,
    ) -> None:
        if block_size_words <= 0:
            raise ConfigurationError(f"b must be positive, got {block_size_words}")
        if record_words <= 0 or record_words > block_size_words:
            raise ConfigurationError(
                f"record_words must lie in [1, b], got {record_words}"
            )
        self.b = block_size_words
        self.record_words = record_words
        self.stats = stats if stats is not None else IOStats()
        self._blocks: dict[int, Block] = {}
        self._next_id = 0

    # -- allocation ---------------------------------------------------------

    def allocate(self, *, record_words: int | None = None) -> int:
        """Reserve a fresh block id (no I/O is charged until first write)."""
        bid = self._next_id
        self._next_id += 1
        self._blocks[bid] = Block(
            self.b, record_words=record_words or self.record_words
        )
        return bid

    def allocate_many(self, count: int, *, record_words: int | None = None) -> list[int]:
        """Reserve ``count`` consecutive fresh block ids."""
        return [self.allocate(record_words=record_words) for _ in range(count)]

    def free(self, block_id: int) -> None:
        """Release a block id; later access raises :class:`InvalidBlockError`."""
        if block_id not in self._blocks:
            raise InvalidBlockError(f"free of unknown block {block_id}")
        del self._blocks[block_id]

    # -- I/O ----------------------------------------------------------------

    def read(self, block_id: int, *, copy: bool = True) -> Block:
        """Fetch a block into memory, charging one read I/O."""
        blk = self._fetch(block_id)
        self.stats.record_read(block_id)
        return blk.copy() if copy else blk

    def write(self, block_id: int, block: Block) -> None:
        """Store ``block`` at ``block_id``, charging one write I/O.

        The very first write of a freshly allocated block is recorded as
        an allocation (chargeable per policy).
        """
        existing = self._fetch(block_id)
        fresh = existing.empty and not existing.header
        if block.capacity_words != self.b:
            raise InvalidBlockError(
                f"block capacity {block.capacity_words} != disk b {self.b}"
            )
        self._blocks[block_id] = block.copy()
        self.stats.record_write(block_id, fresh=fresh)

    @contextlib.contextmanager
    def modify(self, block_id: int) -> Iterator[Block]:
        """Read-modify-write ``block_id`` (one I/O under the paper policy)."""
        blk = self.read(block_id)
        yield blk
        self.write(block_id, blk)

    def peek(self, block_id: int) -> Block:
        """Inspect a block **without charging I/O** (instrumentation only).

        Used by the lower-bound machinery to take layout snapshots; never
        by the data structures themselves.
        """
        return self._fetch(block_id).copy()

    def scan(
        self, block_ids: list[int], visit: Callable[[int, Block], None] | None = None
    ) -> list[Block]:
        """Read a sequence of blocks, charging one I/O each."""
        out = []
        for bid in block_ids:
            blk = self.read(bid)
            if visit is not None:
                visit(bid, blk)
            out.append(blk)
        return out

    # -- introspection -------------------------------------------------------

    def block_ids(self) -> list[int]:
        """All live block ids (instrumentation; no I/O charged)."""
        return sorted(self._blocks)

    def blocks_in_use(self) -> int:
        """Number of live blocks, the denominator of the load factor."""
        return len(self._blocks)

    def nonempty_blocks(self) -> int:
        return sum(1 for blk in self._blocks.values() if not blk.empty)

    def words_stored(self) -> int:
        return sum(blk.used_words for blk in self._blocks.values())

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    def _fetch(self, block_id: int) -> Block:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise InvalidBlockError(f"access to unknown block {block_id}") from None
