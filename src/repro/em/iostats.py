"""I/O accounting for the external-memory model.

The complexity measure of the paper (and of the Aggarwal--Vitter model
[1]) is the number of block transfers between disk and memory.  The
paper's footnote 2 additionally adopts the convention that *writing a
block immediately after reading it* counts as a single I/O, because disk
cost is dominated by the seek.  :class:`IOPolicy` makes that convention
explicit and togglable so the ablation in ``bench_knuth_table`` can
quantify its effect.

:class:`IOStats` is a plain counter object shared by a :class:`~repro.em.disk.Disk`
and everything layered above it.  It supports cheap checkpointing
(:meth:`IOStats.snapshot` / :meth:`IOStats.delta_since`) so drivers can
attribute I/Os to individual operations without resetting global state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence
import contextlib


@dataclass(frozen=True)
class IOPolicy:
    """Conventions for charging I/Os.

    Attributes
    ----------
    combine_rmw:
        If ``True`` (the paper's footnote-2 convention), a write of block
        ``i`` that immediately follows a read of block ``i`` — with no
        intervening I/O — is free: the read-modify-write pair costs one
        I/O in total.  If ``False``, reads and writes are each one I/O.
    charge_allocation:
        If ``True``, allocating a fresh block (its first write) costs one
        I/O like any other write.  The paper never needs free allocation;
        this exists for sensitivity checks and defaults to ``True``.
    """

    combine_rmw: bool = True
    charge_allocation: bool = True


#: The policy used throughout the paper's accounting.
PAPER_POLICY = IOPolicy(combine_rmw=True, charge_allocation=True)

#: Strict policy: every block transfer costs one I/O.
STRICT_POLICY = IOPolicy(combine_rmw=False, charge_allocation=True)


@dataclass
class IOSnapshot:
    """Immutable view of counter values at a point in time."""

    reads: int
    writes: int
    combined: int
    allocations: int

    @property
    def total(self) -> int:
        """Total charged I/Os (combined read-modify-writes already netted out)."""
        return self.reads + self.writes

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            reads=self.reads - other.reads,
            writes=self.writes - other.writes,
            combined=self.combined - other.combined,
            allocations=self.allocations - other.allocations,
        )

    def as_dict(self) -> dict:
        """Plain-dict counter view (trace spans, metrics folding)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "combined": self.combined,
            "allocations": self.allocations,
        }


@dataclass
class IOStats:
    """Mutable I/O counters with checkpoint support.

    ``reads`` and ``writes`` count *charged* I/Os: when the policy
    combines read-modify-write pairs, the elided write increments
    ``combined`` instead of ``writes``.
    """

    policy: IOPolicy = field(default_factory=lambda: PAPER_POLICY)
    reads: int = 0
    writes: int = 0
    combined: int = 0
    allocations: int = 0
    _last_read_block: int | None = field(default=None, repr=False)

    # -- recording ---------------------------------------------------------

    def record_read(self, block_id: int) -> None:
        """Charge one read I/O of ``block_id``."""
        self.reads += 1
        self._last_read_block = block_id

    def record_reads(self, block_ids: Sequence[int]) -> None:
        """Charge one read I/O per block in ``block_ids`` in O(1) Python ops.

        Equivalent to calling :meth:`record_read` once per id in order:
        the read counter advances by ``len(block_ids)`` and the pending
        read-modify-write block becomes the *last* id, so a write that
        immediately follows the final read still combines under the
        footnote-2 policy.  Bulk scans and merges use this so charging
        ``n`` I/Os does not cost ``n`` interpreter-level calls.
        """
        n = len(block_ids)
        if n == 0:
            return
        self.reads += n
        self._last_read_block = block_ids[-1]

    def record_write(self, block_id: int, *, fresh: bool = False) -> None:
        """Charge a write of ``block_id``.

        ``fresh`` marks the first write of a newly allocated block; it is
        free when the policy's ``charge_allocation`` is ``False``.
        """
        if fresh:
            self.allocations += 1
            if not self.policy.charge_allocation:
                self._last_read_block = None
                return
        if self.policy.combine_rmw and self._last_read_block == block_id:
            # Footnote 2: a write immediately after reading the same block
            # rides on the same seek and is not charged.
            self.combined += 1
            self._last_read_block = None
            return
        self.writes += 1
        self._last_read_block = None

    def invalidate_rmw(self) -> None:
        """Forget the pending read so the next write is charged normally."""
        self._last_read_block = None

    def absorb(self, delta: IOSnapshot) -> None:
        """Fold another ledger's counter delta into this one.

        Used by the service layer to merge per-shard ledgers into a
        cluster total at epoch close: pure counter addition, so the
        merged result is independent of shard execution order.  The
        pending read-modify-write block is deliberately untouched — RMW
        combining is a per-disk (per-shard) affair and stays on the
        shard's own ledger.
        """
        self.reads += delta.reads
        self.writes += delta.writes
        self.combined += delta.combined
        self.allocations += delta.allocations

    # -- reading back ------------------------------------------------------

    @property
    def total(self) -> int:
        """Total charged I/Os so far."""
        return self.reads + self.writes

    @property
    def raw_total(self) -> int:
        """Total block transfers ignoring the read-modify-write netting."""
        return self.reads + self.writes + self.combined

    def snapshot(self) -> IOSnapshot:
        """Capture the current counter values."""
        return IOSnapshot(self.reads, self.writes, self.combined, self.allocations)

    def delta_since(self, snap: IOSnapshot) -> IOSnapshot:
        """Counters accumulated since ``snap`` was taken."""
        return self.snapshot() - snap

    @contextlib.contextmanager
    def measure(self) -> Iterator[IOSnapshot]:
        """Context manager yielding a snapshot that is updated in place on exit.

        >>> stats = IOStats()
        >>> with stats.measure() as cost:
        ...     stats.record_read(3)
        >>> cost.total
        1
        """
        before = self.snapshot()
        out = IOSnapshot(0, 0, 0, 0)
        yield out
        after = self.delta_since(before)
        out.reads = after.reads
        out.writes = after.writes
        out.combined = after.combined
        out.allocations = after.allocations

    def reset(self) -> None:
        """Zero every counter (policy is kept)."""
        self.reads = 0
        self.writes = 0
        self.combined = 0
        self.allocations = 0
        self._last_read_block = None

    def with_policy(self, **changes) -> "IOStats":
        """Return a fresh zeroed ``IOStats`` with a modified policy."""
        return IOStats(policy=replace(self.policy, **changes))
