"""Pluggable storage backends: *where* blocks live, decoupled from the disk.

:class:`~repro.em.disk.Disk` owns the I/O *accounting* (charged reads
and writes, generation-tagged loans, footnote-2 combining); a
:class:`StorageBackend` owns the block *store*.  The split lets one
charged I/O discipline run over different physical representations:

* :class:`MappingBackend` — the historical dict-of-:class:`Block`
  store.  ``fetch`` hands out the live stored object, so the copy-light
  loan API mutates in place and ``commit`` is usually a no-op.
* :class:`ArenaBackend` — fixed-width records in preallocated numpy
  arrays (one row per block slot, an int64 length vector, a free-slot
  list).  Record-level bulk operations (:meth:`StorageBackend.records_arr`,
  :meth:`StorageBackend.append`, :meth:`StorageBackend.replace`,
  :meth:`StorageBackend.drain`) touch the arena directly — no per-block
  Python object is materialised on the batch-engine fast paths.  Whole
  :class:`Block` handles are materialised only for the scalar
  ``load``/``stage``/``store`` discipline and committed back on store.
* :class:`DurableArenaBackend` — the arena with its record matrix and
  length vector memory-mapped onto files (plain ndarray views over
  shared ``mmap`` buffers, so hot paths stay off the ``np.memmap``
  subclass dispatch), plus an
  atomic ``flush``/``open`` cycle for the durability subsystem
  (snapshots, crash recovery — see :mod:`repro.service.recovery`).

The contract every backend must honour — pinned by the backend-parity
suite in ``tests/test_batch_parity.py`` — is that **block contents and
I/O charges are bit-identical across backends**: the backend never
charges anything itself (charging stays in ``Disk``/``IOStats``), and
its record-level primitives are observationally equal to the
fetch/mutate/commit cycle they shortcut.

Backends are selected by name through
:class:`~repro.em.storage.EMContext` (``make_context(backend="arena")``)
or :data:`~repro.core.config.StorageConfig`; :func:`make_backend` is the
registry.
"""

from __future__ import annotations

import abc
import contextlib
import mmap
import os
import pickle
import shutil
import tempfile
import weakref
from pathlib import Path
from typing import Iterable

import numpy as np

from .block import Block
from .errors import ConfigurationError

__all__ = [
    "StorageBackend",
    "MappingBackend",
    "ArenaBackend",
    "DurableArenaBackend",
    "BACKENDS",
    "make_backend",
]


class StorageBackend(abc.ABC):
    """Stores the blocks of one :class:`~repro.em.disk.Disk`.

    All methods are **uncharged** primitives; the disk (or the batch
    engine's deferred-charging helpers) records the I/Os.  ``KeyError``
    is raised for unknown block ids — the disk translates it to
    :class:`~repro.em.errors.InvalidBlockError`.
    """

    #: Registry name, set by subclasses.
    name: str

    def __init__(self, block_size_words: int, record_words: int = 1) -> None:
        self.b = block_size_words
        self.record_words = record_words

    # -- lifecycle ----------------------------------------------------------

    @abc.abstractmethod
    def create(self, block_id: int, *, record_words: int | None = None) -> None:
        """Register a fresh empty block under ``block_id``."""

    def create_many(
        self, block_ids: Iterable[int], *, record_words: int | None = None
    ) -> None:
        for bid in block_ids:
            self.create(bid, record_words=record_words)

    @abc.abstractmethod
    def delete(self, block_id: int) -> None:
        """Forget ``block_id`` (KeyError when unknown)."""

    @abc.abstractmethod
    def __contains__(self, block_id: int) -> bool: ...

    # -- whole-block access --------------------------------------------------

    @abc.abstractmethod
    def fetch(self, block_id: int) -> Block:
        """A :class:`Block` handle on the stored contents.

        The mapping backend returns the live stored object; the arena
        materialises one.  Either way, mutations become durable only
        after :meth:`commit` (which for the mapping backend's live
        handle is naturally a no-op).
        """

    @abc.abstractmethod
    def commit(self, block_id: int, block: Block, *, copy: bool = False) -> None:
        """Make ``block``'s records and header the stored contents."""

    # -- record-level primitives (the batch-engine fast paths) ---------------

    @abc.abstractmethod
    def length(self, block_id: int) -> int:
        """Number of stored records."""

    @abc.abstractmethod
    def records(self, block_id: int) -> list[int]:
        """The stored records as a list of Python ints (read-only)."""

    @abc.abstractmethod
    def records_arr(self, block_id: int) -> np.ndarray:
        """The stored records as a read-only ``uint64`` array.

        The arena returns a zero-copy view; callers must not mutate.
        """

    @abc.abstractmethod
    def contains_key(self, block_id: int, key: int) -> bool: ...

    @abc.abstractmethod
    def append(self, block_id: int, items: list[int]) -> None:
        """Append ``items`` (caller guarantees capacity)."""

    @abc.abstractmethod
    def replace(self, block_id: int, items: list[int]) -> None:
        """Overwrite the records wholesale (header untouched)."""

    @abc.abstractmethod
    def drain(self, block_id: int) -> list[int]:
        """Return the stored records and clear them (header untouched)."""

    @abc.abstractmethod
    def remove_key(self, block_id: int, key: int) -> bool:
        """Remove the first occurrence of ``key``; report whether present.

        Order-preserving, exactly like :meth:`Block.remove` on the
        stored contents — the deletion fast paths rely on the resulting
        record order matching the whole-block path bit for bit.
        """

    @abc.abstractmethod
    def is_fresh(self, block_id: int) -> bool:
        """Never written: no records and no header (allocation accounting)."""

    # -- introspection -------------------------------------------------------

    @abc.abstractmethod
    def ids(self) -> list[int]: ...

    @abc.abstractmethod
    def count(self) -> int: ...

    @abc.abstractmethod
    def nonempty(self) -> int: ...

    @abc.abstractmethod
    def words_stored(self) -> int: ...


class MappingBackend(StorageBackend):
    """The dict-of-:class:`Block` store (the historical representation)."""

    name = "mapping"

    def __init__(self, block_size_words: int, record_words: int = 1) -> None:
        super().__init__(block_size_words, record_words)
        self._blocks: dict[int, Block] = {}

    # -- lifecycle ----------------------------------------------------------

    def create(self, block_id: int, *, record_words: int | None = None) -> None:
        self._blocks[block_id] = Block(
            self.b, record_words=record_words or self.record_words
        )

    def create_many(
        self, block_ids: Iterable[int], *, record_words: int | None = None
    ) -> None:
        rw = record_words or self.record_words
        b = self.b
        self._blocks.update((bid, Block(b, record_words=rw)) for bid in block_ids)

    def delete(self, block_id: int) -> None:
        del self._blocks[block_id]

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    # -- whole-block access ---------------------------------------------------

    def fetch(self, block_id: int) -> Block:
        return self._blocks[block_id]

    def commit(self, block_id: int, block: Block, *, copy: bool = False) -> None:
        if block_id not in self._blocks:
            raise KeyError(block_id)
        if block is not self._blocks[block_id]:
            self._blocks[block_id] = block.copy() if copy else block

    # -- record-level primitives -----------------------------------------------

    def length(self, block_id: int) -> int:
        return len(self._blocks[block_id])

    def records(self, block_id: int) -> list[int]:
        return self._blocks[block_id]._data

    def records_arr(self, block_id: int) -> np.ndarray:
        return np.asarray(self._blocks[block_id]._data, dtype=np.uint64)

    def contains_key(self, block_id: int, key: int) -> bool:
        return key in self._blocks[block_id]._data

    def append(self, block_id: int, items: list[int]) -> None:
        blk = self._blocks[block_id]
        blk._data = blk._data + items

    def replace(self, block_id: int, items: list[int]) -> None:
        self._blocks[block_id]._data = items

    def drain(self, block_id: int) -> list[int]:
        blk = self._blocks[block_id]
        out = blk._data
        blk._data = []
        return out

    def remove_key(self, block_id: int, key: int) -> bool:
        return self._blocks[block_id].remove(key)

    def is_fresh(self, block_id: int) -> bool:
        blk = self._blocks[block_id]
        return not blk._data and not blk.header

    # -- introspection ----------------------------------------------------------

    def ids(self) -> list[int]:
        return sorted(self._blocks)

    def count(self) -> int:
        return len(self._blocks)

    def nonempty(self) -> int:
        return sum(1 for blk in self._blocks.values() if blk._data)

    def words_stored(self) -> int:
        return sum(blk.used_words for blk in self._blocks.values())


class ArenaBackend(StorageBackend):
    """Contiguous numpy arenas of fixed-width records.

    One preallocated ``(slots, records_per_block)`` ``uint64`` matrix
    plus an ``int64`` length vector; block ids map to arena slots
    through an indirection dict so freed slots are recycled and the
    arena stays as large as the *live* block count, not the historical
    allocation count.  Headers (O(1) structural words: chain pointers,
    overflow bits) live in a side dict keyed by block id.

    Blocks allocated with a non-default ``record_words`` fall back to
    plain :class:`Block` storage (the ``_odd`` dict) — no structure in
    this library uses per-block record widths, but the disk API allows
    them.
    """

    name = "arena"

    def __init__(
        self,
        block_size_words: int,
        record_words: int = 1,
        *,
        initial_slots: int = 64,
    ) -> None:
        super().__init__(block_size_words, record_words)
        self._cap = max(1, block_size_words // record_words)
        self._data = np.zeros((initial_slots, self._cap), dtype=np.uint64)
        self._len = np.zeros(initial_slots, dtype=np.int64)
        self._slot: dict[int, int] = {}
        self._free_slots: list[int] = []
        self._headers: dict[int, dict] = {}
        self._odd: dict[int, Block] = {}

    # -- slot management -------------------------------------------------------

    def _grow(self, needed: int) -> None:
        cur = self._data.shape[0]
        new = max(2 * cur, needed)
        data = np.zeros((new, self._cap), dtype=np.uint64)
        data[:cur] = self._data
        self._data = data
        length = np.zeros(new, dtype=np.int64)
        length[:cur] = self._len
        self._len = length

    def _new_slot(self) -> int:
        if self._free_slots:
            return self._free_slots.pop()
        slot = len(self._slot) + len(self._free_slots)
        if slot >= self._data.shape[0]:
            self._grow(slot + 1)
        return slot

    # -- lifecycle ----------------------------------------------------------

    def create(self, block_id: int, *, record_words: int | None = None) -> None:
        rw = record_words or self.record_words
        if rw != self.record_words:
            self._odd[block_id] = Block(self.b, record_words=rw)
            return
        slot = self._new_slot()
        self._len[slot] = 0
        self._slot[block_id] = slot

    def delete(self, block_id: int) -> None:
        if block_id in self._odd:
            del self._odd[block_id]
        else:
            self._free_slots.append(self._slot.pop(block_id))
        self._headers.pop(block_id, None)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._slot or block_id in self._odd

    # -- whole-block access ---------------------------------------------------

    def fetch(self, block_id: int) -> Block:
        odd = self._odd.get(block_id)
        if odd is not None:
            return odd
        slot = self._slot[block_id]
        n = int(self._len[slot])
        return Block(
            self.b,
            record_words=self.record_words,
            data=self._data[slot, :n].tolist(),
            header=self._headers.get(block_id),
        )

    def commit(self, block_id: int, block: Block, *, copy: bool = False) -> None:
        if block_id in self._odd:
            self._odd[block_id] = block.copy() if copy else block
            return
        slot = self._slot[block_id]
        data = block._data
        n = len(data)
        self._data[slot, :n] = data
        self._len[slot] = n
        if block.header:
            self._headers[block_id] = dict(block.header)
        else:
            self._headers.pop(block_id, None)

    # -- record-level primitives -----------------------------------------------

    def length(self, block_id: int) -> int:
        odd = self._odd.get(block_id)
        if odd is not None:
            return len(odd)
        return int(self._len[self._slot[block_id]])

    def records(self, block_id: int) -> list[int]:
        odd = self._odd.get(block_id)
        if odd is not None:
            return odd._data
        slot = self._slot[block_id]
        return self._data[slot, : self._len[slot]].tolist()

    def records_arr(self, block_id: int) -> np.ndarray:
        odd = self._odd.get(block_id)
        if odd is not None:
            return np.asarray(odd._data, dtype=np.uint64)
        slot = self._slot[block_id]
        return self._data[slot, : self._len[slot]]

    def contains_key(self, block_id: int, key: int) -> bool:
        odd = self._odd.get(block_id)
        if odd is not None:
            return key in odd._data
        slot = self._slot[block_id]
        return bool((self._data[slot, : self._len[slot]] == key).any())

    def append(self, block_id: int, items: list[int]) -> None:
        odd = self._odd.get(block_id)
        if odd is not None:
            odd._data = odd._data + items
            return
        slot = self._slot[block_id]
        n = int(self._len[slot])
        self._data[slot, n : n + len(items)] = items
        self._len[slot] = n + len(items)

    def replace(self, block_id: int, items: list[int]) -> None:
        odd = self._odd.get(block_id)
        if odd is not None:
            odd._data = items
            return
        slot = self._slot[block_id]
        self._data[slot, : len(items)] = items
        self._len[slot] = len(items)

    def drain(self, block_id: int) -> list[int]:
        odd = self._odd.get(block_id)
        if odd is not None:
            out = odd._data
            odd._data = []
            return out
        slot = self._slot[block_id]
        out = self._data[slot, : self._len[slot]].tolist()
        self._len[slot] = 0
        return out

    def remove_key(self, block_id: int, key: int) -> bool:
        odd = self._odd.get(block_id)
        if odd is not None:
            return odd.remove(key)
        slot = self._slot[block_id]
        n = int(self._len[slot])
        if n == 0:
            return False
        row = self._data[slot]
        eq = row[:n] == key
        i = int(eq.argmax())
        if not eq[i]:
            return False
        # Shift the tail left one record: same order Block.remove leaves.
        row[i : n - 1] = row[i + 1 : n]
        self._len[slot] = n - 1
        return True

    def is_fresh(self, block_id: int) -> bool:
        odd = self._odd.get(block_id)
        if odd is not None:
            return not odd._data and not odd.header
        return (
            self._len[self._slot[block_id]] == 0
            and block_id not in self._headers
        )

    # -- introspection ----------------------------------------------------------

    def ids(self) -> list[int]:
        return sorted([*self._slot, *self._odd]) if self._odd else sorted(self._slot)

    def count(self) -> int:
        return len(self._slot) + len(self._odd)

    def nonempty(self) -> int:
        live = np.fromiter(self._slot.values(), dtype=np.int64, count=len(self._slot))
        n = int(np.count_nonzero(self._len[live])) if live.size else 0
        return n + sum(1 for blk in self._odd.values() if blk._data)

    def words_stored(self) -> int:
        live = np.fromiter(self._slot.values(), dtype=np.int64, count=len(self._slot))
        words = int(self._len[live].sum()) * self.record_words if live.size else 0
        return words + sum(blk.used_words for blk in self._odd.values())


class DurableArenaBackend(ArenaBackend):
    """An :class:`ArenaBackend` whose arenas live in memory-mapped files.

    Drop-in for the in-memory arena — same slot management, same
    record-level primitives, same I/O-accounting invariance — but the
    ``(slots, records_per_block)`` record matrix and the length vector
    are memory-mapped onto files under ``path``:

    * ``arena.u64``   — the record matrix, row-major ``uint64``;
    * ``lengths.i64`` — per-slot record counts, ``int64``;
    * ``meta.pkl``    — everything O(1)-per-block that is not
      fixed-width (slot map, free list, headers, odd-width blocks),
      written atomically (tmp + fsync + ``os.replace``) by
      :meth:`flush`.

    Mutations hit the mapped pages immediately (so a hard crash leaves
    a possibly-torn file — recovery must come from a snapshot + journal,
    never from a live arena file); :meth:`flush` makes the current state
    durable and reloadable via :meth:`open`.

    When ``path`` is omitted a private temporary directory is created
    (and removed when the backend is garbage collected), which is what
    the ``make_backend("durable-arena", ...)`` registry path and the
    per-shard disks of a service use.
    """

    name = "durable-arena"

    _DATA_FILE = "arena.u64"
    _LEN_FILE = "lengths.i64"
    _META_FILE = "meta.pkl"

    def __init__(
        self,
        block_size_words: int,
        record_words: int = 1,
        *,
        path: str | Path | None = None,
        initial_slots: int = 64,
    ) -> None:
        super().__init__(
            block_size_words, record_words, initial_slots=initial_slots
        )
        if path is None:
            self.path = Path(tempfile.mkdtemp(prefix="repro-durable-arena-"))
            self._cleanup = weakref.finalize(
                self, shutil.rmtree, str(self.path), ignore_errors=True
            )
        else:
            self.path = Path(path)
            self.path.mkdir(parents=True, exist_ok=True)
            self._cleanup = None
        # Re-home the freshly built in-memory arenas onto mapped files.
        self._mmaps: dict[str, mmap.mmap] = {}
        slots = self._data.shape[0]
        self._data = self._map(self._DATA_FILE, np.uint64, (slots, self._cap))
        self._len = self._map(self._LEN_FILE, np.int64, (slots,))

    # -- file plumbing -------------------------------------------------------

    def _map(self, name: str, dtype, shape: tuple) -> np.ndarray:
        """Map ``name`` at ``shape``, zero-extending the file as needed.

        Returns a *plain* ndarray view over a shared ``mmap.mmap``
        buffer rather than an ``np.memmap``: mutations hit the mapped
        pages identically, but slicing stays on numpy's ndarray fast
        path (the memmap subclass pays ``__array_finalize__`` dispatch
        on every view, which dominates record-level hot loops).

        Extending only ever appends whole rows at the end of the file
        (the matrix is row-major and grows in slots), so existing bytes
        keep their meaning across every remap; MAP_SHARED coherence
        makes old and new mappings of the same file interchangeable.
        """
        target = Path(self.path, name)
        nbytes = int(np.dtype(dtype).itemsize * np.prod(shape))
        with open(target, "ab") as fh:
            if fh.tell() < nbytes:
                fh.truncate(nbytes)
        with open(target, "r+b") as fh:
            mm = mmap.mmap(fh.fileno(), nbytes)
        self._mmaps[name] = mm
        return np.frombuffer(mm, dtype=dtype).reshape(shape)

    def _grow(self, needed: int) -> None:
        cur = self._data.shape[0]
        new = max(2 * cur, needed)
        self._data = self._map(self._DATA_FILE, np.uint64, (new, self._cap))
        self._len = self._map(self._LEN_FILE, np.int64, (new,))

    def flush(self) -> None:
        """Make the current state durable: msync arenas, fsync metadata."""
        for mm in self._mmaps.values():
            mm.flush()
        meta = {
            "b": self.b,
            "record_words": self.record_words,
            "cap": self._cap,
            "slots": int(self._data.shape[0]),
            "slot": dict(self._slot),
            "free_slots": list(self._free_slots),
            "headers": {bid: dict(h) for bid, h in self._headers.items()},
            "odd": dict(self._odd),
        }
        target = Path(self.path, self._META_FILE)
        fd, tmp = tempfile.mkstemp(dir=self.path, prefix=".meta-")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(meta, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    @classmethod
    def open(cls, path: str | Path) -> "DurableArenaBackend":
        """Reload a flushed arena from ``path`` (meta + mapped files)."""
        path = Path(path)
        with open(Path(path, cls._META_FILE), "rb") as fh:
            meta = pickle.load(fh)
        self = cls(
            meta["b"],
            meta["record_words"],
            path=path,
            initial_slots=meta["slots"],
        )
        self._slot = dict(meta["slot"])
        self._free_slots = list(meta["free_slots"])
        self._headers = {bid: dict(h) for bid, h in meta["headers"].items()}
        self._odd = dict(meta["odd"])
        return self

    # -- pickling (snapshot/restore) -----------------------------------------
    #
    # A snapshot must capture the arena *contents*, not the mapping: the
    # live files may be torn by the crash being recovered from.  Pickle
    # therefore carries plain ndarrays; unpickling re-homes them onto a
    # fresh private directory, so a restored backend is durable again at
    # a new location and never aliases the crashed files.

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_data"] = np.asarray(self._data).copy()
        state["_len"] = np.asarray(self._len).copy()
        state.pop("_cleanup", None)
        state.pop("_mmaps", None)
        state.pop("path", None)
        return state

    def __setstate__(self, state: dict) -> None:
        data = state.pop("_data")
        length = state.pop("_len")
        self.__dict__.update(state)
        self.path = Path(tempfile.mkdtemp(prefix="repro-durable-arena-"))
        self._cleanup = weakref.finalize(
            self, shutil.rmtree, str(self.path), ignore_errors=True
        )
        self._mmaps = {}
        self._data = self._map(self._DATA_FILE, np.uint64, data.shape)
        self._data[:] = data
        self._len = self._map(self._LEN_FILE, np.int64, length.shape)
        self._len[:] = length


#: Name -> backend class registry, the selection surface of
#: ``make_context(backend=...)`` and ``core.config.StorageConfig``.
BACKENDS: dict[str, type[StorageBackend]] = {
    MappingBackend.name: MappingBackend,
    ArenaBackend.name: ArenaBackend,
    DurableArenaBackend.name: DurableArenaBackend,
}


def make_backend(
    name: str, block_size_words: int, record_words: int = 1
) -> StorageBackend:
    """Instantiate a registered backend by name."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown storage backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return cls(block_size_words, record_words)
