"""Main-memory budget accounting.

The model grants the algorithm ``m`` words of main memory.  The paper's
lower bound charges the hash table for everything it keeps resident:
the memory zone of items *and* the description of the address function
``f`` (the family ``F`` has at most ``2^{m log u}`` members because ``f``
must fit in memory).  :class:`MemoryBudget` tracks named charges so each
structure can prove it stays within ``m``, and tests can assert the
high-water mark.

The budget can run in ``hard`` mode (exceeding ``m`` raises) or soft
mode (only the high-water mark is recorded), since some experiments
intentionally overshoot to observe the consequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigurationError, MemoryBudgetExceededError


@dataclass
class MemoryBudget:
    """Tracks words of main memory charged against the model's ``m``.

    Parameters
    ----------
    m:
        Memory size in words.
    hard:
        When ``True`` any charge pushing usage above ``m`` raises
        :class:`MemoryBudgetExceededError`.
    """

    m: int
    hard: bool = True
    _charges: dict[str, int] = field(default_factory=dict)
    high_water: int = 0

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ConfigurationError(f"m must be positive, got {self.m}")

    # -- charging ------------------------------------------------------------

    def charge(self, owner: str, words: int) -> None:
        """Add ``words`` to ``owner``'s charge (may be negative to release)."""
        new = self._charges.get(owner, 0) + words
        if new < 0:
            raise ValueError(f"charge for {owner!r} would go negative ({new})")
        self._charges[owner] = new
        self._check()

    def set_charge(self, owner: str, words: int) -> None:
        """Set ``owner``'s charge to an absolute number of words."""
        if words < 0:
            raise ValueError(f"negative charge {words} for {owner!r}")
        self._charges[owner] = words
        self._check()

    def release(self, owner: str) -> None:
        """Drop ``owner``'s entire charge."""
        self._charges.pop(owner, None)

    def _check(self) -> None:
        used = self.used
        if used > self.high_water:
            self.high_water = used
        if self.hard and used > self.m:
            detail = ", ".join(f"{k}={v}" for k, v in sorted(self._charges.items()))
            raise MemoryBudgetExceededError(
                f"memory over budget: {used} > m={self.m} words ({detail})"
            )

    # -- inspection ------------------------------------------------------------

    @property
    def used(self) -> int:
        return sum(self._charges.values())

    @property
    def free(self) -> int:
        return self.m - self.used

    def charge_of(self, owner: str) -> int:
        return self._charges.get(owner, 0)

    def owners(self) -> list[str]:
        return sorted(self._charges)

    def within_budget(self) -> bool:
        return self.used <= self.m

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryBudget(used={self.used}/{self.m}, high_water={self.high_water})"
        )
