"""Disk blocks.

A block holds at most ``b`` *words*.  In the paper's model one item is
one word (a ``log u``-bit key), so a block holds at most ``b`` items.
Structures that store key--value records charge ``record_words`` words
per record, letting the same block type model payload-carrying tables
(a block then holds ``b // record_words`` records).

Blocks are deliberately simple: a bounded list of integers plus a small
out-of-band header dict for structural metadata (e.g. chain pointers,
local depth).  Header words can be charged too, but the paper's
structures only ever need O(1) header words per block, which it — like
all EM literature — ignores; we expose ``header_words`` so strict
accounting is possible.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from .errors import BlockOverflowError


class Block:
    """A bounded container of integer words.

    Parameters
    ----------
    capacity_words:
        The block size ``b`` in words.
    record_words:
        Words charged per appended record (1 for key-only items).
    """

    __slots__ = ("capacity_words", "record_words", "_data", "header")

    def __init__(
        self,
        capacity_words: int,
        *,
        record_words: int = 1,
        data: Iterable[int] | None = None,
        header: dict[str, Any] | None = None,
    ) -> None:
        if capacity_words <= 0:
            raise ValueError(f"block capacity must be positive, got {capacity_words}")
        if record_words <= 0:
            raise ValueError(f"record_words must be positive, got {record_words}")
        self.capacity_words = capacity_words
        self.record_words = record_words
        self._data: list[int] = list(data) if data is not None else []
        if len(self._data) * record_words > capacity_words:
            raise BlockOverflowError(
                f"initial data of {len(self._data)} records exceeds capacity "
                f"{capacity_words} words at {record_words} words/record"
            )
        self.header: dict[str, Any] = dict(header) if header else {}

    # -- capacity ----------------------------------------------------------

    @property
    def capacity_records(self) -> int:
        """Maximum number of records this block can hold."""
        return self.capacity_words // self.record_words

    @property
    def used_words(self) -> int:
        return len(self._data) * self.record_words

    @property
    def free_records(self) -> int:
        return self.capacity_records - len(self._data)

    @property
    def full(self) -> bool:
        return len(self._data) >= self.capacity_records

    @property
    def empty(self) -> bool:
        return not self._data

    # -- record access -----------------------------------------------------

    def append(self, word: int) -> None:
        """Append one record, raising :class:`BlockOverflowError` when full."""
        if self.full:
            raise BlockOverflowError(
                f"block full: {len(self._data)} records of {self.record_words} "
                f"words in a {self.capacity_words}-word block"
            )
        self._data.append(word)

    def extend(self, words: Iterable[int]) -> None:
        for w in words:
            self.append(w)

    def remove(self, word: int) -> bool:
        """Remove one occurrence of ``word``; return whether it was present."""
        try:
            self._data.remove(word)
        except ValueError:
            return False
        return True

    def replace_contents(self, words: Iterable[int]) -> None:
        """Overwrite the records wholesale (still bounded by capacity)."""
        new = list(words)
        if len(new) > self.capacity_records:
            raise BlockOverflowError(
                f"{len(new)} records exceed capacity of {self.capacity_records}"
            )
        self._data = new

    def clear(self) -> None:
        self._data.clear()

    def __contains__(self, word: int) -> bool:
        return word in self._data

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, i: int) -> int:
        return self._data[i]

    def records(self) -> list[int]:
        """A copy of the stored records."""
        return list(self._data)

    def copy(self) -> "Block":
        return Block(
            self.capacity_words,
            record_words=self.record_words,
            data=self._data,
            header=self.header,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Block):
            return NotImplemented
        return (
            self.capacity_words == other.capacity_words
            and self.record_words == other.record_words
            and self._data == other._data
            and self.header == other.header
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block({len(self._data)}/{self.capacity_records} records, "
            f"b={self.capacity_words}, header={self.header})"
        )
