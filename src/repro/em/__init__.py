"""External-memory substrate: the Aggarwal--Vitter model, simulated.

Public surface:

* :class:`~repro.em.storage.ModelParams`, :class:`~repro.em.storage.EMContext`,
  :func:`~repro.em.storage.make_context` — model parameters and shared context.
* :class:`~repro.em.disk.Disk`, :class:`~repro.em.block.Block` — storage.
* :class:`~repro.em.iostats.IOStats`, :class:`~repro.em.iostats.IOPolicy` —
  the I/O complexity measure.
* :class:`~repro.em.memory.MemoryBudget` — the ``m``-word memory.
* :class:`~repro.em.cache.BufferPool`, :class:`~repro.em.cache.CachedDisk`
  — the caching policy axis (``cache_blocks=`` on :func:`make_context`).
* :class:`~repro.em.backends.StorageBackend` and friends — pluggable
  block stores behind the disk (``"mapping"`` / ``"arena"``).
"""

from .backends import (
    BACKENDS,
    ArenaBackend,
    DurableArenaBackend,
    MappingBackend,
    StorageBackend,
    make_backend,
)
from .block import Block
from .cache import BufferPool, CachedDisk, CacheStats
from .disk import Disk
from .errors import (
    BlockOverflowError,
    ConfigurationError,
    EMError,
    InvalidBlockError,
    MemoryBudgetExceededError,
    RetryExhausted,
    SimulatedCrash,
    StorageFault,
)
from .iostats import IOPolicy, IOSnapshot, IOStats, PAPER_POLICY, STRICT_POLICY
from .memory import MemoryBudget
from .storage import EMContext, ModelParams, make_context

__all__ = [
    "ArenaBackend",
    "BACKENDS",
    "Block",
    "DurableArenaBackend",
    "MappingBackend",
    "StorageBackend",
    "make_backend",
    "BufferPool",
    "CachedDisk",
    "CacheStats",
    "Disk",
    "EMContext",
    "EMError",
    "BlockOverflowError",
    "ConfigurationError",
    "InvalidBlockError",
    "MemoryBudgetExceededError",
    "RetryExhausted",
    "SimulatedCrash",
    "StorageFault",
    "IOPolicy",
    "IOSnapshot",
    "IOStats",
    "PAPER_POLICY",
    "STRICT_POLICY",
    "MemoryBudget",
    "ModelParams",
    "make_context",
]
