"""The dictionary service layer: mixed-op epochs over concurrent shards.

Turns the reproduction's dictionaries into a servable system:

* :mod:`repro.service.epochs` — conflict-aware coalescing of interleaved
  insert/lookup/delete streams into vectorized epochs;
* :mod:`repro.service.service` — :class:`DictionaryService`, executing
  each epoch over N private shard machines through a pluggable
  ``serial`` / ``threads`` executor, with per-shard I/O ledgers merged
  at epoch close (parallel runs bit-identical to serial);
* :mod:`repro.service.client` — closed-loop (capacity) and open-loop
  (queueing-inclusive latency under offered load) client simulators;
* :mod:`repro.service.traffic` — seeded virtual-clock arrival processes
  (Poisson, diurnal, bursty) for the open-loop client;
* :mod:`repro.service.admission` — the bounded admission queue and
  reject/shed/adapt overload policies with per-op outcome accounting;
* :mod:`repro.service.journal` — the epoch write-ahead journal
  (append-before-execute, fsync-commit-after-merge);
* :mod:`repro.service.recovery` — snapshot/restore of a live service
  and snapshot+journal crash recovery;
* :mod:`repro.service.faults` — deterministic fault injection,
  retry-with-backoff healing, per-shard circuit breakers, and the
  crash-recovery + overload chaos harnesses;
* :mod:`repro.obs` (re-exported here) — the observability layer: span
  tracing (``DictionaryService(obs=...)``), the always-on
  ``service.metrics()`` registry, and per-epoch time-series export.

See ``src/repro/service/README.md`` for the epoch/executor, durability,
and overload/SLO guarantees.
"""

from ..core.config import ObsConfig, RebalanceConfig
from ..obs import MetricsRegistry, TraceRecorder, scan_trace
from ..tables.rebalance import MigrationReport, Rebalancer, SlotMove
from ..tables.sharded import SlotDirectory
from .admission import (
    EXECUTED,
    EXPIRED,
    OUTCOME_NAMES,
    PENDING,
    REJECTED,
    SHED,
    SHED_POLICIES,
    AdmissionController,
    AdmissionQueue,
)
from .client import ClientReport, ClosedLoopClient, OpenLoopClient
from .epochs import Epoch, build_epochs
from .faults import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    ChaosReport,
    CrashPoint,
    CrashingJournal,
    FaultClock,
    FaultInjectingBackend,
    FaultSchedule,
    OverloadChaosReport,
    RetryPolicy,
    RetryingBackend,
    ShardBreakerBoard,
    run_crash_matrix,
    run_overload_chaos,
)
from .journal import EpochJournal, JournalRecord, JournalScan
from .recovery import RecoveryReport, recover, restore_service, snapshot_service
from .service import (
    EXECUTORS,
    DictionaryService,
    EpochReport,
    SerialExecutor,
    ServiceRun,
    ThreadExecutor,
    make_executor,
    service_shard_view,
)
from .traffic import (
    ARRIVALS,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)

__all__ = [
    "MetricsRegistry",
    "MigrationReport",
    "ObsConfig",
    "RebalanceConfig",
    "TraceRecorder",
    "scan_trace",
    "Rebalancer",
    "SlotDirectory",
    "SlotMove",
    "ClientReport",
    "ClosedLoopClient",
    "OpenLoopClient",
    "Epoch",
    "build_epochs",
    "ARRIVALS",
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "make_arrivals",
    "EXECUTED",
    "EXPIRED",
    "PENDING",
    "REJECTED",
    "SHED",
    "SHED_POLICIES",
    "OUTCOME_NAMES",
    "AdmissionController",
    "AdmissionQueue",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "ChaosReport",
    "CrashPoint",
    "CrashingJournal",
    "EpochJournal",
    "FaultClock",
    "FaultInjectingBackend",
    "FaultSchedule",
    "JournalRecord",
    "JournalScan",
    "OverloadChaosReport",
    "RecoveryReport",
    "RetryPolicy",
    "RetryingBackend",
    "ShardBreakerBoard",
    "recover",
    "restore_service",
    "run_crash_matrix",
    "run_overload_chaos",
    "snapshot_service",
    "DictionaryService",
    "EpochReport",
    "ServiceRun",
    "SerialExecutor",
    "ThreadExecutor",
    "EXECUTORS",
    "make_executor",
    "service_shard_view",
]
