"""The dictionary service layer: mixed-op epochs over concurrent shards.

Turns the reproduction's dictionaries into a servable system:

* :mod:`repro.service.epochs` — conflict-aware coalescing of interleaved
  insert/lookup/delete streams into vectorized epochs;
* :mod:`repro.service.service` — :class:`DictionaryService`, executing
  each epoch over N private shard machines through a pluggable
  ``serial`` / ``threads`` executor, with per-shard I/O ledgers merged
  at epoch close (parallel runs bit-identical to serial);
* :mod:`repro.service.client` — a closed-loop client simulator
  reporting throughput and per-op latency percentiles.

See ``src/repro/service/README.md`` for the epoch/executor guarantees.
"""

from .client import ClientReport, ClosedLoopClient
from .epochs import Epoch, build_epochs
from .service import (
    EXECUTORS,
    DictionaryService,
    EpochReport,
    SerialExecutor,
    ServiceRun,
    ThreadExecutor,
    make_executor,
    service_shard_view,
)

__all__ = [
    "ClientReport",
    "ClosedLoopClient",
    "Epoch",
    "build_epochs",
    "DictionaryService",
    "EpochReport",
    "ServiceRun",
    "SerialExecutor",
    "ThreadExecutor",
    "EXECUTORS",
    "make_executor",
    "service_shard_view",
]
