"""The dictionary service layer: mixed-op epochs over concurrent shards.

Turns the reproduction's dictionaries into a servable system:

* :mod:`repro.service.epochs` — conflict-aware coalescing of interleaved
  insert/lookup/delete streams into vectorized epochs;
* :mod:`repro.service.service` — :class:`DictionaryService`, executing
  each epoch over N private shard machines through a pluggable
  ``serial`` / ``threads`` executor, with per-shard I/O ledgers merged
  at epoch close (parallel runs bit-identical to serial);
* :mod:`repro.service.client` — a closed-loop client simulator
  reporting throughput and per-op latency percentiles;
* :mod:`repro.service.journal` — the epoch write-ahead journal
  (append-before-execute, fsync-commit-after-merge);
* :mod:`repro.service.recovery` — snapshot/restore of a live service
  and snapshot+journal crash recovery;
* :mod:`repro.service.faults` — deterministic fault injection,
  retry-with-backoff healing, and the crash-recovery chaos harness.

See ``src/repro/service/README.md`` for the epoch/executor and
durability guarantees.
"""

from .client import ClientReport, ClosedLoopClient
from .epochs import Epoch, build_epochs
from .faults import (
    ChaosReport,
    CrashPoint,
    CrashingJournal,
    FaultClock,
    FaultInjectingBackend,
    FaultSchedule,
    RetryPolicy,
    RetryingBackend,
    run_crash_matrix,
)
from .journal import EpochJournal, JournalRecord, JournalScan
from .recovery import RecoveryReport, recover, restore_service, snapshot_service
from .service import (
    EXECUTORS,
    DictionaryService,
    EpochReport,
    SerialExecutor,
    ServiceRun,
    ThreadExecutor,
    make_executor,
    service_shard_view,
)

__all__ = [
    "ClientReport",
    "ClosedLoopClient",
    "Epoch",
    "build_epochs",
    "ChaosReport",
    "CrashPoint",
    "CrashingJournal",
    "EpochJournal",
    "FaultClock",
    "FaultInjectingBackend",
    "FaultSchedule",
    "JournalRecord",
    "JournalScan",
    "RecoveryReport",
    "RetryPolicy",
    "RetryingBackend",
    "recover",
    "restore_service",
    "run_crash_matrix",
    "snapshot_service",
    "DictionaryService",
    "EpochReport",
    "ServiceRun",
    "SerialExecutor",
    "ThreadExecutor",
    "EXECUTORS",
    "make_executor",
    "service_shard_view",
]
