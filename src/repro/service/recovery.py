"""Snapshot, restore, and crash recovery for a live :class:`DictionaryService`.

The durability story has two halves:

* **Snapshot** — :func:`snapshot_service` pickles the *complete* service
  state in one object graph: the template context, every per-shard
  machine (disk + backend arenas + memory budget + I/O ledger), the
  shard tables, the router hash, the cluster ledger, and the committed
  stream position.  One graph matters: tables hold references into
  their shard contexts, and pickle preserves that sharing, so a
  restored service is wired exactly like the original.  The file is
  written atomically (temp file + fsync + ``os.replace``), so a crash
  mid-snapshot leaves the previous snapshot intact.

* **Recovery** — :func:`recover` loads the last snapshot, scans the
  epoch journal (:mod:`repro.service.journal`), and re-executes every
  *committed* epoch past the snapshot's stream position.  Epochs whose
  COMMIT marker never hit the disk — including the half-executed epoch
  a crash interrupted — are discarded; the journal is truncated back to
  its committed prefix so the resuming client simply re-submits from
  ``ops_committed`` and the re-run epoch is re-journaled cleanly.

The recovery invariant (pinned by ``tests/test_recovery.py``): replaying
committed epochs is a deterministic re-execution, so the recovered
service's layout snapshot, lookup results, per-shard ledgers, cluster
:class:`~repro.em.iostats.IOStats` and memory peaks are **bit-identical**
to an uninterrupted run of the same trace.  Crashed in-memory state is
never reused — recovery always starts from the snapshot file.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..em.cache import CacheStats
from ..obs import MetricsRegistry
from ..tables.sharded import SlotDirectory
from .journal import EpochJournal
from .service import DictionaryService, make_executor

__all__ = [
    "RecoveryReport",
    "recover",
    "restore_service",
    "snapshot_service",
]

_SNAPSHOT_VERSION = 1


def snapshot_service(service: DictionaryService, path: str | Path) -> None:
    """Checkpoint ``service`` to ``path`` atomically.

    Call between :meth:`DictionaryService.run` calls (or between epochs
    of a window-by-window driver): that is the commit boundary at which
    per-shard ledgers have merged and no staging state is in flight.
    The executor and journal handles are deliberately excluded — they
    are reattached on restore.
    """
    state = {
        "version": _SNAPSHOT_VERSION,
        "name": service.name,
        "ctx": service.ctx,
        "shards": service.shards,
        "epoch_ops": service.epoch_ops,
        "router": service.router,
        "contexts": service._contexts,
        "tables": service._tables,
        "ledger": service.ledger,
        "cache": service.cache,
        "epochs_run": service.epochs_run,
        "ops_committed": service.ops_committed,
        "executor": getattr(service.executor, "name", "serial"),
        "directory": service.directory,
        "rebalancer": service.rebalancer,
        "migrated_slots": service.migrated_slots,
        "keys_moved": service.keys_moved,
        "migration_io": service.migration_io,
        "migrations_applied": service.migrations_applied,
        "metrics": service._metrics,
        "setup_io": service.setup_io,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def restore_service(
    path: str | Path, *, executor: str | None = None
) -> DictionaryService:
    """Rebuild a service from a snapshot file.

    ``executor`` overrides the snapshotted executor name (e.g. restore a
    ``threads`` service as ``serial`` for debugging).  The restored
    service has no journal attached; :func:`recover` reattaches one.
    """
    with open(path, "rb") as fh:
        state = pickle.load(fh)
    if state.get("version") != _SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {state.get('version')!r} in {path}"
        )
    svc = DictionaryService.__new__(DictionaryService)
    svc.ctx = state["ctx"]
    svc.shards = state["shards"]
    svc.epoch_ops = state["epoch_ops"]
    svc.name = state["name"]
    svc.router = state["router"]
    svc.executor = make_executor(executor or state["executor"])
    svc._contexts = state["contexts"]
    svc._tables = state["tables"]
    svc.ledger = state["ledger"]
    # Snapshots are taken at epoch boundaries, where the last merge left
    # marks equal to the live per-shard counters — so fresh snapshots
    # reproduce the marks exactly.
    svc._marks = [sub.stats.snapshot() for sub in svc._contexts]
    # Older snapshots predate the cache ledger; restore them uncached.
    svc.cache = state.get("cache", CacheStats())
    svc._cache_marks = [
        (cs.snapshot() if cs is not None else None)
        for cs in (sub.cache_stats() for sub in svc._contexts)
    ]
    svc.epochs_run = state["epochs_run"]
    svc.journal = None
    svc.ops_committed = state["ops_committed"]
    # Older snapshots predate the slot directory; they can only have
    # routed statically, so a fresh static directory restores them
    # exactly.
    directory = state.get("directory")
    svc.directory = (
        directory
        if directory is not None
        else SlotDirectory(svc.router, svc.shards)
    )
    svc.rebalancer = state.get("rebalancer")
    svc.migrated_slots = state.get("migrated_slots", 0)
    svc.keys_moved = state.get("keys_moved", 0)
    svc.migration_io = state.get("migration_io", 0)
    svc.migrations_applied = state.get("migrations_applied", 0)
    # Observability: the metrics registry rides the snapshot (older
    # snapshots restore with a fresh one); trace recorders are handles,
    # not state — a restored service starts untraced.
    svc._metrics = state.get("metrics") or MetricsRegistry()
    svc.setup_io = state.get("setup_io", 0)
    svc.obs = None
    svc.recorder = None
    svc.metrics_listener = None
    svc._run_seq = 0
    svc._trace_base = svc.ops_committed
    svc._journal_bytes_mark = 0
    return svc


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` did.

    ``committed_through`` is the global stream position durable state
    now extends to — the resuming client re-submits its trace from
    there.  ``discarded_ops`` counts journaled-but-uncommitted ops (the
    half-executed epoch) that were dropped and must be re-submitted.
    """

    service: DictionaryService
    replayed_epochs: int
    replayed_ops: int
    discarded_ops: int
    committed_through: int


def recover(
    snapshot_path: str | Path,
    journal_path: str | Path | None = None,
    *,
    executor: str | None = None,
    resume_journal: bool = True,
) -> RecoveryReport:
    """Snapshot + committed-journal-suffix recovery.

    Restores the snapshot, replays every committed epoch whose ops lie
    past the snapshot's stream position, truncates the journal back to
    its committed prefix, and (by default) reattaches a live journal so
    the resumed service keeps the same durability guarantee.
    """
    svc = restore_service(snapshot_path, executor=executor)
    replayed = replayed_ops = discarded = 0
    if journal_path is not None:
        scan = EpochJournal.scan(journal_path)
        # Log order: a REBALANCE record re-executes exactly between the
        # committed epochs it originally ran between, against the shard
        # state their replay just rebuilt — so a crash mid-migration
        # recovers to the same slot map, layouts and ledgers as an
        # uninterrupted run.
        for rec in scan.redo:
            if rec.kind == "rebalance":
                svc.apply_rebalance_record(rec.epoch, rec.moves)
                continue
            if rec.stop <= svc.ops_committed:
                continue  # already folded into the snapshot
            if rec.start != svc.ops_committed:
                raise ValueError(
                    f"journal gap: committed epoch {rec.epoch} starts at op "
                    f"{rec.start} but durable state ends at {svc.ops_committed}"
                )
            svc.replay_epoch(rec.start, rec.stop, rec.kinds, rec.keys)
            replayed += 1
            replayed_ops += rec.ops
        discarded = scan.uncommitted_ops
        if resume_journal:
            if Path(journal_path).exists():
                EpochJournal.truncate(journal_path, scan.committed_bytes)
            svc.journal = EpochJournal(journal_path)
    return RecoveryReport(
        service=svc,
        replayed_epochs=replayed,
        replayed_ops=replayed_ops,
        discarded_ops=discarded,
        committed_through=svc.ops_committed,
    )
