"""The epoch write-ahead journal: redo logging at epoch granularity.

PR 5's epoch scheduler gave the service a natural atomicity boundary:
an epoch's per-shard batches either all merged into the cluster ledger
or the epoch never happened.  The journal makes that boundary durable:

* **before** an epoch executes, its encoded ops (the ``(kinds, keys)``
  slice plus its global stream positions) are appended as an ``OPS``
  record (flushed, not yet fsynced);
* **after** the epoch's per-shard ledgers merged, a ``COMMIT`` marker
  for the same epoch index is appended and **fsynced** — the one
  barrier per epoch, which forces the buffered OPS record down with it.
  An epoch is durable iff its marker is on disk; an OPS record that
  never reached the device reads on recovery exactly like an
  uncommitted one, so the deferred barrier loses nothing.

Recovery (:mod:`repro.service.recovery`) then is: load the last
snapshot, re-execute every journaled epoch whose ``COMMIT`` marker made
it to disk, and discard the tail — a half-executed epoch shows up as an
``OPS`` record with no marker (or as a torn record) and is simply re-run
by the resuming client.  Because epoch execution is deterministic, the
replayed epochs charge bit-identical I/O to the original run.

Record format (little-endian)::

    record  := header payload
    header  := magic "RJL1" | type u8 | epoch u64 | start u64 | stop u64
               | crc32 u32
    type    := 1 (OPS), 2 (COMMIT) or 3 (REBALANCE)
    payload := OPS:       kinds  (stop-start bytes, one op code each)
                          keys   ((stop-start) * 8 bytes, uint64)
               COMMIT:    empty
               REBALANCE: (stop-start) * 3 uint64 (slot, src, dst) triples

The REBALANCE record is the rebalancer's write-ahead intent: the
``epoch`` field carries the migration *sequence number*, ``start`` the
stream position the migration runs at, and ``stop - start`` the move
count.  It is appended **fsynced, before the moves execute**, and is
self-committed — crash mid-migration and recovery re-executes the
journaled moves deterministically (slot drains are pure functions of
the shard state the committed-epoch replay just rebuilt).

``crc32`` covers the header fields after the magic plus the payload, so
a torn append (crash mid-record) is detected and everything from the
first invalid byte on is ignored — exactly the redo-log convention.
``start``/``stop`` are *global* stream positions (across ``run()``
calls), which is what lets a resuming client know where to pick the
trace back up.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["EpochJournal", "JournalRecord", "JournalScan"]

#: Header layout: magic, record type, epoch index, global start/stop, crc.
_HEADER = struct.Struct("<4sBQQQI")
_MAGIC = b"RJL1"
_OPS = 1
_COMMIT = 2
_REBALANCE = 3


def _crc(rtype: int, epoch: int, start: int, stop: int, payload: bytes) -> int:
    head = struct.pack("<BQQQ", rtype, epoch, start, stop)
    return zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF


@dataclass(frozen=True)
class JournalRecord:
    """One parsed journal record (``kinds``/``keys`` only for OPS,
    ``moves`` only for REBALANCE — where ``epoch`` is the migration
    sequence number and ``stop - start`` the move count)."""

    kind: str  # "ops" | "commit" | "rebalance"
    epoch: int
    start: int
    stop: int
    kinds: np.ndarray | None = None
    keys: np.ndarray | None = None
    moves: tuple[tuple[int, int, int], ...] | None = None

    @property
    def ops(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class JournalScan:
    """Result of scanning a journal file.

    ``committed`` holds the OPS records whose COMMIT marker made it to
    disk, in epoch order; ``redo`` is the full redo set — the committed
    OPS records *and* the (self-committed) REBALANCE records,
    interleaved in log order, which is the order recovery re-executes
    them in.  ``valid_bytes`` is the offset of the first invalid/torn
    byte; ``committed_bytes`` the offset just after the last durable
    record (truncating there discards the uncommitted tail so a resumed
    journal re-appends the re-run epoch).
    """

    records: list[JournalRecord]
    committed: list[JournalRecord]
    redo: list[JournalRecord]
    valid_bytes: int
    committed_bytes: int
    uncommitted_ops: int


class EpochJournal:
    """Append-side handle on an epoch journal file.

    Parameters
    ----------
    path:
        Journal file; created (with parents) when missing, appended to
        when present — recovery truncates the uncommitted tail first.
    fsync:
        Issue the commit barrier (one fsync per epoch, at the COMMIT
        marker — the protocol's durability guarantee).  Disable only in
        tests that measure pure journaling overhead.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._fh = open(self.path, "ab")
        #: Appended/committed counters (instrumentation).
        self.appended_epochs = 0
        self.committed_epochs = 0
        self.bytes_written = 0

    # -- encoding ------------------------------------------------------------

    @staticmethod
    def encode_ops(
        epoch: int, start: int, stop: int, kinds: np.ndarray, keys: np.ndarray
    ) -> bytes:
        """The OPS record bytes for one epoch (also used by fault tests)."""
        payload = (
            np.ascontiguousarray(kinds, dtype=np.uint8).tobytes()
            + np.ascontiguousarray(keys, dtype="<u8").tobytes()
        )
        header = _HEADER.pack(
            _MAGIC, _OPS, epoch, start, stop, _crc(_OPS, epoch, start, stop, payload)
        )
        return header + payload

    @staticmethod
    def encode_commit(epoch: int, start: int, stop: int) -> bytes:
        return _HEADER.pack(
            _MAGIC, _COMMIT, epoch, start, stop, _crc(_COMMIT, epoch, start, stop, b"")
        )

    @staticmethod
    def encode_rebalance(seq: int, position: int, moves) -> bytes:
        """The REBALANCE record bytes for one migration decision.

        ``seq`` is the migration sequence number (how many migrations
        the service has applied before this one), ``position`` the
        committed stream position it runs at, ``moves`` the
        ``(slot, src, dst)`` triples in execution order.
        """
        payload = np.asarray(
            [(m[0], m[1], m[2]) for m in moves], dtype="<u8"
        ).tobytes()
        start, stop = position, position + len(moves)
        header = _HEADER.pack(
            _MAGIC,
            _REBALANCE,
            seq,
            start,
            stop,
            _crc(_REBALANCE, seq, start, stop, payload),
        )
        return header + payload

    # -- the write protocol --------------------------------------------------

    def append_epoch(
        self, epoch: int, start: int, stop: int, kinds: np.ndarray, keys: np.ndarray
    ) -> None:
        """Record an epoch's ops *before* it executes (no barrier yet).

        The append is flushed but not fsynced: durability is only
        promised at :meth:`commit`, and an OPS record that never reaches
        the device is indistinguishable on recovery from one with no
        COMMIT marker — the epoch is discarded and re-driven either way.
        Deferring the barrier halves the fsyncs per epoch.
        """
        if stop - start != len(kinds) or len(kinds) != len(keys):
            raise ValueError(
                f"epoch bounds [{start}, {stop}) do not match "
                f"{len(kinds)} kinds / {len(keys)} keys"
            )
        self._write(self.encode_ops(epoch, start, stop, kinds, keys))
        self.appended_epochs += 1

    def commit(self, epoch: int, start: int, stop: int) -> None:
        """Durably mark an epoch committed *after* its ledger merge.

        The single fsync here is the commit barrier: it forces the
        epoch's buffered OPS record and this marker to the device
        together, so "COMMIT on disk" implies "ops on disk".
        """
        self._write(self.encode_commit(epoch, start, stop), barrier=True)
        self.committed_epochs += 1

    def append_rebalance(self, seq: int, position: int, moves) -> None:
        """Durably record a migration's intent *before* it executes.

        Write-ahead with its own barrier: once this returns, a crash at
        any point during the slot drains leaves the record on disk and
        recovery re-executes the moves; a crash before it leaves no
        trace and the rebalancer simply re-decides after recovery.
        """
        if not moves:
            raise ValueError("a REBALANCE record needs at least one move")
        self._write(self.encode_rebalance(seq, position, moves), barrier=True)

    def _write(self, record: bytes, *, barrier: bool = False) -> None:
        self._fh.write(record)
        self._fh.flush()
        if barrier and self.fsync:
            os.fsync(self._fh.fileno())
        self.bytes_written += len(record)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "EpochJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the read side -------------------------------------------------------

    @classmethod
    def scan(cls, path: str | Path) -> JournalScan:
        """Parse a journal, stopping at the first torn/corrupt byte."""
        try:
            raw = Path(path).read_bytes()
        except FileNotFoundError:
            return JournalScan([], [], [], 0, 0, 0)
        records: list[JournalRecord] = []
        committed: list[JournalRecord] = []
        redo: list[JournalRecord] = []
        pending: dict[int, JournalRecord] = {}
        offset = 0
        committed_bytes = 0
        while offset + _HEADER.size <= len(raw):
            magic, rtype, epoch, start, stop, crc = _HEADER.unpack_from(raw, offset)
            if magic != _MAGIC or rtype not in (_OPS, _COMMIT, _REBALANCE):
                break
            if rtype == _OPS:
                body_len = (stop - start) * 9
            elif rtype == _REBALANCE:
                body_len = (stop - start) * 24
            else:
                body_len = 0
            end = offset + _HEADER.size + body_len
            if end > len(raw):
                break  # torn append: the record tail never hit the disk
            payload = raw[offset + _HEADER.size : end]
            if _crc(rtype, epoch, start, stop, payload) != crc:
                break
            if rtype == _OPS:
                n = stop - start
                rec = JournalRecord(
                    kind="ops",
                    epoch=epoch,
                    start=start,
                    stop=stop,
                    kinds=np.frombuffer(payload[:n], dtype=np.uint8).copy(),
                    keys=np.frombuffer(payload[n:], dtype="<u8").astype(np.uint64),
                )
                pending[epoch] = rec
            elif rtype == _REBALANCE:
                triples = np.frombuffer(payload, dtype="<u8").reshape(-1, 3)
                rec = JournalRecord(
                    kind="rebalance",
                    epoch=epoch,
                    start=start,
                    stop=stop,
                    moves=tuple(
                        (int(s), int(a), int(b)) for s, a, b in triples
                    ),
                )
                # Self-committed: fsynced before the moves execute.
                redo.append(rec)
                committed_bytes = end
            else:
                rec = JournalRecord(kind="commit", epoch=epoch, start=start, stop=stop)
                ops_rec = pending.pop(epoch, None)
                if ops_rec is not None:
                    committed.append(ops_rec)
                    redo.append(ops_rec)
                    committed_bytes = end
            records.append(rec)
            offset = end
        return JournalScan(
            records=records,
            committed=committed,
            redo=redo,
            valid_bytes=offset,
            committed_bytes=committed_bytes,
            uncommitted_ops=sum(r.ops for r in pending.values()),
        )

    @staticmethod
    def truncate(path: str | Path, nbytes: int) -> None:
        """Cut the journal back to ``nbytes`` (drop the uncommitted tail)."""
        with open(path, "rb+") as fh:
            fh.truncate(nbytes)
            fh.flush()
            os.fsync(fh.fileno())
