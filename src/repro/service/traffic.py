"""Open-loop traffic: seeded arrival processes on a virtual clock.

The :class:`~repro.service.client.ClosedLoopClient` measures *service
capacity*: offered load adapts to service speed, so there is no queue
and no notion of a user waiting.  Real traffic is **open-loop** — users
arrive whether or not the service is keeping up — and the quantity that
matters is queueing-inclusive latency under a given *offered load*.

This module supplies the arrival side: seeded processes that stamp op
``i`` with a **virtual arrival time** ``t_i`` (seconds on a virtual
clock that starts at 0).  The randomness lives entirely in the seed —
two runs with the same process parameters produce bit-identical arrival
time arrays, so an open-loop experiment is exactly reproducible; the
only wall-clock quantity in the pipeline is the measured per-batch
service time (and even that can be replaced by a deterministic service
model — see :class:`~repro.service.client.OpenLoopClient`).

Three processes, all with mean rate ``rate`` ops/sec:

* :class:`PoissonArrivals` — i.i.d. exponential gaps; the memoryless
  baseline.
* :class:`DiurnalArrivals` — inhomogeneous Poisson with a sinusoidal
  rate ``λ(t) = rate · (1 + amplitude · sin(2πt/period_s))``: the
  day/night load curve, compressed to ``period_s`` seconds.  Sampled by
  thinning against the peak rate, so the time stamps are exact.
* :class:`BurstyArrivals` — Markov-modulated on/off: exponential ON
  periods (Poisson arrivals at ``rate / duty``) alternate with
  exponential OFF periods (silence), where ``duty = on_s/(on_s+off_s)``.
  Long-tailed queue build-up without changing the mean rate.

``make_arrivals`` is the registry the CLI / bench ``--arrival`` flag
resolves through (``"closed"`` is not here: it selects the closed-loop
client, which has no arrival process).
"""

from __future__ import annotations

import numpy as np

from ..em.errors import ConfigurationError

__all__ = [
    "ARRIVALS",
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "make_arrivals",
]


class ArrivalProcess:
    """Base class: a seeded generator of virtual arrival times.

    Subclasses implement :meth:`times`, returning a nondecreasing
    ``float64`` array of ``n`` seconds with long-run mean rate
    :attr:`rate` (ops/sec).  Construction validates ``rate > 0``.
    """

    name = "arrivals"

    def __init__(self, rate: float, *, seed: int = 0) -> None:
        if not rate > 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)
        self.seed = seed

    def times(self, n: int) -> np.ndarray:
        raise NotImplementedError

    def _check(self, n: int) -> None:
        if n < 0:
            raise ConfigurationError(f"op count must be non-negative, got {n}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rate={self.rate}, seed={self.seed})"


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals: i.i.d. ``Exp(rate)`` gaps."""

    name = "poisson"

    def times(self, n: int) -> np.ndarray:
        self._check(n)
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(scale=1.0 / self.rate, size=n)
        return np.cumsum(gaps)


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal-rate Poisson: ``λ(t) = rate · (1 + a · sin(2πt/T))``.

    ``amplitude`` must lie in ``[0, 1)`` so the rate stays positive.
    Implemented by thinning a homogeneous process at the peak rate
    ``rate · (1 + amplitude)``: candidates are kept with probability
    ``λ(t)/λ_peak``, which yields the exact inhomogeneous process.
    """

    name = "diurnal"

    def __init__(
        self,
        rate: float,
        *,
        seed: int = 0,
        amplitude: float = 0.5,
        period_s: float = 60.0,
    ) -> None:
        super().__init__(rate, seed=seed)
        if not 0 <= amplitude < 1:
            raise ConfigurationError(
                f"diurnal amplitude must be in [0, 1), got {amplitude}"
            )
        if not period_s > 0:
            raise ConfigurationError(f"period_s must be positive, got {period_s}")
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)

    def times(self, n: int) -> np.ndarray:
        self._check(n)
        rng = np.random.default_rng(self.seed)
        peak = self.rate * (1.0 + self.amplitude)
        out = np.empty(n, dtype=np.float64)
        have = 0
        t = 0.0
        # Thinning in chunks: draw candidate gaps at the peak rate, keep
        # each candidate with probability λ(t)/peak.
        chunk = max(1024, int(n * (1.0 + self.amplitude)))
        while have < n:
            cand = t + np.cumsum(rng.exponential(scale=1.0 / peak, size=chunk))
            lam = self.rate * (
                1.0 + self.amplitude * np.sin(2.0 * np.pi * cand / self.period_s)
            )
            keep = cand[rng.random(chunk) * peak < lam]
            take = min(n - have, len(keep))
            out[have : have + take] = keep[:take]
            have += take
            t = cand[-1]
        return out


class BurstyArrivals(ArrivalProcess):
    """Markov-modulated on/off arrivals at long-run mean ``rate``.

    Alternating exponential ON (mean ``on_s``) and OFF (mean ``off_s``)
    periods; arrivals are Poisson at ``rate / duty`` during ON and
    silent during OFF, so the time-average rate is exactly ``rate``
    while the instantaneous rate is ``1/duty``× higher — the
    self-similar burst shape that stresses a bounded queue.
    """

    name = "bursty"

    def __init__(
        self,
        rate: float,
        *,
        seed: int = 0,
        on_s: float = 0.5,
        off_s: float = 0.5,
    ) -> None:
        super().__init__(rate, seed=seed)
        if not on_s > 0 or not off_s >= 0:
            raise ConfigurationError(
                f"burst periods must satisfy on_s > 0, off_s >= 0, "
                f"got on_s={on_s}, off_s={off_s}"
            )
        self.on_s = float(on_s)
        self.off_s = float(off_s)

    @property
    def duty(self) -> float:
        return self.on_s / (self.on_s + self.off_s)

    def times(self, n: int) -> np.ndarray:
        self._check(n)
        rng = np.random.default_rng(self.seed)
        burst_rate = self.rate / self.duty
        parts: list[np.ndarray] = []
        have = 0
        t = 0.0
        while have < n:
            on = rng.exponential(self.on_s)
            # Arrivals inside this ON period, truncated at its end.
            k = rng.poisson(burst_rate * on)
            if k:
                stamps = t + np.sort(rng.random(min(k, n - have))) * on
                parts.append(stamps)
                have += len(stamps)
            t += on
            if self.off_s > 0:
                t += rng.exponential(self.off_s)
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)


#: Arrival-process registry, keyed by the CLI/bench ``--arrival`` names.
ARRIVALS = {
    "poisson": PoissonArrivals,
    "diurnal": DiurnalArrivals,
    "bursty": BurstyArrivals,
}


def make_arrivals(kind: str, rate: float, *, seed: int = 0, **kwargs) -> ArrivalProcess:
    """Build an arrival process by registry name."""
    try:
        cls = ARRIVALS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown arrival process {kind!r}; choose from {sorted(ARRIVALS)}"
        ) from None
    return cls(rate, seed=seed, **kwargs)
