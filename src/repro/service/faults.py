"""Deterministic fault injection and the crash-recovery chaos harness.

Three decorators over the storage/journal layers, all driven by seeded
schedules so every failure is exactly reproducible:

* :class:`FaultInjectingBackend` — wraps any
  :class:`~repro.em.backends.StorageBackend`; raises
  :class:`~repro.em.errors.StorageFault` at scheduled backend-op
  indices (transient, in bursts), and :class:`~repro.em.errors.SimulatedCrash`
  at a scheduled hard crash point — tearing multi-record writes first,
  so the abandoned live state is genuinely inconsistent.
* :class:`RetryingBackend` — the healing side: bounded
  retry-with-exponential-backoff around every faultable primitive,
  raising :class:`~repro.em.errors.RetryExhausted` when the burst
  outlives the retry budget.  Retries happen *below* the disk's
  charging layer, so a healed fault never perturbs the I/O ledgers —
  the accounting the paper's bounds are checked against.
* :class:`CrashingJournal` — crashes the write-ahead journal itself at
  a scheduled epoch's append (leaving a torn record) or commit (epoch
  executed but never marked durable).

:func:`run_crash_matrix` composes them into the chaos harness: one
uninterrupted golden run, then one crash-and-recover run per crash
point (every epoch's append and commit boundary plus sampled
intra-epoch backend-op indices), each asserting the recovered service
finishes the trace with **bit-identical** layout, lookup results,
per-shard and cluster ledgers, sizes, and memory peaks.
"""

from __future__ import annotations

import contextlib
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..em.backends import StorageBackend
from ..em.block import Block
from ..em.errors import RetryExhausted, SimulatedCrash, StorageFault
from .journal import EpochJournal
from .recovery import recover, snapshot_service
from .service import DictionaryService

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "ChaosOutcome",
    "ChaosReport",
    "CrashPoint",
    "CrashingJournal",
    "FaultClock",
    "FaultInjectingBackend",
    "FaultSchedule",
    "OverloadChaosReport",
    "RetryPolicy",
    "RetryingBackend",
    "ShardBreakerBoard",
    "run_crash_matrix",
    "run_overload_chaos",
]


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------


class FaultClock:
    """A monotone counter of faultable backend primitives.

    Shared by every shard's :class:`FaultInjectingBackend` so a single
    op index identifies one global point in the execution — which is
    only deterministic under the ``serial`` executor (the chaos harness
    requires it).
    """

    def __init__(self) -> None:
        self.ops = 0

    def tick(self) -> int:
        self.ops += 1
        return self.ops


@dataclass(frozen=True)
class FaultSchedule:
    """Seeded, deterministic plan of faults against one clock.

    ``read_faults`` / ``write_faults`` map a clock index to a *burst
    length*: starting at that primitive invocation, the next ``burst``
    invocations of that kind fail before the device heals.  A burst no
    longer than the retry budget is healed invisibly; a longer one
    surfaces as :class:`~repro.em.errors.RetryExhausted`.
    ``crash_at_op`` is a hard crash: the first faultable primitive at or
    past that index raises :class:`~repro.em.errors.SimulatedCrash`
    (after tearing the write, when it was a multi-record write).
    """

    read_faults: dict[int, int] = field(default_factory=dict)
    write_faults: dict[int, int] = field(default_factory=dict)
    crash_at_op: int | None = None

    @classmethod
    def sample(
        cls,
        seed: int,
        ops: int,
        *,
        read_sites: int = 4,
        write_sites: int = 4,
        burst: int = 2,
        crash_at_op: int | None = None,
    ) -> "FaultSchedule":
        """Sample distinct fault sites uniformly over ``[1, ops]``."""
        rng = np.random.default_rng(seed)

        def pick(k: int) -> dict[int, int]:
            if ops < 1 or k < 1:
                return {}
            sites = rng.choice(np.arange(1, ops + 1), size=min(k, ops), replace=False)
            return {int(i): burst for i in sites}

        return cls(
            read_faults=pick(read_sites),
            write_faults=pick(write_sites),
            crash_at_op=crash_at_op,
        )


# ---------------------------------------------------------------------------
# Fault-injecting backend decorator
# ---------------------------------------------------------------------------


class FaultInjectingBackend(StorageBackend):
    """Injects scheduled faults into another backend's primitives.

    Read-faultable primitives: ``fetch``, ``records``, ``records_arr``,
    ``contains_key``.  Write-faultable: ``commit``, ``append``,
    ``replace``, ``drain``, ``remove_key``.  Metadata/lifecycle calls
    (``create``, ``delete``, ``length`` ...) pass through untouched —
    faults model the data path, not the allocator.
    """

    name = "fault-injecting"

    def __init__(
        self,
        inner: StorageBackend,
        *,
        clock: FaultClock | None = None,
        schedule: FaultSchedule | None = None,
        trace: list[str] | None = None,
    ) -> None:
        super().__init__(inner.b, inner.record_words)
        self.inner = inner
        self.clock = clock if clock is not None else FaultClock()
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.trace = trace
        self.injected = 0
        self._pending = {"read": 0, "write": 0}

    def _tick(self, kind: str, block_id: int, torn=None) -> None:
        op = self.clock.tick()
        if self.trace is not None:
            # op indices start at 1, so trace[op - 1] is this op's kind;
            # harnesses use the log to aim faults at real read/write ops.
            self.trace.append(kind)
        sched = self.schedule
        if sched.crash_at_op is not None and op >= sched.crash_at_op:
            if torn is not None:
                # Tear the write: a prefix of the records lands, the
                # rest never does — the abandoned state is inconsistent
                # and recovery must not look at it.
                with contextlib.suppress(Exception):
                    torn()
            raise SimulatedCrash(
                f"hard crash at backend op {op} ({kind} on block {block_id})"
            )
        table = sched.read_faults if kind == "read" else sched.write_faults
        burst = table.get(op, 0)
        if burst:
            self._pending[kind] = max(self._pending[kind], burst)
        if self._pending[kind] > 0:
            self._pending[kind] -= 1
            self.injected += 1
            raise StorageFault(
                f"injected transient {kind} fault on block {block_id} (op {op})"
            )

    # -- read-faultable -------------------------------------------------------

    def fetch(self, block_id: int) -> Block:
        self._tick("read", block_id)
        return self.inner.fetch(block_id)

    def records(self, block_id: int) -> list[int]:
        self._tick("read", block_id)
        return self.inner.records(block_id)

    def records_arr(self, block_id: int) -> np.ndarray:
        self._tick("read", block_id)
        return self.inner.records_arr(block_id)

    def contains_key(self, block_id: int, key: int) -> bool:
        self._tick("read", block_id)
        return self.inner.contains_key(block_id, key)

    # -- write-faultable ------------------------------------------------------

    def commit(self, block_id: int, block: Block, *, copy: bool = False) -> None:
        self._tick("write", block_id)
        self.inner.commit(block_id, block, copy=copy)

    def append(self, block_id: int, items: list[int]) -> None:
        torn = None
        if len(items) > 1:
            torn = lambda: self.inner.append(block_id, items[: len(items) // 2])
        self._tick("write", block_id, torn=torn)
        self.inner.append(block_id, items)

    def replace(self, block_id: int, items: list[int]) -> None:
        torn = None
        if len(items) > 1:
            torn = lambda: self.inner.replace(block_id, items[: len(items) // 2])
        self._tick("write", block_id, torn=torn)
        self.inner.replace(block_id, items)

    def drain(self, block_id: int) -> list[int]:
        self._tick("write", block_id)
        return self.inner.drain(block_id)

    def remove_key(self, block_id: int, key: int) -> bool:
        self._tick("write", block_id)
        return self.inner.remove_key(block_id, key)

    # -- untouched pass-through ----------------------------------------------

    def create(self, block_id: int, *, record_words: int | None = None) -> None:
        self.inner.create(block_id, record_words=record_words)

    def create_many(self, block_ids, *, record_words: int | None = None) -> None:
        self.inner.create_many(block_ids, record_words=record_words)

    def delete(self, block_id: int) -> None:
        self.inner.delete(block_id)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self.inner

    def length(self, block_id: int) -> int:
        return self.inner.length(block_id)

    def is_fresh(self, block_id: int) -> bool:
        return self.inner.is_fresh(block_id)

    def ids(self) -> list[int]:
        return self.inner.ids()

    def count(self) -> int:
        return self.inner.count()

    def nonempty(self) -> int:
        return self.inner.nonempty()

    def words_stored(self) -> int:
        return self.inner.words_stored()


# ---------------------------------------------------------------------------
# Retry-with-backoff decorator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``backoff_s · 2^(attempt-1)``, capped."""

    max_retries: int = 4
    backoff_s: float = 0.0005
    max_backoff_s: float = 0.008

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        return min(self.backoff_s * (2 ** (attempt - 1)), self.max_backoff_s)


class RetryingBackend(StorageBackend):
    """Heals transient :class:`StorageFault`\\ s with bounded retries.

    Sits between the disk and a (possibly faulty) inner backend.  The
    disk charges an I/O only after the primitive returns, so healed
    retries are invisible to the ledgers — fault-free and healed runs
    produce bit-identical :class:`~repro.em.iostats.IOStats`.
    :class:`SimulatedCrash` is *not* retried (the process is dead), and
    a burst outliving ``policy.max_retries`` raises
    :class:`~repro.em.errors.RetryExhausted` naming the block.
    """

    name = "retrying"

    def __init__(
        self,
        inner: StorageBackend,
        *,
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__(inner.b, inner.record_words)
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self._sleep = sleep
        self.retries = 0
        self.total_backoff_s = 0.0

    def _call(self, block_id: int, fn, *args, **kwargs):
        policy = self.policy
        last: StorageFault | None = None
        for attempt in range(policy.max_retries + 1):
            try:
                return fn(*args, **kwargs)
            except RetryExhausted:
                raise
            except StorageFault as exc:
                last = exc
                if attempt == policy.max_retries:
                    break
                self.retries += 1
                delay = policy.delay(attempt + 1)
                self.total_backoff_s += delay
                if delay > 0:
                    self._sleep(delay)
        raise RetryExhausted(
            f"block {block_id}: gave up after {policy.max_retries} retries: {last}"
        ) from last

    def fetch(self, block_id: int) -> Block:
        return self._call(block_id, self.inner.fetch, block_id)

    def records(self, block_id: int) -> list[int]:
        return self._call(block_id, self.inner.records, block_id)

    def records_arr(self, block_id: int) -> np.ndarray:
        return self._call(block_id, self.inner.records_arr, block_id)

    def contains_key(self, block_id: int, key: int) -> bool:
        return self._call(block_id, self.inner.contains_key, block_id, key)

    def commit(self, block_id: int, block: Block, *, copy: bool = False) -> None:
        return self._call(block_id, self.inner.commit, block_id, block, copy=copy)

    def append(self, block_id: int, items: list[int]) -> None:
        return self._call(block_id, self.inner.append, block_id, items)

    def replace(self, block_id: int, items: list[int]) -> None:
        return self._call(block_id, self.inner.replace, block_id, items)

    def drain(self, block_id: int) -> list[int]:
        return self._call(block_id, self.inner.drain, block_id)

    def remove_key(self, block_id: int, key: int) -> bool:
        return self._call(block_id, self.inner.remove_key, block_id, key)

    # -- untouched pass-through ----------------------------------------------

    def create(self, block_id: int, *, record_words: int | None = None) -> None:
        self.inner.create(block_id, record_words=record_words)

    def create_many(self, block_ids, *, record_words: int | None = None) -> None:
        self.inner.create_many(block_ids, record_words=record_words)

    def delete(self, block_id: int) -> None:
        self.inner.delete(block_id)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self.inner

    def length(self, block_id: int) -> int:
        return self.inner.length(block_id)

    def is_fresh(self, block_id: int) -> bool:
        return self.inner.is_fresh(block_id)

    def ids(self) -> list[int]:
        return self.inner.ids()

    def count(self) -> int:
        return self.inner.count()

    def nonempty(self) -> int:
        return self.inner.nonempty()

    def words_stored(self) -> int:
        return self.inner.words_stored()


# ---------------------------------------------------------------------------
# Per-shard circuit breakers
# ---------------------------------------------------------------------------


BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN = "closed", "open", "half-open"


class ShardBreakerBoard:
    """Per-shard circuit breakers: quarantine a faulting shard, probe back.

    The classic three-state machine, one per shard, driven entirely by
    an external clock so every transition is deterministic:

    * **closed** — healthy; ``threshold`` consecutive recorded failures
      trip the breaker **open**;
    * **open** — quarantined: :meth:`blocked` is ``True`` until
      ``cooldown`` clock units have passed since the trip, at which
      point the breaker turns **half-open**;
    * **half-open** — one probe is let through (:meth:`blocked` returns
      ``False``); a recorded success closes the breaker, a recorded
      failure re-opens it and restarts the cooldown.

    The clock is whatever the caller supplies per call — the open-loop
    client passes its virtual ``now`` (seconds), the deterministic
    tests pass a seeded :class:`FaultClock`'s op counter.  The board
    never reads wall time.
    """

    def __init__(self, shards: int, *, threshold: int = 3, cooldown: float = 1.0) -> None:
        if shards <= 0:
            raise ValueError(f"shard count must be positive, got {shards}")
        if threshold <= 0:
            raise ValueError(f"failure threshold must be positive, got {threshold}")
        if not cooldown > 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.shards = shards
        self.threshold = threshold
        self.cooldown = cooldown
        self._state = [BREAKER_CLOSED] * shards
        self._failures = [0] * shards
        self._opened_at = [0.0] * shards
        self.trips = 0
        self.recoveries = 0
        #: Optional observer ``(shard, old_state, new_state, now)`` fired
        #: on every state change (the open-loop client wires this to the
        #: trace recorder's ``breaker`` events).  Purely observational:
        #: the machine never reads it.
        self.on_transition = None

    def state(self, shard: int) -> str:
        return self._state[shard]

    def _transition(self, shard: int, new: str, now: float) -> None:
        old = self._state[shard]
        if old == new:
            return
        self._state[shard] = new
        if self.on_transition is not None:
            self.on_transition(shard, old, new, now)

    def blocked(self, shard: int, now: float) -> bool:
        """Is the shard quarantined at clock value ``now``?

        Transitions open → half-open as a side effect once the cooldown
        has elapsed (the half-open probe is then admitted).
        """
        if self._state[shard] == BREAKER_OPEN:
            # Same expression as reopen_at(): a caller that advances its
            # clock to exactly reopen_at(s) must see the probe admitted
            # (``now - opened >= cooldown`` can fail to that by one ulp).
            if now >= self._opened_at[shard] + self.cooldown:
                self._transition(shard, BREAKER_HALF_OPEN, now)
                return False
            return True
        return False

    def reopen_at(self, shard: int) -> float:
        """Clock value at which an open shard turns half-open (probe time)."""
        return self._opened_at[shard] + self.cooldown

    def record_success(self, shard: int, now: float) -> None:
        if self._state[shard] == BREAKER_HALF_OPEN:
            self.recoveries += 1
        self._transition(shard, BREAKER_CLOSED, now)
        self._failures[shard] = 0

    def record_failure(self, shard: int, now: float) -> None:
        if self._state[shard] == BREAKER_HALF_OPEN:
            # The probe failed: straight back to quarantine.
            self._opened_at[shard] = now
            self._transition(shard, BREAKER_OPEN, now)
            self.trips += 1
            return
        self._failures[shard] += 1
        if self._state[shard] == BREAKER_CLOSED and self._failures[shard] >= self.threshold:
            self._opened_at[shard] = now
            self._transition(shard, BREAKER_OPEN, now)
            self.trips += 1

    def any_open(self) -> bool:
        return any(s != BREAKER_CLOSED for s in self._state)


# ---------------------------------------------------------------------------
# Crashing journal decorator
# ---------------------------------------------------------------------------


class CrashingJournal(EpochJournal):
    """An :class:`EpochJournal` that crashes at a scheduled epoch.

    ``crash_append_at=e`` tears epoch ``e``'s OPS record: a prefix of
    the record bytes lands on disk, then the process dies — scan must
    discard it.  ``crash_commit_at=e`` dies after epoch ``e`` executed
    but before its COMMIT marker — recovery must discard and re-run the
    fully-executed epoch.
    """

    def __init__(
        self,
        path,
        *,
        crash_append_at: int | None = None,
        crash_commit_at: int | None = None,
        **kwargs,
    ) -> None:
        super().__init__(path, **kwargs)
        self.crash_append_at = crash_append_at
        self.crash_commit_at = crash_commit_at

    def append_epoch(self, epoch, start, stop, kinds, keys) -> None:
        if epoch == self.crash_append_at:
            record = self.encode_ops(epoch, start, stop, kinds, keys)
            self._write(record[: max(1, len(record) // 3)])
            raise SimulatedCrash(f"hard crash mid-append of epoch {epoch}")
        super().append_epoch(epoch, start, stop, kinds, keys)

    def commit(self, epoch, start, stop) -> None:
        if epoch == self.crash_commit_at:
            raise SimulatedCrash(f"hard crash before commit of epoch {epoch}")
        super().commit(epoch, start, stop)


# ---------------------------------------------------------------------------
# The chaos harness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashPoint:
    """One scheduled crash: at a journal boundary or a backend op index."""

    kind: str  # "journal-append" | "journal-commit" | "backend-op"
    index: int

    def __str__(self) -> str:
        return f"{self.kind}@{self.index}"


@dataclass(frozen=True)
class ChaosOutcome:
    point: CrashPoint
    crashed: bool
    replayed_epochs: int
    discarded_ops: int
    retries: int


@dataclass(frozen=True)
class ChaosReport:
    """One golden run + one verified recovery per crash point."""

    outcomes: list[ChaosOutcome]
    epochs: int
    backend_ops: int

    @property
    def points(self) -> int:
        return len(self.outcomes)

    @property
    def crashes(self) -> int:
        return sum(1 for o in self.outcomes if o.crashed)

    @property
    def retries(self) -> int:
        return sum(o.retries for o in self.outcomes)


@dataclass(frozen=True)
class _Golden:
    cluster: tuple
    shards: list[tuple]
    blocks: dict
    memory_items: frozenset
    sizes: list[int]
    peak: int
    found: np.ndarray


def _ledger_tuple(snap) -> tuple:
    return (snap.reads, snap.writes, snap.combined, snap.allocations)


def _drive(
    svc: DictionaryService,
    kinds: np.ndarray,
    keys: np.ndarray,
    window: int,
    start: int = 0,
) -> None:
    """Submit the trace window by window, aligned to the global grid.

    Alignment is what makes recovery bit-identical: epochs cannot span
    ``run()`` calls, so a resumed client must cut its windows at the
    same global positions the original client did.
    """
    n = len(kinds)
    pos = start
    while pos < n:
        hi = min(n, (pos // window + 1) * window)
        svc.run(kinds[pos:hi], keys[pos:hi])
        pos = hi


def _observe(svc: DictionaryService, probe_keys: np.ndarray) -> _Golden:
    """Capture every compared observable; ledgers before the probes."""
    cluster = _ledger_tuple(svc.io_snapshot())
    shards = [_ledger_tuple(s) for s in svc.shard_io_snapshots()]
    layout = svc.layout_snapshot()
    sizes = svc.shard_sizes()
    peak = svc.memory_high_water()
    probe = svc.run(
        np.ones(len(probe_keys), dtype=np.uint8), probe_keys  # all lookups
    )
    return _Golden(
        cluster=cluster,
        shards=shards,
        blocks=dict(layout.blocks),
        memory_items=layout.memory_items,
        sizes=sizes,
        peak=peak,
        found=probe.lookup_found.copy(),
    )


def _compare(golden: _Golden, got: _Golden, point: CrashPoint) -> None:
    checks = [
        ("cluster ledger", golden.cluster, got.cluster),
        ("shard ledgers", golden.shards, got.shards),
        ("layout blocks", golden.blocks, got.blocks),
        ("memory items", golden.memory_items, got.memory_items),
        ("shard sizes", golden.sizes, got.sizes),
        ("memory peak", golden.peak, got.peak),
    ]
    for what, want, have in checks:
        if want != have:
            raise AssertionError(
                f"[{point}] recovered {what} diverged:\n  want {want}\n  have {have}"
            )
    if not np.array_equal(golden.found, got.found):
        diff = int(np.sum(golden.found != got.found))
        raise AssertionError(
            f"[{point}] recovered lookup results diverged on {diff} probe keys"
        )


def run_crash_matrix(
    make_service: Callable[[], DictionaryService],
    kinds: np.ndarray,
    keys: np.ndarray,
    *,
    window: int,
    sample_ops: int = 8,
    seed: int = 0,
    fault_sites: int = 3,
    fault_burst: int = 2,
    retry_policy: RetryPolicy | None = None,
    workdir: str | Path | None = None,
) -> ChaosReport:
    """Crash everywhere, recover every time, assert bit-identity.

    ``make_service`` must build a *fresh, identical, serial-executor*
    service on every call (determinism of the comparison depends on
    it).  The matrix covers every epoch's journal append and commit
    boundary plus ``sample_ops`` seeded intra-epoch backend-op indices;
    every leg also carries seeded transient read/write faults (bursts
    within the retry budget) to prove healing leaves the accounting
    untouched.
    """
    kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    policy = retry_policy if retry_policy is not None else RetryPolicy()
    if fault_burst > policy.max_retries:
        raise ValueError(
            f"fault_burst {fault_burst} exceeds the retry budget "
            f"{policy.max_retries}; transient faults would not heal"
        )
    probe_keys = np.unique(keys)

    # Golden uninterrupted run — wrapped with a pass-through injector so
    # the same decorator stack is in place while we count backend ops.
    golden_svc = make_service()
    clock = FaultClock()
    for sub in golden_svc._contexts:
        sub.disk.backend = FaultInjectingBackend(sub.disk.backend, clock=clock)
    _drive(golden_svc, kinds, keys, window)
    backend_ops = clock.ops
    epochs = golden_svc.epochs_run
    golden = _observe(golden_svc, probe_keys)
    golden_svc.close()

    points = [
        CrashPoint(kind, e)
        for e in range(epochs)
        for kind in ("journal-append", "journal-commit")
    ]
    if backend_ops > 0 and sample_ops > 0:
        rng = np.random.default_rng(seed)
        sampled = rng.choice(
            np.arange(1, backend_ops + 1),
            size=min(sample_ops, backend_ops),
            replace=False,
        )
        points += [CrashPoint("backend-op", int(i)) for i in np.sort(sampled)]

    own_workdir = workdir is None
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-")) if own_workdir else Path(workdir)
    outcomes: list[ChaosOutcome] = []
    try:
        for k, point in enumerate(points):
            leg = workdir / f"leg{k:03d}"
            leg.mkdir(parents=True, exist_ok=True)
            snap, jpath = leg / "snapshot.pkl", leg / "journal.bin"

            svc = make_service()
            snapshot_service(svc, snap)  # the t=0 checkpoint
            schedule = FaultSchedule.sample(
                seed + 1000 + k,
                backend_ops,
                read_sites=fault_sites,
                write_sites=fault_sites,
                burst=fault_burst,
                crash_at_op=point.index if point.kind == "backend-op" else None,
            )
            leg_clock = FaultClock()
            retriers = []
            for sub in svc._contexts:
                faulty = FaultInjectingBackend(
                    sub.disk.backend, clock=leg_clock, schedule=schedule
                )
                retrier = RetryingBackend(faulty, policy=policy, sleep=lambda s: None)
                sub.disk.backend = retrier
                retriers.append(retrier)
            if point.kind == "journal-append":
                svc.journal = CrashingJournal(jpath, crash_append_at=point.index)
            elif point.kind == "journal-commit":
                svc.journal = CrashingJournal(jpath, crash_commit_at=point.index)
            else:
                svc.journal = EpochJournal(jpath)

            crashed = False
            try:
                _drive(svc, kinds, keys, window)
            except SimulatedCrash:
                crashed = True
            retries = sum(r.retries for r in retriers)
            svc.journal.close()
            svc.close()
            del svc  # the dead process: never consulted again

            rep = recover(snap, jpath, executor="serial")
            _drive(rep.service, kinds, keys, window, start=rep.committed_through)
            got = _observe(rep.service, probe_keys)
            _compare(golden, got, point)
            rep.service.journal.close()
            rep.service.close()
            outcomes.append(
                ChaosOutcome(
                    point=point,
                    crashed=crashed,
                    replayed_epochs=rep.replayed_epochs,
                    discarded_ops=rep.discarded_ops,
                    retries=retries,
                )
            )
    finally:
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    return ChaosReport(outcomes=outcomes, epochs=epochs, backend_ops=backend_ops)


# ---------------------------------------------------------------------------
# Overload chaos: fault bursts under saturating arrivals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OverloadChaosReport:
    """One saturated, fault-injected open-loop run, fully accounted."""

    ops: int
    executed: int
    rejected: int
    shed: int
    expired: int
    breaker_trips: int
    breaker_recoveries: int
    retries: int
    faults_injected: int

    @property
    def accounted(self) -> int:
        return self.executed + self.rejected + self.shed + self.expired


def run_overload_chaos(
    make_service: Callable[[], DictionaryService],
    kinds: np.ndarray,
    keys: np.ndarray,
    *,
    service_rate: float,
    rate_factor: float = 1.5,
    queue_depth: int = 2048,
    policy: str = "shed",
    seed: int = 0,
    fault_sites: int = 2,
    fault_burst: int = 12,
    breaker_threshold: int = 1,
    cooldown_s: float = 0.05,
    retry_policy: RetryPolicy | None = None,
) -> OverloadChaosReport:
    """Saturate a service, burst-fault its shards, account every op.

    The degradation sibling of :func:`run_crash_matrix`: instead of
    killing the process, the schedule injects fault *bursts that outlive
    the retry budget* (``fault_burst > max_retries``), so
    :class:`~repro.em.errors.RetryExhausted` surfaces from a shard, the
    per-shard breaker trips, and the open-loop client must degrade
    gracefully — healthy shards keep executing, quarantined-shard ops
    wait behind the breaker or are shed by the admission policy, and
    half-open probes re-admit the shard once the burst has drained.

    Offered load is a seeded Poisson process at ``rate_factor ×
    service_rate`` (saturating for any factor > 1) and the service-time
    model is the deterministic virtual rate, so the whole run — arrival
    times, shed decisions, breaker transitions — is exactly
    reproducible.  Asserted here: **no silent loss** (every op ends
    executed / rejected / shed / deadline-exceeded) and the executed
    subset is a program-order subsequence.
    """
    from .admission import (
        EXECUTED,
        EXPIRED,
        PENDING,
        REJECTED,
        SHED,
        AdmissionController,
    )
    from .client import OpenLoopClient
    from .traffic import PoissonArrivals

    kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    policy_r = retry_policy if retry_policy is not None else RetryPolicy()
    if fault_burst <= policy_r.max_retries:
        raise ValueError(
            f"fault_burst {fault_burst} must exceed the retry budget "
            f"{policy_r.max_retries}, or no fault ever surfaces to the breaker"
        )

    # Dry run (no faults) to learn which backend-op indices are reads
    # vs writes, exactly like run_crash_matrix's golden pass.  Sampling
    # sites from the recorded kind log (rather than blind indices à la
    # FaultSchedule.sample) guarantees the first scheduled site actually
    # fires: the chaos leg replays identically up to that point.
    probe_svc = make_service()
    clock = FaultClock()
    op_log: list[str] = []
    for sub in probe_svc._contexts:
        sub.disk.backend = FaultInjectingBackend(
            sub.disk.backend, clock=clock, trace=op_log
        )
    arrivals = PoissonArrivals(rate_factor * service_rate, seed=seed + 1)
    controller = AdmissionController(queue_depth=queue_depth, policy=policy)
    OpenLoopClient(
        probe_svc, arrivals, controller=controller, service_rate=service_rate
    ).drive(kinds, keys)
    probe_svc.close()

    # The chaos leg: same trace, same arrivals, now with fault bursts
    # long enough to defeat the retrier, plus the breaker board.
    rng = np.random.default_rng(seed + 2)
    reads = [i + 1 for i, k in enumerate(op_log) if k == "read"]
    writes = [i + 1 for i, k in enumerate(op_log) if k == "write"]
    if not reads and not writes:
        raise ValueError(
            "dry run performed no backend ops (the stream fits in memory "
            "buffers) — nothing to fault; grow the stream or shrink m"
        )

    def _sites(pool: list[int], count: int) -> dict[int, int]:
        if not pool or count <= 0:
            return {}
        picks = rng.choice(len(pool), size=min(count, len(pool)), replace=False)
        return {pool[int(i)]: fault_burst for i in picks}

    schedule = FaultSchedule(
        read_faults=_sites(reads, fault_sites),
        write_faults=_sites(writes, fault_sites),
    )
    svc = make_service()
    leg_clock = FaultClock()
    retriers, injectors = [], []
    for sub in svc._contexts:
        faulty = FaultInjectingBackend(
            sub.disk.backend, clock=leg_clock, schedule=schedule
        )
        retrier = RetryingBackend(faulty, policy=policy_r, sleep=lambda s: None)
        sub.disk.backend = retrier
        injectors.append(faulty)
        retriers.append(retrier)
    breaker = ShardBreakerBoard(
        svc.shards, threshold=breaker_threshold, cooldown=cooldown_s
    )
    client = OpenLoopClient(
        svc,
        PoissonArrivals(rate_factor * service_rate, seed=seed + 1),
        controller=AdmissionController(queue_depth=queue_depth, policy=policy),
        breaker=breaker,
        service_rate=service_rate,
    )
    report = client.drive(kinds, keys)
    svc.close()

    outcomes = client.outcomes
    if int(np.sum(outcomes == PENDING)) != 0:
        raise AssertionError(
            f"overload chaos lost ops: {int(np.sum(outcomes == PENDING))} "
            "left pending after the run"
        )
    counts = {
        "executed": int(np.sum(outcomes == EXECUTED)),
        "rejected": int(np.sum(outcomes == REJECTED)),
        "shed": int(np.sum(outcomes == SHED)),
        "expired": int(np.sum(outcomes == EXPIRED)),
    }
    if sum(counts.values()) != len(kinds):
        raise AssertionError(f"overload accounting does not conserve: {counts}")
    if report.shed != counts["shed"] or report.rejected != counts["rejected"]:
        raise AssertionError("client report disagrees with outcome array")
    # Quarantine may delay one shard's ops past another's, but each
    # shard's stream must still execute in program order (same-key ops
    # share a shard, so this is the per-key ordering guarantee).
    order = np.asarray(client.executed_order, dtype=np.int64)
    if svc.shards == 1:
        shard_arr = np.zeros(len(keys), dtype=np.int64)
    else:
        shard_arr = svc.directory.shards_of(keys)
    for s in range(svc.shards):
        sub = order[shard_arr[order] == s]
        if len(sub) > 1 and not bool(np.all(np.diff(sub) > 0)):
            raise AssertionError(
                f"shard {s} executed ops out of program order under quarantine"
            )
    return OverloadChaosReport(
        ops=len(kinds),
        **counts,
        breaker_trips=breaker.trips,
        breaker_recoveries=breaker.recoveries,
        retries=sum(r.retries for r in retriers),
        faults_injected=sum(i.injected for i in injectors),
    )
