"""Admission control: the bounded queue between arrivals and epochs.

When offered load exceeds capacity, *something* has to give.  This
module makes that something explicit and accounted: every op submitted
to an open-loop run ends in exactly one of five outcomes —

* :data:`EXECUTED` — admitted, dispatched, ran through the service;
* :data:`REJECTED` — refused at arrival because the queue was full and
  the policy rejects (:class:`~repro.em.errors.ServiceOverloadError`
  in strict mode);
* :data:`SHED` — evicted from the queue (or refused at arrival) by the
  load-shedding policy to make room for higher-priority work;
* :data:`EXPIRED` — admitted but its per-op deadline passed before the
  service got to it (``deadline_exceeded`` in reports);
* :data:`PENDING` — not yet decided (transient; never in a final
  report).

**No silent loss**: ``executed + rejected + shed + expired == n`` is an
invariant the tests and the chaos harness assert.

The queue (:class:`AdmissionQueue`) holds op *indices* in program
order, bucketed per op kind so the shedding policy can evict the
oldest op of the most-sheddable kind in O(1).  Dispatch merges the
kind buckets back into ascending-index order, so the executed subset
is always a program-order subsequence of the offered stream — shedding
only deletes ops, it never reorders them.

Policies (:class:`AdmissionController`, ``--shed-policy``):

* ``"reject"`` — arriving ops beyond the high-water mark are refused;
  queued work is never touched.
* ``"shed"`` — make room by evicting the oldest queued op of the first
  kind in ``shed_order`` (default: lookups before inserts before
  deletes).  If the arriving op's own kind sheds no later than the
  best queued victim's, the arrival itself is shed instead — shedding
  never evicts higher-priority work for lower.
* ``"adapt"`` — admit everything the depth bound allows, but shrink
  the dispatch batch (the effective ``epoch_ops``) while the queue is
  above the high-water mark so the service turns around faster, and
  grow it back once the queue drains below half the mark.  Overflow
  beyond ``queue_depth`` still rejects (a bound is a bound).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..em.errors import ConfigurationError, ServiceOverloadError
from ..workloads.trace import OP_DELETE, OP_INSERT, OP_LOOKUP

__all__ = [
    "EXECUTED",
    "EXPIRED",
    "PENDING",
    "REJECTED",
    "SHED",
    "SHED_POLICIES",
    "AdmissionController",
    "AdmissionQueue",
    "OUTCOME_NAMES",
]

#: Per-op outcome codes (``uint8``), final unless :data:`PENDING`.
PENDING, EXECUTED, REJECTED, SHED, EXPIRED = 0, 1, 2, 3, 4

OUTCOME_NAMES = {
    PENDING: "pending",
    EXECUTED: "executed",
    REJECTED: "rejected",
    SHED: "shed",
    EXPIRED: "deadline_exceeded",
}

SHED_POLICIES = ("reject", "shed", "adapt")

_KIND_CODES = (OP_INSERT, OP_LOOKUP, OP_DELETE)


class AdmissionQueue:
    """Program-order op queue with O(1) evict-oldest-of-kind.

    Holds op indices bucketed per kind; each bucket is ascending (ops
    are pushed in arrival = program order), so a k-way merge over the
    bucket heads recovers global program order at dispatch time.
    """

    def __init__(self) -> None:
        self._by_kind: dict[int, deque[int]] = {k: deque() for k in _KIND_CODES}
        self._depth = 0

    def __len__(self) -> int:
        return self._depth

    def push(self, index: int, kind: int) -> None:
        self._by_kind[kind].append(index)
        self._depth += 1

    def evict_oldest(self, kind: int) -> int | None:
        """Pop the oldest queued op of ``kind`` (None if the bucket is empty)."""
        bucket = self._by_kind[kind]
        if not bucket:
            return None
        self._depth -= 1
        return bucket.popleft()

    def oldest_of(self, kind: int) -> int | None:
        bucket = self._by_kind[kind]
        return bucket[0] if bucket else None

    def peek_next(self) -> tuple[int, int] | None:
        """The globally oldest op as ``(index, kind)``, without popping."""
        best_kind = -1
        best = None
        for kind in _KIND_CODES:
            bucket = self._by_kind[kind]
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
                best_kind = kind
        return None if best is None else (best, best_kind)

    def pop_next(self) -> tuple[int, int] | None:
        """Pop the globally oldest op as ``(index, kind)`` (program order)."""
        best_kind = -1
        best = None
        for kind in _KIND_CODES:
            bucket = self._by_kind[kind]
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
                best_kind = kind
        if best is None:
            return None
        self._by_kind[best_kind].popleft()
        self._depth -= 1
        return best, best_kind


class AdmissionController:
    """Bounded admission with a pluggable overload policy.

    Parameters
    ----------
    queue_depth:
        Maximum queued ops (``None`` = unbounded; with no deadline
        either, the controller is *transparent* and the open-loop run
        is bit-identical to ``run_trace`` — see
        :class:`~repro.service.client.OpenLoopClient`).
    policy:
        One of :data:`SHED_POLICIES`.
    shed_order:
        Op kinds in shed-first order (default lookups, inserts,
        deletes: reads are retryable, writes carry state).
    deadline_s:
        Per-op deadline on the virtual clock: an op still queued when
        ``arrival + deadline_s`` passes is accounted :data:`EXPIRED`
        at dispatch time (lazy expiry), never executed.
    high_water:
        Depth at which the policy engages (default ``queue_depth``).
        Must satisfy ``0 < high_water <= queue_depth``.
    strict:
        With the ``reject`` policy, raise
        :class:`~repro.em.errors.ServiceOverloadError` instead of
        accounting the op — callers that prefer exceptions over
        bookkeeping (the CLI keeps this off and reports counts).
    min_batch:
        Floor of the adaptive dispatch-batch shrink (``adapt`` policy).
    """

    def __init__(
        self,
        *,
        queue_depth: int | None = None,
        policy: str = "reject",
        shed_order: tuple[int, ...] = (OP_LOOKUP, OP_INSERT, OP_DELETE),
        deadline_s: float | None = None,
        high_water: int | None = None,
        strict: bool = False,
        min_batch: int = 64,
    ) -> None:
        if queue_depth is not None and queue_depth <= 0:
            raise ConfigurationError(
                f"queue_depth must be positive (or None), got {queue_depth}"
            )
        if policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"unknown shed policy {policy!r}; choose from {SHED_POLICIES}"
            )
        if sorted(shed_order) != sorted(_KIND_CODES):
            raise ConfigurationError(
                f"shed_order must be a permutation of {_KIND_CODES}, got {shed_order}"
            )
        if deadline_s is not None and not deadline_s > 0:
            raise ConfigurationError(
                f"deadline_s must be positive (or None), got {deadline_s}"
            )
        if high_water is None:
            high_water = queue_depth
        if queue_depth is not None and not 0 < high_water <= queue_depth:
            raise ConfigurationError(
                f"high_water must satisfy 0 < high_water <= queue_depth, "
                f"got {high_water} vs {queue_depth}"
            )
        if min_batch <= 0:
            raise ConfigurationError(f"min_batch must be positive, got {min_batch}")
        self.queue_depth = queue_depth
        self.policy = policy
        self.shed_order = tuple(shed_order)
        self.deadline_s = deadline_s
        self.high_water = high_water
        self.strict = strict
        self.min_batch = min_batch
        #: Priority rank per kind: lower rank sheds first.
        self._rank = {kind: i for i, kind in enumerate(self.shed_order)}

    @property
    def transparent(self) -> bool:
        """No bound, no deadline: admission can never refuse or expire."""
        return self.queue_depth is None and self.deadline_s is None

    # -- arrival side --------------------------------------------------------

    def offer(
        self, queue: AdmissionQueue, index: int, kind: int, outcomes: np.ndarray
    ) -> None:
        """Admit op ``index`` or resolve it per the overload policy.

        Writes the op's outcome (and any shed victim's) into
        ``outcomes``; admitted ops stay :data:`PENDING` until dispatch.
        """
        if self.queue_depth is None or len(queue) < self.high_water:
            queue.push(index, kind)
            return
        if self.policy == "shed":
            victim_kind = self._best_victim(queue)
            if victim_kind is not None and self._rank[kind] > self._rank[victim_kind]:
                victim = queue.evict_oldest(victim_kind)
                outcomes[victim] = SHED
                queue.push(index, kind)
            else:
                # The arrival itself is the most sheddable op in sight.
                outcomes[index] = SHED
            return
        if self.policy == "adapt" and len(queue) < self.queue_depth:
            # Adapt admits up to the hard bound; the dispatch batch
            # shrink (batch_cap) is what relieves the pressure.
            queue.push(index, kind)
            return
        if self.strict:
            raise ServiceOverloadError(
                f"admission queue full ({len(queue)} >= {self.high_water}); "
                f"op {index} rejected"
            )
        outcomes[index] = REJECTED

    def _best_victim(self, queue: AdmissionQueue) -> int | None:
        """The kind whose oldest op sheds first, per ``shed_order``."""
        for kind in self.shed_order:
            if queue.oldest_of(kind) is not None:
                return kind
        return None

    # -- dispatch side -------------------------------------------------------

    def batch_cap(self, depth: int, epoch_ops: int, current: int) -> int:
        """The dispatch-batch size for this round (``adapt`` shrinks it).

        Halve while the queue sits above the high-water mark, double
        back (capped at ``epoch_ops``) once it drains below half of it
        — a deterministic AIMD-style governor on the virtual clock.
        """
        if self.policy != "adapt" or self.queue_depth is None:
            return epoch_ops
        if depth > self.high_water:
            return max(self.min_batch, current // 2)
        if depth < self.high_water // 2:
            return min(epoch_ops, current * 2)
        return current

    def expired(self, arrival_s: float, now_s: float) -> bool:
        """Has this op's deadline passed at would-be dispatch time ``now_s``?"""
        return self.deadline_s is not None and now_s > arrival_s + self.deadline_s
