"""Epoch coalescing: turn a mixed request stream into vectorized batches.

The service layer accepts an interleaved stream of insert / lookup /
delete requests (array-encoded: one ``uint8`` kind code and one
``uint64`` key per op — see :mod:`repro.workloads.trace`).  Executing it
op by op would forfeit everything the batch engine buys, so the stream
is coalesced into **epochs**: contiguous windows whose ops are regrouped
into one ``insert_batch`` + one ``delete_batch`` + one ``lookup_batch``
per shard.

Regrouping reorders ops *across kinds* inside a window, which is safe
exactly when no key is touched by two different kinds in the same
window — ops on distinct keys commute (an insert of ``x`` never changes
membership of ``y``), and same-kind ops on the same key keep their
relative order inside their batch (the batch APIs process keys in
sequence order).  The epoch builder enforces that precondition: a window
is cut wherever an op's key has already appeared in the current window
under a different kind.  The result is **conflict-aware, stable-order**
coalescing — every per-key observable (lookup results, delete results,
final contents) matches the program-order execution.

Conflict detection is vectorized: one stable argsort by key exposes every
adjacent same-key pair; pairs with differing kinds are the only places a
cut can be needed (any cross-kind pair in a window implies a cross-kind
*adjacent* pair in the key's occurrence chain between them), and the
greedy cut pass then runs over just those pairs — O(conflicts) Python
work for an n-op stream, plus the ``max_ops`` size cuts that bound batch
staging memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads.trace import OP_DELETE, OP_INSERT, OP_LOOKUP

__all__ = ["Epoch", "build_epochs"]


@dataclass(frozen=True)
class Epoch:
    """One coalesced window ``[start, stop)`` of the request stream.

    Keys are regrouped per kind in stream order; ``lookup_pos`` /
    ``delete_pos`` are the absolute stream positions of each batched op,
    so executors can scatter results back to arrival order.
    """

    start: int
    stop: int
    insert_keys: np.ndarray
    lookup_keys: np.ndarray
    lookup_pos: np.ndarray
    delete_keys: np.ndarray
    delete_pos: np.ndarray

    @property
    def ops(self) -> int:
        return self.stop - self.start


def conflict_bounds(
    kinds: np.ndarray, keys: np.ndarray, *, max_ops: int
) -> list[int]:
    """Epoch boundaries (ascending, including 0 and n).

    Greedy left-to-right segmentation: cut before op ``i`` whenever the
    current window already touched ``keys[i]`` under a different kind,
    or the window would exceed ``max_ops``.
    """
    n = len(kinds)
    if n == 0:
        return [0]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    same = sorted_keys[1:] == sorted_keys[:-1]
    prev_idx = order[:-1][same]
    cur_idx = order[1:][same]
    diff = kinds[prev_idx] != kinds[cur_idx]
    cur_conf = cur_idx[diff]
    prev_conf = prev_idx[diff]
    by_cur = np.argsort(cur_conf, kind="stable")
    pairs = zip(cur_conf[by_cur].tolist(), prev_conf[by_cur].tolist())

    bounds = [0]
    start = 0
    for cur, prev in pairs:
        while cur - start > max_ops:
            start += max_ops
            bounds.append(start)
        if prev >= start:
            bounds.append(cur)
            start = cur
    while n - start > max_ops:
        start += max_ops
        bounds.append(start)
    bounds.append(n)
    return bounds


def build_epochs(
    kinds: np.ndarray | list[int],
    keys: np.ndarray | list[int],
    *,
    max_ops: int = 8192,
) -> list[Epoch]:
    """Coalesce an encoded request stream into conflict-free epochs."""
    if max_ops <= 0:
        raise ValueError(f"max_ops must be positive, got {max_ops}")
    kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    if len(kinds) != len(keys):
        raise ValueError(
            f"kinds and keys must align: {len(kinds)} vs {len(keys)}"
        )
    bad = ~np.isin(kinds, (OP_INSERT, OP_LOOKUP, OP_DELETE))
    if bad.any():
        raise ValueError(f"unknown op code {int(kinds[bad][0])} in request stream")
    bounds = conflict_bounds(kinds, keys, max_ops=max_ops)
    epochs: list[Epoch] = []
    for lo, hi in zip(bounds, bounds[1:]):
        k = kinds[lo:hi]
        lookup_pos = np.flatnonzero(k == OP_LOOKUP) + lo
        delete_pos = np.flatnonzero(k == OP_DELETE) + lo
        epochs.append(
            Epoch(
                start=lo,
                stop=hi,
                insert_keys=keys[lo:hi][k == OP_INSERT],
                lookup_keys=keys[lookup_pos],
                lookup_pos=lookup_pos,
                delete_keys=keys[delete_pos],
                delete_pos=delete_pos,
            )
        )
    return epochs
