"""Closed-loop client simulator: throughput and per-op latency.

A **closed-loop** client keeps a fixed amount of work in flight: it
submits one window of requests, waits for the service to finish it, then
submits the next.  That is the standard load model for batch-amortized
systems — offered load adapts to service speed instead of queueing
unboundedly — and it gives a well-defined per-op latency:

    an op completes when the epoch it was coalesced into finishes, so
    its latency is the time from its window's submission to its epoch's
    completion (requests queue behind the earlier epochs of their own
    window).

Ops in the same epoch share a latency, so percentiles are computed
exactly from ``(latency, op_count)`` pairs — no per-op float array at
n = 10⁶.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..workloads.trace import OP_DELETE, OP_INSERT, OP_LOOKUP
from .service import DictionaryService

__all__ = ["ClientReport", "ClosedLoopClient"]


def _weighted_percentile(pairs: list[tuple[float, int]], q: float) -> float:
    """Exact percentile of a sample given as ``(value, multiplicity)``.

    Robust for degenerate samples: an empty list, zero total mass, or a
    single pair must yield a well-defined number (0.0 for no mass, the
    lone value otherwise) — a 0- or 1-op run reports honest percentiles
    instead of raising or returning garbage.
    """
    pairs = sorted((value, count) for value, count in pairs if count > 0)
    if not pairs:
        return 0.0
    q = min(max(q, 0.0), 100.0)
    total = sum(count for _, count in pairs)
    threshold = q / 100.0 * total
    cum = 0
    for value, count in pairs:
        cum += count
        if cum >= threshold:
            return value
    return pairs[-1][0]


@dataclass(frozen=True)
class ClientReport:
    """One closed-loop run: throughput plus the latency distribution."""

    ops: int
    inserts: int
    lookups: int
    deletes: int
    epochs: int
    seconds: float
    io_total: int
    p50_ms: float
    p99_ms: float
    max_ms: float

    @property
    def kops(self) -> float:
        """Throughput in thousands of ops per second."""
        return self.ops / self.seconds / 1e3 if self.seconds else 0.0

    @property
    def amortized_io(self) -> float:
        return self.io_total / self.ops if self.ops else 0.0

    def row(self) -> dict[str, float | int]:
        return {
            "ops": self.ops,
            "epochs": self.epochs,
            "kops": round(self.kops, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "io/op": round(self.amortized_io, 4),
        }


class ClosedLoopClient:
    """Drives a :class:`DictionaryService` one request window at a time.

    Parameters
    ----------
    service:
        The service under load.
    window:
        Requests submitted per round trip.  Latency includes the
        queueing delay behind earlier epochs of the same window, so a
        larger window trades latency for throughput — the classic
        closed-loop knob.
    """

    def __init__(self, service: DictionaryService, *, window: int = 65536) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.service = service
        self.window = window

    def drive(
        self,
        kinds: np.ndarray,
        keys: np.ndarray,
        *,
        check: bool = False,
    ) -> ClientReport:
        """Feed the whole stream through the service, window by window.

        With ``check``, assert the stream's semantic expectations: every
        delete must remove a key (the bulk generator only emits deletes
        of live keys), which catches routing or batching bugs in situ.
        """
        kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        n = len(kinds)
        latencies: list[tuple[float, int]] = []
        epochs = 0
        io_total = 0
        t_start = time.perf_counter()
        for lo in range(0, n, self.window):
            hi = min(lo + self.window, n)
            run = self.service.run(kinds[lo:hi], keys[lo:hi])
            elapsed = 0.0
            for report in run.epochs:
                elapsed += report.seconds
                latencies.append((elapsed, report.ops))
            epochs += len(run.epochs)
            io_total += run.io_total
            if check:
                dmask = kinds[lo:hi] == OP_DELETE
                if not bool(run.delete_removed[dmask].all()):
                    # Not an assert: the in-situ bug detector must stay
                    # armed under ``python -O`` too.
                    raise RuntimeError(
                        "closed-loop check: a delete targeted a non-live key"
                    )
        seconds = time.perf_counter() - t_start
        return ClientReport(
            ops=n,
            inserts=int(np.count_nonzero(kinds == OP_INSERT)),
            lookups=int(np.count_nonzero(kinds == OP_LOOKUP)),
            deletes=int(np.count_nonzero(kinds == OP_DELETE)),
            epochs=epochs,
            seconds=seconds,
            io_total=io_total,
            p50_ms=_weighted_percentile(latencies, 50) * 1e3,
            p99_ms=_weighted_percentile(latencies, 99) * 1e3,
            max_ms=(max(v for v, _ in latencies) * 1e3) if latencies else 0.0,
        )
