"""Client simulators: closed-loop capacity and open-loop user experience.

Two load models drive a :class:`DictionaryService`:

* :class:`ClosedLoopClient` — a fixed amount of work in flight: submit
  one window, wait, submit the next.  Offered load adapts to service
  speed, so it measures *capacity* (kops, service-time latency), never
  overload.
* :class:`OpenLoopClient` — requests arrive on a **virtual clock** from
  a seeded :class:`~repro.service.traffic.ArrivalProcess`, whether or
  not the service is keeping up.  Latency is queueing delay **plus**
  service time, and when offered load exceeds capacity the
  :class:`~repro.service.admission.AdmissionController` decides what to
  reject, shed, or expire — every op ends in exactly one accounted
  outcome.

Both report through :class:`ClientReport`; the overload columns
(``goodput_kops``, ``queue_p99``, ``shed``, ``rejected``,
``deadline_exceeded``) are zero for closed-loop runs.

**Determinism.** Arrival times are seeded, the admission policy is a
pure function of (queue state, op kind), and with ``service_rate`` set
the service-time model is the deterministic virtual rate — so an
open-loop run is exactly reproducible.  With the controller left
*transparent* (unbounded queue, no deadline, no breaker) the client
dispatches epoch-grid-aligned slices, making the executed trace and all
ledgers **bit-identical** to a plain ``run()`` of the same ops — the
correctness contract the overload tests pin.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..em.cache import CacheStats
from ..em.errors import StorageFault
from ..em.iostats import IOSnapshot
from ..workloads.trace import OP_DELETE, OP_INSERT, OP_LOOKUP
from .admission import (
    EXECUTED,
    EXPIRED,
    PENDING,
    REJECTED,
    SHED,
    AdmissionController,
    AdmissionQueue,
)
from .epochs import conflict_bounds
from .service import DictionaryService
from .traffic import ArrivalProcess

__all__ = ["ClientReport", "ClosedLoopClient", "OpenLoopClient"]


def _weighted_percentile(pairs: list[tuple[float, int]], q: float) -> float:
    """Exact percentile of a sample given as ``(value, multiplicity)``.

    Robust for degenerate samples: an empty list, zero total mass, or a
    single pair must yield a well-defined number (0.0 for no mass, the
    lone value otherwise) — a 0- or 1-op run reports honest percentiles
    instead of raising or returning garbage.
    """
    pairs = sorted((value, count) for value, count in pairs if count > 0)
    if not pairs:
        return 0.0
    q = min(max(q, 0.0), 100.0)
    total = sum(count for _, count in pairs)
    threshold = q / 100.0 * total
    cum = 0
    for value, count in pairs:
        cum += count
        if cum >= threshold:
            return value
    return pairs[-1][0]


def _array_percentile(values: np.ndarray, q: float) -> float:
    """Same cum-mass-≥-threshold percentile, for a per-op float array."""
    n = len(values)
    if n == 0:
        return 0.0
    q = min(max(q, 0.0), 100.0)
    rank = int(np.ceil(q / 100.0 * n)) - 1
    return float(np.sort(values)[max(rank, 0)])


def _imbalance(before, after) -> float:
    """Worst-shard/mean-shard charged I/O over the run (0 when idle).

    ``before``/``after`` are ``shard_io_snapshots()`` lists; the ratio
    is over each shard's delta, so it measures *this run's* skew, not
    history's.
    """
    deltas = [b.total - a.total for a, b in zip(before, after)]
    total = sum(deltas)
    if total <= 0 or len(deltas) <= 1:
        return 0.0
    return max(deltas) * len(deltas) / total


@dataclass(frozen=True)
class _ServiceMarks:
    """Start-of-run marks of the service-side ledgers a report summarises.

    One :meth:`capture`/:meth:`settle` pair shared by both load models:
    every service-derived report column (cache delta, run imbalance,
    migrated slots) is computed — and therefore zero-filled for
    configurations where it doesn't apply — in exactly one place.
    Before this helper each client zero-filled the columns separately,
    and ``hit_rate``/``imbalance`` each had to be patched at two sites
    when they were added.
    """

    cache: CacheStats
    shard_io: list[IOSnapshot]
    migrated: int

    @classmethod
    def capture(cls, service: "DictionaryService") -> "_ServiceMarks":
        return cls(
            cache=service.cache_snapshot(),
            shard_io=service.shard_io_snapshots(),
            migrated=service.migrated_slots,
        )

    def settle(self, service: "DictionaryService") -> dict:
        """The service-derived ``ClientReport`` fields for the run since
        :meth:`capture` — pass as ``**marks.settle(service)``."""
        cache = service.cache_snapshot().delta_since(self.cache)
        return {
            "hit_rate": cache.hit_rate,
            "negative_hits": cache.negative_hits,
            "imbalance": _imbalance(self.shard_io, service.shard_io_snapshots()),
            "migrated_slots": service.migrated_slots - self.migrated,
        }


@dataclass(frozen=True)
class ClientReport:
    """One client run: throughput, latency distribution, and accounting.

    ``executed`` is ``None`` for closed-loop runs (everything executes);
    the overload counters then default to zero, so one row schema serves
    both load models — see ``service/README.md`` for the column glossary.

    The cache columns (``hit_rate``, ``negative_hits``) summarise the
    cluster :class:`~repro.em.cache.CacheStats` delta over the run; an
    uncached cluster reports them zero-filled, keeping one schema for
    every configuration.
    """

    ops: int
    inserts: int
    lookups: int
    deletes: int
    epochs: int
    seconds: float
    io_total: int
    p50_ms: float
    p99_ms: float
    max_ms: float
    executed: int | None = None
    shed: int = 0
    rejected: int = 0
    deadline_exceeded: int = 0
    queue_p50_ms: float = 0.0
    queue_p99_ms: float = 0.0
    hit_rate: float = 0.0
    negative_hits: int = 0
    #: Worst-shard/mean-shard charged-I/O ratio over the run and slots
    #: migrated during it — zero-filled for static (non-rebalancing)
    #: runs, so one row schema serves both routers.
    imbalance: float = 0.0
    migrated_slots: int = 0

    @property
    def kops(self) -> float:
        """Offered throughput in thousands of ops per second."""
        return self.ops / self.seconds / 1e3 if self.seconds else 0.0

    @property
    def executed_ops(self) -> int:
        """Ops that actually ran (everything, for a closed-loop run)."""
        return self.ops if self.executed is None else self.executed

    @property
    def goodput_kops(self) -> float:
        """Executed (not merely offered) kops — the SLO sweep's y-axis."""
        return self.executed_ops / self.seconds / 1e3 if self.seconds else 0.0

    @property
    def amortized_io(self) -> float:
        return self.io_total / self.ops if self.ops else 0.0

    #: ``row()`` schema: (column, source attribute, round digits).  One
    #: table instead of a hand-built dict, so adding a column is one
    #: line and closed-loop/uncached/static rows zero-fill through the
    #: dataclass defaults — no per-site fill to drift.
    ROW_SCHEMA = (
        ("ops", "ops", None),
        ("epochs", "epochs", None),
        ("kops", "kops", 1),
        ("goodput_kops", "goodput_kops", 1),
        ("p50_ms", "p50_ms", 3),
        ("p99_ms", "p99_ms", 3),
        ("queue_p99", "queue_p99_ms", 3),
        ("io/op", "amortized_io", 4),
        ("shed", "shed", None),
        ("rejected", "rejected", None),
        ("deadline_exceeded", "deadline_exceeded", None),
        ("hit_rate", "hit_rate", 4),
        ("negative_hits", "negative_hits", None),
        ("imbalance", "imbalance", 2),
        ("migrated_slots", "migrated_slots", None),
    )

    def row(self) -> dict[str, float | int]:
        out: dict[str, float | int] = {}
        for column, attr, digits in self.ROW_SCHEMA:
            value = getattr(self, attr)
            out[column] = round(value, digits) if digits is not None else value
        return out


class ClosedLoopClient:
    """Drives a :class:`DictionaryService` one request window at a time.

    Parameters
    ----------
    service:
        The service under load.
    window:
        Requests submitted per round trip.  Latency includes the
        queueing delay behind earlier epochs of the same window, so a
        larger window trades latency for throughput — the classic
        closed-loop knob.
    """

    def __init__(self, service: DictionaryService, *, window: int = 65536) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.service = service
        self.window = window

    def drive(
        self,
        kinds: np.ndarray,
        keys: np.ndarray,
        *,
        check: bool = False,
    ) -> ClientReport:
        """Feed the whole stream through the service, window by window.

        With ``check``, assert the stream's semantic expectations: every
        delete must remove a key (the bulk generator only emits deletes
        of live keys), which catches routing or batching bugs in situ.
        """
        kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        n = len(kinds)
        latencies: list[tuple[float, int]] = []
        epochs = 0
        io_total = 0
        marks = _ServiceMarks.capture(self.service)
        t_start = time.perf_counter()
        for lo in range(0, n, self.window):
            hi = min(lo + self.window, n)
            run = self.service.run(kinds[lo:hi], keys[lo:hi])
            elapsed = 0.0
            for report in run.epochs:
                elapsed += report.seconds
                latencies.append((elapsed, report.ops))
            epochs += len(run.epochs)
            io_total += run.io_total
            if check:
                dmask = kinds[lo:hi] == OP_DELETE
                if not bool(run.delete_removed[dmask].all()):
                    # Not an assert: the in-situ bug detector must stay
                    # armed under ``python -O`` too.
                    raise RuntimeError(
                        "closed-loop check: a delete targeted a non-live key"
                    )
        seconds = time.perf_counter() - t_start
        return ClientReport(
            ops=n,
            inserts=int(np.count_nonzero(kinds == OP_INSERT)),
            lookups=int(np.count_nonzero(kinds == OP_LOOKUP)),
            deletes=int(np.count_nonzero(kinds == OP_DELETE)),
            epochs=epochs,
            seconds=seconds,
            io_total=io_total,
            p50_ms=_weighted_percentile(latencies, 50) * 1e3,
            p99_ms=_weighted_percentile(latencies, 99) * 1e3,
            max_ms=(max(v for v, _ in latencies) * 1e3) if latencies else 0.0,
            **marks.settle(self.service),
        )


class OpenLoopClient:
    """Open-loop driver: virtual-clock arrivals through admission control.

    The simulation advances a virtual clock ``now``.  Each round, every
    op whose arrival time has passed is offered to the
    :class:`AdmissionController` (which admits, rejects, or sheds it);
    the client then dispatches the globally oldest admitted ops — up to
    the (possibly adaptively shrunk) batch cap — as one ``service.run``
    call, and advances ``now`` by the batch's service time.  An op's
    latency is ``completion − arrival``: queueing delay plus service
    time.

    **Program order.**  Dispatch merges the admission queue, the retry
    queue, and any breaker-held ops by global op index, so the executed
    subset of each shard's stream is always in program order — shedding
    and quarantine only *delete or delay* ops, never reorder same-key
    work (same-key ops route to the same shard).

    **Degradation.**  With a ``breaker``
    (:class:`~repro.service.faults.ShardBreakerBoard`), a
    :class:`~repro.em.errors.StorageFault` escaping a shard records a
    failure against it; while the shard's breaker is open its ops are
    held aside (healthy shards keep executing), and once the cooldown
    elapses a half-open probe re-dispatches them.  A faulted batch is
    requeued in order and re-executed — *at-least-once* under faults
    (membership ops are idempotent), exactly-once without.  Without a
    breaker, storage faults propagate to the caller.

    Parameters
    ----------
    service:
        The service under load (serial executor for full determinism).
    arrivals:
        Seeded :class:`~repro.service.traffic.ArrivalProcess`.
    controller:
        Admission policy; default is a transparent controller
        (unbounded, no deadline).  Transparent + no breaker enables the
        bit-identical epoch-grid fast path.
    breaker:
        Optional per-shard circuit-breaker board.
    service_rate:
        Deterministic service model: a batch of ``k`` ops takes
        ``k / service_rate`` virtual seconds.  ``None`` uses measured
        wall time (realistic, but not bit-reproducible in time).
    batch_ops:
        Dispatch-batch cap (default: the service's ``epoch_ops``).
    """

    def __init__(
        self,
        service: DictionaryService,
        arrivals: ArrivalProcess,
        *,
        controller: AdmissionController | None = None,
        breaker=None,
        service_rate: float | None = None,
        batch_ops: int | None = None,
    ) -> None:
        if service_rate is not None and not service_rate > 0:
            raise ValueError(f"service_rate must be positive, got {service_rate}")
        if batch_ops is not None and batch_ops <= 0:
            raise ValueError(f"batch_ops must be positive, got {batch_ops}")
        self.service = service
        self.arrivals = arrivals
        self.controller = (
            controller if controller is not None else AdmissionController()
        )
        self.breaker = breaker
        self.service_rate = service_rate
        self.batch_ops = batch_ops if batch_ops is not None else service.epoch_ops
        #: Per-op outcome codes after :meth:`drive` (admission constants).
        self.outcomes: np.ndarray = np.zeros(0, dtype=np.uint8)
        #: Op indices in the order they were executed (invariant tests).
        self.executed_order: list[int] = []
        self._epochs = 0
        self._io = 0

    def drive(self, kinds: np.ndarray, keys: np.ndarray) -> ClientReport:
        """Simulate the whole arrival stream; account every op."""
        kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        n = len(kinds)
        if len(keys) != n:
            raise ValueError(f"kinds and keys must align: {n} vs {len(keys)}")
        t = self.arrivals.times(n)
        self.outcomes = outcomes = np.full(n, PENDING, dtype=np.uint8)
        self.executed_order = []
        self._epochs = 0
        self._io = 0
        lat = np.zeros(n, dtype=np.float64)
        qdel = np.zeros(n, dtype=np.float64)
        marks = _ServiceMarks.capture(self.service)
        recorder = self.service.recorder
        breaker_marks = (
            (self.breaker.trips, self.breaker.recoveries)
            if self.breaker is not None
            else (0, 0)
        )
        if (
            self.breaker is not None
            and recorder is not None
            and self.breaker.on_transition is None
        ):
            # Every breaker transition becomes a trace point event,
            # stamped with the board's own (virtual) clock.
            def _on_transition(shard, old, new, clock):
                recorder.emit(
                    "breaker",
                    **{"shard": shard, "from": old, "to": new, "clock": clock},
                )

            self.breaker.on_transition = _on_transition
        if n == 0:
            makespan = 0.0
        elif self.controller.transparent and self.breaker is None:
            makespan = self._drive_transparent(kinds, keys, t, outcomes, lat, qdel)
        else:
            makespan = self._drive_queued(kinds, keys, t, outcomes, lat, qdel)
        if recorder is not None:
            recorder.vt = None
        exec_mask = outcomes == EXECUTED
        executed = int(np.count_nonzero(exec_mask))
        elat = lat[exec_mask]
        equeue = qdel[exec_mask]
        shed = int(np.count_nonzero(outcomes == SHED))
        rejected = int(np.count_nonzero(outcomes == REJECTED))
        expired = int(np.count_nonzero(outcomes == EXPIRED))
        self._fold_drive_metrics(executed, shed, rejected, expired, breaker_marks)
        return ClientReport(
            ops=n,
            inserts=int(np.count_nonzero(kinds == OP_INSERT)),
            lookups=int(np.count_nonzero(kinds == OP_LOOKUP)),
            deletes=int(np.count_nonzero(kinds == OP_DELETE)),
            epochs=self._epochs,
            seconds=makespan,
            io_total=self._io,
            p50_ms=_array_percentile(elat, 50) * 1e3,
            p99_ms=_array_percentile(elat, 99) * 1e3,
            max_ms=float(elat.max()) * 1e3 if executed else 0.0,
            executed=executed,
            shed=shed,
            rejected=rejected,
            deadline_exceeded=expired,
            queue_p50_ms=_array_percentile(equeue, 50) * 1e3,
            queue_p99_ms=_array_percentile(equeue, 99) * 1e3,
            **marks.settle(self.service),
        )

    def _fold_drive_metrics(
        self,
        executed: int,
        shed: int,
        rejected: int,
        expired: int,
        breaker_marks: tuple[int, int],
    ) -> None:
        """Fold this drive's admission/breaker outcomes into the
        service's metrics registry (deterministic counts only)."""
        metrics = self.service.metrics()
        metrics.inc("repro_admission_total", executed, outcome="executed")
        metrics.inc("repro_admission_total", shed, outcome="shed")
        metrics.inc("repro_admission_total", rejected, outcome="rejected")
        metrics.inc("repro_admission_total", expired, outcome="expired")
        if self.breaker is not None:
            trips_mark, recoveries_mark = breaker_marks
            metrics.inc(
                "repro_breaker_trips_total", self.breaker.trips - trips_mark
            )
            metrics.inc(
                "repro_breaker_recoveries_total",
                self.breaker.recoveries - recoveries_mark,
            )

    # -- transparent fast path ----------------------------------------------

    def _drive_transparent(
        self,
        kinds: np.ndarray,
        keys: np.ndarray,
        t: np.ndarray,
        outcomes: np.ndarray,
        lat: np.ndarray,
        qdel: np.ndarray,
    ) -> float:
        """Admission can never refuse: dispatch the exact epoch grid.

        Each dispatched slice is one precomputed conflict-free window of
        at most ``epoch_ops`` ops, so ``service.run`` re-segments it
        into exactly one epoch with the same bounds a single ``run()``
        over the whole stream would cut — epochs, ledgers, layouts and
        results are bit-identical to the closed-loop/run_trace execution
        (group-commit semantics: an epoch starts once its last op has
        arrived and the service is free).
        """
        svc = self.service
        recorder = svc.recorder
        bounds = conflict_bounds(kinds, keys, max_ops=svc.epoch_ops)
        now = 0.0
        for lo, hi in zip(bounds, bounds[1:]):
            start = max(now, float(t[hi - 1]))
            if recorder is not None:
                # Epoch spans emitted inside run() carry the dispatch's
                # virtual time — deterministic with a service_rate.
                recorder.vt = start
            run = svc.run(kinds[lo:hi], keys[lo:hi])
            elapsed = (
                (hi - lo) / self.service_rate
                if self.service_rate is not None
                else run.seconds
            )
            now = start + elapsed
            outcomes[lo:hi] = EXECUTED
            qdel[lo:hi] = start - t[lo:hi]
            lat[lo:hi] = now - t[lo:hi]
            self.executed_order.extend(range(lo, hi))
            self._epochs += len(run.epochs)
            self._io += run.io_total
        return now

    # -- queued simulation ---------------------------------------------------

    def _drive_queued(
        self,
        kinds: np.ndarray,
        keys: np.ndarray,
        t: np.ndarray,
        outcomes: np.ndarray,
        lat: np.ndarray,
        qdel: np.ndarray,
    ) -> float:
        svc = self.service
        ctrl = self.controller
        breaker = self.breaker
        recorder = svc.recorder
        last_admission: tuple | None = None

        def _note_admission(now: float, queue_len: int) -> None:
            # One trace point event whenever the admission picture
            # changed: cumulative shed/reject/expiry counts + the queue
            # depth at virtual time ``now``.  Recorder-on only — the
            # counting scans are skipped entirely when untraced.
            nonlocal last_admission
            shed = int(np.count_nonzero(outcomes == SHED))
            rejected = int(np.count_nonzero(outcomes == REJECTED))
            expired = int(np.count_nonzero(outcomes == EXPIRED))
            state = (shed, rejected, expired, queue_len)
            if state == last_admission:
                return
            last_admission = state
            recorder.vt = now
            recorder.emit(
                "admission",
                epoch=max(svc.epochs_run - 1, 0),
                queue=queue_len,
                shed=shed,
                rejected=rejected,
                expired=expired,
            )
            svc.metrics().set_gauge("repro_queue_depth", queue_len)

        n = len(kinds)
        def _shard_map() -> np.ndarray:
            if svc.shards == 1:
                return np.zeros(n, dtype=np.int64)
            return svc.directory.shards_of(keys)

        if breaker is not None:
            shard_of = _shard_map()
            dir_version = svc.directory.version
            held: list[deque[int]] = [deque() for _ in range(svc.shards)]
        else:
            shard_of = None
            dir_version = None
            held = []
        queue = AdmissionQueue()
        ai = 0
        now = 0.0
        cap = self.batch_ops

        while ai < n or len(queue) or any(held):
            # A migration between epochs repoints slots; refresh the
            # breaker's shard map so quarantine tracks the live route.
            if breaker is not None and svc.directory.version != dir_version:
                shard_of = _shard_map()
                dir_version = svc.directory.version
            # Open loop: everything that has arrived by now hits admission,
            # in arrival (= program) order.
            while ai < n and t[ai] <= now:
                ctrl.offer(queue, ai, int(kinds[ai]), outcomes)
                ai += 1
            cap = ctrl.batch_cap(len(queue), self.batch_ops, cap)
            batch = self._next_batch(queue, held, shard_of, t, outcomes, now, cap)
            if not batch:
                # Idle: jump to the next event — an arrival, or a
                # quarantined shard's cooldown expiring (both strictly
                # in the future, or the merge would have dispatched).
                nxt = [float(t[ai])] if ai < n else []
                if breaker is not None:
                    nxt += [
                        breaker.reopen_at(s)
                        for s in range(len(held))
                        if held[s] and breaker.state(s) == "open"
                    ]
                if not nxt:
                    break
                now = max(now, min(nxt))
                continue
            barr = np.asarray(batch, dtype=np.int64)
            start = now
            if recorder is not None:
                recorder.vt = start
            t0 = time.perf_counter()
            try:
                run = svc.run(kinds[barr], keys[barr])
            except StorageFault as exc:
                shard = getattr(exc, "shard", None)
                if breaker is None or shard is None:
                    raise
                now = start + (
                    len(batch) / self.service_rate
                    if self.service_rate is not None
                    else time.perf_counter() - t0
                )
                breaker.record_failure(shard, now)
                # Requeue the attempt at the *front* of each shard's hold:
                # every shard in the batch was admissible at dispatch, so
                # anything still parked for it carries a larger index —
                # prepending in reverse keeps each hold ascending and the
                # re-dispatch in program order (at-least-once under faults).
                for idx in reversed(batch):
                    held[int(shard_of[idx])].appendleft(idx)
                continue
            now = start + (
                len(batch) / self.service_rate
                if self.service_rate is not None
                else run.seconds
            )
            outcomes[barr] = EXECUTED
            qdel[barr] = start - t[barr]
            lat[barr] = now - t[barr]
            self.executed_order.extend(batch)
            self._epochs += len(run.epochs)
            self._io += run.io_total
            if breaker is not None:
                for s in np.unique(shard_of[barr]).tolist():
                    breaker.record_success(int(s), now)
            if recorder is not None:
                _note_admission(now, len(queue))
        if recorder is not None:
            _note_admission(now, len(queue))
        return now

    def _next_batch(
        self,
        queue: AdmissionQueue,
        held: list[deque],
        shard_of: np.ndarray | None,
        t: np.ndarray,
        outcomes: np.ndarray,
        now: float,
        cap: int,
    ) -> list[int]:
        """Up to ``cap`` dispatchable ops, globally oldest first.

        Two sources merge by op index: per-shard holds (faulted-batch
        requeues and breaker-parked ops) whose shard is currently
        admissible, and the admission queue.  Pops are lazily expired
        against their deadline; ops for a quarantined shard are parked
        in that shard's hold, which stays ascending by construction.
        """
        ctrl = self.controller
        breaker = self.breaker
        _QUEUE = -1
        batch: list[int] = []
        while len(batch) < cap:
            best, src = None, None
            if breaker is not None:
                for s, bucket in enumerate(held):
                    if (
                        bucket
                        and (best is None or bucket[0] < best)
                        and not breaker.blocked(s, now)
                    ):
                        best, src = bucket[0], s
            peeked = queue.peek_next()
            if peeked is not None and (best is None or peeked[0] < best):
                best, src = peeked[0], _QUEUE
            if src is None:
                break
            idx = queue.pop_next()[0] if src == _QUEUE else held[src].popleft()
            if ctrl.expired(float(t[idx]), now):
                outcomes[idx] = EXPIRED
                continue
            if (
                src == _QUEUE
                and breaker is not None
                and breaker.blocked(int(shard_of[idx]), now)
            ):
                held[int(shard_of[idx])].append(idx)
                continue
            batch.append(idx)
        return batch
