"""The concurrent dictionary service: epochs × shards × executors.

:class:`DictionaryService` is the layer that turns the reproduction's
dictionaries into a *servable system*: it accepts interleaved
insert/lookup/delete request streams, coalesces them into conflict-free
**epochs** (:mod:`repro.service.epochs`), partitions each epoch by shard
with the same vectorized stable shard-of-key routing the
:class:`~repro.tables.sharded.ShardedDictionary` uses, and executes the
per-shard work through a pluggable **executor**:

* ``"serial"`` — shards run one after another, ascending shard order;
* ``"threads"`` — shards run concurrently on a thread pool.

Concurrency is safe *and deterministic* because the service gives every
shard a fully private machine: its own strided-namespace
:class:`~repro.em.disk.Disk`, its own ``m``-word
:class:`~repro.em.memory.MemoryBudget`, **and its own
:class:`~repro.em.iostats.IOStats` ledger** (unlike the sharded router,
whose shards share the parent ledger and would interleave
nondeterministically under threads).  A shard's charges depend only on
its own program-order request subsequence, so per-shard ledgers, disks,
layouts and memory peaks are bit-identical whatever the executor; at
epoch close the service folds each shard's ledger delta into a cluster
:attr:`~DictionaryService.ledger` in ascending shard order — pure
counter addition, so the merged totals are executor-invariant too.  The
determinism suite (``tests/test_service.py``) pins serial-vs-threads
equality of all of it.

Within an epoch each shard executes its batches in the fixed kind order
**insert → delete → lookup**; the epoch builder guarantees no key
crosses kinds inside an epoch, so every per-key observable matches
program order (see :mod:`repro.service.epochs`).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.config import ObsConfig, RebalanceConfig
from ..em.cache import CacheStats
from ..em.errors import ConfigurationError, StorageFault
from ..em.iostats import IOSnapshot, IOStats
from ..em.storage import EMContext
from ..hashing.base import HashFunction
from ..hashing.family import MULTIPLY_SHIFT
from ..obs import MetricsRegistry, TraceRecorder
from ..tables.base import ExternalDictionary, LayoutSnapshot, TableStats
from ..tables.batching import partition_positions
from ..tables.rebalance import Rebalancer, SlotMove, apply_moves
from ..tables.sharded import ShardFactory, SlotDirectory, _ROUTER_SEED, shard_view
from ..workloads.trace import OP_DELETE, OP_INSERT, OP_LOOKUP, Op, encode_ops
from .epochs import Epoch, build_epochs
from .journal import EpochJournal

__all__ = [
    "DictionaryService",
    "EpochReport",
    "ServiceRun",
    "SerialExecutor",
    "ThreadExecutor",
    "EXECUTORS",
    "make_executor",
    "service_shard_view",
]


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class SerialExecutor:
    """Runs shard thunks one after another, ascending shard order."""

    name = "serial"

    def run(self, thunks: Sequence[Callable[[], object]]) -> list[object]:
        return [thunk() for thunk in thunks]

    def close(self) -> None:
        """Nothing to release."""


class ThreadExecutor:
    """Runs shard thunks concurrently on a persistent thread pool.

    Shards own disjoint state (disk, memory budget, I/O ledger), so the
    only cross-thread contention is the interpreter lock — results and
    accounting are bit-identical to :class:`SerialExecutor` by
    construction, which the determinism tests assert.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def run(self, thunks: Sequence[Callable[[], object]]) -> list[object]:
        if len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-shard"
            )
        futures = [self._pool.submit(thunk) for thunk in thunks]
        # Wait for *every* future before raising: abandoning in-flight
        # shard work on the first failure would leave threads mutating
        # shard state behind the caller's back and make the pool's next
        # run() racy.  First failure in submission (= shard) order wins,
        # deterministically; the pool itself stays reusable.
        results, first_exc = [], None
        for f in futures:
            try:
                results.append(f.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: Executor registry, keyed by the name the CLI/bench ``--executor``
#: flags use.
EXECUTORS = {"serial": SerialExecutor, "threads": ThreadExecutor}


def make_executor(kind: str, **kwargs):
    """Build an executor by registry name."""
    try:
        cls = EXECUTORS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {kind!r}; choose from {sorted(EXECUTORS)}"
        ) from None
    return cls(**kwargs)


# ---------------------------------------------------------------------------
# Per-shard machines
# ---------------------------------------------------------------------------


def service_shard_view(parent: EMContext, index: int) -> EMContext:
    """A fully private per-shard context: own disk, memory, *and* ledger.

    :func:`repro.tables.sharded.shard_view` with a private
    :class:`IOStats` swapped in — concurrent shards must never race on
    a shared counter object, and the pending read-modify-write block
    (which decides footnote-2 combining) is meaningful only against the
    shard's own disk.  Ledgers merge at epoch close.
    """
    return shard_view(parent, index, stats=IOStats(policy=parent.policy))


# ---------------------------------------------------------------------------
# Run reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EpochReport:
    """Bookkeeping for one executed epoch."""

    start: int
    stop: int
    inserts: int
    lookups: int
    deletes: int
    seconds: float
    io: int

    @property
    def ops(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ServiceRun:
    """Results of one :meth:`DictionaryService.run` call.

    ``lookup_found`` / ``delete_removed`` are stream-aligned boolean
    arrays: entry ``i`` is meaningful when op ``i`` was of the matching
    kind (and ``False`` elsewhere).
    """

    ops: int
    lookup_found: np.ndarray
    delete_removed: np.ndarray
    epochs: list[EpochReport]

    @property
    def seconds(self) -> float:
        return sum(e.seconds for e in self.epochs)

    @property
    def io_total(self) -> int:
        return sum(e.io for e in self.epochs)


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class DictionaryService:
    """A dictionary served over N shard machines by a pluggable executor.

    Parameters
    ----------
    ctx:
        Template context: supplies the ``(b, m, u)`` geometry, I/O
        policy, record width and storage backend every shard machine is
        built with (its disk/stats/memory are *not* shared — each shard
        gets a :func:`service_shard_view`).
    shard_factory:
        Builds the inner table from a per-shard context (the drivers'
        ``TableFactory`` shape).
    shards:
        Number of shard machines ``N >= 1``.
    executor:
        ``"serial"``, ``"threads"``, or an executor instance.
    epoch_ops:
        Maximum ops coalesced into one epoch (bounds staging memory).
    router:
        Shard-of-key hash; the fixed-seed multiply-shift default matches
        the sharded router's, so a service over N shards stores keys
        exactly where a :class:`ShardedDictionary` over N shards would.
    journal:
        Optional :class:`~repro.service.journal.EpochJournal`.  When
        set, every epoch's encoded ops are durably appended *before*
        execution and fsync-marked committed *after* the ledger merge,
        so :func:`repro.service.recovery.recover` can rebuild the exact
        service state from the last snapshot plus the committed suffix.
    slots:
        Slot-directory fan-out (must divide by ``shards``); defaults to
        ``DEFAULT_SLOTS_PER_SHARD * shards``.  The directory starts on
        the static split, so routing is bit-identical to ``hash %
        shards`` until a migration moves a slot.
    rebalance:
        Enables skew-adaptive routing: a
        :class:`~repro.tables.rebalance.Rebalancer`, a
        :class:`~repro.core.config.RebalanceConfig`, or ``True`` for
        the default config.  When set, the service samples per-shard
        charged I/O and per-slot op counts at every epoch close and —
        between epochs, never inside one — migrates hot slots, with the
        journal (if attached) recording each migration write-ahead.
        ``None`` (the default) keeps the static router: bit-identical
        results, layouts and ledgers to every earlier release.
    obs:
        Observability (:mod:`repro.obs`): an
        :class:`~repro.core.config.ObsConfig`, a prebuilt
        :class:`~repro.obs.TraceRecorder` (bench harnesses that read
        the records in memory), or ``None``.  Strictly relabelling —
        ledgers, layouts and results are bit-identical with it on or
        off.  The :class:`~repro.obs.MetricsRegistry` behind
        :meth:`metrics` is always maintained (a handful of integer
        folds per epoch); ``obs`` only controls span tracing and
        periodic metric dumps.
    """

    def __init__(
        self,
        ctx: EMContext,
        shard_factory: ShardFactory,
        *,
        shards: int = 1,
        executor: str | SerialExecutor | ThreadExecutor = "serial",
        epoch_ops: int = 8192,
        router: HashFunction | None = None,
        name: str | None = None,
        journal: EpochJournal | None = None,
        slots: int | None = None,
        rebalance: Rebalancer | RebalanceConfig | bool | None = None,
        obs: ObsConfig | TraceRecorder | None = None,
    ) -> None:
        if shards <= 0:
            raise ConfigurationError(f"shard count must be positive, got {shards}")
        if epoch_ops <= 0:
            raise ConfigurationError(f"epoch_ops must be positive, got {epoch_ops}")
        self.ctx = ctx
        self.shards = shards
        self.epoch_ops = epoch_ops
        self.name = name or f"DictionaryService[{shards}]"
        self.router = (
            router
            if router is not None
            else MULTIPLY_SHIFT.sample(ctx.u, seed=_ROUTER_SEED)
        )
        self.directory = SlotDirectory(self.router, shards, slots=slots)
        if rebalance is True:
            self.rebalancer: Rebalancer | None = Rebalancer()
        elif isinstance(rebalance, RebalanceConfig):
            self.rebalancer = Rebalancer(rebalance)
        else:
            self.rebalancer = rebalance or None
        self.executor = make_executor(executor) if isinstance(executor, str) else executor
        self._contexts = [service_shard_view(ctx, i) for i in range(shards)]
        #: Cluster I/O ledger: per-shard deltas folded in at epoch close,
        #: ascending shard order.
        self.ledger = IOStats(policy=ctx.policy)
        #: Cluster cache ledger (all-zero for uncached clusters): the
        #: per-shard buffer-pool deltas are folded in alongside the I/O
        #: ledger at epoch close.
        self.cache = CacheStats()
        self._marks: list[IOSnapshot] = [
            sub.stats.snapshot() for sub in self._contexts
        ]
        self._cache_marks: list[CacheStats | None] = [
            (cs.snapshot() if cs is not None else None)
            for cs in (sub.cache_stats() for sub in self._contexts)
        ]
        #: Always-on cluster metrics; fed the same ledger deltas the
        #: epoch-close merge folds, so it is executor-invariant and
        #: rides the snapshot/restore path.  See :meth:`metrics`.
        self._metrics = MetricsRegistry()
        if isinstance(obs, TraceRecorder):
            self.obs: ObsConfig | None = ObsConfig()
            self.recorder: TraceRecorder | None = obs
        elif isinstance(obs, ObsConfig):
            self.obs = obs
            self.recorder = (
                TraceRecorder(obs.trace_path, wall=obs.wall_clock)
                if obs.trace_path
                else None
            )
        else:
            self.obs = None
            self.recorder = None
        #: Callback ``(epochs_run, registry)`` fired every
        #: ``obs.metrics_every`` closed epochs (the CLI's periodic
        #: Prometheus dump); ``None`` disables.
        self.metrics_listener = None
        self._run_seq = 0
        self._trace_base = 0
        self._journal_bytes_mark = 0
        self._tables: list[ExternalDictionary] = [
            shard_factory(sub) for sub in self._contexts
        ]
        # Fold any I/O a factory charged at construction into the ledger
        # right away, so io_snapshot() always equals the sum of
        # shard_io_snapshots() (construction belongs to no epoch).
        self.setup_io = self._merge_ledgers()
        self.epochs_run = 0
        self.journal = journal
        if self.recorder is not None:
            describe = ctx.disk.describe() if ctx.disk is not None else {}
            self.recorder.emit(
                "run_start",
                name=self.name,
                shards=shards,
                epoch_ops=epoch_ops,
                slots=self.directory.slots,
                executor=getattr(self.executor, "name", "?"),
                combine_rmw=bool(ctx.policy.combine_rmw),
                io=self.setup_io,
                **describe,
            )
        #: Global stream position of the last committed epoch's ``stop``
        #: — how far into the client's trace durable state extends.
        self.ops_committed = 0
        #: Migration counters (all zero for static runs): slots
        #: repointed, live keys drained+re-inserted, charged I/O of the
        #: drains (already folded into :attr:`ledger` — no free moves),
        #: and applied migration decisions (the REBALANCE-record
        #: sequence number).
        self.migrated_slots = 0
        self.keys_moved = 0
        self.migration_io = 0
        self.migrations_applied = 0

    # -- request execution --------------------------------------------------

    def run(
        self,
        kinds: np.ndarray | Sequence[int],
        keys: np.ndarray | Sequence[int],
    ) -> ServiceRun:
        """Execute an encoded request stream; results in arrival order."""
        kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        n = len(kinds)
        lookup_found = np.zeros(n, dtype=bool)
        delete_removed = np.zeros(n, dtype=bool)
        reports: list[EpochReport] = []
        # Every previous run() committed all of its epochs before
        # returning, so the committed position is also this call's
        # global stream offset.
        base = self.ops_committed
        self._trace_base = base
        run_seq = self._run_seq
        self._run_seq += 1
        t_run = time.perf_counter()
        for epoch in build_epochs(kinds, keys, max_ops=self.epoch_ops):
            idx = self.epochs_run
            if self.journal is not None:
                self.journal.append_epoch(
                    idx,
                    base + epoch.start,
                    base + epoch.stop,
                    kinds[epoch.start : epoch.stop],
                    keys[epoch.start : epoch.stop],
                )
            reports.append(self._run_epoch(epoch, lookup_found, delete_removed))
            if self.journal is not None:
                self.journal.commit(idx, base + epoch.start, base + epoch.stop)
                self._fold_journal_metrics("commit")
                if self.recorder is not None:
                    self.recorder.emit(
                        "fsync",
                        kind="commit",
                        epoch=idx,
                        bytes=self.journal.bytes_written,
                    )
            self.ops_committed = base + epoch.stop
            # Between epochs only: an epoch's program order is never
            # split by a migration.
            self._maybe_rebalance()
            every = self.obs.metrics_every if self.obs is not None else 0
            if (
                every
                and self.metrics_listener is not None
                and self.epochs_run % every == 0
            ):
                self.metrics_listener(self.epochs_run, self._metrics)
        if self.recorder is not None:
            self.recorder.emit(
                "run",
                run=run_seq,
                start=base,
                stop=base + n,
                epochs=len(reports),
                wall_ms=round((time.perf_counter() - t_run) * 1e3, 3),
            )
        return ServiceRun(
            ops=n,
            lookup_found=lookup_found,
            delete_removed=delete_removed,
            epochs=reports,
        )

    def run_trace(self, ops: Iterable[Op]) -> ServiceRun:
        """Convenience: execute a :class:`~repro.workloads.trace.Op` list."""
        kinds, keys = encode_ops(ops)
        return self.run(kinds, keys)

    def replay_epoch(
        self, start: int, stop: int, kinds: np.ndarray, keys: np.ndarray
    ) -> EpochReport:
        """Re-execute one journaled epoch during recovery.

        The journal recorded exactly one conflict-free epoch per OPS
        record, so the slice is executed as a single epoch verbatim —
        no re-segmentation — and is *not* re-journaled (it is already
        durable).  Charges the same I/O as the original execution.
        """
        if stop - start != len(kinds):
            raise ConfigurationError(
                f"journal record [{start}, {stop}) does not match "
                f"{len(kinds)} replayed ops"
            )
        kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        self._trace_base = start
        n = len(kinds)
        lookup_pos = np.flatnonzero(kinds == OP_LOOKUP)
        delete_pos = np.flatnonzero(kinds == OP_DELETE)
        epoch = Epoch(
            start=0,
            stop=n,
            insert_keys=keys[kinds == OP_INSERT],
            lookup_keys=keys[lookup_pos],
            lookup_pos=lookup_pos,
            delete_keys=keys[delete_pos],
            delete_pos=delete_pos,
        )
        report = self._run_epoch(
            epoch, np.zeros(n, dtype=bool), np.zeros(n, dtype=bool)
        )
        self.ops_committed = stop
        # Replay feeds the rebalancer the same observations the live run
        # saw but never *decides* — journaled REBALANCE records supply
        # the moves, so recovered policy state matches an uninterrupted
        # run bit for bit.
        if self.rebalancer is not None:
            self.rebalancer.observe(self._last_epoch_shard_io, self._epoch_slot_ops)
        return report

    def snapshot(self, path) -> None:
        """Checkpoint the full service state to ``path`` (atomic).

        Thin wrapper over :func:`repro.service.recovery.snapshot_service`
        (local import: recovery builds on this module).
        """
        from .recovery import snapshot_service

        snapshot_service(self, path)

    def _run_epoch(
        self,
        epoch: Epoch,
        lookup_found: np.ndarray,
        delete_removed: np.ndarray,
    ) -> EpochReport:
        t0 = time.perf_counter()
        if self.rebalancer is not None:
            self._epoch_slot_ops = np.zeros(self.directory.slots, dtype=np.int64)
        ins_groups = self._kind_groups(epoch.insert_keys, None)
        del_groups = self._kind_groups(epoch.delete_keys, epoch.delete_pos)
        look_groups = self._kind_groups(epoch.lookup_keys, epoch.lookup_pos)
        work: dict[int, list] = {}
        for shard, arr, _ in ins_groups:
            work.setdefault(shard, [None, None, None, None, None])[0] = arr
        for shard, arr, pos in del_groups:
            slot = work.setdefault(shard, [None, None, None, None, None])
            slot[1], slot[2] = arr, pos
        for shard, arr, pos in look_groups:
            slot = work.setdefault(shard, [None, None, None, None, None])
            slot[3], slot[4] = arr, pos
        shard_order = sorted(work)
        thunks = [
            self._shard_thunk(self._tables[shard], work[shard], shard)
            for shard in shard_order
        ]
        timings: list[float] | None = None
        if self.recorder is not None:
            # Wrap thunks with per-batch wall timing only when tracing —
            # the obs-off hot path is untouched.  Each wrapper writes its
            # own slot, so the timing is thread-safe under any executor.
            timings = [0.0] * len(thunks)
            thunks = [
                self._timed_thunk(thunk, timings, j)
                for j, thunk in enumerate(thunks)
            ]
        try:
            results = self.executor.run(thunks)
        except StorageFault as exc:
            wrapped = type(exc)(f"epoch {self.epochs_run}: {exc}")
            # Keep the faulting shard visible to overload control: the
            # open-loop client's circuit breaker quarantines by shard.
            wrapped.shard = getattr(exc, "shard", None)
            raise wrapped from exc
        for shard, (del_res, look_res) in zip(shard_order, results):
            _, _, dpos, _, lpos = work[shard]
            if del_res is not None:
                delete_removed[dpos] = del_res
            if look_res is not None:
                lookup_found[lpos] = look_res
        io = self._merge_ledgers()
        idx = self.epochs_run
        self.epochs_run += 1
        report = EpochReport(
            start=epoch.start,
            stop=epoch.stop,
            inserts=len(epoch.insert_keys),
            lookups=len(epoch.lookup_keys),
            deletes=len(epoch.delete_keys),
            seconds=time.perf_counter() - t0,
            io=io,
        )
        self._fold_epoch_metrics(report)
        if self.recorder is not None:
            self._emit_epoch_span(report, idx, shard_order, timings)
        return report

    @staticmethod
    def _shard_thunk(
        table: ExternalDictionary, slot: list, shard: int
    ) -> Callable[[], tuple]:
        ins, dels, _, looks, _ = slot

        def thunk() -> tuple:
            # Fixed kind order per shard: insert -> delete -> lookup.
            # The epoch builder guarantees no key crosses kinds inside
            # an epoch, so this order is observationally program order.
            try:
                if ins is not None and len(ins):
                    table.insert_batch(ins)
                del_res = table.delete_batch(dels) if dels is not None else None
                look_res = table.lookup_batch(looks) if looks is not None else None
            except StorageFault as exc:
                wrapped = type(exc)(f"shard {shard}: {exc}")
                wrapped.shard = shard
                raise wrapped from exc
            return del_res, look_res

        return thunk

    def _kind_groups(
        self, arr: np.ndarray, pos: np.ndarray | None
    ) -> list[tuple[int, np.ndarray, np.ndarray | None]]:
        """Stable shard split of one kind's keys (+ stream positions).

        Routed through the slot directory (one ``hash_array`` call, one
        slot-map gather); with the static map this reproduces
        ``hash % shards`` exactly.  When the rebalancer is on, the slot
        ids are also tallied into the epoch's per-slot op counts — the
        load signal :meth:`_maybe_rebalance` feeds it.
        """
        if len(arr) == 0:
            return []
        if self.shards == 1:
            return [(0, arr, pos)]
        slots = self.directory.slots_of(arr)
        if self.rebalancer is not None:
            self._epoch_slot_ops += np.bincount(
                slots, minlength=self.directory.slots
            )
        idx = self.directory.slot_map[slots]
        return [
            (shard, arr[group], pos[group] if pos is not None else None)
            for shard, group in partition_positions(idx)
        ]

    def _merge_ledgers(self) -> int:
        """Fold per-shard ledger deltas into the cluster ledgers.

        Ascending shard order; returns the epoch's charged I/O total.
        Cache deltas (cached clusters only) merge alongside the I/O
        counters so ``hits + misses`` stays aligned with the reads the
        same epochs charged.
        """
        total = 0
        per_shard = []
        deltas: list[IOSnapshot] = []
        cache_delta = CacheStats()
        metrics = self._metrics
        for i, sub in enumerate(self._contexts):
            delta = sub.stats.delta_since(self._marks[i])
            self._marks[i] = sub.stats.snapshot()
            self.ledger.absorb(delta)
            per_shard.append(delta.total)
            deltas.append(delta)
            total += delta.total
            if delta.total:
                metrics.inc("repro_shard_io_total", delta.total, shard=str(i))
            mark = self._cache_marks[i]
            if mark is not None:
                shard_cache = sub.cache_stats()
                d = shard_cache.delta_since(mark)
                self.cache.absorb(d)
                cache_delta.absorb(d)
                self._cache_marks[i] = shard_cache.snapshot()
        metrics.inc("repro_io_reads_total", sum(d.reads for d in deltas))
        metrics.inc("repro_io_writes_total", sum(d.writes for d in deltas))
        metrics.inc("repro_io_combined_total", sum(d.combined for d in deltas))
        metrics.inc(
            "repro_io_allocations_total", sum(d.allocations for d in deltas)
        )
        for field, value in cache_delta.as_dict().items():
            metrics.inc(f"repro_cache_{field}_total", value)
        # The per-shard split of the merge just folded — the epoch-close
        # load sample _maybe_rebalance observes.  Migration drains merge
        # through here too, so their charges never pollute the next
        # epoch's sample (they are read before the migration merges).
        self._last_epoch_shard_io = per_shard
        # Full per-shard deltas + the cache delta of the same merge, for
        # the trace's epoch span (relabelling: read, never re-charged).
        self._last_epoch_shard_deltas = deltas
        self._last_cache_delta = cache_delta
        return total

    # -- observability -------------------------------------------------------

    @staticmethod
    def _timed_thunk(
        thunk: Callable[[], tuple], timings: list[float], j: int
    ) -> Callable[[], tuple]:
        def timed() -> tuple:
            t0 = time.perf_counter()
            try:
                return thunk()
            finally:
                timings[j] = time.perf_counter() - t0

        return timed

    def _fold_epoch_metrics(self, report: EpochReport) -> None:
        """Fold one closed epoch into the metrics registry.

        Only deterministic quantities: op counts, charged I/O, and the
        epoch's shard imbalance.  No wall-time series, so two same-seed
        runs — under any executor — produce equal registries.
        """
        metrics = self._metrics
        metrics.inc("repro_epochs_total")
        metrics.inc("repro_ops_total", report.inserts, kind="insert")
        metrics.inc("repro_ops_total", report.lookups, kind="lookup")
        metrics.inc("repro_ops_total", report.deletes, kind="delete")
        metrics.observe("repro_epoch_io", report.io)
        metrics.observe("repro_epoch_ops", report.stop - report.start)
        shard_io = self._last_epoch_shard_io
        total = sum(shard_io)
        if total:
            metrics.set_gauge(
                "repro_epoch_imbalance", max(shard_io) * len(shard_io) / total
            )

    def _fold_journal_metrics(self, kind: str) -> None:
        delta = self.journal.bytes_written - self._journal_bytes_mark
        self._journal_bytes_mark = self.journal.bytes_written
        self._metrics.inc(f"repro_journal_{kind}s_total")
        self._metrics.inc("repro_journal_bytes_total", delta)

    def _emit_epoch_span(
        self,
        report: EpochReport,
        idx: int,
        shard_order: list[int],
        timings: list[float] | None,
    ) -> None:
        """One ``epoch`` span (shard batches embedded) + eviction events.

        Emitted by the coordinator after the ledger merge, never from
        worker threads, so record order is executor-invariant.
        """
        deltas = self._last_epoch_shard_deltas
        shards = []
        for j, shard in enumerate(shard_order):
            d = deltas[shard]
            batch = {"shard": shard, "io": d.total, **d.as_dict()}
            if timings is not None:
                batch["wall_ms"] = round(timings[j] * 1e3, 3)
            shards.append(batch)
        span = {
            "run": self._run_seq - 1 if self._run_seq else 0,
            "epoch": idx,
            "start": self._trace_base + report.start,
            "stop": self._trace_base + report.stop,
            "ops": report.stop - report.start,
            "inserts": report.inserts,
            "lookups": report.lookups,
            "deletes": report.deletes,
            "io": report.io,
            "wall_ms": round(report.seconds * 1e3, 3),
            "shards": shards,
        }
        cache = self._last_cache_delta
        if cache.accesses or cache.negative_hits or cache.evictions:
            span["cache"] = cache.as_dict()
        self.recorder.emit("epoch", **span)
        if cache.evictions or cache.writebacks:
            self.recorder.emit(
                "cache_evict",
                epoch=idx,
                evictions=cache.evictions,
                writebacks=cache.writebacks,
            )

    def metrics(self) -> MetricsRegistry:
        """The cluster metrics registry (see :mod:`repro.obs.metrics`).

        Always on; survives :func:`~repro.service.recovery.restore_service`
        and counts on after a restore.  ``metrics().render()`` gives the
        Prometheus text dump.
        """
        return self._metrics

    # -- rebalancing ---------------------------------------------------------

    def _maybe_rebalance(self) -> None:
        """Observe the closed epoch; migrate hot slots if the policy fires.

        The protocol per decision: journal the REBALANCE record
        (write-ahead, fsynced) **then** execute the moves — a crash at
        any point mid-migration leaves the record durable and recovery
        re-executes the drains deterministically.
        """
        if self.rebalancer is None:
            return
        self.rebalancer.observe(self._last_epoch_shard_io, self._epoch_slot_ops)
        moves = self.rebalancer.decide(self.epochs_run, self.directory)
        if not moves:
            return
        if self.journal is not None:
            self.journal.append_rebalance(
                self.migrations_applied,
                self.ops_committed,
                [(m.slot, m.src, m.dst) for m in moves],
            )
            self._fold_journal_metrics("rebalance")
            if self.recorder is not None:
                self.recorder.emit(
                    "fsync",
                    kind="rebalance",
                    migration=self.migrations_applied,
                    bytes=self.journal.bytes_written,
                )
        self._apply_moves(moves)
        self.rebalancer.note_moved(self.epochs_run, moves)

    def _apply_moves(self, moves: Sequence[SlotMove]) -> None:
        """Drain + refill + repoint, charging the drains to the ledgers."""
        report = apply_moves(self.directory, self._tables, moves)
        # Fold the migration's charges in immediately: the cluster
        # ledger sees every drain I/O (no free moves), the per-shard
        # marks advance past it, and migration_io keeps the separate
        # tally reports surface.
        io = self._merge_ledgers()
        self.migration_io += io
        self.migrated_slots += report.slots_moved
        self.keys_moved += report.keys_moved
        seq = self.migrations_applied
        self.migrations_applied += 1
        metrics = self._metrics
        metrics.inc("repro_migrations_total")
        metrics.inc("repro_migrated_slots_total", report.slots_moved)
        metrics.inc("repro_migration_keys_total", report.keys_moved)
        metrics.inc("repro_migration_io_total", io)
        if self.recorder is not None:
            self.recorder.emit(
                "rebalance",
                migration=seq,
                epoch=max(self.epochs_run - 1, 0),
                moves=len(moves),
                slots_moved=report.slots_moved,
                keys_moved=report.keys_moved,
                io=io,
            )

    def apply_rebalance_record(
        self, seq: int, moves: Sequence[tuple[int, int, int]]
    ) -> bool:
        """Re-execute one journaled migration during recovery.

        Returns ``False`` (a no-op) when the snapshot already contains
        migration ``seq``; raises on a sequence gap.  The re-executed
        drains are pure functions of the shard state the committed-epoch
        replay rebuilt, so the outcome is bit-identical to the original
        migration.
        """
        if seq < self.migrations_applied:
            return False
        if seq != self.migrations_applied:
            raise ValueError(
                f"migration gap: journal has migration {seq} but durable "
                f"state ends at {self.migrations_applied}"
            )
        slot_moves = [SlotMove(*m) for m in moves]
        self._apply_moves(slot_moves)
        if self.rebalancer is not None:
            self.rebalancer.note_moved(self.epochs_run, slot_moves)
        return True

    # -- aggregation / instrumentation --------------------------------------

    @property
    def stats(self) -> TableStats:
        """Aggregated operation counters over all shard tables."""
        agg = TableStats()
        for table in self._tables:
            s = table.stats
            agg.inserts += s.inserts
            agg.lookups += s.lookups
            agg.hits += s.hits
            agg.deletes += s.deletes
            agg.rebuilds += s.rebuilds
            agg.merges += s.merges
            for k, v in s.extra.items():
                agg.extra[k] = agg.extra.get(k, 0) + v
        return agg

    def io_snapshot(self) -> IOSnapshot:
        """Cluster I/O counters (merged ledger) as of the last epoch close."""
        return self.ledger.snapshot()

    def cache_snapshot(self) -> CacheStats:
        """Cluster cache counters as of the last epoch close.

        All-zero for uncached clusters (``cache_blocks=0``) — reports
        stay schema-stable across the caching axis.
        """
        return self.cache.snapshot()

    def shard_io_snapshots(self) -> list[IOSnapshot]:
        """Per-shard ledger snapshots, shard order (determinism tests)."""
        return [sub.stats.snapshot() for sub in self._contexts]

    def shard_tables(self) -> list[ExternalDictionary]:
        return list(self._tables)

    def shard_sizes(self) -> list[int]:
        return [len(table) for table in self._tables]

    def memory_high_water(self) -> int:
        """Sum of per-shard memory peaks (each machine peaks on its own)."""
        return sum(sub.memory.high_water for sub in self._contexts)

    def layout_snapshot(self) -> LayoutSnapshot:
        """Union of the (disjoint) shard snapshots, routed by shard."""
        snaps = [table.layout_snapshot() for table in self._tables]
        blocks: dict[int, tuple[int, ...]] = {}
        memory_items: frozenset[int] = frozenset()
        for snap in snaps:
            blocks.update(snap.blocks)
            memory_items |= snap.memory_items
        addresses = [snap.address for snap in snaps]
        directory = self.directory
        shards = self.shards

        def address(key: int) -> int | None:
            if shards == 1:
                return addresses[0](key)
            return addresses[directory.shard_of(key)](key)

        # Static map: router seed + shard count (2 words, as ever).  A
        # migrated map must be written down slot by slot — the honest
        # description cost of adaptivity.
        route_words = 2 if directory.is_static() else 2 + directory.slots
        return LayoutSnapshot(
            memory_items=memory_items,
            blocks=blocks,
            address=address,
            address_description_words=sum(
                snap.address_description_words for snap in snaps
            )
            + route_words,
        )

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables)

    def check_invariants(self) -> None:
        for table in self._tables:
            table.check_invariants()

    def close(self) -> None:
        """Release executor + trace-file resources (idempotent)."""
        self.executor.close()
        if self.recorder is not None:
            self.recorder.close()

    def __enter__(self) -> "DictionaryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.name}(shards={self.shards}, "
            f"executor={getattr(self.executor, 'name', self.executor)!r}, "
            f"epoch_ops={self.epoch_ops}, n={len(self)})"
        )
