"""Unified observability: span tracing, metrics, time-series export.

Three layers over the service's existing charged-I/O ledgers, all of
them relabelling (observability off ⇒ bit-identical behaviour; on ⇒
the same ledgers, just attributed to spans and series):

* :mod:`repro.obs.trace` — :class:`TraceRecorder` span trees
  (``run → epoch → shard_batch`` + point events) as crash-surviving
  crc-framed JSONL.
* :mod:`repro.obs.metrics` — the always-on :class:`MetricsRegistry`
  (counters / gauges / log-scale histograms, Prometheus text dump).
* :mod:`repro.obs.export` — per-epoch time-series rows for
  ``plots/ts_*.dat`` and the ``repro trace-summary`` tables.
"""

from .metrics import LogHistogram, MetricsRegistry, metric_key
from .trace import (
    WALL_FIELDS,
    TraceRecorder,
    TraceScan,
    charged_io,
    frame_record,
    scan_trace,
    strip_wall,
    unframe_line,
)
from .export import (
    TS_COLUMNS,
    epoch_spans,
    slowest_shard_batches,
    summarize_epochs,
    timeseries_rows,
)

__all__ = [
    "LogHistogram",
    "MetricsRegistry",
    "metric_key",
    "WALL_FIELDS",
    "TraceRecorder",
    "TraceScan",
    "charged_io",
    "frame_record",
    "scan_trace",
    "strip_wall",
    "unframe_line",
    "TS_COLUMNS",
    "epoch_spans",
    "slowest_shard_batches",
    "summarize_epochs",
    "timeseries_rows",
]
