"""Cluster metrics: counters, gauges, and log-scale histograms.

The :class:`MetricsRegistry` is the always-on aggregate companion to
the opt-in :class:`~repro.obs.trace.TraceRecorder`.  The service folds
the *same* per-shard ledger deltas it merges at epoch close (the cache
ledger's ``delta_since``/``absorb`` path) into named metrics, so the
registry inherits the ledgers' guarantees for free:

* **executor-invariant** — deltas are folded by the coordinator in
  ascending shard order, never from worker threads, so ``serial`` and
  ``threads`` runs produce identical registries;
* **deterministic** — only charged quantities and virtual-clock-derived
  values are recorded (no wall-time histograms), so two same-seed runs
  compare equal;
* **snapshot/restore compatible** — the registry pickles with the
  service snapshot and resumes counting after a restore.

Metric naming follows Prometheus conventions (``repro_*_total``
counters, plain gauges, ``_bucket``/``_sum``/``_count`` histogram
series) and :meth:`MetricsRegistry.render` emits the text exposition
format.  Histograms use fixed base-2 log-scale bins (bucket ``i``
holds values ``< 2**i``), which keeps them mergeable and seed-stable
without pre-declaring ranges.
"""

from __future__ import annotations

__all__ = ["LogHistogram", "MetricsRegistry", "metric_key"]

#: Number of base-2 buckets; 2**63 comfortably covers charged-I/O and
#: op counts per epoch.
HISTOGRAM_BINS = 64


def metric_key(name: str, labels: dict | None = None) -> str:
    """Canonical series key: ``name`` or ``name{a="1",b="2"}`` (sorted)."""
    if not labels:
        return name
    body = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{body}}}"


class LogHistogram:
    """Fixed-bin base-2 log-scale histogram of non-negative values.

    Bucket ``i`` counts observations strictly below ``2**i`` (bucket 0
    holds zeros); the last bucket is unbounded.  Two histograms built
    from the same observations in any order compare equal.
    """

    __slots__ = ("counts", "total", "sum")

    def __init__(self) -> None:
        self.counts = [0] * HISTOGRAM_BINS
        self.total = 0
        self.sum = 0

    @staticmethod
    def bucket_index(value) -> int:
        if value < 1:
            return 0
        return min(int(value).bit_length(), HISTOGRAM_BINS - 1)

    def observe(self, value) -> None:
        self.counts[self.bucket_index(value)] += 1
        self.total += 1
        self.sum += value

    def as_dict(self) -> dict:
        """Compact form: only non-empty buckets, keyed by bin index."""
        return {
            "buckets": {i: c for i, c in enumerate(self.counts) if c},
            "count": self.total,
            "sum": self.sum,
        }

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LogHistogram)
            and self.counts == other.counts
            and self.sum == other.sum
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogHistogram(count={self.total}, sum={self.sum})"


class MetricsRegistry:
    """Named counters, gauges, and histograms with optional labels.

    Writers use :meth:`inc` / :meth:`set_gauge` / :meth:`observe`;
    readers use :meth:`counter` / :meth:`gauge` / :meth:`histogram` or
    the whole-registry views :meth:`as_dict` and :meth:`render`.
    Series are created lazily on first write, so an uncached or
    non-journaled service simply never grows the corresponding series.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, LogHistogram] = {}

    # -- writers -------------------------------------------------------

    def inc(self, name: str, value=1, **labels) -> None:
        if not value:
            return
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value, **labels) -> None:
        self._gauges[metric_key(name, labels)] = value

    def observe(self, name: str, value, **labels) -> None:
        key = metric_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = LogHistogram()
        hist.observe(value)

    # -- readers -------------------------------------------------------

    def counter(self, name: str, **labels):
        return self._counters.get(metric_key(name, labels), 0)

    def gauge(self, name: str, **labels):
        return self._gauges.get(metric_key(name, labels), 0.0)

    def histogram(self, name: str, **labels) -> LogHistogram | None:
        return self._histograms.get(metric_key(name, labels))

    def as_dict(self) -> dict:
        """Deterministic plain-dict view (sorted keys; histograms compact)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                key: self._histograms[key].as_dict()
                for key in sorted(self._histograms)
            },
        }

    def render(self) -> str:
        """Prometheus text exposition of every series, sorted by key."""
        out: list[str] = []
        typed: set[str] = set()

        def base(key: str) -> str:
            return key.split("{", 1)[0]

        for key in sorted(self._counters):
            name = base(key)
            if name not in typed:
                typed.add(name)
                out.append(f"# TYPE {name} counter")
            out.append(f"{key} {self._counters[key]}")
        for key in sorted(self._gauges):
            name = base(key)
            if name not in typed:
                typed.add(name)
                out.append(f"# TYPE {name} gauge")
            value = self._gauges[key]
            out.append(f"{key} {value:.6g}" if isinstance(value, float) else f"{key} {value}")
        for key in sorted(self._histograms):
            name = base(key)
            hist = self._histograms[key]
            if name not in typed:
                typed.add(name)
                out.append(f"# TYPE {name} histogram")
            labels = key[len(name):]
            inner = labels[1:-1] if labels else ""
            cumulative = 0
            for i, count in enumerate(hist.counts):
                if not count:
                    continue
                cumulative += count
                le = f"{2 ** i}" if i < HISTOGRAM_BINS - 1 else "+Inf"
                extra = f'{inner},le="{le}"' if inner else f'le="{le}"'
                out.append(f"{name}_bucket{{{extra}}} {cumulative}")
            # The bucket series always closes with +Inf and totals.
            if hist.counts[-1] == 0:
                extra = f'{inner},le="+Inf"' if inner else 'le="+Inf"'
                out.append(f"{name}_bucket{{{extra}}} {hist.total}")
            out.append(f"{name}_sum{labels or ''} {hist.sum}")
            out.append(f"{name}_count{labels or ''} {hist.total}")
        return "\n".join(out) + ("\n" if out else "")

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MetricsRegistry)
            and self._counters == other._counters
            and self._gauges == other._gauges
            and self._histograms == other._histograms
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
