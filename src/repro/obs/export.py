"""Turn a span trace into per-epoch time-series rows and summaries.

This is the bridge between :class:`~repro.obs.trace.TraceRecorder`
output and the plot-data layer (``benchmarks/plotdata.py`` →
``plots/ts_*.dat``): one row per epoch span, with the point events
(admission, rebalance) attributed to the epoch they closed against.

Columns (the :data:`TS_COLUMNS` schema):

========== ==========================================================
epoch      epoch index within the trace
ops        operations committed by the epoch
kops       throughput over the epoch's own wall time (0 if untimed)
io_op      charged I/O per operation for the epoch
hit_rate   cache hit rate of the epoch's delta (0 when uncached)
imbalance  max-shard-I/O x shards / total-I/O for the epoch (1.0 = even)
queue      admission queue depth observed at the epoch boundary
shed       ops shed + rejected + expired during the epoch
migrated   cumulative slots migrated by the end of the epoch
========== ==========================================================
"""

from __future__ import annotations

__all__ = [
    "TS_COLUMNS",
    "epoch_spans",
    "slowest_shard_batches",
    "summarize_epochs",
    "timeseries_rows",
]

TS_COLUMNS = (
    "epoch",
    "ops",
    "kops",
    "io_op",
    "hit_rate",
    "imbalance",
    "queue",
    "shed",
    "migrated",
)


def epoch_spans(records) -> list[dict]:
    """The epoch spans of a trace, in emission order."""
    return [r for r in records if r.get("t") == "epoch"]


def _epoch_of(record: dict) -> int:
    return int(record.get("epoch", 0))


def timeseries_rows(records) -> list[dict]:
    """One :data:`TS_COLUMNS` row per epoch span in ``records``."""
    admission: dict[int, dict] = {}
    dropped: dict[int, int] = {}
    migrated: dict[int, int] = {}
    last_admission: dict | None = None
    migrated_total = 0
    for record in records:
        kind = record.get("t")
        if kind == "admission":
            epoch = _epoch_of(record)
            admission[epoch] = record
            prev = last_admission or {}
            delta = sum(
                record.get(field, 0) - prev.get(field, 0)
                for field in ("shed", "rejected", "expired")
            )
            dropped[epoch] = dropped.get(epoch, 0) + delta
            last_admission = record
        elif kind == "rebalance":
            migrated_total += record.get("slots_moved", 0)
            migrated[_epoch_of(record)] = migrated_total

    rows: list[dict] = []
    running_migrated = 0
    for span in epoch_spans(records):
        epoch = _epoch_of(span)
        ops = span.get("ops", span.get("stop", 0) - span.get("start", 0))
        io = span.get("io", 0)
        wall_ms = span.get("wall_ms", 0.0)
        shards = span.get("shards", [])
        shard_io = [s.get("io", 0) for s in shards]
        total = sum(shard_io)
        imbalance = (
            max(shard_io) * len(shard_io) / total if total and shard_io else 0.0
        )
        cache = span.get("cache")
        if cache:
            accesses = cache.get("hits", 0) + cache.get("misses", 0)
            hit_rate = cache.get("hits", 0) / accesses if accesses else 0.0
        else:
            hit_rate = 0.0
        running_migrated = migrated.get(epoch, running_migrated)
        gate = admission.get(epoch)
        rows.append(
            {
                "epoch": epoch,
                "ops": ops,
                "kops": round(ops / wall_ms, 1) if wall_ms else 0.0,
                "io_op": round(io / ops, 4) if ops else 0.0,
                "hit_rate": round(hit_rate, 4),
                "imbalance": round(imbalance, 3),
                "queue": gate.get("queue", 0) if gate else 0,
                "shed": dropped.get(epoch, 0),
                "migrated": running_migrated,
            }
        )
    return rows


def summarize_epochs(records) -> list[dict]:
    """Per-epoch summary rows for ``repro trace-summary``."""
    rows = []
    for span in epoch_spans(records):
        ops = span.get("stop", 0) - span.get("start", 0)
        io = span.get("io", 0)
        shards = span.get("shards", [])
        shard_io = [s.get("io", 0) for s in shards]
        total = sum(shard_io)
        row = {
            "epoch": _epoch_of(span),
            "ops": ops,
            "inserts": span.get("inserts", 0),
            "lookups": span.get("lookups", 0),
            "deletes": span.get("deletes", 0),
            "io": io,
            "io/op": io / ops if ops else 0.0,
            "imbalance": (
                max(shard_io) * len(shard_io) / total if total and shard_io else 0.0
            ),
        }
        if "wall_ms" in span:
            row["wall_ms"] = span["wall_ms"]
        if "vt" in span:
            row["vt"] = span["vt"]
        rows.append(row)
    return rows


def slowest_shard_batches(records, top: int = 5) -> list[dict]:
    """The ``top`` shard-batch sub-spans ranked slowest-first.

    Ranked by per-batch wall time when the trace carries it, by charged
    I/O otherwise (wall-free traces are still summarizable).
    """
    batches = []
    for span in epoch_spans(records):
        for batch in span.get("shards", []):
            batches.append(
                {
                    "epoch": _epoch_of(span),
                    "shard": batch.get("shard", 0),
                    "io": batch.get("io", 0),
                    "reads": batch.get("reads", 0),
                    "writes": batch.get("writes", 0),
                    "wall_ms": batch.get("wall_ms", 0.0),
                }
            )
    timed = any(b["wall_ms"] for b in batches)
    key = (lambda b: (b["wall_ms"], b["io"])) if timed else (lambda b: b["io"])
    batches.sort(key=key, reverse=True)
    return batches[:top]
