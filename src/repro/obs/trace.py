"""Span tracing: crc-framed JSONL records of *when* things happened.

The service's aggregate ledgers (:class:`~repro.em.iostats.IOStats`,
:class:`~repro.em.cache.CacheStats`, ``ClientReport.row()``) say *how
much* a run cost; they cannot say when inside the run a breaker
tripped, a migration fired, or the hit rate collapsed.  The
:class:`TraceRecorder` closes that gap with a span tree per run::

    run_start                       one per service (construction I/O)
    └── run                         one per DictionaryService.run()
        └── epoch                   one per closed epoch
            └── shards: [...]       per-shard batch sub-spans (embedded)

plus point events interleaved in emission order: ``fsync`` (journal
commit / rebalance barriers), ``rebalance`` (slot migrations),
``breaker`` (circuit transitions), ``admission`` (shed/reject/expiry
counts + queue depth), and ``cache_evict`` (buffer-pool pressure).

**Relabelling, never new charges.**  The recorder is a read-only
observer of deltas the service already computes at epoch close; with
tracing on, ledgers, layouts and results are bit-identical to tracing
off, and every charged I/O appears in exactly one span —
:func:`charged_io` over a trace equals the cluster ledger total (the
contract ``tests/test_obs.py`` pins).

**Two clocks.**  Every record can carry ``vt`` (the driving client's
virtual clock — deterministic) and ``wall``/``wall_ms`` (wall-clock
milliseconds — not).  :func:`strip_wall` removes the wall fields, and
the determinism contract is: same seed + virtual clock ⇒ traces
byte-identical modulo wall fields, across executors and journal on/off.

**Framing.**  One record per line: 8 hex chars of crc32 over the
compact sorted-key JSON payload, a space, the payload.  Like the epoch
journal, :func:`scan_trace` stops at the first torn or corrupt line, so
a trace written alongside the journal survives a crash with a clean
valid prefix.
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "WALL_FIELDS",
    "TraceRecorder",
    "TraceScan",
    "charged_io",
    "frame_record",
    "scan_trace",
    "strip_wall",
    "unframe_line",
]

#: Record fields that carry wall-clock time (nondeterministic by
#: nature).  Everything else in a trace is a pure function of the
#: request stream, the seeds and the virtual clock.
WALL_FIELDS = frozenset({"wall", "wall_ms"})


def frame_record(record: dict) -> bytes:
    """One crc-framed JSONL line: ``crc32-hex8 SP compact-json NL``."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%08x " % crc + payload + b"\n"


def unframe_line(line: bytes) -> dict | None:
    """Parse one framed line; ``None`` when torn/corrupt (crc or JSON)."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def strip_wall(record: dict) -> dict:
    """The record minus its wall-clock fields (recursing into sub-spans)."""
    out = {}
    for key, value in record.items():
        if key in WALL_FIELDS:
            continue
        if isinstance(value, list):
            value = [
                strip_wall(item) if isinstance(item, dict) else item
                for item in value
            ]
        out[key] = value
    return out


def charged_io(records) -> int:
    """Total charged I/O the trace attributes to spans.

    Construction (``run_start``), every epoch span, and every migration
    event each carry the ``io`` their ledger-merge delta charged; the
    three kinds partition the cluster ledger, so this sum equals
    ``service.io_snapshot().total`` — the relabelling contract.
    """
    return sum(
        r.get("io", 0)
        for r in records
        if r.get("t") in ("run_start", "epoch", "rebalance")
    )


@dataclass(frozen=True)
class TraceScan:
    """Result of scanning a trace file.

    ``records`` is the valid prefix in emission order; ``truncated`` is
    ``True`` when a torn/corrupt line stopped the scan early (the
    crash-survival case — everything before it is intact).
    """

    records: list[dict] = field(default_factory=list)
    valid_lines: int = 0
    total_lines: int = 0

    @property
    def truncated(self) -> bool:
        return self.valid_lines < self.total_lines


def scan_trace(path: str | Path) -> TraceScan:
    """Parse a crc-framed JSONL trace, stopping at the first bad line."""
    raw = Path(path).read_bytes()
    lines = [line for line in raw.split(b"\n") if line]
    records: list[dict] = []
    for line in lines:
        record = unframe_line(line)
        if record is None:
            break
        records.append(record)
    return TraceScan(
        records=records, valid_lines=len(records), total_lines=len(lines)
    )


class TraceRecorder:
    """Collects trace records; optionally streams them to a file.

    Parameters
    ----------
    path:
        Destination for the crc-framed JSONL stream.  ``None`` keeps
        the records in memory only (benchmark harnesses that feed the
        time-series exporter directly).  Each record is flushed as it
        is written, so a crash loses at most the in-flight line — the
        scanner's torn-tail rule discards it cleanly.
    wall:
        Stamp records with wall-clock fields (``wall`` = milliseconds
        since the recorder was created; span durations use
        ``wall_ms``).  Disable for byte-reproducible trace files with
        no stripping step.

    The ``vt`` attribute is the *virtual* clock: a driving client sets
    it before dispatching (and point-event emitters pass their own
    clock), so every record carries the deterministic simulation time
    alongside the wall stamps.
    """

    def __init__(self, path: str | Path | None = None, *, wall: bool = True) -> None:
        self.path = Path(path) if path is not None else None
        self.wall = wall
        #: In-memory copy of every emitted record, emission order.
        self.records: list[dict] = []
        #: Virtual-clock value stamped on subsequent records (or None).
        self.vt: float | None = None
        self.seq = 0
        self._t0 = time.perf_counter()
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")

    def emit(self, t: str, **fields) -> dict:
        """Append one record (type ``t``); returns the record dict."""
        record = {"t": t, "seq": self.seq, **fields}
        if self.vt is not None and "vt" not in record:
            record["vt"] = self.vt
        if self.wall:
            record["wall"] = round((time.perf_counter() - self._t0) * 1e3, 3)
        else:
            # Wall-free mode strips every wall field callers stamped, so
            # the whole trace is byte-reproducible, not just mostly so.
            record = strip_wall(record)
        self.seq += 1
        self.records.append(record)
        if self._fh is not None:
            self._fh.write(frame_record(record))
            self._fh.flush()
        return record

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dest = str(self.path) if self.path else "memory"
        return f"TraceRecorder({dest!r}, records={len(self.records)})"
