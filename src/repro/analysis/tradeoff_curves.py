"""Rendering Figure 1 and tabular experiment output.

The benchmark harness prints every reproduced table/figure as plain
rows; this module holds the shared formatting: aligned text tables for
row dicts and an ASCII rendition of Figure 1's tradeoff plane (x-axis
the query exponent ``c``, y-axis the amortized insertion cost).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..core.tradeoff import TradeoffCurves


def format_rows(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    float_fmt: str = "{:.6g}",
) -> str:
    """Render row dicts as an aligned, pipe-separated text table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def cell(v: Any) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    table = [[cell(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(cols)]
    lines = [
        " | ".join(c.ljust(w) for c, w in zip(cols, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines.extend(" | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in table)
    return "\n".join(lines)


def tradeoff_table(curves: TradeoffCurves) -> str:
    """Figure 1 as a printed table: one row per (c, kind) sample."""
    rows = sorted(curves.rows(), key=lambda r: (r["c"], str(r["kind"])))
    return format_rows(rows, columns=["c", "t_q", "t_u", "kind", "label"])


def render_figure1(
    curves: TradeoffCurves, *, width: int = 72, height: int = 22
) -> str:
    """ASCII plot of the tradeoff plane.

    ``L`` marks the lower-bound envelope, ``U`` the upper-bound
    envelope, ``*`` measured points; the vertical bar sits at the
    ``c = 1`` boundary the paper identifies.  The y-axis is ``t_u``
    (linear), the x-axis the exponent ``c``.
    """
    pts = [(p.c, p.insert_cost, "L") for p in curves.lower]
    pts += [(p.c, p.insert_cost, "U") for p in curves.upper]
    pts += [(p.c, p.insert_cost, "*") for p in curves.measured]
    if not pts:
        return "(no points)"

    cs = np.array([p[0] for p in pts])
    tus = np.array([p[1] for p in pts])
    c_lo, c_hi = float(cs.min()), float(cs.max())
    t_lo, t_hi = 0.0, max(1.1, float(tus.max()) * 1.05)

    grid = [[" "] * width for _ in range(height)]

    def col_of(c: float) -> int:
        return int(round((c - c_lo) / (c_hi - c_lo or 1.0) * (width - 1)))

    def row_of(t: float) -> int:
        frac = (t - t_lo) / (t_hi - t_lo or 1.0)
        return (height - 1) - int(round(frac * (height - 1)))

    if c_lo <= 1.0 <= c_hi:
        boundary = col_of(1.0)
        for r in range(height):
            grid[r][boundary] = "|"

    # Draw order gives measured points precedence over envelopes.
    for mark in ("L", "U", "*"):
        for c, t, kind in pts:
            if kind != mark:
                continue
            grid[row_of(min(max(t, t_lo), t_hi))][col_of(c)] = mark

    lines = [f"t_u (I/Os)   [b={curves.b}, n={curves.n}, m={curves.m}]"]
    for r, row in enumerate(grid):
        t_val = t_hi - (t_hi - t_lo) * r / (height - 1)
        lines.append(f"{t_val:7.3f} {''.join(row)}")
    axis = " " * 8 + "^" + " " * (width - 2)
    lines.append(f"{'':8}{'-' * width}")
    lo_lbl = f"c={c_lo:.2f}"
    hi_lbl = f"c={c_hi:.2f}"
    mid = "c=1 boundary".center(width - len(lo_lbl) - len(hi_lbl))
    lines.append(f"{'':8}{lo_lbl}{mid}{hi_lbl}")
    lines.append("        L = Thm 1 lower bound   U = upper bound   * = measured")
    del axis
    return "\n".join(lines)
