"""The concentration inequalities of Section 2, as evaluable functions.

The lower-bound proof composes four probabilistic ingredients:

1. a multiplicative Chernoff bound on how many of the ``k`` inserted
   items land in a bad function's bad index area (Lemma 2),
2. a union bound over the family ``F`` of at most ``2^{m log u}``
   address functions,
3. Lemma 3's bin-ball concentration (via stochastic domination by
   independent Bernoullis), and
4. Lemma 4's counting bound for the ``sp = ω(1)`` regime.

Every bound here is computed in **log space** so the astronomically
small tails (``e^{-φ²n/18}`` against ``2^{m log u}`` functions) stay
finite, and each returns a genuine probability in ``[0, 1]``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

_LN2 = math.log(2.0)


# ---------------------------------------------------------------------------
# Generic Chernoff machinery
# ---------------------------------------------------------------------------

def chernoff_lower_tail(mean: float, eps: float) -> float:
    """``P[X < (1−ε)·E X] ≤ exp(−ε² E X / 2)`` for sums of independent
    ``[0,1]`` variables — the form used to prove Lemma 2."""
    if not 0 <= eps <= 1:
        raise ValueError(f"ε must lie in [0,1], got {eps}")
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    return math.exp(-(eps**2) * mean / 2.0)


def chernoff_upper_tail(mean: float, eps: float) -> float:
    """``P[X > (1+ε)·E X] ≤ exp(−ε² E X / 3)`` for ``0 < ε ≤ 1``."""
    if not 0 < eps <= 1:
        raise ValueError(f"ε must lie in (0,1], got {eps}")
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    return math.exp(-(eps**2) * mean / 3.0)


def binomial_lower_tail_exact(n: int, p: float, threshold: float) -> float:
    """Exact ``P[Binomial(n,p) < threshold]`` for validating the Chernoff
    forms against ground truth in tests."""
    if threshold <= 0:
        return 0.0
    return float(stats.binom.cdf(math.ceil(threshold) - 1, n, p))


def union_bound(count: float, per_event: float) -> float:
    """``min(1, count · per_event)`` computed safely for huge ``count``.

    ``count`` may be given as a float that overflows (e.g. ``2^{m log u}``);
    pass ``math.inf`` and the result saturates at 1 unless ``per_event``
    is exactly 0.
    """
    if per_event < 0 or count < 0:
        raise ValueError("union bound needs non-negative inputs")
    if per_event == 0.0:
        return 0.0
    if math.isinf(count):
        return 1.0
    return min(1.0, count * per_event)


def log2_union_bound(log2_count: float, log_per_event: float) -> float:
    """Union bound with the event count given as ``log₂`` and the
    per-event probability as a natural log: returns a probability."""
    log2_total = log2_count + log_per_event / _LN2
    if log2_total >= 0:
        return 1.0
    if log2_total < -1074:  # below double-precision denormals
        return 0.0
    return 2.0**log2_total


# ---------------------------------------------------------------------------
# The paper's specific bounds
# ---------------------------------------------------------------------------

def log2_family_size(m: int, u: int) -> float:
    """``log₂ |F| ≤ m·log₂ u``: the memory can describe at most
    ``2^{m log u}`` distinct address functions."""
    if m <= 0 or u <= 1:
        raise ValueError(f"need m > 0 and u > 1, got m={m}, u={u}")
    return m * math.log2(u)


def lemma2_per_function_tail(phi: float, n: int) -> float:
    """Natural-log of the per-bad-function failure ``e^{−φ²n/18}``
    (the probability that < 2/3 of its expected bad-area mass arrives)."""
    if not 0 < phi <= 1:
        raise ValueError(f"φ must lie in (0,1], got {phi}")
    return -(phi**2) * n / 18.0


def lemma2_failure_probability(phi: float, n: int, m: int, u: int) -> float:
    """Probability that *some* bad function in ``F`` receives too few
    items in its bad index area: ``2^{m log u} · e^{−φ²n/18}``, safely.

    When this is ≪ 1, every bad function's slow zone is forced over
    budget, so the table must be using a good function (Lemma 2).
    """
    return log2_union_bound(log2_family_size(m, u), lemma2_per_function_tail(phi, n))


def lemma3_failure_probability(s: int, mu: float) -> float:
    """Lemma 3: the bin-ball cost is below ``(1−μ)(1−sp)s − t`` with
    probability at most ``e^{−μ²s/3}``."""
    if s <= 0:
        raise ValueError(f"s must be positive, got {s}")
    if not 0 < mu <= 1:
        raise ValueError(f"μ must lie in (0,1], got {mu}")
    return math.exp(-(mu**2) * s / 3.0)


def lemma4_failure_probability(s: int, *, constant: float = 0.05) -> float:
    """Lemma 4: the cost is below ``1/(20p)`` with probability
    ``≤ 2^{−Ω(s)}``; ``constant`` instantiates the Ω."""
    if s <= 0:
        raise ValueError(f"s must be positive, got {s}")
    if constant <= 0:
        raise ValueError(f"constant must be positive, got {constant}")
    return 2.0 ** (-constant * s)


def lemma4_counting_bound(s: int, p: float) -> float:
    """The raw counting bound inside Lemma 4's proof.

    Probability that some ``s/2``-subset of balls fits in some
    ``1/(20p)``-subset of bins:

        2 · C(2/p, 1/(20p)) · C(s, s/2) · (1/20)^{s/2},

    evaluated in log space via ``lgamma``.  Useful for checking where
    the lemma's hypotheses (``s/2 ≥ t``, ``s/2 ≥ 1/p``) actually bite.
    """
    if not 0 < p < 1:
        raise ValueError(f"p must lie in (0,1), got {p}")
    if s < 2:
        raise ValueError(f"s must be at least 2, got {s}")

    def log_choose(a: float, k: float) -> float:
        if k < 0 or k > a:
            return -math.inf
        return (
            math.lgamma(a + 1.0) - math.lgamma(k + 1.0) - math.lgamma(a - k + 1.0)
        )

    log_p = (
        math.log(2.0)
        + log_choose(2.0 / p, 1.0 / (20.0 * p))
        + log_choose(float(s), s / 2.0)
        + (s / 2.0) * math.log(1.0 / 20.0)
    )
    return min(1.0, math.exp(min(log_p, 0.0)))


def dominated_bernoulli_lower_bound(s: int, sp: float, mu: float) -> float:
    """The Lemma 3 threshold ``(1−μ)(1−sp)s``: the number of nonempty
    bins stochastically dominates a Binomial(s, 1−sp) sum, whose lower
    Chernoff tail at slack ``μ`` gives the bound (before removing t)."""
    if not 0 <= sp <= 1:
        raise ValueError(f"sp must lie in [0,1] for the bound, got {sp}")
    return (1.0 - mu) * (1.0 - sp) * s


def empirical_dominates(
    samples_upper: np.ndarray, samples_lower: np.ndarray, *, grid: int = 64
) -> bool:
    """Empirical check that ``upper`` first-order stochastically dominates
    ``lower``: the upper empirical CDF sits below the lower one on a
    shared grid.  Used by property tests on the bin-ball game."""
    both = np.concatenate([samples_upper, samples_lower]).astype(float)
    lo, hi = both.min(), both.max()
    if lo == hi:
        return True
    points = np.linspace(lo, hi, grid)
    cdf_u = np.searchsorted(np.sort(samples_upper), points, side="right") / len(
        samples_upper
    )
    cdf_l = np.searchsorted(np.sort(samples_lower), points, side="right") / len(
        samples_lower
    )
    # Allow small-sample noise: domination up to a 3-sigma DKW band.
    slack = 3.0 * math.sqrt(
        (1.0 / (2 * len(samples_upper)) + 1.0 / (2 * len(samples_lower)))
    )
    return bool(np.all(cdf_u <= cdf_l + slack))
