"""Knuth-style exact query costs for blocked external hash tables.

The paper's Section 1 cites Knuth [13, §6.4]: with blocks of ``b``
items and load factor ``α`` bounded away from 1, the expected average
cost of a successful lookup in a chained/linear-probed external hash
table is ``1 + 1/2^{Ω(b)}`` I/Os.  This module computes the *exact*
expectation for blocked chaining under the standard balls-in-bins
model, so the measured numbers of ``bench_knuth_table`` have an
analytic reference.

Model
-----
``n`` keys are hashed uniformly into ``d`` buckets; a bucket holding
``j`` items stores them in ``ceil(j/b)`` chained blocks, the first
(primary) block addressable in one I/O.  The item at in-bucket rank
``i`` (0-based) costs ``1 + floor(i/b)`` I/Os to find.  Averaging over
a uniformly chosen stored item and taking the expectation over the
random hash function gives

    t_q = (d / n) · E[ C(X) ],   C(j) = Σ_{i<j} (1 + floor(i/b)),

with ``X ~ Binomial(n, 1/d)`` (or its ``Poisson(αb)`` limit, ``α = n/(db)``).
An unsuccessful lookup probes the whole chain:
``t_q^- = E[ max(1, ceil(X/b)) ]``.

All tails are evaluated in log space where needed; the Poisson forms
are vectorised over ``α`` grids for table generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats


def _cost_of_bucket(j: int | np.ndarray, b: int) -> np.ndarray:
    """``C(j) = Σ_{i<j} (1 + floor(i/b))``: total I/Os to find every item
    of a ``j``-item bucket once, closed form.

    Splitting ``j = q·b + r``: the full blocks contribute
    ``b·Σ_{l<q}(1+l) = b·q(q+1)/2`` and the partial block ``r·(1+q)``.
    """
    j = np.asarray(j, dtype=np.int64)
    q, r = np.divmod(j, b)
    return b * q * (q + 1) // 2 + r * (1 + q)


def _chain_blocks(j: int | np.ndarray, b: int) -> np.ndarray:
    """Blocks needed for a ``j``-item bucket, with an empty bucket still
    costing one probe on an unsuccessful lookup: ``max(1, ceil(j/b))``."""
    j = np.asarray(j, dtype=np.int64)
    return np.maximum(1, -(-j // b))


def poisson_bucket_pmf(alpha: float, b: int, *, j_max: int | None = None) -> np.ndarray:
    """PMF of the Poisson(``αb``) bucket-occupancy distribution.

    ``alpha`` is the load factor, so a bucket receives ``αb`` items in
    expectation.  The support is truncated at ``j_max`` (default: far
    enough that the truncated tail is below 1e-15).
    """
    if alpha < 0:
        raise ValueError(f"load factor must be non-negative, got {alpha}")
    lam = alpha * b
    if j_max is None:
        # Poisson tail beyond mean + 12 sqrt(mean) + 30 is negligible.
        j_max = int(lam + 12 * math.sqrt(max(lam, 1.0)) + 30)
    j = np.arange(j_max + 1)
    return stats.poisson.pmf(j, lam)


def binomial_bucket_pmf(n: int, d: int, b: int) -> np.ndarray:
    """Exact Binomial(``n``, ``1/d``) bucket-occupancy PMF (truncated)."""
    if n < 0 or d <= 0:
        raise ValueError(f"need n >= 0 and d > 0, got n={n}, d={d}")
    mean = n / d
    j_max = min(n, int(mean + 12 * math.sqrt(max(mean, 1.0)) + 30))
    j = np.arange(j_max + 1)
    return stats.binom.pmf(j, n, 1.0 / d)


def expected_successful_cost(
    alpha: float, b: int, *, n: int | None = None, d: int | None = None
) -> float:
    """Expected average I/Os of a successful lookup, ``t_q``.

    With ``n`` and ``d`` given, uses the exact binomial occupancy;
    otherwise the Poisson(``αb``) limit.  At ``α`` bounded below 1 the
    result is ``1 + 1/2^{Ω(b)}`` — the Knuth numbers.
    """
    if n is not None and d is not None:
        pmf = binomial_bucket_pmf(n, d, b)
        total_items = n
        buckets = d
    else:
        pmf = poisson_bucket_pmf(alpha, b)
        total_items = alpha * b  # per-bucket expectation; d cancels below.
        buckets = 1
    j = np.arange(len(pmf))
    expected_bucket_cost = float(np.dot(pmf, _cost_of_bucket(j, b)))
    if total_items == 0:
        return 1.0
    return buckets * expected_bucket_cost / total_items


def expected_unsuccessful_cost(
    alpha: float, b: int, *, n: int | None = None, d: int | None = None
) -> float:
    """Expected I/Os of an unsuccessful lookup: probe the full chain."""
    if n is not None and d is not None:
        pmf = binomial_bucket_pmf(n, d, b)
    else:
        pmf = poisson_bucket_pmf(alpha, b)
    j = np.arange(len(pmf))
    return float(np.dot(pmf, _chain_blocks(j, b)))


def expected_chain_blocks(alpha: float, b: int) -> float:
    """Expected blocks per bucket, ``E[ceil(X/b)]`` under Poisson(``αb``).

    This is also the space blow-up of chaining relative to a perfectly
    packed table (the load-factor denominator of footnote 1).
    """
    pmf = poisson_bucket_pmf(alpha, b)
    j = np.arange(len(pmf))
    return float(np.dot(pmf, -(-j // b)))


def overflow_probability(alpha: float, b: int) -> float:
    """``P[X > b]`` for ``X ~ Poisson(αb)`` — the chance a bucket
    overflows its primary block.

    For ``α < 1`` this decays like ``2^{-Ω(b)}``; it is the engine
    behind every ``1 + 1/2^{Ω(b)}`` in the paper.  Evaluated via the
    regularised gamma function (no underflow until ~1e-300).
    """
    return float(stats.poisson.sf(b, alpha * b))


def overflow_exponent(alpha: float) -> float:
    """The decay rate ``lim −log₂ P[X > b] / b`` as ``b → ∞``.

    Large deviations for Poisson: rate = ``α − 1 − ln α`` nats per unit
    of ``b``, i.e. ``(α − 1 − ln α)/ln 2`` bits.  Positive iff ``α ≠ 1``.
    """
    if alpha <= 0:
        raise ValueError(f"load factor must be positive, got {alpha}")
    return (alpha - 1.0 - math.log(alpha)) / math.log(2.0)


@dataclass(frozen=True)
class KnuthRow:
    """One row of the Knuth reference table."""

    b: int
    alpha: float
    successful: float
    unsuccessful: float
    overflow: float

    @property
    def excess_bits(self) -> float:
        """``−log₂(t_q − 1)``: how many bits below one I/O the excess sits."""
        excess = self.successful - 1.0
        if excess <= 0:
            return math.inf
        return -math.log2(excess)


def knuth_table(
    b_values: list[int] | None = None, alphas: list[float] | None = None
) -> list[KnuthRow]:
    """The reference grid of exact Knuth numbers.

    Defaults reproduce the qualitative content of [13, §6.4]: query
    cost within ``1 + 2^{-Ω(b)}`` of one I/O for moderate ``b`` and
    ``α`` bounded below 1, degrading as ``α → 1``.
    """
    if b_values is None:
        b_values = [8, 16, 32, 64, 128, 256]
    if alphas is None:
        alphas = [0.5, 0.7, 0.8, 0.9, 0.95]
    rows = []
    for b in b_values:
        for alpha in alphas:
            rows.append(
                KnuthRow(
                    b=b,
                    alpha=alpha,
                    successful=expected_successful_cost(alpha, b),
                    unsuccessful=expected_unsuccessful_cost(alpha, b),
                    overflow=overflow_probability(alpha, b),
                )
            )
    return rows
