"""Analytic companions to the experiments.

* :mod:`repro.analysis.knuth` — exact query-cost numerics for blocked
  hash tables (the Knuth [13, §6.4] numbers the paper leans on).
* :mod:`repro.analysis.concentration` — the Chernoff/union-bound
  machinery of Section 2, as evaluable functions.
* :mod:`repro.analysis.tradeoff_curves` — Figure 1 as data + ASCII art.
"""

from .concentration import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    lemma2_failure_probability,
    lemma3_failure_probability,
    lemma4_failure_probability,
    log2_family_size,
    union_bound,
)
from .knuth import (
    expected_chain_blocks,
    expected_successful_cost,
    expected_unsuccessful_cost,
    knuth_table,
    overflow_probability,
    poisson_bucket_pmf,
)
from .tradeoff_curves import format_rows, render_figure1, tradeoff_table

__all__ = [
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "lemma2_failure_probability",
    "lemma3_failure_probability",
    "lemma4_failure_probability",
    "log2_family_size",
    "union_bound",
    "expected_chain_blocks",
    "expected_successful_cost",
    "expected_unsuccessful_cost",
    "knuth_table",
    "overflow_probability",
    "poisson_bucket_pmf",
    "format_rows",
    "render_figure1",
    "tradeoff_table",
]
