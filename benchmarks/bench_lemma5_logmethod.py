"""LEM5 — Lemma 5: the logarithmic method's cost profile.

Sweeps the growth factor ``γ ∈ {2, 4, 8, 16}`` and the input size and
reports measured amortized insertion cost and average successful-query
cost next to Lemma 5's predictions ``O((γ/b)·log(n/m))`` and
``O(log_γ(n/m))``.

Expected shape: insert cost ≪ 1 I/O and grows ~linearly in γ at fixed
``n``; query cost tracks the number of live levels, which shrinks as
γ grows — the knob trades insert cost against query cost *inside* the
o(1)-insert world.
"""

from __future__ import annotations

import math

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.core.logmethod import LogMethodHashTable
from repro.workloads.drivers import measure_query_cost
from repro.workloads.generators import UniformKeys

from conftest import emit, once

B, M, N, U = 64, 512, 8000, 2**40


def run_gamma(gamma: int):
    ctx = make_context(b=B, m=M, u=U)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=51)
    t = LogMethodHashTable(ctx, h, gamma=gamma)
    keys = UniformKeys(ctx.u, seed=52).take(N)
    t.insert_many(keys)
    insert_tu = ctx.io_total() / N
    tq = measure_query_cost(t, keys, sample_size=800, seed=53).mean
    log_term = math.log(N / M, 2)
    return {
        "gamma": gamma,
        "t_u": round(insert_tu, 4),
        "t_u_model": round(gamma / B * log_term, 4),
        "t_q": round(tq, 3),
        "t_q_model_levels": round(math.log(N / M, gamma), 2),
        "levels": len(t.nonempty_levels()),
    }


def test_lemma5(benchmark):
    rows = once(benchmark, lambda: [run_gamma(g) for g in (2, 4, 8, 16)])
    emit("Lemma 5: logarithmic method, γ sweep", rows)

    # Every configuration inserts in o(1) — the folklore win.
    for row in rows:
        assert row["t_u"] < 0.7, row
    # Levels (and so query cost) shrink with γ...
    levels = [r["levels"] for r in rows]
    assert levels == sorted(levels, reverse=True)
    tqs = [r["t_q"] for r in rows]
    assert tqs[-1] <= tqs[0] + 0.1
    # ...while insert cost rises with γ (within measurement slack).
    assert rows[0]["t_u"] <= rows[-1]["t_u"] + 0.05
    benchmark.extra_info["gamma2_tu"] = rows[0]["t_u"]
    benchmark.extra_info["gamma16_tu"] = rows[-1]["t_u"]


def test_lemma5_scaling_in_n(benchmark):
    """Insert cost grows like log(n/m): doubling n adds ≈ (γ/b) per item."""

    def sweep():
        out = []
        for n in (2000, 4000, 8000, 16000):
            ctx = make_context(b=B, m=M, u=U)
            h = MULTIPLY_SHIFT.sample(ctx.u, seed=54)
            t = LogMethodHashTable(ctx, h, gamma=2)
            t.insert_many(UniformKeys(ctx.u, seed=55).take(n))
            out.append({"n": n, "t_u": round(ctx.io_total() / n, 4)})
        return out

    rows = once(benchmark, sweep)
    emit("Lemma 5: t_u vs n (log(n/m) growth)", rows)
    tus = [r["t_u"] for r in rows]
    # Monotone-ish growth, and still o(1) at the largest n.
    assert tus[-1] >= tus[0] - 0.02
    assert tus[-1] < 0.7


if __name__ == "__main__":
    from repro.analysis.tradeoff_curves import format_rows

    print(format_rows([run_gamma(g) for g in (2, 4, 8, 16)]))
