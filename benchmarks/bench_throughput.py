"""THROUGHPUT — scalar vs. batch wall-clock on the Theorem 2 table.

The paper's quantities are exact I/O counts, but producing them at the
ROADMAP's target scales is wall-clock-bound: the scalar drivers pay
interpreter prices per key (a Python ``hash`` call, per-op bookkeeping,
an O(b) in-block scan per probe).  The batch engine moves that work to
one ``hash_array`` call, argsort bucket partitioning and bulk I/O
charging per batch — with **bit-identical I/O accounting** (enforced
here and in ``tests/test_batch_parity.py``).

Measured artifact: keys/sec for inserts and successful lookups of n
uniform keys through the scalar path (``insert_many`` + per-key
``lookup``) vs. the batch path (``insert_batch`` + ``lookup_batch``) on
``BufferedHashTable`` at n ∈ {10⁴, 10⁵, 10⁶}.

Config: b = 1024 words (an 8 KiB block of 8-byte words — a standard
SSD/RAID stripe page), m = 4096 words.  Expected shape: ≥ 5× pair
speedup at n = 10⁴–10⁵ where per-key interpreter overhead dominates the
scalar path; at n = 10⁶ the ratio compresses toward the shared
record-movement floor (the merge scans both paths must simulate) but
stays well above break-even.

Run via ``make bench`` (writes ``BENCH_throughput.json`` at the repo
root) — this file seeds the BENCH perf trajectory for future PRs.
"""

from __future__ import annotations

import time

from repro.core.buffered import BufferedHashTable
from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT

from conftest import emit, once

B, M, U = 1024, 4096, 2**61 - 1
SIZES = (10_000, 100_000, 1_000_000)
REQUIRED_SPEEDUP_AT_1E5 = 5.0


def _fresh_table():
    ctx = make_context(b=B, m=M, u=U)
    table = BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=61))
    return ctx, table


def _keys(n: int) -> list[int]:
    # UniformKeys dedup bookkeeping is driver overhead, not table work;
    # generate the key set once, outside the timed region.
    from repro.workloads.generators import UniformKeys

    return UniformKeys(U, seed=62).take(n)


def _run_scalar(keys) -> tuple[float, float, int]:
    ctx, table = _fresh_table()
    t0 = time.perf_counter()
    table.insert_many(keys)
    t1 = time.perf_counter()
    ok = all(table.lookup(k) for k in keys)
    t2 = time.perf_counter()
    assert ok, "scalar path lost keys"
    return t1 - t0, t2 - t1, ctx.stats.total


def _run_batch(keys) -> tuple[float, float, int]:
    ctx, table = _fresh_table()
    t0 = time.perf_counter()
    table.insert_batch(keys)
    t1 = time.perf_counter()
    ok = bool(table.lookup_batch(keys).all())
    t2 = time.perf_counter()
    assert ok, "batch path lost keys"
    return t1 - t0, t2 - t1, ctx.stats.total


def _measure(n: int) -> dict:
    keys = _keys(n)
    # Best-of-5 below 1e6 to damp scheduler noise around the asserted
    # ratio; the 1e6 point is single-shot (its bound has ample margin).
    reps = 5 if n < 1_000_000 else 1
    s_ins, s_look, s_io = min(
        (_run_scalar(keys) for _ in range(reps)), key=lambda r: r[0] + r[1]
    )
    b_ins, b_look, b_io = min(
        (_run_batch(keys) for _ in range(reps)), key=lambda r: r[0] + r[1]
    )
    assert s_io == b_io, (
        f"I/O parity violated at n={n}: scalar={s_io} batch={b_io}"
    )
    pair = (s_ins + s_look) / (b_ins + b_look)
    return {
        "n": n,
        "scalar_kops": round(2 * n / (s_ins + s_look) / 1e3, 1),
        "batch_kops": round(2 * n / (b_ins + b_look) / 1e3, 1),
        "insert_x": round(s_ins / b_ins, 2),
        "lookup_x": round(s_look / b_look, 2),
        "pair_x": round(pair, 2),
        "ios": s_io,
    }


def test_batch_throughput(benchmark):
    def sweep():
        return [_measure(n) for n in SIZES]

    rows = once(benchmark, sweep)
    emit("Throughput: scalar vs batch on BufferedHashTable", rows)

    by_n = {row["n"]: row for row in rows}
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["pair_speedup_1e5"] = by_n[100_000]["pair_x"]

    assert by_n[100_000]["pair_x"] >= REQUIRED_SPEEDUP_AT_1E5, (
        f"batch path must be >= {REQUIRED_SPEEDUP_AT_1E5}x at n=1e5, "
        f"got {by_n[100_000]['pair_x']}x"
    )
    # At n=1e6 the shared merge record-movement floor compresses the
    # ratio; it must still be a clear win.
    assert by_n[1_000_000]["pair_x"] >= 2.0
    # Every size must at least break even on both legs.
    for row in rows:
        assert row["insert_x"] > 1.0 and row["lookup_x"] > 1.0, row
