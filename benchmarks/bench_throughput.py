"""THROUGHPUT — scalar vs. batch, backends, and shard fan-out.

The paper's quantities are exact I/O counts, but producing them at the
ROADMAP's target scales is wall-clock-bound.  PR 1 added the batch
engine (one ``hash_array`` call, argsort partitioning, bulk charging
per batch); this harness grew two system axes with the storage-backend
PR:

* ``--backend``: the block store behind the disk — ``mapping``
  (dict-of-Block) vs. ``arena`` (contiguous numpy record arenas).  The
  backend is a representation choice: **I/O totals are asserted
  bit-identical across backends for every configuration, under both
  the paper and the strict I/O policy** (the parity suite pins the full
  counter/layout identity at small scale).
* ``--shards``: the sharded dictionary router — N independent
  ``BufferedHashTable`` shards (own disk namespace, own ``m``-word
  memory, shared I/O ledger), the data-distributed scaling step.  A
  shard of n/N keys runs fewer doubling rounds than one table of n
  keys, so the cluster moves each record fewer times — both wall-clock
  *and* cluster-wide I/O drop.

Measured artifact: keys/sec for inserts + successful lookups of n
uniform keys at n ∈ {10⁴, 10⁵, 10⁶} for the (backend × shards)
configurations, plus the PR 1 scalar-vs-batch reference on the
unsharded mapping config.  Config: b = 1024 words (an 8 KiB block of
8-byte words), m = 4096 words per machine.

Asserted shape: the batch path stays well clear of the scalar path at
n = 10⁵ (typical pair speedup 5–6×; the gate is 4× because the
reference VM's scheduler swings the measured ratio by ±20% run to run
— a real engine regression reads as 1–2×, far below the gate); the
sharded (N=8) arena config reaches ≥ 1.5× PR 1's recorded batch
keys/sec at n = 10⁶ (564 kops → the row must clear 846; observed
0.9–1.2k) and must beat this run's own unsharded baseline.

The service PR adds a third axis, the **mixed-workload service rows**
(``test_service_mixed_throughput``, also runnable alone via
``make service-bench``): a 70/25/5 lookup/insert/delete stream driven
through :class:`~repro.service.DictionaryService` by the closed-loop
client, per executor (``serial`` / ``threads``) on the sharded(8)
arena config, with the in-run unsharded-mapping batch loop on the same
mix as reference.  Rows carry throughput *and* p50/p99 per-op latency.
Asserted: the ``threads`` executor is bit-identical to ``serial``
(cluster I/O counters, per-shard ledgers, memory peaks, shard sizes,
per-op results) and sustains at least PR 4's recorded unsharded
mapping batch rate at n = 10⁶ (699.3 kops) on the mixed stream.

The durability PR adds the **journal-overhead row**: the same mixed
stream through durable-arena shards with a fsync'd epoch write-ahead
journal attached, serial executor, compared against this run's own
serial in-memory-arena leg at n = 10⁶.  The charged I/O totals are
asserted bit-identical (durability is a representation + logging
choice, invisible to the model's ledgers); wall-clock must stay within
15% (kops ratio ≥ 0.85).

The cache PR adds the **cold-vs-warm cache rows**
(``test_cache_throughput``, also runnable alone via
``make cache-bench``): a lookup-heavy mix (24k scalar probes + 2k bulk
inserts per round, six rounds) on the buffered table and the
Bloom-filtered LSM, each run uncached and with a 256-block
:class:`~repro.em.cache.BufferPool` (``cache_blocks=256``), pool
cleared after the build so round 0 is a true cold start.  Per-round
rows carry both legs' keys/sec plus the cached leg's hit rate and
Bloom ``negative_hits``; with ``$REPRO_PLOT_DIR`` set the per-table
curves also land as ``.dat`` series (``plotdata.py``).  Asserted
in-run: results bit-identical, the relabelling contract — per round
and in total, ``hits + misses == uncached charged reads``, cached
reads equal the misses, ``writes + combined`` and allocations
unchanged — and the warm cached rounds beat the uncached leg's best
keys/sec.

Run via ``make bench`` (writes ``BENCH_throughput.json`` at the repo
root) — the perf trajectory future PRs regress against.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.lsm import LSMTree
from repro.core.buffered import BufferedHashTable
from repro.core.config import KEY_DISTS
from repro.em import STRICT_POLICY, make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.service import ClosedLoopClient, DictionaryService, EpochJournal
from repro.tables import ShardedDictionary
from repro.tables.sharded import _ROUTER_SEED
from repro.workloads.generators import make_generator
from repro.workloads.trace import (
    OP_DELETE,
    OP_INSERT,
    OP_LOOKUP,
    BulkMixedWorkload,
)

from conftest import emit, once
from plotdata import write_series

B, M, U = 1024, 4096, 2**61 - 1
SIZES = (10_000, 100_000, 1_000_000)
#: (backend, shards) configurations recorded per size.
CONFIGS = (("mapping", 1), ("arena", 1), ("mapping", 8), ("arena", 8))
#: Observed 4.6–6.4 across runs on the reference VM (PR 1 recorded
#: 5.19); gated below the noise floor, far above any real regression.
REQUIRED_SPEEDUP_AT_1E5 = 4.0
#: Acceptance floor: sharded(8) arena vs. unsharded mapping at n=1e6.
REQUIRED_SHARDED_SPEEDUP_AT_1E6 = 1.5
#: PR 1's recorded batch keys/sec at n=1e6 (unsharded mapping).
PR1_BATCH_KOPS_1E6 = 564.3

#: PR 4's recorded batch keys/sec at n=1e6 (unsharded mapping reference
#: row) — the floor the threaded service must sustain on mixed traffic.
PR4_BATCH_KOPS_1E6 = 699.3
#: 70/25/5 lookup/insert/delete as (insert, hit, miss, delete) weights.
SERVICE_MIX = (0.25, 0.60, 0.10, 0.05)
#: Client window == generator chunk == epoch cap: chunks are
#: key-disjoint across kinds, so conflict cuts happen only at chunk
#: crossings and epochs stay window-sized.
SERVICE_WINDOW = 65536
SERVICE_SHARDS = 8
SERVICE_SIZES = (100_000, 1_000_000)
#: Journal-overhead gate: durable-arena + fsync'd journal must keep
#: >= this fraction of the in-memory serial arena leg's kops at n=1e6.
REQUIRED_DURABLE_KOPS_RATIO = 0.85

#: Cache-axis leg: per-shard BufferPool capacity in blocks.
CACHE_BLOCKS = 256
#: Keys loaded before the rounds (the working set the probes hit).
CACHE_N = 100_000
CACHE_ROUNDS = 6
#: Per-round mix: scalar lookups (the hot path the pool serves) plus a
#: bulk-insert tail that grows the table and invalidates frames.
CACHE_PROBES = 24_000
CACHE_GROW = 2_000
#: The last rounds, after growth churn settles, count as "warm".
CACHE_WARM_ROUNDS = 2
#: Warm cached keys/sec vs the uncached leg's best round.  Observed
#: 1.7-2.7x on the reference VM; gated well below the noise floor.
REQUIRED_WARM_CACHED_SPEEDUP = 1.15
#: (name, table memory m): the LSM leg needs room for its memtable,
#: fences and per-run Bloom filters (4 bits/key at n ~ 1.1e5).
CACHE_TABLES = (("buffered", M), ("lsm-bloom", 32_768))


def _table_factory(ctx):
    return BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=61))


def _fresh_table(backend="mapping", shards=1, policy=None):
    ctx = make_context(b=B, m=M, u=U, backend=backend, policy=policy)
    if shards == 1:
        return ctx, _table_factory(ctx)
    return ctx, ShardedDictionary(ctx, _table_factory, shards=shards)


def _keys(n: int) -> list[int]:
    # UniformKeys dedup bookkeeping is driver overhead, not table work;
    # generate the key set once, outside the timed region.
    from repro.workloads.generators import UniformKeys

    return UniformKeys(U, seed=62).take(n)


def _run_scalar(keys) -> tuple[float, float, int]:
    ctx, table = _fresh_table()
    t0 = time.perf_counter()
    table.insert_many(keys)
    t1 = time.perf_counter()
    ok = all(table.lookup(k) for k in keys)
    t2 = time.perf_counter()
    assert ok, "scalar path lost keys"
    return t1 - t0, t2 - t1, ctx.stats.total


def _run_batch(keys, backend="mapping", shards=1, policy=None) -> tuple[float, float, int]:
    ctx, table = _fresh_table(backend, shards, policy)
    t0 = time.perf_counter()
    table.insert_batch(keys)
    t1 = time.perf_counter()
    ok = bool(table.lookup_batch(keys).all())
    t2 = time.perf_counter()
    assert ok, "batch path lost keys"
    return t1 - t0, t2 - t1, ctx.stats.total


def _measure_reference(n: int) -> dict:
    """PR 1's scalar-vs-batch pair on the unsharded mapping config."""
    keys = _keys(n)
    # Best-of-5 below 1e6 to damp scheduler noise around the asserted
    # ratio; the 1e6 point is single-shot (its bound has ample margin).
    reps = 5 if n < 1_000_000 else 1
    s_ins, s_look, s_io = min(
        (_run_scalar(keys) for _ in range(reps)), key=lambda r: r[0] + r[1]
    )
    b_ins, b_look, b_io = min(
        (_run_batch(keys) for _ in range(reps)), key=lambda r: r[0] + r[1]
    )
    assert s_io == b_io, (
        f"I/O parity violated at n={n}: scalar={s_io} batch={b_io}"
    )
    pair = (s_ins + s_look) / (b_ins + b_look)
    return {
        "n": n,
        "scalar_kops": round(2 * n / (s_ins + s_look) / 1e3, 1),
        "batch_kops": round(2 * n / (b_ins + b_look) / 1e3, 1),
        "insert_x": round(s_ins / b_ins, 2),
        "lookup_x": round(s_look / b_look, 2),
        "pair_x": round(pair, 2),
        "ios": s_io,
    }


def _measure_configs(n: int) -> list[dict]:
    """Batch keys/sec per (backend × shards) config; backend-invariant I/O.

    Best-of-k everywhere (k=2 even at n=1e6): single-shot wall-clock on
    the reference VM swings ±30% with scheduler load, which is noise,
    not signal — the I/O totals, which are the model's actual output,
    are asserted exactly."""
    keys = _keys(n)
    reps = 3 if n < 1_000_000 else 2
    rows = []
    ios_by_shards: dict[int, int] = {}
    for backend, shards in CONFIGS:
        ins, look, io = min(
            (_run_batch(keys, backend, shards) for _ in range(reps)),
            key=lambda r: r[0] + r[1],
        )
        # The backend must never change the I/O total of a config.
        expected = ios_by_shards.setdefault(shards, io)
        assert io == expected, (
            f"backend changed I/O totals at n={n}, shards={shards}: "
            f"{backend}={io} expected={expected}"
        )
        rows.append(
            {
                "n": n,
                "backend": backend,
                "shards": shards,
                "batch_kops": round(2 * n / (ins + look) / 1e3, 1),
                "ios": io,
            }
        )
    return rows


def _assert_strict_policy_invariance(n: int) -> None:
    """Backend I/O identity must hold under the strict policy too."""
    keys = _keys(n)
    for shards in (1, 8):
        totals = {
            backend: _run_batch(keys, backend, shards, policy=STRICT_POLICY)[2]
            for backend in ("mapping", "arena")
        }
        assert totals["mapping"] == totals["arena"], (
            f"strict-policy I/O diverged at n={n}, shards={shards}: {totals}"
        )


def _service_stream(n: int):
    """The mixed request stream every service leg replays (one build)."""
    wl = BulkMixedWorkload(
        _uniform_gen(), mix=SERVICE_MIX, seed=63, chunk=SERVICE_WINDOW
    )
    return wl.take_arrays(n)


def _uniform_gen():
    from repro.workloads.generators import UniformKeys

    return UniformKeys(U, seed=62)


def _run_service(kinds, keys, executor: str) -> dict:
    """One closed-loop run on the sharded(8) arena config."""
    ctx = make_context(b=B, m=M, u=U, backend="arena")
    with DictionaryService(
        ctx,
        _table_factory,
        shards=SERVICE_SHARDS,
        executor=executor,
        epoch_ops=SERVICE_WINDOW,
    ) as svc:
        report = ClosedLoopClient(svc, window=SERVICE_WINDOW).drive(
            kinds, keys, check=True
        )
        io = svc.io_snapshot()
        return {
            "report": report,
            "io": (io.reads, io.writes, io.combined, io.allocations),
            "shard_ledgers": [
                (s.reads, s.writes, s.combined, s.allocations)
                for s in svc.shard_io_snapshots()
            ],
            "peak": svc.memory_high_water(),
            "sizes": svc.shard_sizes(),
        }


def _run_durable_service(kinds, keys) -> dict:
    """The durability leg: durable-arena shards + fsync'd epoch journal."""
    import os
    import shutil
    import tempfile

    workdir = tempfile.mkdtemp(prefix="repro-bench-journal-")
    try:
        ctx = make_context(b=B, m=M, u=U, backend="durable-arena")
        journal = EpochJournal(os.path.join(workdir, "epochs.journal"))
        with DictionaryService(
            ctx,
            _table_factory,
            shards=SERVICE_SHARDS,
            executor="serial",
            epoch_ops=SERVICE_WINDOW,
            journal=journal,
        ) as svc:
            report = ClosedLoopClient(svc, window=SERVICE_WINDOW).drive(
                kinds, keys, check=True
            )
            io = svc.io_snapshot()
            out = {
                "report": report,
                "io": (io.reads, io.writes, io.combined, io.allocations),
                "journal_bytes": journal.bytes_written,
                "journal_epochs": journal.committed_epochs,
            }
        journal.close()
        return out
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _run_mixed_reference(kinds, keys) -> tuple[float, int]:
    """The same mix through the bare unsharded mapping table's batch API."""
    ctx, table = _fresh_table("mapping", 1)
    n = len(kinds)
    t0 = time.perf_counter()
    for lo in range(0, n, SERVICE_WINDOW):
        k = kinds[lo : lo + SERVICE_WINDOW]
        q = keys[lo : lo + SERVICE_WINDOW]
        table.insert_batch(q[k == OP_INSERT])
        table.delete_batch(q[k == OP_DELETE])
        table.lookup_batch(q[k == OP_LOOKUP])
    return time.perf_counter() - t0, ctx.stats.total


def test_service_mixed_throughput(benchmark):
    def sweep():
        rows = []
        gate = {}
        for n in SERVICE_SIZES:
            kinds, keys = _service_stream(n)
            reps = 3 if n < 1_000_000 else 2
            legs = {
                executor: min(
                    (_run_service(kinds, keys, executor) for _ in range(reps)),
                    key=lambda r: r["report"].seconds,
                )
                for executor in ("serial", "threads")
            }
            serial, threads = legs["serial"], legs["threads"]
            # Executor determinism: charge-for-charge, shard-for-shard.
            assert serial["io"] == threads["io"], (
                f"threads changed cluster I/O at n={n}: "
                f"{threads['io']} != {serial['io']}"
            )
            assert serial["shard_ledgers"] == threads["shard_ledgers"]
            assert serial["peak"] == threads["peak"]
            assert serial["sizes"] == threads["sizes"]
            # The durable leg is gated as a *ratio*, and single-machine
            # throughput drifts run to run — so each durable rep is
            # paired with an adjacent serial arena rep and the ratio is
            # taken within the pair (best pair wins); comparing two
            # best-ofs measured minutes apart reads drift as overhead.
            pair_ratios = []
            durable = None
            for _ in range(reps):
                base = _run_service(kinds, keys, "serial")
                cand = _run_durable_service(kinds, keys)
                pair_ratios.append(
                    cand["report"].kops / base["report"].kops
                )
                if durable is None or (
                    cand["report"].seconds < durable["report"].seconds
                ):
                    durable = cand
            # Durability is representation + logging: the charged I/O
            # ledgers must not notice the memmap arenas or the journal.
            assert durable["io"] == serial["io"], (
                f"durable-arena+journal changed cluster I/O at n={n}: "
                f"{durable['io']} != {serial['io']}"
            )
            ref_seconds, ref_io = _run_mixed_reference(kinds, keys)
            for executor, leg in legs.items():
                rep = leg["report"]
                rows.append(
                    {
                        "n": n,
                        "config": f"service/{executor}/arena x{SERVICE_SHARDS}",
                        "kops": rep.row()["kops"],
                        "p50_ms": rep.row()["p50_ms"],
                        "p99_ms": rep.row()["p99_ms"],
                        "epochs": rep.epochs,
                        "ios": sum(leg["io"][:2]),
                    }
                )
            rep = durable["report"]
            rows.append(
                {
                    "n": n,
                    "config": (
                        f"service/serial+journal/durable-arena x{SERVICE_SHARDS}"
                    ),
                    "kops": rep.row()["kops"],
                    "p50_ms": rep.row()["p50_ms"],
                    "p99_ms": rep.row()["p99_ms"],
                    "epochs": rep.epochs,
                    "ios": sum(durable["io"][:2]),
                }
            )
            rows.append(
                {
                    "n": n,
                    "config": "batch-loop/mapping x1 (reference)",
                    "kops": round(n / ref_seconds / 1e3, 1),
                    "p50_ms": "",
                    "p99_ms": "",
                    "epochs": "",
                    "ios": ref_io,
                }
            )
            if n == 1_000_000:
                gate["threads_kops"] = legs["threads"]["report"].kops
                gate["reference_kops"] = n / ref_seconds / 1e3
                gate["cluster_ios"] = sum(serial["io"][:2])
                gate["reference_ios"] = ref_io
                gate["durable_kops"] = durable["report"].kops
                gate["serial_kops"] = serial["report"].kops
                gate["durable_ratio"] = max(pair_ratios)
                gate["journal_bytes"] = durable["journal_bytes"]
                gate["journal_epochs"] = durable["journal_epochs"]
        return rows, gate

    rows, gate = once(benchmark, sweep)
    emit(
        "Service: 70/25/5 lookup/insert/delete mix, closed-loop client "
        f"(window {SERVICE_WINDOW})",
        rows,
    )
    benchmark.extra_info["service_rows"] = rows
    benchmark.extra_info["service_threads_kops_1e6"] = round(
        gate["threads_kops"], 1
    )

    # The acceptance gate: the threaded sharded(8)-arena service must
    # sustain PR 4's recorded unsharded mapping batch rate on mixed
    # traffic at n=1e6.
    assert gate["threads_kops"] >= PR4_BATCH_KOPS_1E6, (
        f"service(threads, arena x{SERVICE_SHARDS}) must sustain "
        f">= {PR4_BATCH_KOPS_1E6} kops at n=1e6, got {gate['threads_kops']:.1f}"
    )
    # And it must stay within noise of this run's own unsharded mixed
    # reference (recorded ratio typically 0.95-1.1 on the reference VM;
    # a tight in-run gate would pair two noisy measurements — cf. the
    # sharded_x sanity gate below — so only a clear loss fails).
    ratio = gate["threads_kops"] / gate["reference_kops"]
    benchmark.extra_info["service_vs_reference_1e6"] = round(ratio, 2)
    assert ratio >= 0.9, (
        f"service clearly lost to the in-run unsharded reference: "
        f"{gate['threads_kops']:.1f} vs {gate['reference_kops']:.1f}"
    )
    # Sharding still pays in cluster I/O on mixed traffic.
    assert gate["cluster_ios"] <= gate["reference_ios"]

    # The durability acceptance: memmap arenas plus the fsync'd epoch
    # journal must cost at most 15% of the in-memory serial arena leg's
    # throughput at n=1e6 (best adjacent pair; see the pairing note in
    # the sweep).
    durable_ratio = gate["durable_ratio"]
    benchmark.extra_info["durable_vs_arena_1e6"] = round(durable_ratio, 2)
    benchmark.extra_info["journal_bytes_1e6"] = gate["journal_bytes"]
    benchmark.extra_info["journal_epochs_1e6"] = gate["journal_epochs"]
    assert durable_ratio >= REQUIRED_DURABLE_KOPS_RATIO, (
        f"durable-arena+journal overhead exceeds 15% at n=1e6: "
        f"{gate['durable_kops']:.1f} vs {gate['serial_kops']:.1f} kops "
        f"(best paired ratio {durable_ratio:.2f})"
    )


#: Key-distribution axis scale (report rows; the adversarial deep-dive
#: with the adaptive-routing gates lives in ``bench_skew.py``).
KEY_DIST_N = 200_000


def _key_dist_generator(dist: str):
    """A ``--key-dist`` generator exactly as the CLI builds it."""
    if dist == "zipf":
        return make_generator("zipf", U, 62, theta=1.2)
    if dist == "adversarial":
        router = MULTIPLY_SHIFT.sample(U, seed=_ROUTER_SEED)
        return make_generator(
            "adversarial", U, 62, hash_fn=router, buckets=SERVICE_SHARDS, hot=1
        )
    return make_generator(dist, U, 62)


def test_service_key_dist_throughput(benchmark):
    """The ``--key-dist`` axis: the service under every key distribution.

    One serial closed-loop run per distribution on the sharded(8) arena
    config — the same mixed stream recipe as the main service rows, with
    only the key generator swapped (exactly what ``repro serve
    --key-dist ...`` does).  The recorded shape documents the routing
    story the skew matrix digs into: hash-uniform *distinct* keys are
    balanced whatever the distribution looks like over key space, so
    every leg except the router-correlated adversarial one shows a
    worst/mean charged-I/O ratio near 1; the adversarial leg pins the
    whole stream on one shard (ratio ≈ SHARDS under static routing).
    """

    def sweep():
        rows = []
        for dist in KEY_DISTS:
            wl = BulkMixedWorkload(
                _key_dist_generator(dist),
                mix=SERVICE_MIX,
                seed=63,
                chunk=SERVICE_WINDOW,
            )
            kinds, keys = wl.take_arrays(KEY_DIST_N)
            leg = _run_service(kinds, keys, "serial")
            shard_io = [r + w for r, w, _, _ in leg["shard_ledgers"]]
            rep = leg["report"]
            rows.append(
                {
                    "key_dist": dist,
                    "n": KEY_DIST_N,
                    "kops": rep.row()["kops"],
                    "p99_ms": rep.row()["p99_ms"],
                    "ios": sum(leg["io"][:2]),
                    "worst/mean": round(
                        max(shard_io) * SERVICE_SHARDS / sum(shard_io), 2
                    ),
                }
            )
        return rows

    rows = once(benchmark, sweep)
    emit(
        f"Service key-dist axis (serial, arena x{SERVICE_SHARDS}, "
        f"static routing, n={KEY_DIST_N})",
        rows,
    )
    by_dist = {r["key_dist"]: r for r in rows}
    assert set(by_dist) == set(KEY_DISTS)
    # Hash-uniform distinct keys balance regardless of distribution
    # shape; only router-correlated skew concentrates.
    for dist in KEY_DISTS:
        if dist == "adversarial":
            assert by_dist[dist]["worst/mean"] >= 0.8 * SERVICE_SHARDS, rows
        else:
            assert by_dist[dist]["worst/mean"] < 1.5, rows
    benchmark.extra_info["key_dist_rows"] = rows


def test_batch_throughput(benchmark):
    def sweep():
        reference = [_measure_reference(n) for n in SIZES]
        configs = [row for n in SIZES for row in _measure_configs(n)]
        _assert_strict_policy_invariance(100_000)
        return reference, configs

    reference, configs = once(benchmark, sweep)
    emit("Throughput: scalar vs batch on BufferedHashTable (mapping, unsharded)",
         reference)
    emit("Throughput: batch path per backend x shards", configs)

    by_n = {row["n"]: row for row in reference}
    by_cfg = {(r["n"], r["backend"], r["shards"]): r for r in configs}
    sharded_x = round(
        by_cfg[(1_000_000, "arena", 8)]["batch_kops"]
        / by_cfg[(1_000_000, "mapping", 1)]["batch_kops"],
        2,
    )
    benchmark.extra_info["rows"] = reference
    benchmark.extra_info["config_rows"] = configs
    benchmark.extra_info["pair_speedup_1e5"] = by_n[100_000]["pair_x"]
    benchmark.extra_info["sharded_arena_speedup_1e6"] = sharded_x

    assert by_n[100_000]["pair_x"] >= REQUIRED_SPEEDUP_AT_1E5, (
        f"batch path must be >= {REQUIRED_SPEEDUP_AT_1E5}x at n=1e5, "
        f"got {by_n[100_000]['pair_x']}x"
    )
    # At n=1e6 the shared merge record-movement floor compresses the
    # ratio; it must still be a clear win.
    assert by_n[1_000_000]["pair_x"] >= 2.0
    # Every size must at least break even on both legs.
    for row in reference:
        assert row["insert_x"] > 1.0 and row["lookup_x"] > 1.0, row

    # The sharded acceptance: N=8 over the arena reaches >= 1.5x PR 1's
    # recorded batch keys/sec at n=1e6.  The in-run ratio vs. this run's
    # own unsharded baseline is recorded (typically 1.4-2x) and sanity-
    # gated loosely — pairing two noisy single-machine measurements
    # makes a tight in-run ratio gate flaky.
    assert (
        by_cfg[(1_000_000, "arena", 8)]["batch_kops"]
        >= REQUIRED_SHARDED_SPEEDUP_AT_1E6 * PR1_BATCH_KOPS_1E6
    ), (
        f"sharded(8) arena must clear {REQUIRED_SHARDED_SPEEDUP_AT_1E6}x "
        f"PR 1's {PR1_BATCH_KOPS_1E6} kops at n=1e6, "
        f"got {by_cfg[(1_000_000, 'arena', 8)]['batch_kops']}"
    )
    assert sharded_x >= 1.1, (
        f"sharding must beat the in-run unsharded baseline, got {sharded_x}x"
    )
    # Sharding must not *increase* cluster I/O: each shard runs fewer
    # doubling rounds, so the N=8 total is at most the unsharded one.
    for n in SIZES:
        assert by_cfg[(n, "arena", 8)]["ios"] <= by_cfg[(n, "mapping", 1)]["ios"]


def _cache_table(name, ctx):
    if name == "buffered":
        return _table_factory(ctx)
    return LSMTree(ctx, bloom_bits_per_key=4.0)


def _cache_workload():
    keys = _keys(CACHE_N + CACHE_ROUNDS * CACHE_GROW)
    base = keys[:CACHE_N]
    grow = [
        keys[CACHE_N + r * CACHE_GROW : CACHE_N + (r + 1) * CACHE_GROW]
        for r in range(CACHE_ROUNDS)
    ]
    # One fixed probe sequence (present keys, uniform with repetition)
    # replayed every round: the warm rounds re-touch the same blocks.
    rng = np.random.default_rng(64)
    probes = [int(base[i]) for i in rng.integers(0, CACHE_N, size=CACHE_PROBES)]
    return base, grow, probes


def _run_cache_leg(name, m, cache_blocks, base, grow, probes) -> dict:
    """One config: build, cold-start the pool, then the timed rounds."""
    ctx = make_context(b=B, m=m, u=U, cache_blocks=cache_blocks)
    table = _cache_table(name, ctx)
    table.insert_batch(base)
    if ctx.disk.cache is not None:
        # Frames are clean copies (mutators invalidate first), so
        # discarding build-time residency charges nothing: round 0 pays
        # true compulsory misses.
        ctx.disk.cache.clear()
    rounds = []
    found_sig = []
    for r in range(CACHE_ROUNDS):
        reads0 = ctx.stats.reads
        cs = ctx.cache_stats()
        mark = cs.snapshot() if cs is not None else None
        t0 = time.perf_counter()
        table.insert_batch(grow[r])
        found = 0
        lookup = table.lookup
        for k in probes:
            found += lookup(k)
        seconds = time.perf_counter() - t0
        delta = cs.delta_since(mark) if cs is not None else None
        rounds.append(
            {
                "round": r,
                "kops": round((CACHE_PROBES + CACHE_GROW) / seconds / 1e3, 1),
                "reads": ctx.stats.reads - reads0,
                "hits": delta.hits if delta else 0,
                "misses": delta.misses if delta else 0,
                "negative_hits": delta.negative_hits if delta else 0,
            }
        )
        found_sig.append(found)
    io = ctx.stats
    return {
        "rounds": rounds,
        "found": found_sig,
        "io": (io.reads, io.writes, io.combined, io.allocations),
        "cache": ctx.cache_stats(),
    }


def test_cache_throughput(benchmark):
    def sweep():
        base, grow, probes = _cache_workload()
        legs = {}
        for name, m in CACHE_TABLES:
            uncached = _run_cache_leg(name, m, 0, base, grow, probes)
            cached = _run_cache_leg(name, m, CACHE_BLOCKS, base, grow, probes)
            # Caching must be invisible to results...
            assert cached["found"] == uncached["found"], name
            # ...and to the ledgers, up to the relabelling contract:
            # every charged uncached read is exactly one hit or one
            # miss, cached reads are the misses, and the write side is
            # unchanged in total (a hit before a store merely turns a
            # combined RMW into a plain write).
            cs = cached["cache"]
            u_io, c_io = uncached["io"], cached["io"]
            assert cs.hits + cs.misses == u_io[0], name
            assert c_io[0] == cs.misses, name
            assert c_io[1] + c_io[2] == u_io[1] + u_io[2], name
            assert c_io[3] == u_io[3], name
            for ur, cr in zip(uncached["rounds"], cached["rounds"]):
                assert cr["hits"] + cr["misses"] == ur["reads"], (name, ur, cr)
            legs[name] = (uncached, cached)
        return legs

    legs = once(benchmark, sweep)
    rows = []
    curves = {}
    for name, (uncached, cached) in legs.items():
        series = []
        for ur, cr in zip(uncached["rounds"], cached["rounds"]):
            accesses = cr["hits"] + cr["misses"]
            series.append(
                {
                    "table": name,
                    "round": ur["round"],
                    "phase": "cold" if ur["round"] == 0 else "warm",
                    "uncached_kops": ur["kops"],
                    "cached_kops": cr["kops"],
                    "hit_rate": round(cr["hits"] / accesses, 4) if accesses else 0.0,
                    "uncached_reads": ur["reads"],
                    "cached_reads": cr["reads"],
                    "negative_hits": cr["negative_hits"],
                }
            )
        rows.extend(series)
        curves[name] = series
        write_series(
            f"cache_{name}",
            series,
            columns=(
                "round",
                "phase",
                "uncached_kops",
                "cached_kops",
                "hit_rate",
                "uncached_reads",
                "cached_reads",
                "negative_hits",
            ),
        )
    emit(
        f"Cache: cold-vs-warm rounds, {CACHE_PROBES // 1000}k scalar probes "
        f"+ {CACHE_GROW // 1000}k inserts/round, pool={CACHE_BLOCKS} blocks",
        rows,
    )
    benchmark.extra_info["cache_rows"] = rows

    for name, series in curves.items():
        warm = max(r["cached_kops"] for r in series[-CACHE_WARM_ROUNDS:])
        best_uncached = max(r["uncached_kops"] for r in series)
        ratio = round(warm / best_uncached, 2)
        benchmark.extra_info[f"cache_warm_speedup_{name}"] = ratio
        benchmark.extra_info[f"cache_warm_hit_rate_{name}"] = series[-1][
            "hit_rate"
        ]
        # The acceptance gate: once warm, serving the hot path from the
        # pool must beat the uncached leg's best round outright.
        assert ratio >= REQUIRED_WARM_CACHED_SPEEDUP, (
            f"warm cached {name} must clear "
            f"{REQUIRED_WARM_CACHED_SPEEDUP}x the uncached best, got {ratio}x"
        )
        # The curve must actually warm: steady state at least matches
        # the cold round's hit rate and charges fewer reads.
        assert series[-1]["hit_rate"] >= series[0]["hit_rate"], series
        assert series[-1]["cached_reads"] <= series[0]["cached_reads"], series
    # Bloom rejections are the LSM's negative cache — free in both
    # configs, counted only where a pool is attached.
    assert sum(r["negative_hits"] for r in curves["lsm-bloom"]) > 0
    assert all(r["negative_hits"] == 0 for r in curves["buffered"])
