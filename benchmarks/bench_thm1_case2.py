"""T1.2 — Theorem 1 case 2: ``t_q ≤ 1 + O(1/b)`` ⇒ ``t_u ≥ Ω(1)``.

The boundary case.  Sweeps the κ knob of the case-2 parameter tuple
(φ = 1/κ, ρ = 2κb/n, s = n/(κ²b), δ = 1/(κ⁴b)) and certifies, per κ,
the per-round distinct-block lower bound against the standard table.

Expected shape: the certified amortized bound stays bounded away from
zero (Ω(1)) for every κ — queries at ``1 + O(1/b)`` already pin the
insert cost to a constant.
"""

from __future__ import annotations

from repro.em import make_context
from repro.hashing.family import MEMOISED_IDEAL
from repro.core.config import LowerBoundParams
from repro.lowerbound.adversary import run_adversary
from repro.lowerbound.bounds import round_bound
from repro.tables.chaining import ChainedHashTable

from conftest import emit, once

B, N, U = 16, 4000, 2**40


def run_kappa(kappa: float):
    ctx = make_context(b=B, m=2 * N + 64, u=U)
    h = MEMOISED_IDEAL.sample(ctx.u, seed=37)
    table = ChainedHashTable(ctx, h, buckets=N // 4, max_load=None)
    params = LowerBoundParams.case2(B, N, kappa)
    params = LowerBoundParams(
        delta=params.delta, phi=params.phi, rho=1 / (N // 4),
        s=max(params.s, 50), case=2,
    )
    report = run_adversary(table, ctx, params, N, seed=int(kappa * 10))
    rb = round_bound(params, N, 2 * N + 64, B)
    return {
        "kappa": kappa,
        "s": params.s,
        "round_bound_frac": round(rb.expected_round_cost / params.s, 4),
        "t_u_certified": round(report.certified_tu, 4),
        "t_u_actual": round(report.measured_tu, 4),
        "rounds": len(report.rounds),
    }


def test_theorem1_case2(benchmark):
    rows = once(benchmark, lambda: [run_kappa(k) for k in (2.0, 4.0, 8.0)])
    emit("Theorem 1 case 2 (t_q = 1 + Θ(1/b) boundary: t_u = Ω(1))", rows)
    for row in rows:
        assert row["t_u_certified"] > 0.5, row  # Ω(1), with a real constant
        assert row["t_u_certified"] <= row["t_u_actual"] + 1e-9, row
    benchmark.extra_info["min_certified"] = min(r["t_u_certified"] for r in rows)


if __name__ == "__main__":
    from repro.analysis.tradeoff_curves import format_rows

    print(format_rows([run_kappa(k) for k in (2.0, 4.0, 8.0)]))
