"""KNUTH — the [13, §6.4] reference numbers the paper builds on.

Two tables:

1. The analytic grid: exact expected successful/unsuccessful lookup
   costs and overflow probabilities for blocked chaining, as functions
   of ``(b, α)`` — the ``1 + 1/2^{Ω(b)}`` numbers cited in Section 1.
2. Measured vs analytic: drive real chaining and linear-probing tables
   at matched load factors and compare the measured average successful
   query cost to the analytic chaining value.

Expected shape: measured chaining ≈ analytic to ~2 decimal places;
linear probing within the same ``1 + 2^{−Ω(b)}`` class; the excess
halves (at least) every time ``b`` doubles.
"""

from __future__ import annotations

from repro.em import make_context
from repro.hashing.family import MEMOISED_IDEAL
from repro.analysis.knuth import (
    expected_successful_cost,
    knuth_table,
    overflow_probability,
)
from repro.tables.chaining import ChainedHashTable
from repro.tables.linear_probing import LinearProbingHashTable
from repro.workloads.drivers import measure_query_cost
from repro.workloads.generators import UniformKeys

from conftest import emit, once

U = 2**40


def analytic_rows():
    return [
        {
            "b": r.b,
            "alpha": r.alpha,
            "t_q_success": round(r.successful, 6),
            "t_q_fail": round(r.unsuccessful, 6),
            "overflow": f"{r.overflow:.2e}",
        }
        for r in knuth_table(b_values=[8, 16, 32, 64, 128], alphas=[0.5, 0.8, 0.95])
    ]


def measured_row(b: int, alpha: float, n: int = 4096):
    d = max(1, round(n / (alpha * b)))
    ctx = make_context(b=b, m=2 * d + 64, u=U)
    h = MEMOISED_IDEAL.sample(ctx.u, seed=71)
    t = ChainedHashTable(ctx, h, buckets=d, max_load=None)
    keys = UniformKeys(ctx.u, seed=72).take(n)
    t.insert_many(keys)
    measured = measure_query_cost(t, keys, sample_size=2000, seed=73).mean
    analytic = expected_successful_cost(alpha, b, n=n, d=d)
    return {
        "b": b,
        "alpha": alpha,
        "measured_t_q": round(measured, 4),
        "analytic_t_q": round(analytic, 4),
        "overflow_prob": f"{overflow_probability(alpha, b):.2e}",
    }


def test_knuth_analytic_table(benchmark):
    rows = once(benchmark, analytic_rows)
    emit("Knuth §6.4 analytic reference grid", rows)
    # Excess decays (at least) exponentially in b at fixed α.
    by_alpha: dict[float, list[float]] = {}
    for r in rows:
        by_alpha.setdefault(r["alpha"], []).append(r["t_q_success"] - 1)
    for alpha, excesses in by_alpha.items():
        for small, big in zip(excesses, excesses[1:]):
            assert big <= small / 1.5 + 1e-12, (alpha, excesses)


def test_knuth_measured_vs_analytic(benchmark):
    def sweep():
        return [
            measured_row(16, 0.5),
            measured_row(16, 0.8),
            measured_row(32, 0.8),
            measured_row(64, 0.8),
        ]

    rows = once(benchmark, sweep)
    emit("Measured chaining vs analytic Knuth numbers", rows)
    for row in rows:
        assert abs(row["measured_t_q"] - row["analytic_t_q"]) < 0.05, row
    benchmark.extra_info["max_gap"] = max(
        abs(r["measured_t_q"] - r["analytic_t_q"]) for r in rows
    )


def test_linear_probing_same_class(benchmark):
    """Linear probing also sits at 1 + 2^{−Ω(b)} for α away from 1."""

    def run():
        ctx = make_context(b=32, m=1024, u=U)
        h = MEMOISED_IDEAL.sample(ctx.u, seed=74)
        t = LinearProbingHashTable(ctx, h)
        keys = UniformKeys(ctx.u, seed=75).take(4000)
        t.insert_many(keys)
        return measure_query_cost(t, keys, sample_size=1500, seed=76).mean

    tq = once(benchmark, run)
    emit(
        "Linear probing successful-lookup cost (b=32)",
        [{"table": "linear-probing", "t_q": round(tq, 4)}],
    )
    assert tq < 1.2
    benchmark.extra_info["t_q"] = tq


if __name__ == "__main__":
    from repro.analysis.tradeoff_curves import format_rows

    print(format_rows(analytic_rows()))
    print()
    print(format_rows([measured_row(16, 0.8), measured_row(64, 0.8)]))
