"""T1.3 — Theorem 1 case 3: ``t_q ≤ 1 + O(1/b^c)``, ``c < 1`` ⇒
``t_u ≥ Ω(b^{c−1})`` — and Theorem 2 matches it.

Case 3 is where buffering genuinely helps, so the certificate changes
character: the Lemma 4 bin-ball bound says each round of ``s = 32n/b^c``
insertions must still touch ``Ω(1/ρ)`` distinct blocks.  We check the
two sides against each other across a grid of block sizes:

* the closed-form lower bound ``b^{c−1}`` (per insert), and
* the *measured* amortized insert cost of the Theorem 2 table at
  ``β = b^c``, whose scaling in ``b`` should track the bound's slope
  (log-log slope ≈ ``c − 1``), sandwiching the truth.
"""

from __future__ import annotations

import math

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.core.buffered import BufferedHashTable
from repro.core.config import BufferedParams, insertion_lower_bound
from repro.workloads.generators import UniformKeys

from conftest import emit, once

N, U, C = 6000, 2**40, 0.5


def run_b(b: int):
    ctx = make_context(b=b, m=8 * b, u=U)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=41)
    t = BufferedHashTable(ctx, h, params=BufferedParams.for_query_exponent(b, C))
    t.insert_many(UniformKeys(ctx.u, seed=42).take(N))
    return {
        "b": b,
        "beta": t.beta,
        "t_u_lower": round(insertion_lower_bound(b, C), 5),
        "t_u_measured": round(ctx.io_total() / N, 5),
    }


def test_theorem1_case3_scaling(benchmark):
    bs = (32, 64, 128, 256)
    rows = once(benchmark, lambda: [run_b(b) for b in bs])
    emit(f"Theorem 1 case 3 / Theorem 2 match at c={C} (t_u = Θ(b^(c-1)))", rows)

    for row in rows:
        # Upper bound above lower bound, both o(1)-side.
        assert row["t_u_measured"] >= row["t_u_lower"] * 0.5, row
        assert row["t_u_measured"] < 1.0, row

    # Log-log slope of measured t_u vs b should be ≈ c − 1 = −1/2.
    xs = [math.log2(r["b"]) for r in rows]
    ys = [math.log2(r["t_u_measured"]) for r in rows]
    n = len(xs)
    slope = (n * sum(x * y for x, y in zip(xs, ys)) - sum(xs) * sum(ys)) / (
        n * sum(x * x for x in xs) - sum(xs) ** 2
    )
    benchmark.extra_info["loglog_slope"] = slope
    benchmark.extra_info["predicted_slope"] = C - 1
    assert -1.0 < slope < -0.15, f"slope {slope} not in the Θ(b^{C - 1}) regime"


if __name__ == "__main__":
    from repro.analysis.tradeoff_curves import format_rows

    print(format_rows([run_b(b) for b in (32, 64, 128, 256)]))
