"""THM2 — Theorem 2: the buffered hash table's two regimes.

Reproduces both halves of Theorem 2 plus two DESIGN.md ablations:

1. ``β = b^c`` for ``c ∈ {0.25, 0.5, 0.75}``: insert ``O(b^{c−1})``,
   query ``1 + O(1/b^c)``.
2. ``β = εb/(2c')`` for ``ε ∈ {0.25, 0.5, 1.0}``: insert ``≈ ε``,
   query ``1 + O(1/b)``.
3. Ablation A: hash-family sensitivity (multiply-shift vs tabulation vs
   memoised-ideal) — costs should be family-insensitive.
4. Ablation B: footnote-2 read-modify-write combining on vs off — the
   strict policy should cost at most ~2x more, shifting no conclusion.

Expected shape: measured (t_q, t_u) track the closed-form predictions
from :class:`BufferedParams`; the query excess falls as ``1/β``.
"""

from __future__ import annotations

from repro.em import make_context
from repro.em.iostats import STRICT_POLICY
from repro.hashing.family import MEMOISED_IDEAL, MULTIPLY_SHIFT, TABULATION
from repro.core.buffered import BufferedHashTable
from repro.core.config import BufferedParams
from repro.workloads.drivers import measure_query_cost
from repro.workloads.generators import UniformKeys

from conftest import emit, once

B, M, N, U = 64, 512, 6000, 2**40


def run(params: BufferedParams, *, family=MULTIPLY_SHIFT, policy=None, label=""):
    ctx = make_context(b=B, m=M, u=U, policy=policy)
    h = family.sample(ctx.u, seed=61)
    t = BufferedHashTable(ctx, h, params=params)
    keys = UniformKeys(ctx.u, seed=62).take(N)
    t.insert_many(keys)
    tu = ctx.io_total() / N
    tq = measure_query_cost(t, keys, sample_size=1000, seed=63).mean
    return {
        "label": label,
        "beta": params.beta,
        "t_u": round(tu, 4),
        "t_u_model": round(params.predicted_insert_cost(B, N, M), 4),
        "t_q": round(tq, 4),
        "t_q_model": round(1 + params.predicted_query_excess(), 4),
        "recent_frac": round(t.recent_fraction(), 4),
    }


def test_theorem2_exponent_regime(benchmark):
    def sweep():
        return [
            run(BufferedParams.for_query_exponent(B, c), label=f"c={c}")
            for c in (0.25, 0.5, 0.75)
        ]

    rows = once(benchmark, sweep)
    emit("Theorem 2: β = b^c regime", rows)
    for row in rows:
        assert row["t_u"] < 1.0, row              # o(1)-side inserts
        assert row["t_q"] < 1.35, row             # near-1 queries
        assert row["recent_frac"] <= 1 / row["beta"] + 0.15, row
    # Insert cost rises with c, query staleness falls.
    tus = [r["t_u"] for r in rows]
    assert tus == sorted(tus)
    benchmark.extra_info["tus"] = tus


def test_theorem2_epsilon_regime(benchmark):
    def sweep():
        return [
            run(BufferedParams.for_insert_budget(B, eps), label=f"eps={eps}")
            for eps in (0.25, 0.5, 1.0)
        ]

    rows = once(benchmark, sweep)
    emit("Theorem 2: t_u = ε regime (query 1 + O(1/b))", rows)
    for row in rows:
        assert row["t_q"] < 1.25, row
    # Larger ε budget → larger β → t_u grows toward ε·O(1).
    tus = [r["t_u"] for r in rows]
    assert tus == sorted(tus)


def test_ablation_hash_family(benchmark):
    def sweep():
        params = BufferedParams(beta=8)
        return [
            run(params, family=fam, label=fam.name)
            for fam in (MULTIPLY_SHIFT, TABULATION, MEMOISED_IDEAL)
        ]

    rows = once(benchmark, sweep)
    emit("Ablation A: hash-family sensitivity (β=8)", rows)
    tus = [r["t_u"] for r in rows]
    tqs = [r["t_q"] for r in rows]
    assert max(tus) - min(tus) < 0.15, rows
    assert max(tqs) - min(tqs) < 0.1, rows


def test_ablation_io_policy(benchmark):
    def sweep():
        params = BufferedParams(beta=8)
        return [
            run(params, label="paper (rmw=1 I/O)"),
            run(params, policy=STRICT_POLICY, label="strict (rmw=2 I/Os)"),
        ]

    rows = once(benchmark, sweep)
    emit("Ablation B: footnote-2 I/O policy", rows)
    paper, strict = rows
    assert paper["t_u"] <= strict["t_u"] <= 2.2 * paper["t_u"], rows
    benchmark.extra_info["paper_tu"] = paper["t_u"]
    benchmark.extra_info["strict_tu"] = strict["t_u"]


if __name__ == "__main__":
    from repro.analysis.tradeoff_curves import format_rows

    print(
        format_rows(
            [
                run(BufferedParams.for_query_exponent(B, c), label=f"c={c}")
                for c in (0.25, 0.5, 0.75)
            ]
        )
    )
