"""T1.1 — Theorem 1 case 1: ``t_q ≤ 1 + O(1/b^c)``, ``c > 1`` ⇒
``t_u ≥ 1 − O(1/b^{(c−1)/4})``.

Runs the Section 2 round adversary against the standard chaining table
(which meets the case-1 query target) for ``c ∈ {1.25, 1.5, 2}`` and
reports, per exponent:

* the proof's closed-form amortized bound (leading order),
* the *certified* per-insert lower bound ``Z/s`` measured from the
  table's own layout (distinct fast-zone addresses per round), and
* the table's actual amortized insertion cost.

Expected shape: certified ≈ actual ≈ 1 I/O — the memory buffer buys
essentially nothing once queries must be this fast.
"""

from __future__ import annotations

from repro.em import make_context
from repro.hashing.family import MEMOISED_IDEAL
from repro.core.config import LowerBoundParams, insertion_lower_bound
from repro.lowerbound.adversary import run_adversary
from repro.tables.chaining import ChainedHashTable

from conftest import emit, once

B, N, U = 16, 4000, 2**40


def run_case(c: float):
    ctx = make_context(b=B, m=2 * N + 64, u=U)
    h = MEMOISED_IDEAL.sample(ctx.u, seed=31)
    # Fixed-capacity table sized so nearly every item is one I/O away
    # (load ≈ 1/4) — the hash table the case-1 target forces.
    table = ChainedHashTable(ctx, h, buckets=N // 4, max_load=None)
    params = LowerBoundParams.case1(B, N, c)
    # The paper's asymptotic round size collapses at toy scale; keep the
    # proof's structure with a round size that yields ≥ 6 rounds.
    params = LowerBoundParams(
        delta=params.delta, phi=max(params.phi, 0.05), rho=1 / (N // 4),
        s=max(params.s, N // 10), case=1,
    )
    report = run_adversary(table, ctx, params, N, seed=int(c * 100))
    return {
        "c": c,
        "t_u_bound": round(insertion_lower_bound(B, c), 4),
        "t_u_certified": round(report.certified_tu, 4),
        "t_u_actual": round(report.measured_tu, 4),
        "rounds": len(report.rounds),
        "mean_query_lb": round(report.mean_query_lb, 4),
    }


def test_theorem1_case1(benchmark):
    rows = once(benchmark, lambda: [run_case(c) for c in (1.25, 1.5, 2.0)])
    emit("Theorem 1 case 1 (buffering is useless for c > 1)", rows)
    for row in rows:
        # The proof's accounting captures ≥ 70% of each insert even at
        # toy scale, and the table really pays ≈ 1 I/O per insert.
        assert row["t_u_certified"] > 0.7, row
        assert row["t_u_actual"] > 0.9, row
        # Certified never exceeds actual (it is a lower bound).
        assert row["t_u_certified"] <= row["t_u_actual"] + 1e-9, row
        benchmark.extra_info[f"certified_c{row['c']}"] = row["t_u_certified"]


if __name__ == "__main__":
    from repro.analysis.tradeoff_curves import format_rows

    print(format_rows([run_case(c) for c in (1.25, 1.5, 2.0)]))
