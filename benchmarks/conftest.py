"""Shared helpers for the benchmark harness.

Every benchmark prints the rows/series of the paper artifact it
reproduces (run with ``pytest benchmarks/ --benchmark-only -s`` to see
them), records the headline numbers in ``benchmark.extra_info`` so they
land in the pytest-benchmark JSON, and asserts the *shape* the paper
predicts — who wins, by roughly what factor, where the crossover falls.

Scales are chosen so the whole harness finishes in minutes on a laptop:
the measured quantity is an exact I/O count, not wall time, so small
``n`` loses precision only through load-factor granularity, not noise.
"""

from __future__ import annotations

import pytest

from repro.analysis.tradeoff_curves import format_rows


def emit(title: str, rows, *, columns=None) -> None:
    """Print one reproduced table with a header banner."""
    print()
    print(f"== {title} ==")
    print(format_rows(rows, columns=columns))


@pytest.fixture
def table_printer():
    return emit


def once(benchmark, fn):
    """Run a deterministic measurement exactly once under pytest-benchmark.

    I/O counts don't fluctuate, so a single round both keeps the harness
    fast and records a wall-time datapoint for regression tracking.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
