"""Regenerate every ``plots/*.dat`` from the checked-in ``BENCH_*.json``.

Benches stash each series they emit into
``benchmark.extra_info["series"]`` (a ``{name: {columns, rows}}`` dict,
see :func:`plotdata.series_payload`), so the ``.dat`` plot files are a
pure function of the recorded benchmark JSON.  ``make plots`` runs this
script to rebuild them all without re-running any benchmark::

    $ python benchmarks/regen_plots.py
    plots/slo_sweep_shed.dat
    plots/ts_slo_knee.dat
    ...

Exits non-zero if no ``BENCH_*.json`` holds any series payload, so a
broken pipeline can't silently produce an empty plots directory.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from plotdata import write_series


def regen(root: Path, outdir: Path) -> list[Path]:
    """Rewrite every stored series under ``outdir``; return the paths."""
    written: list[Path] = []
    for bench_file in sorted(root.glob("BENCH_*.json")):
        data = json.loads(bench_file.read_text())
        for bench in data.get("benchmarks", []):
            series = bench.get("extra_info", {}).get("series", {})
            for name in sorted(series):
                payload = series[name]
                path = write_series(
                    name,
                    payload["rows"],
                    columns=tuple(payload["columns"]),
                    outdir=outdir,
                )
                if path is not None:
                    written.append(path)
    return written


def main(argv: list[str] | None = None) -> int:
    root = Path(__file__).resolve().parent.parent
    written = regen(root, root / "plots")
    if not written:
        print("regen_plots: no series payloads in BENCH_*.json", file=sys.stderr)
        return 1
    for path in written:
        print(path.relative_to(root))
    return 0


if __name__ == "__main__":
    sys.exit(main())
