"""BASE — context: buffering helps everything *except* fast-query hashing.

One insert stream, every structure, two numbers each: amortized insert
cost and average successful point-query cost.  This is the paper's
Section 1 motivation as a table:

* external stack/queue: O(1/b) per op (queries n/a),
* buffer tree & LSM & log-method: o(1) inserts, multi-I/O queries,
* B-tree: Θ(log_b n) on both sides (no buffering, ordered),
* chaining hash table: ~1 I/O inserts but 1-I/O queries,
* Theorem 2's buffered hash table: o(1) inserts *and* 1 + O(1/b^c)
  queries — optimal per Theorem 1, and the only row in the bottom-left
  quadrant.
"""

from __future__ import annotations

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.baselines.btree import BTree
from repro.baselines.buffer_tree import BufferTree
from repro.baselines.lsm import LSMTree
from repro.baselines.priority_queue import ExternalPriorityQueue
from repro.baselines.stack_queue import ExternalQueue, ExternalStack
from repro.core.buffered import BufferedHashTable
from repro.core.config import BufferedParams
from repro.core.logmethod import LogMethodHashTable
from repro.tables.chaining import ChainedHashTable
from repro.workloads.drivers import measure_table

from conftest import emit, once

B, M, N, U = 64, 1024, 6000, 2**40


def ctx_factory():
    return make_context(b=B, m=M, u=U)


FACTORIES = {
    "chaining-hash": lambda c: ChainedHashTable(
        c, MULTIPLY_SHIFT.sample(c.u, 81), buckets=2 * N // B, max_load=None
    ),
    "buffered-hash (Thm2)": lambda c: BufferedHashTable(
        c, MULTIPLY_SHIFT.sample(c.u, 81), params=BufferedParams(beta=4)
    ),
    "log-method (Lem5)": lambda c: LogMethodHashTable(
        c, MULTIPLY_SHIFT.sample(c.u, 81)
    ),
    "lsm-tree": lambda c: LSMTree(c, gamma=4, memtable_items=128),
    "buffer-tree": lambda c: BufferTree(c),
    "b-tree": lambda c: BTree(c),
}


def dictionary_rows():
    rows = []
    for name, factory in FACTORIES.items():
        m = measure_table(ctx_factory, factory, N, seed=82)
        rows.append(
            {
                "structure": name,
                "t_u (insert I/Os)": round(m.t_u, 4),
                "t_q (query I/Os)": round(m.t_q, 4),
            }
        )
    return rows


def stack_queue_rows():
    rows = []
    ctx = ctx_factory()
    st = ExternalStack(ctx)
    for i in range(N):
        st.push(i)
    for _ in range(N):
        st.pop()
    rows.append({"structure": "external-stack", "t_u (insert I/Os)": round(ctx.io_total() / (2 * N), 4), "t_q (query I/Os)": "n/a"})
    ctx = ctx_factory()
    q = ExternalQueue(ctx)
    for i in range(N):
        q.enqueue(i)
    for _ in range(N):
        q.dequeue()
    rows.append({"structure": "external-queue", "t_u (insert I/Os)": round(ctx.io_total() / (2 * N), 4), "t_q (query I/Os)": "n/a"})
    ctx = ctx_factory()
    pq = ExternalPriorityQueue(ctx)
    for i in range(N):
        pq.push((i * 2654435761) % (10**9))
    for _ in range(N):
        pq.pop_min()
    rows.append({"structure": "external-pqueue", "t_u (insert I/Os)": round(ctx.io_total() / (2 * N), 4), "t_q (query I/Os)": "n/a"})
    return rows


def test_baseline_contrast(benchmark):
    rows = once(benchmark, lambda: dictionary_rows() + stack_queue_rows())
    emit("The power (and limit) of buffering, one workload", rows)
    by_name = {r["structure"]: r for r in rows}

    chain = by_name["chaining-hash"]
    buffered = by_name["buffered-hash (Thm2)"]
    btree = by_name["b-tree"]
    buffer_tree = by_name["buffer-tree"]
    lsm = by_name["lsm-tree"]

    # The classic table: ~1-I/O inserts, ~1-I/O queries.
    assert chain["t_u (insert I/Os)"] > 0.9
    assert chain["t_q (query I/Os)"] < 1.1
    # Buffered structures insert in o(1)...
    for row in (buffered, lsm, buffer_tree):
        assert row["t_u (insert I/Os)"] < 0.7, row
    # ...but only Theorem 2's table keeps queries near one I/O.
    assert buffered["t_q (query I/Os)"] < 1.35
    assert lsm["t_q (query I/Os)"] > buffered["t_q (query I/Os)"]
    assert buffer_tree["t_q (query I/Os)"] > buffered["t_q (query I/Os)"]
    # The B-tree pays the ordered tax on both sides.
    assert btree["t_u (insert I/Os)"] >= 0.9
    assert btree["t_q (query I/Os)"] > 1.0
    # Stack and queue: the purest buffering win.
    assert by_name["external-stack"]["t_u (insert I/Os)"] < 3 / B
    assert by_name["external-queue"]["t_u (insert I/Os)"] < 3 / B
    # The priority queue needs merges, but stays far below 1 I/O per op.
    assert by_name["external-pqueue"]["t_u (insert I/Os)"] < 0.25

    benchmark.extra_info["buffered_tu"] = buffered["t_u (insert I/Os)"]
    benchmark.extra_info["chain_tu"] = chain["t_u (insert I/Os)"]


if __name__ == "__main__":
    from repro.analysis.tradeoff_curves import format_rows

    print(format_rows(dictionary_rows() + stack_queue_rows()))
