"""Per-configuration time-series plot data (``.dat``) emitter.

The cache benchmark measures *curves* — keys/sec and hit rate per
round, cold start to steady state, one series per (table, config) —
and rows buried in ``BENCH_throughput.json`` are awkward to feed to a
plotting pipeline.  This module drops each series as a
whitespace-aligned ``.dat`` file with one ``#``-commented header line,
the format both gnuplot and ``numpy.loadtxt`` read unchanged::

    # round  phase  uncached_kops  cached_kops  hit_rate
    0        cold   216.1          336.3        0.964
    1        warm   211.6          334.0        0.963

so ``plot "cache_buffered.dat" using 1:4`` (or a batch-run driver
looping over configs) works with no JSON post-processing.

Emission is opt-in: series land under ``$REPRO_PLOT_DIR`` when it is
set (``make cache-bench`` points it at ``plots/``) and are skipped
silently otherwise, so a plain ``make bench`` writes no extra files.

Benches should also stash every series they emit into
``benchmark.extra_info["series"]`` via :func:`series_payload`; the
``make plots`` target (``benchmarks/regen_plots.py``) then regenerates
every ``plots/*.dat`` from the checked-in ``BENCH_*.json``, so plot
data can never silently go stale relative to the recorded numbers.

:func:`write_timeseries` is the shared exporter for *per-epoch* series
derived from an observability trace (:mod:`repro.obs.export`): one
``plots/ts_<name>.dat`` per configuration with the fixed
``TS_COLUMNS`` schema (kops, io/op, hit rate, imbalance, queue depth,
sheds, migrations per epoch).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import TS_COLUMNS  # noqa: E402

__all__ = [
    "TS_COLUMNS",
    "plot_dir",
    "series_payload",
    "timeseries_payload",
    "write_series",
    "write_timeseries",
]


def plot_dir() -> Path | None:
    """The opt-in output directory (``$REPRO_PLOT_DIR``), or ``None``."""
    d = os.environ.get("REPRO_PLOT_DIR")
    return Path(d) if d else None


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def write_series(
    name: str,
    rows: list[dict],
    *,
    columns: tuple[str, ...],
    outdir: str | Path | None = None,
) -> Path | None:
    """Write one time series as ``<outdir>/<name>.dat``.

    ``rows`` is a list of dicts (extra keys are ignored); ``columns``
    picks and orders the emitted fields.  ``outdir`` defaults to
    :func:`plot_dir`; when that is unset (or ``rows`` is empty) nothing
    is written and ``None`` is returned, so callers can emit
    unconditionally.
    """
    out = Path(outdir) if outdir is not None else plot_dir()
    if out is None or not rows:
        return None
    cells = [[_cell(row[c]) for c in columns] for row in rows]
    widths = [
        max(len(head), *(len(line[i]) for line in cells))
        for i, head in enumerate(columns)
    ]
    # The leading "# " widens the first column of every data line so
    # values stay aligned under their header.
    lines = ["# " + "  ".join(h.ljust(w) for h, w in zip(columns, widths))]
    for line in cells:
        padded = "  ".join(v.ljust(w) for v, w in zip(line, widths))
        lines.append("  " + padded)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{name}.dat"
    path.write_text("\n".join(line.rstrip() for line in lines) + "\n")
    return path


def write_timeseries(
    name: str, rows: list[dict], *, outdir: str | Path | None = None
) -> Path | None:
    """Write a per-epoch observability series as ``ts_<name>.dat``.

    ``rows`` come from :func:`repro.obs.export.timeseries_rows`; the
    column set is the fixed :data:`TS_COLUMNS` schema so every
    configuration's file plots with the same gnuplot recipe.
    """
    return write_series(f"ts_{name}", rows, columns=TS_COLUMNS, outdir=outdir)


def series_payload(rows: list[dict], *, columns: tuple[str, ...]) -> dict:
    """JSON-serialisable series for ``benchmark.extra_info["series"]``.

    Store as ``extra_info["series"][name] = series_payload(...)``; the
    ``make plots`` regenerator replays every stored payload through
    :func:`write_series`, so the ``.dat`` files are a pure function of
    the checked-in ``BENCH_*.json``.
    """
    return {
        "columns": list(columns),
        "rows": [{c: row[c] for c in columns} for row in rows],
    }


def timeseries_payload(rows: list[dict]) -> dict:
    """:func:`series_payload` with the ``ts_*`` schema pre-applied.

    Store under the ``ts_``-prefixed name (``series["ts_slo_knee"]``) so
    the regenerator writes the same filename :func:`write_timeseries`
    does.
    """
    return series_payload(rows, columns=TS_COLUMNS)
