"""LEM2 — Lemma 2: bad address functions blow up the slow zone.

Plants characteristic vectors of varying badness (bad-area mass λ_f)
and measures, under uniform inserts, how many items are forced out of
the fast zone — the executable content of Lemma 2's claim that a table
answering queries in ``1 + δ`` must be using a good function.

For a planted f with bad mass λ on ``hot`` indices, ``≈ λk`` of ``k``
items land in the bad area but only ``b · hot`` fit in its fast zone;
the rest are slow.  Expected shape: slow-zone size grows linearly in
λ_f once ``λk`` clears the bad area's capacity, crossing the
inequality-(1) budget ``m + δk`` exactly where the lemma says bad
functions die.
"""

from __future__ import annotations

import numpy as np

from repro.lowerbound.charvec import planted_bad_vector, from_counts

from conftest import emit, once

# D·B must comfortably exceed K so the *uniform* function keeps almost
# everything fast — otherwise every function looks bad.
B, D, K, M = 16, 2048, 20_000, 256
DELTA = 1 / B
HOT = 4


def run_lambda(lam: float):
    """Simulate k uniform items addressed by a planted-λ function."""
    rng = np.random.default_rng(int(lam * 1000) + 7)
    if lam == 0.0:
        vec = from_counts(np.ones(D))
    else:
        vec = planted_bad_vector(D, hot_indices=HOT, hot_mass=lam)
    # Throw k items into the D indices with the vector's probabilities.
    counts = rng.multinomial(K, vec.alphas)
    # Fast zone: each index's block holds ≤ b items; memory absorbs m.
    fast = int(np.minimum(counts, B).sum())
    overflow = K - fast
    slow = max(0, overflow - M)
    budget = M + DELTA * K
    return {
        "lambda_f": lam,
        "bad_area_items": int(counts[:HOT].sum()) if lam > 0 else 0,
        "slow_zone": slow,
        "budget_m_plus_dk": round(budget, 1),
        "violates_query_claim": slow > budget,
    }


def test_lemma2(benchmark):
    lams = (0.0, 0.05, 0.1, 0.2, 0.4, 0.8)
    rows = once(benchmark, lambda: [run_lambda(l) for l in lams])
    emit("Lemma 2: slow zone vs bad-function mass λ_f", rows)

    # Good functions obey inequality (1); decisively bad ones cannot.
    assert rows[0]["violates_query_claim"] is False
    assert rows[-1]["violates_query_claim"] is True
    # Slow zone grows monotonically in λ_f.
    slows = [r["slow_zone"] for r in rows]
    assert slows == sorted(slows)
    # The crossover happens where λK first clears the bad-area capacity
    # + memory + δK ≈ (b·HOT + M + δK)/K ≈ 4.4% + ... — i.e. between
    # λ = 0.05 and λ = 0.8 at these parameters.
    flips = [r["lambda_f"] for r in rows if r["violates_query_claim"]]
    benchmark.extra_info["first_violating_lambda"] = flips[0]
    assert 0.05 <= flips[0] <= 0.4


if __name__ == "__main__":
    from repro.analysis.tradeoff_curves import format_rows

    print(format_rows([run_lambda(l) for l in (0.0, 0.05, 0.1, 0.2, 0.4, 0.8)]))
