"""SKEW MATRIX — static vs. adaptive routing under hostile key streams.

The static router splits keys ``hash % N`` forever; every other
benchmark drives it with hash-uniform distinct keys, which are balanced
*by construction* whatever the distribution's shape over key space —
the router hash destroys the correlation.  Skew that actually hurts a
sharded dictionary must correlate with the *router*, so this harness
builds the two streams that do:

* **adversarial buckets** — rejection-sampled keys that all land in
  router bucket 0 of ``SHARDS`` (the Lemma-2 "planted bad function"
  geometry aimed at the routing layer instead of the table);
* **hot-range Zipf** — Zipf(θ=1.2) ranks confined to the same hot
  bucket: the skewed-popularity variant of the same attack.

Under the static map both pin every op — inserts, and therefore the
hit-lookups and deletes drawn from the live set — onto shard 0 of 8
(worst/mean charged-I/O ratio ≈ 8) while seven shard machines idle.
The adaptive service observes per-slot load at epoch close and migrates
hot slots between epochs (``tables/rebalance.py``), spreading the 64
hot slots across the cluster.

A wider matrix (uniform / Zipf θ sweep / clustered / sequential /
adversarial at smaller n) records honestly that router-uncorrelated
skew stays balanced and relabelling never changes results.

Asserted gates (ISSUE 9), on both hostile legs at n = 10⁶ over the
sharded(8) arena config:

* **ratio cut** — adaptive routing cuts the cumulative worst/mean
  charged-I/O ratio by ≥ 2× vs. the static router;
* **goodput** — adaptive goodput ≥ 1.15× static at the same config,
  measured in the repo's currency: ops per charged I/O.  The hot
  shard's table is ~8× oversized under static routing and the buffered
  table's per-op I/O grows with table size, so balancing genuinely
  *saves* I/O — the win the issue targets ("less charged I/O under
  skew, not just more parallelism"); a 1-core VM's wall clock cannot
  express eight shard machines, so wall kops and the critical-path I/O
  (busiest machine per epoch, what a real cluster would wait on) are
  reported alongside, not gated;
* **no free moves** — migration I/O is charged (> 0), included in the
  adaptive leg's goodput denominator, and reported;
* **relabelling** — lookup/delete results and final cluster size are
  identical static vs. adaptive, per leg.

With ``$REPRO_PLOT_DIR`` set (``make skew-bench``), each hostile leg's
per-epoch observability trace lands through the shared exporter as
``plots/ts_skew_<leg>_{static,adaptive}.dat`` (the fixed ``TS_COLUMNS``
schema: kops, io/op, imbalance, migrated slots per epoch) and the
matrix as ``plots/skew_matrix.dat``.  Headline numbers land in
``benchmark.extra_info`` → ``BENCH_skew.json``; every series is also
stashed in ``extra_info["series"]`` so ``make plots`` regenerates the
``.dat`` files from the JSON alone.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.buffered import BufferedHashTable
from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.obs import TraceRecorder, timeseries_rows
from repro.service import DictionaryService
from repro.tables.sharded import _ROUTER_SEED
from repro.workloads.generators import (
    AdversarialBucketKeys,
    ClusteredKeys,
    SequentialKeys,
    UniformKeys,
    ZipfKeys,
)
from repro.workloads.trace import BulkMixedWorkload

from conftest import emit, once
from plotdata import series_payload, timeseries_payload, write_series, write_timeseries

B, M, U = 1024, 4096, 2**61 - 1
SHARDS = 8
WINDOW = 8192
MIX = (0.25, 0.60, 0.10, 0.05)
#: Gate legs (the two router-correlated attacks).
GATE_N = 1_000_000
#: Wider matrix legs (report-only rows).
MATRIX_N = 200_000
ZIPF_THETAS = (1.1, 1.2, 1.4)
#: Acceptance gates.
REQUIRED_RATIO_CUT = 2.0
REQUIRED_GOODPUT_RATIO = 1.15


def _router():
    return MULTIPLY_SHIFT.sample(U, seed=_ROUTER_SEED)


class HotRangeZipfKeys(ZipfKeys):
    """Zipf-popular keys confined to the router's hot bucket.

    The Zipf mixer scatters ranks over all of ``U``; the rejection step
    keeps only keys whose *router* bucket is hot, so popularity skew and
    placement skew attack the same shard — the compound worst case.
    """

    def __init__(self, u, seed=0, *, theta, hash_fn, buckets, hot=1):
        super().__init__(u, seed, theta=theta)
        self.hash_fn, self.buckets, self.hot = hash_fn, buckets, hot

    def _candidates(self, count: int) -> np.ndarray:
        cand = super()._candidates(count * max(2, self.buckets // self.hot + 1))
        keep = cand[
            self.hash_fn.bucket_array(cand, self.buckets) < np.uint64(self.hot)
        ]
        return keep[:count]


def _generator(leg: str):
    """A fresh seeded generator per (leg, run) — streams must match."""
    if leg == "uniform":
        return UniformKeys(U, seed=62)
    if leg.startswith("zipf-"):
        return ZipfKeys(U, seed=62, theta=float(leg.split("-", 1)[1]))
    if leg == "clustered":
        return ClusteredKeys(U, seed=62, clusters=8)
    if leg == "sequential":
        return SequentialKeys(U, seed=62, start=1, stride=3)
    if leg == "adversarial":
        return AdversarialBucketKeys(
            U, seed=62, hash_fn=_router(), buckets=SHARDS, hot=1
        )
    if leg == "hot-zipf":
        return HotRangeZipfKeys(
            U, seed=62, theta=1.2, hash_fn=_router(), buckets=SHARDS, hot=1
        )
    raise ValueError(leg)


def _stream(leg: str, n: int):
    wl = BulkMixedWorkload(_generator(leg), mix=MIX, seed=63, chunk=WINDOW)
    return wl.take_arrays(n)


def _table_factory(ctx):
    return BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=61))


def _drive(kinds, keys, *, adaptive: bool) -> dict:
    """One closed-loop run, window by window, sampling per-window skew.

    Construction I/O is excluded from the skew accounting (marks are
    taken before the drive): the question is where the *traffic* lands.
    Migration drains run between windows and are part of the adaptive
    run's charged totals and wall time — no free moves.

    The gate numbers (ratio, critical path, goodput) stay mark-based;
    an in-memory span recorder rides along only to feed the per-epoch
    ``ts_*`` time-series export (the relabelling contract — the trace
    never changes what is charged — is pinned by ``tests/test_obs.py``).
    """
    ctx = make_context(b=B, m=M, u=U, backend="arena")
    recorder = TraceRecorder(None)
    with DictionaryService(
        ctx,
        _table_factory,
        shards=SHARDS,
        epoch_ops=WINDOW,
        rebalance=True if adaptive else None,
        obs=recorder,
    ) as svc:
        marks = svc.shard_io_snapshots()
        base = list(marks)
        found_parts, removed_parts = [], []
        window_s: list[float] = []
        critical_io = 0
        n = len(kinds)
        t0 = time.perf_counter()
        for lo in range(0, n, WINDOW):
            t1 = time.perf_counter()
            run = svc.run(kinds[lo : lo + WINDOW], keys[lo : lo + WINDOW])
            window_s.append(time.perf_counter() - t1)
            found_parts.append(run.lookup_found)
            removed_parts.append(run.delete_removed)
            snaps = svc.shard_io_snapshots()
            deltas = [(s - m).total for s, m in zip(snaps, marks)]
            marks = snaps
            critical_io += max(deltas)
        seconds = time.perf_counter() - t0
        totals = [(s - m).total for s, m in zip(svc.shard_io_snapshots(), base)]
        return {
            "kops": len(kinds) / seconds / 1e3,
            "p99_ms": float(np.percentile(window_s, 99)) * 1e3,
            "ops_per_io": len(kinds) / sum(totals),
            "total_io": sum(totals),
            "critical_io": critical_io,
            "ratio": max(totals) * SHARDS / sum(totals),
            "shard_io": totals,
            "ts": timeseries_rows(recorder.records),
            "found": np.concatenate(found_parts),
            "removed": np.concatenate(removed_parts),
            "size": len(svc),
            "migrated_slots": svc.migrated_slots,
            "keys_moved": svc.keys_moved,
            "migration_io": svc.migration_io,
            "migrations": svc.migrations_applied,
        }


def _row(leg, n, mode, r) -> dict:
    return {
        "leg": leg,
        "n": n,
        "routing": mode,
        "kops": round(r["kops"], 1),
        "p99_ms": round(r["p99_ms"], 2),
        "io": r["total_io"],
        "crit_io": r["critical_io"],
        "ops/io": round(r["ops_per_io"], 3),
        "worst/mean": round(r["ratio"], 2),
        "migrations": r["migrations"],
        "migrated_slots": r["migrated_slots"],
        "keys_moved": r["keys_moved"],
        "migration_io": r["migration_io"],
    }


def _assert_relabelling(leg, static, adaptive) -> None:
    assert np.array_equal(static["found"], adaptive["found"]), leg
    assert np.array_equal(static["removed"], adaptive["removed"]), leg
    assert static["size"] == adaptive["size"], leg


def test_skew_matrix(benchmark):
    gate_legs = ("adversarial", "hot-zipf")
    matrix_legs = (
        "uniform",
        *(f"zipf-{t}" for t in ZIPF_THETAS),
        "clustered",
        "sequential",
        "adversarial",
    )

    def sweep():
        gates, matrix = {}, {}
        for leg in gate_legs:
            kinds, keys = _stream(leg, GATE_N)
            gates[leg] = (
                _drive(kinds, keys, adaptive=False),
                _drive(kinds, keys, adaptive=True),
            )
        for leg in matrix_legs:
            kinds, keys = _stream(leg, MATRIX_N)
            matrix[leg] = (
                _drive(kinds, keys, adaptive=False),
                _drive(kinds, keys, adaptive=True),
            )
        return gates, matrix

    gates, matrix = once(benchmark, sweep)

    rows, series = [], {}
    for leg in gates:
        static, adaptive = gates[leg]
        _assert_relabelling(leg, static, adaptive)
        rows.append(_row(leg, GATE_N, "static", static))
        rows.append(_row(leg, GATE_N, "adaptive", adaptive))
        # Per-epoch observability export, one series per (leg, routing):
        # plots/ts_skew_<leg>_<mode>.dat via the shared exporter.
        for mode, r in (("static", static), ("adaptive", adaptive)):
            name = f"skew_{leg.replace('-', '_')}_{mode}"
            series[f"ts_{name}"] = timeseries_payload(r["ts"])
            write_timeseries(name, r["ts"])
    matrix_rows = []
    for leg in matrix:
        static, adaptive = matrix[leg]
        _assert_relabelling(leg, static, adaptive)
        matrix_rows.append(_row(leg, MATRIX_N, "static", static))
        matrix_rows.append(_row(leg, MATRIX_N, "adaptive", adaptive))
    matrix_cols = (
        "leg", "n", "routing", "kops", "worst/mean",
        "migrated_slots", "migration_io",
    )
    series["skew_matrix"] = series_payload(
        [dict(r) for r in rows + matrix_rows], columns=matrix_cols
    )
    write_series(
        "skew_matrix", [dict(r) for r in rows + matrix_rows], columns=matrix_cols
    )
    emit(
        f"Skew gates: static vs adaptive routing, n={GATE_N:,}, "
        f"sharded({SHARDS}) arena, epoch {WINDOW}",
        rows,
    )
    emit(f"Skew matrix, n={MATRIX_N:,} (report-only rows)", matrix_rows)

    # -- acceptance gates -------------------------------------------------
    for leg in gate_legs:
        static, adaptive = gates[leg]
        cut = static["ratio"] / adaptive["ratio"]
        # Goodput in the EM cost model: ops per charged I/O, migration
        # charges included in the adaptive denominator (no free moves).
        goodput = adaptive["ops_per_io"] / static["ops_per_io"]
        # The attack really concentrates the static cluster's traffic.
        assert static["ratio"] >= 0.8 * SHARDS, (leg, static["ratio"])
        assert cut >= REQUIRED_RATIO_CUT, (
            f"{leg}: adaptive routing must cut the worst/mean charged-I/O "
            f"ratio >= {REQUIRED_RATIO_CUT}x, got {cut:.2f}x "
            f"({static['ratio']:.2f} -> {adaptive['ratio']:.2f})"
        )
        assert goodput >= REQUIRED_GOODPUT_RATIO, (
            f"{leg}: adaptive goodput (ops per charged I/O, migration "
            f"included) must reach {REQUIRED_GOODPUT_RATIO}x static, got "
            f"{goodput:.3f}x ({static['total_io']} -> "
            f"{adaptive['total_io']} I/Os for {GATE_N} ops)"
        )
        # Migration work is charged and reported, never free.
        assert adaptive["migrations"] > 0 and adaptive["migrated_slots"] > 0
        assert adaptive["migration_io"] > 0
        assert static["migration_io"] == 0
        benchmark.extra_info[f"{leg}_static_ratio"] = round(static["ratio"], 2)
        benchmark.extra_info[f"{leg}_adaptive_ratio"] = round(adaptive["ratio"], 2)
        benchmark.extra_info[f"{leg}_ratio_cut"] = round(cut, 2)
        benchmark.extra_info[f"{leg}_goodput_ratio"] = round(goodput, 3)
        benchmark.extra_info[f"{leg}_static_kops"] = round(static["kops"], 1)
        benchmark.extra_info[f"{leg}_adaptive_kops"] = round(adaptive["kops"], 1)
        benchmark.extra_info[f"{leg}_critical_io_cut"] = round(
            static["critical_io"] / adaptive["critical_io"], 2
        )
        benchmark.extra_info[f"{leg}_migration_io"] = adaptive["migration_io"]

    # Router-uncorrelated skew is already balanced: the adaptive service
    # must leave well enough alone (uniform leg, cheapest check).  Buffer
    # flushes make individual windows bursty enough to trip an occasional
    # probe migration, so the bound is negligible churn, not literal zero:
    # migration I/O under 1% of the leg's charged I/O.
    uni_static, uni_adaptive = matrix["uniform"]
    assert uni_static["ratio"] < 1.5
    assert uni_adaptive["migration_io"] < 0.01 * uni_adaptive["total_io"], (
        f"uniform leg churned: {uni_adaptive['migration_io']} migration I/Os "
        f"vs {uni_adaptive['total_io']} total"
    )

    benchmark.extra_info["gate_rows"] = rows
    benchmark.extra_info["matrix_rows"] = matrix_rows
    benchmark.extra_info["series"] = series
    print(
        "skew gates: "
        + "; ".join(
            f"{leg}: ratio {gates[leg][0]['ratio']:.2f}->"
            f"{gates[leg][1]['ratio']:.2f}, "
            f"kops {gates[leg][0]['kops']:.0f}->{gates[leg][1]['kops']:.0f}"
            for leg in gate_legs
        )
    )
