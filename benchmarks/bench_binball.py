"""LEM34 — Lemmas 3 and 4: the bin-ball game's cost concentration.

Simulates ``(s, p, t)`` games in both lemma regimes and reports the
empirical failure probability of each lemma's bound next to its
analytic tail, plus the optimal-vs-random adversary ablation the
DESIGN.md calls out.

Expected shape:

* Lemma 3 regime (``sp ≤ 1/3``): cost concentrates at
  ``≈ (1 − sp)s − t``; empirical failures below ``e^{−µ²s/3}``.
* Lemma 4 regime (``sp = ω(1)``): even the optimal adversary keeps
  ``≥ 1/(20p)`` bins; failures below ``2^{−Ω(s)}`` (i.e. none seen).
* The optimal adversary's mean cost ≤ the random adversary's —
  the exact greedy is the strongest opponent the proof must beat.
"""

from __future__ import annotations

from repro.lowerbound.binball import (
    GameParams,
    lemma3_failure_probability,
    lemma4_failure_probability,
    play_many,
)

from conftest import emit, once

TRIALS = 300
MU = 0.15


def lemma3_row(s: int, p: float, t: int):
    params = GameParams(s=s, p=p, t=t)
    assert params.lemma3_applies()
    ens = play_many(params, TRIALS, seed=s)
    bound = (1 - MU) * (1 - s * p) * s - t
    return {
        "regime": "lemma3",
        "s": s,
        "sp": round(s * p, 3),
        "t": t,
        "bound": round(bound, 1),
        "mean_cost": round(ens.mean_cost, 1),
        "emp_fail": ens.empirical_failure_probability(bound),
        "analytic_fail": round(lemma3_failure_probability(s, MU), 6),
    }


def lemma4_row(s: int, p: float, t: int):
    params = GameParams(s=s, p=p, t=t)
    assert params.lemma4_applies()
    ens = play_many(params, TRIALS, seed=s + 1)
    bound = 1 / (20 * p)
    return {
        "regime": "lemma4",
        "s": s,
        "sp": round(s * p, 3),
        "t": t,
        "bound": round(bound, 1),
        "mean_cost": round(ens.mean_cost, 1),
        "emp_fail": ens.empirical_failure_probability(bound),
        "analytic_fail": round(lemma4_failure_probability(s), 6),
    }


def build_rows():
    rows = [
        lemma3_row(300, 1 / 3000, 30),
        lemma3_row(600, 1 / 6000, 60),
        lemma3_row(1200, 1 / 3600, 0),
        lemma4_row(800, 1 / 100, 300),
        lemma4_row(1600, 1 / 200, 600),
        lemma4_row(3200, 1 / 100, 1000),
    ]
    return rows


def test_binball_lemmas(benchmark):
    rows = once(benchmark, build_rows)
    emit("Lemmas 3-4: bin-ball game, empirical vs analytic tails", rows)
    for row in rows:
        # The lemma bounds hold with at most a small-sample excess.
        assert row["emp_fail"] <= row["analytic_fail"] + 2 / TRIALS, row
        assert row["mean_cost"] >= row["bound"], row
    benchmark.extra_info["rows"] = len(rows)


def test_adversary_ablation(benchmark):
    def ablate():
        params = GameParams(s=1500, p=0.005, t=500)
        opt = play_many(params, TRIALS, seed=9, adversary="optimal")
        rand = play_many(params, TRIALS, seed=9, adversary="random")
        return {"optimal": opt.mean_cost, "random": rand.mean_cost}

    res = once(benchmark, ablate)
    emit(
        "Ablation: optimal (greedy-exact) vs random removal adversary",
        [{"adversary": k, "mean_cost": round(v, 2)} for k, v in res.items()],
    )
    assert res["optimal"] <= res["random"]
    benchmark.extra_info.update(res)


if __name__ == "__main__":
    from repro.analysis.tradeoff_curves import format_rows

    print(format_rows(build_rows()))
