"""SERVICE SLO — latency vs. offered load, and the sustainable knee.

The closed-loop rows in ``bench_throughput.py`` measure *capacity*:
the client always has the next window ready, so reported latency is
pure service time.  This harness measures what the paper's dictionary
looks like as a *service*: an open-loop client offers load at a fixed
rate regardless of completion (seeded Poisson arrivals on a virtual
clock), so queueing delay appears the moment offered load approaches
capacity and the latency/throughput trade-off becomes visible.

Method: one closed-loop calibration run measures the config's capacity
``C`` (kops); the sweep then replays the same stream at offered loads
``f × C`` for f in LOADS through a bounded admission queue with the
``shed`` policy, using the calibrated rate as a deterministic virtual
service-time model — so every row (arrival times, queue depths, shed
decisions, percentiles) is exactly reproducible.  Each row reports
offered load, goodput (executed ops / makespan), p50/p99 end-to-end
latency (queueing included), queueing-delay p99, and the shed /
rejected / deadline-exceeded counts.  A final chaos row re-runs a
saturated sweep leg with injected fault bursts and per-shard breakers
(:func:`repro.service.run_overload_chaos`) to show degradation stays
accounted under shard failure.

Asserted shape:

* **knee** — some row with p99 ≤ SLO_MS sustains goodput within 20%
  of the calibrated closed-loop capacity (the service keeps its
  throughput while meeting the SLO, rather than meeting it only when
  idle);
* **graceful overload** — at the deepest overload factor the shed
  policy is actually shedding, goodput holds at ≥ 60% of capacity
  (no congestion collapse), and accounting conserves every op;
* **breaker chaos** — the chaos row trips at least one breaker and
  accounts every op (no silent loss under quarantine);
* **trace overhead** — re-running the closed-loop calibration leg with
  span tracing to a file costs ≤ 5% kops (best-of-3, alternating) and
  leaves the charged-I/O ledger bit-identical (tracing relabels, never
  recounts).

Headline numbers land in ``benchmark.extra_info`` → ``make slo-bench``
writes ``BENCH_service.json`` at the repo root.  Every emitted series
is also stashed in ``extra_info["series"]`` so ``make plots`` can
regenerate the ``.dat`` files from the JSON alone; the knee-load sweep
leg additionally exports its per-epoch observability trace as
``plots/ts_slo_knee.dat``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.buffered import BufferedHashTable
from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.obs import TraceRecorder, timeseries_rows
from repro.service import (
    AdmissionController,
    ClosedLoopClient,
    DictionaryService,
    ObsConfig,
    OpenLoopClient,
    PoissonArrivals,
    run_overload_chaos,
)
from repro.workloads.trace import BulkMixedWorkload

from conftest import emit, once
from plotdata import (
    series_payload,
    timeseries_payload,
    write_series,
    write_timeseries,
)

B, M, U = 1024, 4096, 2**61 - 1
N = 120_000
#: Dispatch window; smaller than the throughput bench's 65536 so the
#: queue drains in fine enough grains for meaningful latency tails.
WINDOW = 8192
SHARDS = 8
MIX = (0.25, 0.60, 0.10, 0.05)
#: Offered-load factors, as multiples of calibrated capacity.
LOADS = (0.5, 0.8, 1.0, 1.3, 1.7, 2.5)
QUEUE_DEPTH = 16384
SLO_MS = 50.0
#: Knee gate: best SLO-meeting goodput vs. closed-loop capacity.
REQUIRED_KNEE_RATIO = 0.80
#: Overload gate: goodput retained at the deepest factor (shed policy).
REQUIRED_OVERLOAD_RATIO = 0.60
#: Chaos row scale (dry + fault legs run the full stream twice).
CHAOS_N = 60_000
#: The chaos service runs memory-starved (b=64, m=512 words per shard)
#: so the stream actually spills to disk — at the sweep's B/M the whole
#: chaos stream is buffer-resident and there would be no I/O to fault.
CHAOS_B, CHAOS_M = 64, 512
#: Trace-overhead gate: kops with file tracing vs. without (best-of-3).
REQUIRED_TRACE_RATIO = 0.95
TRACE_TRIALS = 3


def _table_factory(ctx):
    return BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=61))


def _make_service(obs=None):
    ctx = make_context(b=B, m=M, u=U, backend="arena")
    return DictionaryService(
        ctx, _table_factory, shards=SHARDS, epoch_ops=WINDOW, obs=obs
    )


def _make_chaos_service():
    ctx = make_context(b=CHAOS_B, m=CHAOS_M, u=U, backend="arena")
    return DictionaryService(
        ctx, _table_factory, shards=SHARDS, epoch_ops=WINDOW
    )


def _stream(n):
    from repro.workloads.generators import UniformKeys

    wl = BulkMixedWorkload(
        UniformKeys(U, seed=62), mix=MIX, seed=63, chunk=WINDOW
    )
    return wl.take_arrays(n)


def _trace_overhead(kinds, keys):
    """Closed-loop kops with and without file tracing (best-of-3 each).

    Runs the legs alternately so thermal / allocator drift hits both
    sides equally; also pins the relabelling contract — the charged-I/O
    ledger must be bit-identical with tracing on.
    """

    def _leg(obs):
        with _make_service(obs) as svc:
            rep = ClosedLoopClient(svc, window=WINDOW).drive(kinds, keys)
            ledger = svc.io_snapshot().as_dict()
        return rep.kops, ledger

    best_off = best_on = 0.0
    ledger_off = ledger_on = None
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = str(Path(tmp) / "overhead.jsonl")
        for trial in range(TRACE_TRIALS):
            kops, ledger_off = _leg(None)
            best_off = max(best_off, kops)
            Path(trace_path).unlink(missing_ok=True)
            kops, ledger_on = _leg(ObsConfig(trace_path=trace_path))
            best_on = max(best_on, kops)
    assert ledger_on == ledger_off, (
        f"tracing changed the charged-I/O ledger: {ledger_on} vs {ledger_off}"
    )
    return best_off, best_on


def test_service_slo_sweep(benchmark):
    def sweep():
        kinds, keys = _stream(N)

        # Calibration: closed-loop capacity of this exact config/stream.
        with _make_service() as svc:
            base = ClosedLoopClient(svc, window=WINDOW).drive(kinds, keys)
        capacity_kops = base.kops
        service_rate = base.ops / base.seconds

        rows, reports, traces = [], [], []
        for factor in LOADS:
            # In-memory recorder per leg: the knee leg's records become
            # the ts_slo_knee per-epoch export after the knee is known.
            recorder = TraceRecorder(None)
            with _make_service(recorder) as svc:
                client = OpenLoopClient(
                    svc,
                    PoissonArrivals(factor * service_rate, seed=11),
                    controller=AdmissionController(
                        queue_depth=QUEUE_DEPTH, policy="shed"
                    ),
                    service_rate=service_rate,
                )
                rep = client.drive(kinds, keys)
            rows.append(dict({"load_x": factor}, **rep.row()))
            reports.append(rep)
            traces.append(recorder.records)

        # SLO-aware degradation leg: same overload through an unbounded
        # queue, but every op carries a deadline sized to the queueing
        # delay the overload actually builds — late work is dropped as
        # deadline_exceeded instead of being served uselessly late.
        deadline_s = (QUEUE_DEPTH / service_rate) / 2
        with _make_service() as svc:
            client = OpenLoopClient(
                svc,
                PoissonArrivals(LOADS[-1] * service_rate, seed=11),
                controller=AdmissionController(deadline_s=deadline_s),
                service_rate=service_rate,
            )
            deadline_rep = client.drive(kinds, keys)
        rows.append(dict({"load_x": "2.5+ddl"}, **deadline_rep.row()))

        chaos = run_overload_chaos(
            _make_chaos_service,
            *_stream(CHAOS_N),
            service_rate=service_rate / 4,
            rate_factor=1.5,
            queue_depth=QUEUE_DEPTH,
            policy="shed",
            seed=5,
        )

        kops_off, kops_on = _trace_overhead(kinds, keys)
        return (
            capacity_kops,
            service_rate,
            rows,
            reports,
            traces,
            deadline_rep,
            chaos,
            (kops_off, kops_on),
        )

    (
        capacity_kops,
        service_rate,
        rows,
        reports,
        traces,
        deadline_rep,
        chaos,
        (kops_off, kops_on),
    ) = once(benchmark, sweep)
    emit(
        f"Open-loop latency vs offered load (capacity {capacity_kops:.1f} "
        f"kops, shed policy, SLO p99 <= {SLO_MS:g} ms)",
        rows,
    )

    # Per-config series for the plotting pipeline: emitted as .dat now
    # (opt-in via $REPRO_PLOT_DIR, e.g. `make slo-bench`) AND stashed in
    # extra_info["series"] so `make plots` can regenerate them from
    # BENCH_service.json alone.
    series_cols = (
        "load_x", "goodput_kops", "p50_ms", "p99_ms", "queue_p99",
        "shed", "rejected", "deadline_exceeded",
    )
    sweep_rows = [r for r in rows if isinstance(r["load_x"], float)]
    deadline_rows = [dict(deadline_rep.row(), load_x=LOADS[-1])]
    series = {
        "slo_sweep_shed": series_payload(sweep_rows, columns=series_cols),
        "slo_deadline": series_payload(deadline_rows, columns=series_cols),
    }
    write_series("slo_sweep_shed", sweep_rows, columns=series_cols)
    write_series("slo_deadline", deadline_rows, columns=series_cols)

    ok_rows = [r for r in sweep_rows if r["p99_ms"] <= SLO_MS]
    assert ok_rows, f"no offered load met the p99 <= {SLO_MS} ms SLO"
    knee = max(ok_rows, key=lambda r: r["goodput_kops"])
    knee_ts = timeseries_rows(traces[sweep_rows.index(knee)])
    series["ts_slo_knee"] = timeseries_payload(knee_ts)
    write_timeseries("slo_knee", knee_ts)
    assert knee["goodput_kops"] >= REQUIRED_KNEE_RATIO * capacity_kops, (
        f"SLO-sustainable goodput {knee['goodput_kops']:.1f} kops is below "
        f"{REQUIRED_KNEE_RATIO:.0%} of closed-loop capacity "
        f"{capacity_kops:.1f} kops"
    )

    # Graceful overload: shedding engaged, goodput held, every op
    # accounted at the deepest factor.
    deep = sweep_rows[-1]
    assert deep["shed"] > 0, "deepest overload factor never shed load"
    assert deep["goodput_kops"] >= REQUIRED_OVERLOAD_RATIO * capacity_kops, (
        f"goodput collapsed under overload: {deep['goodput_kops']:.1f} kops "
        f"vs capacity {capacity_kops:.1f}"
    )
    for factor, rep in zip(LOADS, reports):
        total = rep.executed + rep.shed + rep.rejected + rep.deadline_exceeded
        assert total == N, f"load {factor}x does not conserve ops: {rep}"
    # Underload rows execute everything.
    assert reports[0].executed == N

    # The deadline leg converts lateness into accounted drops.
    assert deadline_rep.deadline_exceeded > 0
    assert (
        deadline_rep.executed
        + deadline_rep.shed
        + deadline_rep.rejected
        + deadline_rep.deadline_exceeded
        == N
    )

    assert chaos.accounted == chaos.ops == CHAOS_N
    assert chaos.breaker_trips >= 1, "chaos row never tripped a breaker"

    # Tracing must be observation, not perturbation: ≤5% kops and a
    # bit-identical ledger (checked inside _trace_overhead).
    assert kops_on >= REQUIRED_TRACE_RATIO * kops_off, (
        f"file tracing cost too much: {kops_on:.1f} kops traced vs "
        f"{kops_off:.1f} untraced"
    )

    benchmark.extra_info["series"] = series
    benchmark.extra_info["trace_overhead"] = {
        "kops_off": round(kops_off, 1),
        "kops_on": round(kops_on, 1),
        "ratio": round(kops_on / kops_off, 3),
    }
    benchmark.extra_info["capacity_kops"] = round(capacity_kops, 1)
    benchmark.extra_info["service_rate_ops"] = round(service_rate, 1)
    benchmark.extra_info["slo_ms"] = SLO_MS
    benchmark.extra_info["max_sustainable_kops"] = round(
        knee["goodput_kops"], 1
    )
    benchmark.extra_info["knee_load_x"] = knee["load_x"]
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["chaos"] = {
        "ops": chaos.ops,
        "executed": chaos.executed,
        "shed": chaos.shed,
        "breaker_trips": chaos.breaker_trips,
        "breaker_recoveries": chaos.breaker_recoveries,
        "retries": chaos.retries,
        "faults_injected": chaos.faults_injected,
    }
    print(
        f"max sustainable goodput at p99 <= {SLO_MS:g} ms: "
        f"{knee['goodput_kops']:.1f} kops at {knee['load_x']}x "
        f"(capacity {capacity_kops:.1f} kops); chaos: "
        f"{chaos.breaker_trips} trips, {chaos.executed}/{chaos.ops} executed; "
        f"trace overhead: {kops_off:.1f} -> {kops_on:.1f} kops "
        f"({kops_on / kops_off:.1%})"
    )
