"""FIG1 — Figure 1: the query–insertion tradeoff plane.

Regenerates the paper's only figure: the lower-bound envelope of
Theorem 1 and the upper-bound envelope (standard table for ``c > 1``,
Theorem 2's buffered table for ``c ≤ 1``), overlaid with *measured*
points from the actual structures:

* the standard chaining table — the ``t_q = 1 + 1/2^{Ω(b)}`` corner,
* the buffered table at ``β = b^c`` for ``c ∈ {0.25, 0.5, 0.75}``,
* the ε-insert instantiation at the ``c = 1`` boundary.

Expected shape: measured points sit between the envelopes; insert cost
collapses from ≈ 1 I/O to ``o(1)`` exactly as the query allowance
crosses ``1 + Θ(1/b)``.
"""

from __future__ import annotations

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.analysis.tradeoff_curves import render_figure1, tradeoff_table
from repro.core.buffered import BufferedHashTable
from repro.core.config import BufferedParams
from repro.core.jensen_pagh import JensenPaghTable
from repro.core.tradeoff import crossover_exponent, figure1_curves
from repro.tables.chaining import ChainedHashTable
from repro.workloads.drivers import measure_table

from conftest import emit, once

B, M, N, U = 64, 512, 6000, 2**40


def ctx_factory():
    return make_context(b=B, m=M, u=U)


def chaining_factory(c):
    return ChainedHashTable(
        c, MULTIPLY_SHIFT.sample(c.u, 21), buckets=2 * N // B, max_load=None
    )


def buffered_factory(exponent):
    def make(c):
        return BufferedHashTable(
            c,
            MULTIPLY_SHIFT.sample(c.u, 21),
            params=BufferedParams.for_query_exponent(B, exponent),
        )

    return make


def epsilon_factory(c):
    return BufferedHashTable(
        c,
        MULTIPLY_SHIFT.sample(c.u, 21),
        params=BufferedParams.for_insert_budget(B, 0.5),
    )


def build_figure():
    curves = figure1_curves(B, N, M)
    std = measure_table(ctx_factory, chaining_factory, N, seed=1)
    # The standard table realises any c > 1 target; plot it at c = 2.
    curves.add_measured(2.0, std.t_q, std.t_u, "standard chaining")
    for c in (0.25, 0.5, 0.75):
        m = measure_table(ctx_factory, buffered_factory(c), N, seed=1)
        curves.add_measured(c, m.t_q, m.t_u, f"buffered β=b^{c}")
    eps = measure_table(ctx_factory, epsilon_factory, N, seed=1)
    curves.add_measured(1.0, eps.t_q, eps.t_u, "buffered ε-insert")
    # Jensen–Pagh [12]: queries 1 + O(1/√b) without buffering — the
    # c = 0.5 point on the *unbuffered* frontier the paper improves on.
    jp = measure_table(
        ctx_factory,
        lambda c: JensenPaghTable(c, MULTIPLY_SHIFT.sample(c.u, 21)),
        N,
        seed=1,
    )
    curves.add_measured(0.5, jp.t_q, jp.t_u, "Jensen-Pagh [12]")
    return curves


def test_figure1(benchmark):
    curves = once(benchmark, build_figure)
    print()
    print(render_figure1(curves))
    emit("Figure 1 data", curves.rows())

    measured = {p.label: p for p in curves.measured}
    std = measured["standard chaining"]
    cheap = measured["buffered β=b^0.25"]
    # The paper's jump: the standard table pays ~1 I/O per insert with a
    # ~1-I/O query; allowing t_q = 1 + O(1/b^0.25) buys a ≥ 2x cheaper
    # insert (asymptotically b^{0.75}x).
    assert std.insert_cost > 0.9
    assert std.query_cost < 1.05
    assert cheap.insert_cost < std.insert_cost / 2
    # Jensen–Pagh sits at the same query class as the c = 0.5 buffered
    # point but pays ~1 I/O per insert — Theorem 2 strictly beats it.
    jp = measured["Jensen-Pagh [12]"]
    half = measured["buffered β=b^0.5"]
    assert jp.insert_cost > 0.9
    assert half.insert_cost < jp.insert_cost
    # The theoretical envelopes put the crossover at c = 1.
    x = crossover_exponent(curves, threshold=0.5)
    assert x is not None and 0.8 <= x <= 1.3
    benchmark.extra_info["crossover_c"] = x
    benchmark.extra_info["std_tu"] = std.insert_cost
    benchmark.extra_info["buffered_c025_tu"] = cheap.insert_cost


if __name__ == "__main__":
    curves = build_figure()
    print(render_figure1(curves))
    print(tradeoff_table(curves))
