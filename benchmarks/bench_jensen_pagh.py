"""JP — the Jensen–Pagh [12] point on the tradeoff plane.

[12] is the paper's point of departure: without buffering, one can keep
the load factor at ``1 − O(1/√b)`` with queries and updates at
``1 + O(1/√b)`` I/Os — and [12] conjectured updates cannot drop below
Ω(1) when queries stay O(1).  This bench measures our shape-faithful
implementation across block sizes and places it next to Theorem 2's
buffered table at the same query class (``c = 0.5``):

* JP's query excess and overflow fraction shrink like ``1/√b``;
* JP's insert cost stays pinned at ≈ 1 I/O for every ``b``;
* Theorem 2's table, *allowed the same queries*, inserts in ``o(1)`` —
  the affirmative side of the conjecture's resolution, while Theorem 1
  is the (sharpened) negative side.
"""

from __future__ import annotations

import math

from repro.em import make_context
from repro.hashing.family import MEMOISED_IDEAL
from repro.core.buffered import BufferedHashTable
from repro.core.config import BufferedParams
from repro.core.jensen_pagh import JensenPaghTable
from repro.workloads.drivers import measure_query_cost
from repro.workloads.generators import UniformKeys

from conftest import emit, once

N, U = 5000, 2**40


def run_b(b: int):
    # JP keeps its block directory in memory: m must cover the
    # ~n/(αb) primary pointers plus the overflow directory.
    m = 4 * N // b + 256
    ctx = make_context(b=b, m=m, u=U)
    h = MEMOISED_IDEAL.sample(ctx.u, seed=91)
    jp = JensenPaghTable(ctx, h)
    keys = UniformKeys(ctx.u, seed=92).take(N)
    jp.insert_many(keys)
    jp_tu = ctx.io_total() / N
    jp_tq = measure_query_cost(jp, keys, sample_size=1200, seed=93).mean

    ctx2 = make_context(b=b, m=m, u=U)
    buffered = BufferedHashTable(
        ctx2,
        MEMOISED_IDEAL.sample(ctx2.u, seed=91),
        params=BufferedParams.for_query_exponent(b, 0.5),
    )
    buffered.insert_many(UniformKeys(ctx2.u, seed=92).take(N))
    return {
        "b": b,
        "jp_t_u": round(jp_tu, 4),
        "jp_t_q": round(jp_tq, 4),
        "jp_overflow": round(jp.overflow_fraction(), 4),
        "sqrt_b_model": round(1 / math.sqrt(b), 4),
        "thm2_t_u": round(ctx2.io_total() / N, 4),
    }


def test_jensen_pagh_vs_theorem2(benchmark):
    rows = once(benchmark, lambda: [run_b(b) for b in (16, 64, 256)])
    emit("Jensen-Pagh [12] vs Theorem 2 at the same query class", rows)

    for row in rows:
        # JP: updates pinned at ~1 I/O; queries within O(1/sqrt b) of 1.
        assert 0.9 <= row["jp_t_u"] <= 1 + 6 * row["sqrt_b_model"], row
        assert row["jp_t_q"] <= 1 + 6 * row["sqrt_b_model"], row
        # Theorem 2 beats JP's insert cost at every b...
        assert row["thm2_t_u"] < row["jp_t_u"], row
    # ...and the overflow tail scales down with 1/sqrt(b).
    overflows = [r["jp_overflow"] for r in rows]
    assert overflows == sorted(overflows, reverse=True)
    benchmark.extra_info["rows"] = rows


if __name__ == "__main__":
    from repro.analysis.tradeoff_curves import format_rows

    print(format_rows([run_b(b) for b in (16, 64, 256)]))
