"""Legacy setup shim.

The offline environment has no ``wheel`` package, so PEP-517 editable
installs (which build a wheel) fail.  With this shim present,
``pip install -e . --no-build-isolation`` falls back to
``setup.py develop``, which needs only setuptools.
"""

from setuptools import setup

setup()
