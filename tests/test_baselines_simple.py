"""Unit tests for the external stack/queue and Bloom filter baselines."""

import pytest

from repro.em import ConfigurationError, MemoryBudget, make_context
from repro.baselines.bloom import BloomFilter
from repro.baselines.stack_queue import ExternalQueue, ExternalStack


class TestExternalStack:
    def test_lifo_order(self, ctx):
        st = ExternalStack(ctx)
        for i in range(500):
            st.push(i)
        for i in reversed(range(500)):
            assert st.pop() == i
        assert len(st) == 0

    def test_peek_does_not_remove(self, ctx):
        st = ExternalStack(ctx)
        st.push(1)
        st.push(2)
        assert st.peek() == 2
        assert len(st) == 2

    def test_pop_empty_raises(self, ctx):
        st = ExternalStack(ctx)
        with pytest.raises(IndexError):
            st.pop()

    def test_amortized_io_is_o_one_over_b(self, ctx):
        """The opening exhibit: n pushes+pops in O(n/b) I/Os."""
        st = ExternalStack(ctx)
        n = 4000
        for i in range(n):
            st.push(i)
        for _ in range(n):
            st.pop()
        amortized = ctx.io_total() / (2 * n)
        assert amortized < 3 / ctx.b

    def test_interleaved_push_pop_thrash(self, ctx):
        """Alternating around a spill boundary must not pay 1 I/O per op."""
        st = ExternalStack(ctx)
        b = ctx.b
        for i in range(2 * b - 1):
            st.push(i)
        before = ctx.io_total()
        for i in range(200):
            st.push(1000 + i)
            assert st.pop() == 1000 + i
        assert ctx.io_total() - before <= 6
        st.check_invariants()

    def test_memory_within_budget(self, ctx):
        st = ExternalStack(ctx)
        for i in range(5000):
            st.push(i)
        assert ctx.memory.within_budget()

    def test_needs_two_blocks_of_memory(self):
        small = make_context(b=64, m=64)
        with pytest.raises(ConfigurationError):
            ExternalStack(small)

    def test_deep_spill_and_reload(self, ctx):
        st = ExternalStack(ctx)
        n = 10 * ctx.b
        for i in range(n):
            st.push(i)
        st.check_invariants()
        for i in reversed(range(n)):
            assert st.pop() == i


class TestExternalQueue:
    def test_fifo_order(self, ctx):
        q = ExternalQueue(ctx)
        for i in range(500):
            q.enqueue(i)
        for i in range(500):
            assert q.dequeue() == i

    def test_dequeue_empty_raises(self, ctx):
        q = ExternalQueue(ctx)
        with pytest.raises(IndexError):
            q.dequeue()

    def test_amortized_io(self, ctx):
        q = ExternalQueue(ctx)
        n = 4000
        for i in range(n):
            q.enqueue(i)
        for _ in range(n):
            q.dequeue()
        assert ctx.io_total() / (2 * n) < 3 / ctx.b

    def test_interleaved_operations(self, ctx):
        q = ExternalQueue(ctx)
        expect = 0
        nxt = 0
        for round_ in range(50):
            for _ in range(30):
                q.enqueue(nxt)
                nxt += 1
            for _ in range(20):
                assert q.dequeue() == expect
                expect += 1
            q.check_invariants()
        assert len(q) == 50 * 10

    def test_small_queue_within_tail_buffer(self, ctx):
        q = ExternalQueue(ctx)
        q.enqueue(7)
        assert q.dequeue() == 7
        assert ctx.io_total() == 0  # never touched disk


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter.for_items(500)
        keys = list(range(1000, 1500))
        for k in keys:
            bf.add(k)
        assert all(bf.might_contain(k) for k in keys)

    def test_false_positive_rate_near_design(self):
        bf = BloomFilter.for_items(1000, bits_per_item=10.0)
        for k in range(1000):
            bf.add(k)
        probes = range(10**6, 10**6 + 20_000)
        fpr = sum(bf.might_contain(k) for k in probes) / 20_000
        assert fpr < 0.03  # design point ≈ 1%

    def test_expected_fpr_tracks_fill(self):
        bf = BloomFilter.for_items(100, bits_per_item=8.0)
        assert bf.expected_fpr() == 0.0
        for k in range(100):
            bf.add(k)
        assert 0.0 < bf.expected_fpr() < 0.2
        assert 0.0 < bf.fill_fraction() < 1.0

    def test_contains_protocol(self):
        bf = BloomFilter(256, 3)
        bf.add(5)
        assert 5 in bf

    def test_memory_budget_charged_and_released(self):
        budget = MemoryBudget(1000)
        bf = BloomFilter(64 * 10, 3, budget=budget, owner="bf")
        assert budget.charge_of("bf") == 10
        bf.release()
        assert budget.charge_of("bf") == 0

    def test_optimal_hashes_formula(self):
        # (bits/n)·ln2 with bits=1000, n=100 → ~6.9 → 7.
        assert BloomFilter.optimal_hashes(1000, 100) == 7
        assert BloomFilter.optimal_hashes(100, 0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter(64, 0)

    def test_bits_rounded_to_word(self):
        bf = BloomFilter(65, 2)
        assert bf.bits == 128
