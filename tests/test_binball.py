"""Unit tests for the (s, p, t) bin-ball game (Lemmas 3 and 4)."""

import numpy as np
import pytest

from repro.lowerbound.binball import (
    GameParams,
    lemma3_failure_probability,
    lemma4_failure_probability,
    optimal_adversary_cost,
    play,
    play_many,
    random_adversary_cost,
    throw_balls,
)


class TestGameParams:
    def test_defaults_bins_from_p(self):
        assert GameParams(s=10, p=0.01, t=0).bins == 100

    def test_explicit_bins_must_satisfy_r_geq_1_over_p(self):
        GameParams(s=10, p=0.01, t=0, r=150)  # fine
        with pytest.raises(ValueError):
            GameParams(s=10, p=0.01, t=0, r=50)

    @pytest.mark.parametrize(
        "bad", [dict(s=0), dict(p=0.0), dict(p=1.5), dict(t=-1)]
    )
    def test_validation(self, bad):
        kw = dict(s=10, p=0.1, t=0)
        kw.update(bad)
        with pytest.raises(ValueError):
            GameParams(**kw)

    def test_lemma_applicability(self):
        assert GameParams(s=30, p=0.01, t=0).lemma3_applies()  # sp = 0.3
        assert not GameParams(s=50, p=0.01, t=0).lemma3_applies()
        assert GameParams(s=300, p=0.01, t=100).lemma4_applies()
        assert not GameParams(s=300, p=0.01, t=200).lemma4_applies()


class TestThrowing:
    def test_counts_sum_to_s(self):
        p = GameParams(s=500, p=0.01, t=0)
        counts = throw_balls(p, np.random.default_rng(0))
        assert counts.sum() == 500
        assert counts.shape == (100,)


class TestOptimalAdversary:
    def test_no_removals(self):
        assert optimal_adversary_cost(np.array([3, 0, 1, 2]), 0) == 3

    def test_removes_smallest_bins_first(self):
        # loads 1,2,3: t=3 empties bins 1 and 2 exactly.
        assert optimal_adversary_cost(np.array([1, 2, 3]), 3) == 1

    def test_partial_removal_saves_nothing(self):
        # t=2 can only fully empty the load-1 bin; 2 remain.
        assert optimal_adversary_cost(np.array([1, 2, 3]), 2) == 2

    def test_remove_everything(self):
        assert optimal_adversary_cost(np.array([2, 2]), 4) == 0
        assert optimal_adversary_cost(np.array([2, 2]), 99) == 0

    def test_empty_game(self):
        assert optimal_adversary_cost(np.array([0, 0]), 5) == 0

    def test_optimal_never_worse_than_random(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            counts = rng.integers(0, 6, size=30)
            t = int(rng.integers(0, counts.sum() + 1))
            opt = optimal_adversary_cost(counts, t)
            rand = random_adversary_cost(counts, t, rng)
            assert opt <= rand

    def test_random_adversary_removes_all(self):
        rng = np.random.default_rng(2)
        counts = np.array([1, 1])
        assert random_adversary_cost(counts, 5, rng) == 0


class TestPlay:
    def test_single_game_reproducible(self):
        p = GameParams(s=200, p=0.005, t=20)
        a = play(p, np.random.default_rng(7))
        b = play(p, np.random.default_rng(7))
        assert a.cost == b.cost

    def test_cost_bounded_by_occupied(self):
        p = GameParams(s=200, p=0.005, t=20)
        out = play(p, np.random.default_rng(7))
        assert 0 <= out.cost <= out.occupied_before_removal <= 200

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ValueError):
            play(GameParams(s=10, p=0.1, t=0), adversary="psychic")

    def test_lemma_bound_helpers(self):
        p = GameParams(s=100, p=0.001, t=10)
        out = play(p, np.random.default_rng(0))
        assert out.lemma3_bound(mu=0.1) == pytest.approx(
            0.9 * (1 - 0.1) * 100 - 10
        )
        assert out.lemma4_bound() == pytest.approx(1 / 0.02)


class TestEnsembles:
    def test_ensemble_shape(self):
        ens = play_many(GameParams(s=100, p=0.001, t=0), trials=50, seed=3)
        assert ens.trials == 50
        assert ens.min_cost <= ens.mean_cost <= 100

    def test_lemma3_holds_empirically(self):
        """sp = 0.1 ≤ 1/3: cost ≥ (1−µ)(1−sp)s − t in (almost) all trials."""
        s, p, t = 400, 0.00025, 20
        params = GameParams(s=s, p=p, t=t)
        assert params.lemma3_applies()
        mu = 0.15
        ens = play_many(params, trials=200, seed=5)
        bound = (1 - mu) * (1 - s * p) * s - t
        emp_fail = ens.empirical_failure_probability(bound)
        assert emp_fail <= lemma3_failure_probability(s, mu) + 0.02

    def test_lemma4_holds_empirically(self):
        """sp = ω(1) regime: even the optimal adversary keeps ≥ 1/(20p)."""
        s, p, t = 1000, 0.01, 400
        params = GameParams(s=s, p=p, t=t)
        assert params.lemma4_applies()
        ens = play_many(params, trials=200, seed=6)
        bound = 1 / (20 * p)  # = 5 bins
        assert ens.empirical_failure_probability(bound) <= 0.01

    def test_random_adversary_ablation_costs_more(self):
        params = GameParams(s=1000, p=0.01, t=400)
        opt = play_many(params, trials=100, seed=7, adversary="optimal")
        rand = play_many(params, trials=100, seed=7, adversary="random")
        assert opt.mean_cost <= rand.mean_cost


class TestTailFormulas:
    def test_lemma3_tail_decreasing_in_s(self):
        assert lemma3_failure_probability(1000, 0.1) < lemma3_failure_probability(
            100, 0.1
        )

    def test_lemma4_tail_decreasing_in_s(self):
        assert lemma4_failure_probability(1000) < lemma4_failure_probability(100)
