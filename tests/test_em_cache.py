"""Unit tests for the LRU BufferPool."""

import pytest

from repro.em import (
    Block,
    BufferPool,
    ConfigurationError,
    Disk,
    MemoryBudget,
    STRICT_POLICY,
    IOStats,
)


@pytest.fixture
def disk():
    return Disk(4, stats=IOStats(policy=STRICT_POLICY))


def fill(disk, n):
    ids = disk.allocate_many(n)
    for bid in ids:
        disk.write(bid, Block(4, data=[bid]))
    disk.stats.reset()
    return ids


class TestHitsAndMisses:
    def test_first_get_misses_then_hits(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        pool.get(ids[0])
        pool.get(ids[0])
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert disk.stats.reads == 1  # only the miss touched disk

    def test_hit_charges_no_io(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        pool.get(ids[0])
        before = disk.stats.total
        pool.get(ids[0])
        assert disk.stats.total == before

    def test_hit_rate(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        pool.get(ids[0])
        pool.get(ids[0])
        pool.get(ids[0])
        assert pool.stats.hit_rate == pytest.approx(2 / 3)


class TestEvictionAndWriteback:
    def test_lru_eviction_order(self, disk):
        ids = fill(disk, 3)
        pool = BufferPool(disk, 2)
        pool.get(ids[0])
        pool.get(ids[1])
        pool.get(ids[2])  # evicts ids[0]
        assert not pool.is_resident(ids[0])
        assert pool.is_resident(ids[1])
        assert pool.is_resident(ids[2])

    def test_get_refreshes_lru_position(self, disk):
        ids = fill(disk, 3)
        pool = BufferPool(disk, 2)
        pool.get(ids[0])
        pool.get(ids[1])
        pool.get(ids[0])  # refresh 0; 1 is now LRU
        pool.get(ids[2])
        assert pool.is_resident(ids[0])
        assert not pool.is_resident(ids[1])

    def test_clean_eviction_no_writeback(self, disk):
        ids = fill(disk, 3)
        pool = BufferPool(disk, 2)
        for bid in ids:
            pool.get(bid)
        assert pool.stats.writebacks == 0
        assert disk.stats.writes == 0

    def test_dirty_eviction_writes_back(self, disk):
        ids = fill(disk, 3)
        pool = BufferPool(disk, 2)
        pool.put(ids[0], Block(4, data=[99]))
        pool.get(ids[1])
        pool.get(ids[2])  # evicts dirty ids[0]
        assert pool.stats.writebacks == 1
        assert disk.peek(ids[0]).records() == [99]

    def test_flush_writes_all_dirty(self, disk):
        ids = fill(disk, 2)
        pool = BufferPool(disk, 4)
        pool.put(ids[0], Block(4, data=[10]))
        pool.put(ids[1], Block(4, data=[20]))
        written = pool.flush()
        assert written == 2
        assert disk.peek(ids[0]).records() == [10]
        assert disk.peek(ids[1]).records() == [20]
        assert pool.flush() == 0  # idempotent

    def test_mark_dirty_requires_residency(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        with pytest.raises(KeyError):
            pool.mark_dirty(ids[0])
        pool.get(ids[0])
        pool.mark_dirty(ids[0])
        assert pool.flush() == 1

    def test_invalidate_discard_drops_changes(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        pool.put(ids[0], Block(4, data=[77]))
        pool.invalidate(ids[0], discard=True)
        assert disk.peek(ids[0]).records() == [ids[0]]

    def test_invalidate_default_writes_back(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        pool.put(ids[0], Block(4, data=[77]))
        pool.invalidate(ids[0])
        assert disk.peek(ids[0]).records() == [77]


class TestBudgetIntegration:
    def test_frames_charged_to_budget(self, disk):
        budget = MemoryBudget(100)
        BufferPool(disk, 3, budget=budget, owner="pool")
        assert budget.charge_of("pool") == 3 * disk.b

    def test_close_releases_charge(self, disk):
        budget = MemoryBudget(100)
        pool = BufferPool(disk, 3, budget=budget, owner="pool")
        pool.close()
        assert budget.charge_of("pool") == 0

    def test_zero_capacity_rejected(self, disk):
        with pytest.raises(ConfigurationError):
            BufferPool(disk, 0)


def test_resident_order_is_lru_first(disk):
    ids = fill(disk, 3)
    pool = BufferPool(disk, 3)
    for bid in ids:
        pool.get(bid)
    pool.get(ids[0])
    assert pool.resident() == [ids[1], ids[2], ids[0]]
    assert len(pool) == 3
