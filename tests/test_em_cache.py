"""Unit tests for the LRU BufferPool."""

import pytest

from repro.em import (
    Block,
    BufferPool,
    ConfigurationError,
    Disk,
    MemoryBudget,
    STRICT_POLICY,
    IOStats,
)


@pytest.fixture
def disk():
    return Disk(4, stats=IOStats(policy=STRICT_POLICY))


def fill(disk, n):
    ids = disk.allocate_many(n)
    for bid in ids:
        disk.write(bid, Block(4, data=[bid]))
    disk.stats.reset()
    return ids


class TestHitsAndMisses:
    def test_first_get_misses_then_hits(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        pool.get(ids[0])
        pool.get(ids[0])
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert disk.stats.reads == 1  # only the miss touched disk

    def test_hit_charges_no_io(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        pool.get(ids[0])
        before = disk.stats.total
        pool.get(ids[0])
        assert disk.stats.total == before

    def test_hit_rate(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        pool.get(ids[0])
        pool.get(ids[0])
        pool.get(ids[0])
        assert pool.stats.hit_rate == pytest.approx(2 / 3)


class TestEvictionAndWriteback:
    def test_lru_eviction_order(self, disk):
        ids = fill(disk, 3)
        pool = BufferPool(disk, 2)
        pool.get(ids[0])
        pool.get(ids[1])
        pool.get(ids[2])  # evicts ids[0]
        assert not pool.is_resident(ids[0])
        assert pool.is_resident(ids[1])
        assert pool.is_resident(ids[2])

    def test_get_refreshes_lru_position(self, disk):
        ids = fill(disk, 3)
        pool = BufferPool(disk, 2)
        pool.get(ids[0])
        pool.get(ids[1])
        pool.get(ids[0])  # refresh 0; 1 is now LRU
        pool.get(ids[2])
        assert pool.is_resident(ids[0])
        assert not pool.is_resident(ids[1])

    def test_clean_eviction_no_writeback(self, disk):
        ids = fill(disk, 3)
        pool = BufferPool(disk, 2)
        for bid in ids:
            pool.get(bid)
        assert pool.stats.writebacks == 0
        assert disk.stats.writes == 0

    def test_dirty_eviction_writes_back(self, disk):
        ids = fill(disk, 3)
        pool = BufferPool(disk, 2)
        pool.put(ids[0], Block(4, data=[99]))
        pool.get(ids[1])
        pool.get(ids[2])  # evicts dirty ids[0]
        assert pool.stats.writebacks == 1
        assert disk.peek(ids[0]).records() == [99]

    def test_flush_writes_all_dirty(self, disk):
        ids = fill(disk, 2)
        pool = BufferPool(disk, 4)
        pool.put(ids[0], Block(4, data=[10]))
        pool.put(ids[1], Block(4, data=[20]))
        written = pool.flush()
        assert written == 2
        assert disk.peek(ids[0]).records() == [10]
        assert disk.peek(ids[1]).records() == [20]
        assert pool.flush() == 0  # idempotent

    def test_mark_dirty_requires_residency(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        with pytest.raises(KeyError):
            pool.mark_dirty(ids[0])
        pool.get(ids[0])
        pool.mark_dirty(ids[0])
        assert pool.flush() == 1

    def test_invalidate_discard_drops_changes(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        pool.put(ids[0], Block(4, data=[77]))
        pool.invalidate(ids[0], discard=True)
        assert disk.peek(ids[0]).records() == [ids[0]]

    def test_invalidate_default_writes_back(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        pool.put(ids[0], Block(4, data=[77]))
        pool.invalidate(ids[0])
        assert disk.peek(ids[0]).records() == [77]


class TestBudgetIntegration:
    def test_frames_charged_to_budget(self, disk):
        budget = MemoryBudget(100)
        BufferPool(disk, 3, budget=budget, owner="pool")
        assert budget.charge_of("pool") == 3 * disk.b

    def test_close_releases_charge(self, disk):
        budget = MemoryBudget(100)
        pool = BufferPool(disk, 3, budget=budget, owner="pool")
        pool.close()
        assert budget.charge_of("pool") == 0

    def test_zero_capacity_rejected(self, disk):
        with pytest.raises(ConfigurationError):
            BufferPool(disk, 0)


def test_resident_order_is_lru_first(disk):
    ids = fill(disk, 3)
    pool = BufferPool(disk, 3)
    for bid in ids:
        pool.get(bid)
    pool.get(ids[0])
    assert pool.resident() == [ids[1], ids[2], ids[0]]
    assert len(pool) == 3


class TestCopySemantics:
    def test_get_returns_private_copy(self, disk):
        """Mutating a ``get()`` result must never reach the frame: the
        frame would silently diverge from its dirty tracking."""
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        blk = pool.get(ids[0])
        blk.append(424242)
        again = pool.get(ids[0])
        assert again.records() == [ids[0]]  # aliasing regression
        pool.invalidate(ids[0])  # clean frame: nothing written back
        assert disk.peek(ids[0]).records() == [ids[0]]

    def test_get_copy_false_loans_live_frame(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        pool.get(ids[0])
        loan = pool.get(ids[0], copy=False)
        assert loan is pool.get(ids[0], copy=False)

    def test_put_then_get_does_not_alias_the_frame(self, disk):
        ids = fill(disk, 1)
        pool = BufferPool(disk, 2)
        pool.put(ids[0], Block(4, data=[7]))
        got = pool.get(ids[0])
        got.append(8)
        pool.invalidate(ids[0])  # writes back the dirty frame
        assert disk.peek(ids[0]).records() == [7]


class TestStatsLifecycle:
    def test_negative_hits_outside_hit_rate(self):
        from repro.em.cache import CacheStats

        s = CacheStats(hits=3, misses=1, negative_hits=10)
        assert s.accesses == 4
        assert s.hit_rate == pytest.approx(0.75)

    def test_snapshot_delta_absorb_roundtrip(self):
        from repro.em.cache import CacheStats

        s = CacheStats(hits=5, misses=2, negative_hits=1, writebacks=1,
                       evictions=3)
        snap = s.snapshot()
        s.hits += 10
        s.misses += 4
        s.negative_hits += 2
        d = s.delta_since(snap)
        assert (d.hits, d.misses, d.negative_hits) == (10, 4, 2)
        assert (d.writebacks, d.evictions) == (0, 0)
        agg = CacheStats()
        agg.absorb(snap)
        agg.absorb(d)
        assert agg == s

    def test_clear_preserves_stats(self, disk):
        ids = fill(disk, 2)
        pool = BufferPool(disk, 4)
        pool.get(ids[0])
        pool.get(ids[0])
        pool.get(ids[1])
        pool.clear()
        assert len(pool) == 0
        assert pool.stats.hits == 1 and pool.stats.misses == 2

    def test_close_preserves_stats(self, disk):
        ids = fill(disk, 1)
        budget = MemoryBudget(100)
        pool = BufferPool(disk, 2, budget=budget, owner="pool")
        pool.get(ids[0])
        pool.get(ids[0])
        pool.close()
        assert budget.charge_of("pool") == 0
        assert pool.stats.hits == 1 and pool.stats.misses == 1


class TestOnEvictHook:
    def _hooked(self, disk, capacity):
        pool = BufferPool(disk, capacity)
        dropped: list[int] = []
        pool.on_evict = dropped.append
        return pool, dropped

    def test_fires_on_lru_eviction(self, disk):
        ids = fill(disk, 3)
        pool, dropped = self._hooked(disk, 2)
        for bid in ids:
            pool.get(bid)
        assert dropped == [ids[0]]
        assert pool.stats.evictions == 1

    def test_fires_on_invalidate(self, disk):
        ids = fill(disk, 1)
        pool, dropped = self._hooked(disk, 2)
        pool.get(ids[0])
        pool.invalidate(ids[0], discard=True)
        assert dropped == [ids[0]]
        pool.invalidate(ids[0], discard=True)  # absent: no callback
        assert dropped == [ids[0]]

    def test_fires_on_clear_for_every_frame(self, disk):
        ids = fill(disk, 3)
        pool, dropped = self._hooked(disk, 4)
        for bid in ids:
            pool.get(bid)
        pool.clear()
        assert sorted(dropped) == sorted(ids)
