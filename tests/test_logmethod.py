"""Unit tests for the logarithmic-method hash table (Lemma 5)."""

import math

import pytest

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.core.logmethod import LogMethodHashTable


def build(b=32, m=256, gamma=2, seed=1, **kw):
    ctx = make_context(b=b, m=m)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=seed)
    return ctx, LogMethodHashTable(ctx, h, gamma=gamma, **kw)


class TestBasicOperations:
    def test_roundtrip(self, keys):
        _, t = build()
        t.insert_many(keys)
        assert len(t) == len(keys)
        assert all(t.lookup(k) for k in keys[::13])
        t.check_invariants()

    def test_absent(self, keys):
        _, t = build()
        t.insert_many(keys[:500])
        assert not any(t.lookup(k) for k in range(10**13, 10**13 + 40))

    def test_duplicates_noop(self):
        _, t = build()
        for _ in range(3):
            t.insert(99)
        assert len(t) == 1

    def test_gamma_validation(self):
        ctx = make_context(b=32, m=256)
        h = MULTIPLY_SHIFT.sample(ctx.u, 1)
        with pytest.raises(ValueError):
            LogMethodHashTable(ctx, h, gamma=1)


class TestLevelStructure:
    def test_h0_absorbs_first_items(self):
        ctx, t = build(m=256)
        t.insert_many(range(100, 100 + t.h0_capacity - 1))
        assert ctx.io_total() == 0  # everything still memory-resident

    def test_migration_to_disk_on_h0_full(self):
        ctx, t = build(m=256)
        t.insert_many(range(100, 100 + t.h0_capacity + 1))
        assert ctx.io_total() > 0
        assert t.nonempty_levels()

    def test_level_capacities_geometric(self):
        _, t = build(gamma=4)
        assert t.level_buckets(2) == 16 * t.d0
        assert t.level_capacity(2) == 4 * t.level_capacity(1)

    def test_levels_stay_geometrically_separated(self, keys):
        _, t = build()
        t.insert_many(keys)
        t.check_invariants()
        levels = t.nonempty_levels()
        assert len(levels) <= math.log(len(keys), 2) + 2


class TestCostProfile:
    def test_insert_cost_o_of_log_over_b(self, keys):
        """Lemma 5: amortized O((γ/b)·log(n/m)) — far below 1 I/O."""
        ctx, t = build(b=64, m=512)
        t.insert_many(keys)
        amortized = ctx.io_total() / len(keys)
        bound = 8 * (t.gamma / ctx.b) * math.log2(len(keys) / ctx.m + 2)
        assert amortized < max(bound, 0.5)
        assert amortized < 1.0  # the headline: o(1), unlike any hash table

    def test_query_cost_grows_with_levels(self, keys):
        """Lemma 5's price: a lookup probes O(log_γ(n/m)) tables."""
        ctx, t = build(b=32, m=256)
        t.insert_many(keys)
        snap = ctx.stats.snapshot()
        sample = keys[::11]
        for k in sample:
            assert t.lookup(k)
        avg = ctx.stats.delta_since(snap).total / len(sample)
        assert avg > 1.0  # strictly worse than one I/O on average

    def test_larger_gamma_fewer_levels(self, keys):
        _, t2 = build(gamma=2)
        _, t8 = build(gamma=8)
        t2.insert_many(keys)
        t8.insert_many(keys)
        assert len(t8.nonempty_levels()) <= len(t2.nonempty_levels())


class TestDrainAndClear:
    def test_drain_all_returns_everything(self, keys):
        _, t = build()
        t.insert_many(keys[:500])
        items = t.drain_all()
        assert sorted(items) == sorted(keys[:500])
        assert len(t) == 0

    def test_clear_resets(self, keys):
        ctx, t = build()
        t.insert_many(keys[:300])
        t.clear()
        assert len(t) == 0
        assert not t.nonempty_levels()
        t.insert_many(keys[300:400])
        assert all(t.lookup(k) for k in keys[300:400])


class TestSnapshot:
    def test_snapshot_complete(self, keys):
        _, t = build()
        t.insert_many(keys[:400])
        snap = t.layout_snapshot()
        assert snap.item_count() == 400

    def test_memory_items_are_h0(self, keys):
        _, t = build()
        t.insert_many(keys[:50])  # below h0 capacity
        snap = t.layout_snapshot()
        assert snap.memory_items == frozenset(keys[:50])
