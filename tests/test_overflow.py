"""Unit tests for ChainedBucket (the overflow-chain primitive)."""

import pytest

from repro.em import Disk, IOStats, STRICT_POLICY
from repro.tables.overflow import ChainedBucket


@pytest.fixture
def disk():
    return Disk(4, stats=IOStats())


class TestInsertLookup:
    def test_single_block_fill(self, disk):
        b = ChainedBucket(disk)
        for k in [1, 2, 3, 4]:
            assert b.insert(k)
        assert b.chain_length == 0
        assert b.item_count() == 4

    def test_overflow_grows_chain(self, disk):
        b = ChainedBucket(disk)
        for k in range(10):
            b.insert(k)
        assert b.chain_length >= 2
        for k in range(10):
            found, cost = b.lookup(k)
            assert found

    def test_duplicate_insert_rejected(self, disk):
        b = ChainedBucket(disk)
        assert b.insert(7)
        assert not b.insert(7)
        assert b.item_count() == 1

    def test_lookup_cost_grows_with_chain_position(self, disk):
        b = ChainedBucket(disk)
        for k in range(12):  # 3 blocks of 4
            b.insert(k)
        _, cost_first = b.lookup(0)
        _, cost_last = b.lookup(11)
        assert cost_first == 1
        assert cost_last >= 2

    def test_lookup_absent_scans_whole_chain(self, disk):
        b = ChainedBucket(disk)
        for k in range(12):
            b.insert(k)
        found, cost = b.lookup(999)
        assert not found
        assert cost == 1 + b.chain_length


class TestDeleteReplace:
    def test_delete_present(self, disk):
        b = ChainedBucket(disk)
        for k in range(10):
            b.insert(k)
        assert b.delete(3)
        found, _ = b.lookup(3)
        assert not found
        assert b.item_count() == 9

    def test_delete_absent(self, disk):
        b = ChainedBucket(disk)
        b.insert(1)
        assert not b.delete(2)

    def test_replace_all_rewrites_chain(self, disk):
        b = ChainedBucket(disk)
        for k in range(10):
            b.insert(k)
        b.replace_all(list(range(100, 103)))
        assert b.item_count() == 3
        assert sorted(b.peek_all()) == [100, 101, 102]
        assert b.chain_length == 0  # shrunk back to the primary block

    def test_read_all_returns_everything(self, disk):
        b = ChainedBucket(disk)
        items = list(range(9))
        for k in items:
            b.insert(k)
        assert sorted(b.read_all()) == items


class TestAccounting:
    def test_insert_io_cost_is_bounded_by_chain(self, disk):
        b = ChainedBucket(disk)
        for k in range(4):
            b.insert(k)
        before = disk.stats.total
        b.insert(99)  # must walk the chain and extend it
        assert disk.stats.total - before <= b.chain_length + 3

    def test_peek_methods_charge_nothing(self, disk):
        b = ChainedBucket(disk)
        for k in range(10):
            b.insert(k)
        before = disk.stats.total
        b.peek_all()
        list(b.peek_blocks())
        assert disk.stats.total == before

    def test_free_all_releases_blocks(self, disk):
        b = ChainedBucket(disk)
        for k in range(10):
            b.insert(k)
        blocks = b.block_ids
        b.free_all()
        assert all(bid not in disk for bid in blocks)
