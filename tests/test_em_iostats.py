"""Unit tests for I/O accounting and the footnote-2 policy."""

import pytest

from repro.em import IOPolicy, IOStats, PAPER_POLICY, STRICT_POLICY


class TestBasicCounting:
    def test_reads_and_writes_counted(self):
        st = IOStats(policy=STRICT_POLICY)
        st.record_read(1)
        st.record_write(1)
        st.record_write(2)
        assert st.reads == 1
        assert st.writes == 2
        assert st.total == 3

    def test_reset(self):
        st = IOStats()
        st.record_read(0)
        st.record_write(0)
        st.reset()
        assert st.total == 0
        assert st.combined == 0


class TestFootnote2Combining:
    def test_rmw_same_block_costs_one(self):
        st = IOStats(policy=PAPER_POLICY)
        st.record_read(7)
        st.record_write(7)
        assert st.total == 1
        assert st.combined == 1

    def test_rmw_different_block_not_combined(self):
        st = IOStats(policy=PAPER_POLICY)
        st.record_read(7)
        st.record_write(8)
        assert st.total == 2
        assert st.combined == 0

    def test_intervening_read_breaks_combining(self):
        st = IOStats(policy=PAPER_POLICY)
        st.record_read(7)
        st.record_read(9)
        st.record_write(7)
        assert st.writes == 1  # the write of 7 is charged

    def test_combining_is_one_shot(self):
        """Only the *immediately following* write is free."""
        st = IOStats(policy=PAPER_POLICY)
        st.record_read(7)
        st.record_write(7)  # combined
        st.record_write(7)  # charged: the pending read was consumed
        assert st.writes == 1
        assert st.combined == 1

    def test_strict_policy_never_combines(self):
        st = IOStats(policy=STRICT_POLICY)
        st.record_read(7)
        st.record_write(7)
        assert st.total == 2

    def test_invalidate_rmw(self):
        st = IOStats(policy=PAPER_POLICY)
        st.record_read(7)
        st.invalidate_rmw()
        st.record_write(7)
        assert st.writes == 1

    def test_raw_total_includes_combined(self):
        st = IOStats(policy=PAPER_POLICY)
        st.record_read(7)
        st.record_write(7)
        assert st.raw_total == 2
        assert st.total == 1


class TestAllocationCharging:
    def test_fresh_write_charged_by_default(self):
        st = IOStats()
        st.record_write(3, fresh=True)
        assert st.writes == 1
        assert st.allocations == 1

    def test_fresh_write_free_when_policy_says(self):
        st = IOStats(policy=IOPolicy(charge_allocation=False))
        st.record_write(3, fresh=True)
        assert st.writes == 0
        assert st.allocations == 1


class TestSnapshots:
    def test_delta_since(self):
        st = IOStats()
        st.record_read(0)
        snap = st.snapshot()
        st.record_read(1)
        st.record_write(2)
        delta = st.delta_since(snap)
        assert delta.reads == 1
        assert delta.writes == 1
        assert delta.total == 2

    def test_measure_context_manager(self):
        st = IOStats()
        with st.measure() as cost:
            st.record_read(0)
            st.record_read(1)
        assert cost.total == 2
        assert cost.reads == 2

    def test_snapshot_subtraction(self):
        st = IOStats()
        st.record_read(0)
        a = st.snapshot()
        st.record_write(1)
        b = st.snapshot()
        d = b - a
        assert d.reads == 0
        assert d.writes == 1

    def test_with_policy_builds_fresh_counters(self):
        st = IOStats(policy=PAPER_POLICY)
        st.record_read(0)
        st2 = st.with_policy(combine_rmw=False)
        assert st2.total == 0
        assert st2.policy.combine_rmw is False
        assert st.policy.combine_rmw is True


def test_paper_policy_constants():
    assert PAPER_POLICY.combine_rmw is True
    assert STRICT_POLICY.combine_rmw is False
