"""Unit tests for the LSM-tree and buffer-tree baselines."""

import math

import pytest

from repro.em import ConfigurationError, make_context
from repro.baselines.buffer_tree import BufferTree
from repro.baselines.lsm import LSMTree


class TestLSMBasics:
    def test_roundtrip(self, keys):
        ctx = make_context(b=32, m=512)
        t = LSMTree(ctx)
        t.insert_many(keys)
        assert len(t) == len(keys)
        assert all(t.lookup(k) for k in keys[::13])
        t.check_invariants()

    def test_absent(self, keys):
        ctx = make_context(b=32, m=512)
        t = LSMTree(ctx)
        t.insert_many(keys[:600])
        assert not any(t.lookup(k) for k in range(10**13, 10**13 + 40))

    def test_duplicates_noop(self, keys):
        ctx = make_context(b=32, m=512)
        t = LSMTree(ctx)
        t.insert_many(keys[:100])
        t.insert_many(keys[:100])
        assert len(t) == 100
        t.check_invariants()

    def test_duplicate_after_flush_noop(self):
        ctx = make_context(b=16, m=64)
        t = LSMTree(ctx, memtable_items=8)
        ks = list(range(1000, 1032))
        t.insert_many(ks)  # several flushes
        t.insert_many(ks)  # duplicates now live in levels
        assert len(t) == len(ks)
        t.check_invariants()

    def test_gamma_validation(self):
        ctx = make_context(b=32, m=512)
        with pytest.raises(ConfigurationError):
            LSMTree(ctx, gamma=1)


class TestLSMStructure:
    def test_levels_grow_geometrically(self, keys):
        ctx = make_context(b=32, m=128)
        t = LSMTree(ctx, gamma=3, memtable_items=32)
        t.insert_many(keys)
        sizes = t.level_sizes()
        for k, size in enumerate(sizes):
            assert size <= t.level_capacity(k)

    def test_insert_cost_o1(self, keys):
        """The LSM headline: amortized o(1) inserts."""
        ctx = make_context(b=64, m=1024)
        t = LSMTree(ctx, gamma=4)
        t.insert_many(keys)
        assert ctx.io_total() / len(keys) < 0.6

    def test_lookup_cost_bounded_by_depth(self, keys):
        ctx = make_context(b=32, m=256)
        t = LSMTree(ctx, gamma=4, memtable_items=64)
        t.insert_many(keys)
        before = ctx.stats.snapshot()
        sample = keys[::41]
        for k in sample:
            assert t.lookup(k)
        avg = ctx.stats.delta_since(before).total / len(sample)
        assert avg <= t.depth

    def test_bloom_filters_cut_lookup_probes(self, keys):
        """With filters, negative level probes mostly vanish."""
        plain_ctx = make_context(b=32, m=256)
        plain = LSMTree(plain_ctx, gamma=3, memtable_items=64)
        bloom_ctx = make_context(b=32, m=4096)
        bloom = LSMTree(
            bloom_ctx, gamma=3, memtable_items=64, bloom_bits_per_key=10.0
        )
        plain.insert_many(keys)
        bloom.insert_many(keys)

        def avg_lookup(ctx, t):
            before = ctx.stats.snapshot()
            sample = keys[::17]
            for k in sample:
                assert t.lookup(k)
            return ctx.stats.delta_since(before).total / len(sample)

        assert avg_lookup(bloom_ctx, bloom) <= avg_lookup(plain_ctx, plain)

    def test_memory_accounting_includes_fences(self, keys):
        ctx = make_context(b=32, m=2048)
        t = LSMTree(ctx, memtable_items=256)
        t.insert_many(keys)
        assert t.memory_words() > 256 / 32  # at least the fence words
        assert ctx.memory.within_budget()


class TestBufferTreeBasics:
    def test_roundtrip_pre_and_post_flush(self, keys):
        ctx = make_context(b=32, m=512)
        t = BufferTree(ctx)
        t.insert_many(keys)
        assert all(t.lookup(k) for k in keys[::13])
        t.flush_all()
        t.check_invariants()
        assert len(t) == len(keys)
        assert all(t.lookup(k) for k in keys[::13])

    def test_absent(self, keys):
        ctx = make_context(b=32, m=512)
        t = BufferTree(ctx)
        t.insert_many(keys[:600])
        assert not any(t.lookup(k) for k in range(10**13, 10**13 + 30))

    def test_duplicates_collapse_on_flush(self):
        ctx = make_context(b=32, m=512)
        t = BufferTree(ctx)
        ks = list(range(500, 900))
        t.insert_many(ks)
        t.insert_many(ks)
        t.flush_all()
        assert len(t) == len(ks)
        t.check_invariants()

    def test_needs_memory(self):
        with pytest.raises(ConfigurationError):
            BufferTree(make_context(b=64, m=128))

    def test_sorted_stream(self):
        ctx = make_context(b=16, m=256)
        t = BufferTree(ctx)
        ks = list(range(3000))
        t.insert_many(ks)
        t.flush_all()
        t.check_invariants()
        assert all(t.lookup(k) for k in ks[::61])


class TestBufferTreeCosts:
    def test_insert_cost_below_one_io(self, keys):
        """The buffer-tree headline: far below 1 I/O per insert."""
        ctx = make_context(b=64, m=2048)
        t = BufferTree(ctx)
        t.insert_many(keys)
        assert ctx.io_total() / len(keys) < 0.7

    def test_insert_cost_scales_with_inverse_b(self, keys):
        """Larger blocks amortize better (the O((1/b)·log) shape)."""
        costs = {}
        for b in (16, 128):
            ctx = make_context(b=b, m=16 * b)
            t = BufferTree(ctx)
            t.insert_many(keys)
            costs[b] = ctx.io_total() / len(keys)
        assert costs[128] < costs[16]

    def test_point_queries_are_the_expensive_side(self, keys):
        """Buffers on the path make point lookups cost ≫ 1 I/O —
        the structural opposite of the paper's hash table."""
        ctx = make_context(b=32, m=512)
        t = BufferTree(ctx)
        t.insert_many(keys)
        before = ctx.stats.snapshot()
        sample = keys[::101]
        for k in sample:
            assert t.lookup(k)
        avg = ctx.stats.delta_since(before).total / len(sample)
        assert avg > 1.0

    def test_memory_within_budget(self, keys):
        ctx = make_context(b=32, m=512)
        t = BufferTree(ctx)
        t.insert_many(keys)
        assert ctx.memory.within_budget()
