"""Unit tests for the bootstrapped buffered hash table (Theorem 2)."""

import pytest

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.core.buffered import BufferedHashTable
from repro.core.config import BufferedParams
from repro.lowerbound.zones import decompose


def build(b=32, m=256, beta=8, gamma=2, seed=1):
    ctx = make_context(b=b, m=m)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=seed)
    t = BufferedHashTable(ctx, h, params=BufferedParams(beta=beta, gamma=gamma))
    return ctx, t


class TestBasicOperations:
    def test_roundtrip(self, keys):
        _, t = build()
        t.insert_many(keys)
        assert len(t) == len(keys)
        assert all(t.lookup(k) for k in keys[::7])
        t.check_invariants()

    def test_roundtrip_through_bootstrap_boundary(self):
        ctx, t = build(m=256)
        ks = list(range(10_000, 10_000 + 300))
        t.insert_many(ks)  # crosses the ~m bootstrap threshold
        assert all(t.lookup(k) for k in ks)
        t.check_invariants()

    def test_absent(self, keys):
        _, t = build()
        t.insert_many(keys[:600])
        assert not any(t.lookup(k) for k in range(10**13, 10**13 + 40))

    def test_duplicates_noop(self, keys):
        _, t = build()
        t.insert_many(keys[:100])
        t.insert_many(keys[:100])
        assert len(t) == 100

    def test_invalid_hhat_load(self):
        ctx = make_context(b=32, m=256)
        h = MULTIPLY_SHIFT.sample(ctx.u, 1)
        with pytest.raises(ValueError):
            BufferedHashTable(ctx, h, hhat_load=1.5)


class TestTheorem2Structure:
    def test_majority_in_hhat(self, keys):
        """The 1 − 1/β staleness invariant (with chunk slack)."""
        _, t = build(beta=8)
        t.insert_many(keys)
        assert t.recent_fraction() <= 1 / 8 + 0.1

    def test_rounds_double(self, keys):
        ctx, t = build(m=128)
        t.insert_many(keys)
        assert t.round_index >= 2
        assert t.hhat_size <= (2**t.round_index) * ctx.m

    def test_memory_within_budget_throughout(self, keys):
        ctx, t = build()
        t.insert_many(keys)
        assert ctx.memory.within_budget()
        assert ctx.memory.high_water <= ctx.m

    def test_query_cost_near_one(self, keys):
        """Theorem 2: t_q = 1 + O(1/β)."""
        ctx, t = build(b=64, m=512, beta=16)
        t.insert_many(keys)
        snap = ctx.stats.snapshot()
        sample = keys[::3]
        hits = [t.lookup(k) for k in sample]
        assert all(hits)
        avg = ctx.stats.delta_since(snap).total / len(sample)
        assert avg <= 1 + 4 * (1 / 16) + 0.1

    def test_insert_cost_below_one(self, keys):
        """Theorem 2: t_u = o(1) — buffering actually helps here."""
        ctx, t = build(b=64, m=512, beta=4)
        t.insert_many(keys)
        assert ctx.io_total() / len(keys) < 1.0

    def test_zone_decomposition_matches_query_claim(self, keys):
        """Inequality (1): |S| ≤ m + δk with δ = O(1/β)."""
        ctx, t = build(b=64, m=512, beta=8)
        t.insert_many(keys)
        z = decompose(t.layout_snapshot())
        delta = 4 / 8  # generous constant · 1/β
        assert z.satisfies_inequality_1(ctx.m, delta)


class TestParamDerivations:
    def test_beta_from_query_exponent(self):
        p = BufferedParams.for_query_exponent(256, 0.5)
        assert p.beta == 16  # 256^0.5

    def test_beta_from_insert_budget(self):
        p = BufferedParams.for_insert_budget(128, 0.25, constant=2.0)
        assert p.beta == 16  # 0.25·128/2

    def test_invalid_exponent(self):
        with pytest.raises(Exception):
            BufferedParams.for_query_exponent(128, 1.5)

    def test_predictions_positive(self):
        p = BufferedParams(beta=8)
        assert p.predicted_query_excess() == pytest.approx(1 / 8)
        assert p.predicted_insert_cost(128, 10**6, 4096) > 0


class TestTradeoffKnob:
    def test_larger_beta_cheaper_queries_dearer_inserts(self, keys):
        """The β knob realises the paper's tradeoff direction."""
        ctx_small, t_small = build(b=64, m=512, beta=2, seed=5)
        ctx_big, t_big = build(b=64, m=512, beta=32, seed=5)
        t_small.insert_many(keys)
        t_big.insert_many(keys)
        tu_small = ctx_small.io_total() / len(keys)
        tu_big = ctx_big.io_total() / len(keys)

        def avg_query(ctx, t):
            snap = ctx.stats.snapshot()
            sample = keys[::5]
            for k in sample:
                t.lookup(k)
            return ctx.stats.delta_since(snap).total / len(sample)

        tq_small = avg_query(ctx_small, t_small)
        tq_big = avg_query(ctx_big, t_big)
        assert tu_small <= tu_big + 0.05  # fewer scans per round
        # The structural form of "fresher Ĥ": a larger β caps the
        # outside-Ĥ fraction more tightly.  (Measured t_q at this small
        # n is dominated by memory-resident noise, so we assert the
        # invariant the query bound is derived from.)
        assert t_big.recent_fraction() <= t_small.recent_fraction() + 0.02
        assert tq_big <= 1.25 and tq_small <= 1.6
