"""Unit tests for the MemoryBudget."""

import pytest

from repro.em import ConfigurationError, MemoryBudget, MemoryBudgetExceededError


class TestCharging:
    def test_basic_charge_and_release(self):
        mb = MemoryBudget(100)
        mb.charge("a", 30)
        mb.charge("b", 20)
        assert mb.used == 50
        assert mb.free == 50
        mb.release("a")
        assert mb.used == 20

    def test_incremental_charge(self):
        mb = MemoryBudget(100)
        mb.charge("a", 30)
        mb.charge("a", 10)
        assert mb.charge_of("a") == 40

    def test_negative_charge_releases(self):
        mb = MemoryBudget(100)
        mb.charge("a", 30)
        mb.charge("a", -10)
        assert mb.charge_of("a") == 20

    def test_charge_below_zero_rejected(self):
        mb = MemoryBudget(100)
        mb.charge("a", 5)
        with pytest.raises(ValueError):
            mb.charge("a", -10)

    def test_set_charge_absolute(self):
        mb = MemoryBudget(100)
        mb.set_charge("a", 42)
        mb.set_charge("a", 7)
        assert mb.charge_of("a") == 7

    def test_set_negative_rejected(self):
        mb = MemoryBudget(100)
        with pytest.raises(ValueError):
            mb.set_charge("a", -1)

    def test_release_unknown_owner_is_noop(self):
        mb = MemoryBudget(100)
        mb.release("ghost")
        assert mb.used == 0


class TestBudgetEnforcement:
    def test_hard_budget_raises(self):
        mb = MemoryBudget(100, hard=True)
        mb.charge("a", 90)
        with pytest.raises(MemoryBudgetExceededError):
            mb.charge("b", 20)

    def test_soft_budget_records_high_water(self):
        mb = MemoryBudget(100, hard=False)
        mb.charge("a", 150)
        assert mb.high_water == 150
        assert not mb.within_budget()

    def test_exactly_at_budget_ok(self):
        mb = MemoryBudget(100, hard=True)
        mb.charge("a", 100)
        assert mb.within_budget()

    def test_high_water_tracks_peak_not_current(self):
        mb = MemoryBudget(100)
        mb.charge("a", 80)
        mb.charge("a", -50)
        assert mb.used == 30
        assert mb.high_water == 80

    def test_error_message_names_owners(self):
        mb = MemoryBudget(10, hard=True)
        mb.charge("table", 5)
        with pytest.raises(MemoryBudgetExceededError, match="table"):
            mb.charge("cache", 9)

    def test_invalid_m(self):
        with pytest.raises(ConfigurationError):
            MemoryBudget(0)


def test_owners_listing():
    mb = MemoryBudget(100)
    mb.charge("z", 1)
    mb.charge("a", 1)
    assert mb.owners() == ["a", "z"]
