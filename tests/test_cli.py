"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_geometry_flags(self):
        args = build_parser().parse_args(["figure1", "--b", "32", "--n", "100"])
        assert args.b == 32
        assert args.n == 100

    def test_trace_mix_flag(self):
        args = build_parser().parse_args(
            ["trace", "--mix", "1", "0", "0", "0", "--table", "chaining"]
        )
        assert args.mix == [1.0, 0.0, 0.0, 0.0]


class TestCommands:
    def test_knuth(self, capsys):
        assert main(["knuth"]) == 0
        out = capsys.readouterr().out
        assert "t_q_success" in out
        assert "overflow" in out

    def test_figure1_small(self, capsys):
        assert main(["figure1", "--b", "32", "--m", "256", "--n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "c=1 boundary" in out
        assert "*" in out  # measured points plotted

    def test_baselines_small(self, capsys):
        assert main(["baselines", "--b", "32", "--m", "256", "--n", "1200"]) == 0
        out = capsys.readouterr().out
        assert "buffered" in out
        assert "btree" in out

    def test_audit_small(self, capsys):
        assert main(["audit", "--b", "32", "--m", "600", "--n", "1200"]) == 0
        out = capsys.readouterr().out
        assert "query_floor" in out

    def test_trace_small(self, capsys):
        assert (
            main(
                [
                    "trace",
                    "--table",
                    "chaining",
                    "--b",
                    "32",
                    "--m",
                    "256",
                    "--n",
                    "500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "I/Os" in out

    def test_trace_unknown_table(self, capsys):
        assert main(["trace", "--table", "nope", "--n", "10"]) == 2
