"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_geometry_flags(self):
        args = build_parser().parse_args(["figure1", "--b", "32", "--n", "100"])
        assert args.b == 32
        assert args.n == 100

    def test_trace_mix_flag(self):
        args = build_parser().parse_args(
            ["trace", "--mix", "1", "0", "0", "0", "--table", "chaining"]
        )
        assert args.mix == [1.0, 0.0, 0.0, 0.0]


class TestCommands:
    def test_knuth(self, capsys):
        assert main(["knuth"]) == 0
        out = capsys.readouterr().out
        assert "t_q_success" in out
        assert "overflow" in out

    def test_figure1_small(self, capsys):
        assert main(["figure1", "--b", "32", "--m", "256", "--n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "c=1 boundary" in out
        assert "*" in out  # measured points plotted

    def test_baselines_small(self, capsys):
        assert main(["baselines", "--b", "32", "--m", "256", "--n", "1200"]) == 0
        out = capsys.readouterr().out
        assert "buffered" in out
        assert "btree" in out

    def test_audit_small(self, capsys):
        assert main(["audit", "--b", "32", "--m", "600", "--n", "1200"]) == 0
        out = capsys.readouterr().out
        assert "query_floor" in out

    def test_trace_small(self, capsys):
        assert (
            main(
                [
                    "trace",
                    "--table",
                    "chaining",
                    "--b",
                    "32",
                    "--m",
                    "256",
                    "--n",
                    "500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "I/Os" in out

    def test_trace_unknown_table(self, capsys):
        assert main(["trace", "--table", "nope", "--n", "10"]) == 2


class TestServe:
    ARGS = ["serve", "--b", "32", "--m", "256", "--n", "600", "--window", "200",
            "--epoch-ops", "128"]

    def test_serve_small(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "kops" in out and "cluster I/O" in out

    def test_mix_must_sum_to_one(self, capsys):
        assert main(self.ARGS + ["--mix", "0.5", "0.4", "0.2", "0.1"]) == 2
        err = capsys.readouterr().err
        assert "--mix must sum to 1.0" in err
        assert "Traceback" not in err

    def test_mix_must_be_non_negative(self, capsys):
        assert main(self.ARGS + ["--mix", "1.2", "-0.2", "0", "0"]) == 2
        assert "non-negative" in capsys.readouterr().err

    def test_epoch_ops_must_be_positive(self, capsys):
        args = [a for a in self.ARGS if a not in ("--epoch-ops", "128")]
        assert main(args + ["--epoch-ops", "0"]) == 2
        assert "--epoch-ops must be positive" in capsys.readouterr().err

    def test_window_must_be_positive(self, capsys):
        args = [a for a in self.ARGS if a not in ("--window", "200")]
        assert main(args + ["--window", "-3"]) == 2
        assert "--window must be positive" in capsys.readouterr().err

    def test_serve_open_loop(self, capsys):
        assert main(self.ARGS + ["--arrival", "poisson", "--rate", "50000",
                                 "--queue-depth", "64",
                                 "--shed-policy", "shed"]) == 0
        out = capsys.readouterr().out
        assert "goodput_kops" in out and "shed" in out

    def test_open_loop_requires_rate(self, capsys):
        assert main(self.ARGS + ["--arrival", "bursty"]) == 2
        err = capsys.readouterr().err
        assert "positive --rate" in err and "Traceback" not in err

    def test_closed_loop_rejects_open_loop_flags(self, capsys):
        assert main(self.ARGS + ["--queue-depth", "64"]) == 2
        assert "only apply to open-loop" in capsys.readouterr().err

    def test_queue_depth_must_be_positive(self, capsys):
        assert main(self.ARGS + ["--arrival", "poisson", "--rate", "1000",
                                 "--queue-depth", "0"]) == 2
        assert "queue_depth must be positive" in capsys.readouterr().err

    def test_deadline_must_be_positive(self, capsys):
        assert main(self.ARGS + ["--arrival", "diurnal", "--rate", "1000",
                                 "--deadline", "-1"]) == 2
        assert "deadline_s must be positive" in capsys.readouterr().err


class TestSlo:
    ARGS = ["slo", "--b", "32", "--m", "256", "--n", "800",
            "--epoch-ops", "128", "--loads", "0.8", "1.5"]

    def test_slo_sweep(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "goodput_kops" in out and "slo_ok" in out
        assert "max sustainable goodput" in out

    def test_loads_must_be_positive(self, capsys):
        args = ["slo", "--b", "32", "--m", "256", "--n", "800",
                "--loads", "0.5", "-1.0"]
        assert main(args) == 2
        err = capsys.readouterr().err
        assert "--loads factors must be positive" in err
        assert "Traceback" not in err

    def test_slo_ms_must_be_positive(self, capsys):
        assert main(self.ARGS + ["--slo-ms", "0"]) == 2
        assert "--slo-ms must be positive" in capsys.readouterr().err


class TestRecover:
    def test_serve_then_recover_round_trip(self, tmp_path, capsys):
        snap, journal = str(tmp_path / "s.pkl"), str(tmp_path / "j.bin")
        assert main(["serve", "--b", "32", "--m", "256", "--n", "600",
                     "--window", "200", "--epoch-ops", "128",
                     "--backend", "durable-arena",
                     "--journal", journal, "--snapshot", snap]) == 0
        serve_out = capsys.readouterr().out
        assert "epochs committed" in serve_out
        assert main(["recover", "--snapshot", snap, "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "replayed_epochs" in out
        # The recovered cluster I/O line equals the served one.
        served = [l for l in serve_out.splitlines() if l.startswith("cluster I/O")]
        recovered = [l for l in out.splitlines() if l.startswith("cluster I/O")]
        assert served == recovered

    def test_recover_missing_snapshot(self, tmp_path, capsys):
        assert main(["recover", "--snapshot", str(tmp_path / "nope.pkl")]) == 2
        assert "recover:" in capsys.readouterr().err


class TestObservability:
    ARGS = ["serve", "--b", "32", "--m", "256", "--n", "600", "--window", "200",
            "--epoch-ops", "128"]

    def _trace(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        assert main(self.ARGS + ["--trace", path]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and path in out
        return path

    def test_serve_trace_then_summary(self, tmp_path, capsys):
        path = self._trace(tmp_path, capsys)
        assert main(["trace-summary", path]) == 0
        out = capsys.readouterr().out
        assert "epoch" in out and "io/op" in out
        assert "slowest" in out
        assert "charged I/Os attributed" in out

    def test_trace_summary_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_bytes(b"this is not a trace\n")
        assert main(["trace-summary", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "trace-summary:" in err and "Traceback" not in err

    def test_trace_summary_missing_file(self, tmp_path, capsys):
        assert main(["trace-summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "trace-summary:" in capsys.readouterr().err

    def test_trace_summary_torn_tail(self, tmp_path, capsys):
        path = self._trace(tmp_path, capsys)
        with open(path, "ab") as fh:
            fh.write(b"00000000 {torn")
        assert main(["trace-summary", path]) == 2
        err = capsys.readouterr().err
        assert "--torn-ok" in err
        assert main(["trace-summary", path, "--torn-ok"]) == 0
        out = capsys.readouterr().out
        assert "charged I/Os attributed" in out

    def test_trace_summary_top_must_be_positive(self, tmp_path, capsys):
        path = self._trace(tmp_path, capsys)
        assert main(["trace-summary", path, "--top", "0"]) == 2
        assert "--top must be positive" in capsys.readouterr().err

    def test_serve_metrics_every(self, capsys):
        assert main(self.ARGS + ["--metrics-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "-- metrics @ epoch 2 --" in out
        assert "# TYPE repro_epochs_total counter" in out
        assert "-- metrics @ end" in out

    def test_metrics_every_must_be_non_negative(self, capsys):
        assert main(self.ARGS + ["--metrics-every", "-1"]) == 2
        err = capsys.readouterr().err
        assert "serve:" in err and "Traceback" not in err
