"""Unit tests for the pluggable storage backends.

The cross-structure bit-identity guarantees live in
``tests/test_batch_parity.py``; these exercise the backend protocol
directly: lifecycle, slot recycling, arena growth, header persistence,
odd record widths, and the record-level primitives both backends share.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.em import (
    ArenaBackend,
    BACKENDS,
    Block,
    Disk,
    InvalidBlockError,
    MappingBackend,
    make_backend,
)
from repro.em.errors import ConfigurationError


@pytest.fixture(params=sorted(BACKENDS))
def backend(request):
    return make_backend(request.param, 8)


class TestProtocol:
    def test_registry(self):
        assert isinstance(make_backend("mapping", 8), MappingBackend)
        assert isinstance(make_backend("arena", 8), ArenaBackend)
        with pytest.raises(ConfigurationError):
            make_backend("ramdisk", 8)

    def test_create_fetch_commit_roundtrip(self, backend):
        backend.create(0)
        blk = backend.fetch(0)
        blk.extend([3, 1, 2])
        blk.header["next"] = 9
        backend.commit(0, blk)
        again = backend.fetch(0)
        assert again.records() == [3, 1, 2]
        assert again.header == {"next": 9}

    def test_record_primitives(self, backend):
        backend.create(5)
        assert backend.is_fresh(5)
        backend.append(5, [10, 20])
        backend.append(5, [30])
        assert not backend.is_fresh(5)
        assert backend.length(5) == 3
        assert backend.records(5) == [10, 20, 30]
        assert backend.records_arr(5).tolist() == [10, 20, 30]
        assert backend.contains_key(5, 20)
        assert not backend.contains_key(5, 99)
        backend.replace(5, [7])
        assert backend.records(5) == [7]
        assert backend.drain(5) == [7]
        assert backend.length(5) == 0
        assert backend.drain(5) == []

    def test_header_alone_blocks_freshness(self, backend):
        backend.create(1)
        blk = backend.fetch(1)
        blk.header["overflowed"] = True
        backend.commit(1, blk)
        assert not backend.is_fresh(1)
        assert backend.length(1) == 0

    def test_delete_and_contains(self, backend):
        backend.create(2)
        assert 2 in backend
        backend.delete(2)
        assert 2 not in backend
        with pytest.raises(KeyError):
            backend.delete(2)
        with pytest.raises(KeyError):
            backend.fetch(2)

    def test_introspection(self, backend):
        backend.create_many([0, 1, 2])
        backend.append(0, [1, 2])
        backend.append(1, [3])
        assert backend.ids() == [0, 1, 2]
        assert backend.count() == 3
        assert backend.nonempty() == 2
        assert backend.words_stored() == 3

    def test_records_are_python_ints(self, backend):
        backend.create(0)
        backend.append(0, [1, 2, 3])
        assert all(type(x) is int for x in backend.records(0))
        blk = backend.fetch(0)
        assert all(type(x) is int for x in blk.records())


class TestArena:
    def test_growth_past_initial_slots(self):
        arena = ArenaBackend(4, initial_slots=2)
        arena.create_many(range(50))
        for bid in range(50):
            arena.append(bid, [bid])
        assert arena.count() == 50
        assert [arena.records(bid) for bid in range(50)] == [[b] for b in range(50)]

    def test_slot_recycling(self):
        arena = ArenaBackend(4, initial_slots=2)
        arena.create(0)
        arena.append(0, [1, 2])
        arena.delete(0)
        arena.create(1)  # reuses the freed slot
        assert arena.length(1) == 0  # stale contents never leak
        assert arena.is_fresh(1)
        assert arena._data.shape[0] == 2

    def test_records_arr_is_view(self):
        arena = ArenaBackend(8)
        arena.create(0)
        arena.append(0, [5, 6])
        view = arena.records_arr(0)
        assert view.base is not None  # zero-copy into the arena matrix
        assert view.tolist() == [5, 6]

    def test_odd_record_widths_fall_back(self):
        arena = ArenaBackend(8, record_words=1)
        arena.create(0, record_words=2)
        blk = arena.fetch(0)
        assert blk.capacity_records == 4
        blk.extend([1, 2, 3, 4])
        arena.commit(0, blk)
        assert arena.records(0) == [1, 2, 3, 4]
        assert arena.words_stored() == 8
        assert arena.nonempty() == 1
        arena.delete(0)
        assert arena.count() == 0


class TestDiskOverBackends:
    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_loan_cycle_round_trips(self, name):
        disk = Disk(8, backend=name)
        bid = disk.allocate()
        blk = disk.load(bid)
        blk.extend([4, 5])
        disk.store(bid)
        assert disk.peek(bid).records() == [4, 5]
        with disk.modify(bid) as b:
            b.append(6)
        assert disk.peek(bid).records() == [4, 5, 6]

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_modify_rolls_back_on_error(self, name):
        disk = Disk(8, backend=name)
        bid = disk.allocate()
        disk.write(bid, Block(8, data=[1]))
        with pytest.raises(RuntimeError):
            with disk.modify(bid) as blk:
                blk.append(2)
                raise RuntimeError("abort")
        assert disk.peek(bid).records() == [1]

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_stale_loan_keeps_stored_contents(self, name):
        disk = Disk(8, backend=name)
        bid = disk.allocate()
        blk = disk.load(bid)
        blk.append(1)
        disk.write(bid, Block(8, data=[7, 8]))  # loan goes stale
        disk.store(bid)  # must not resurrect the dead handle
        assert disk.peek(bid).records() == [7, 8]

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_first_id_strides_namespace(self, name):
        disk = Disk(8, backend=name, first_id=1000)
        assert disk.allocate_many(3) == [1000, 1001, 1002]
        with pytest.raises(InvalidBlockError):
            disk.read(0)

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_read_records_charges_like_scan(self, name):
        disk = Disk(8, backend=name)
        ids = disk.allocate_many(3)
        for bid in ids:
            disk.write(bid, Block(8, data=[bid, bid + 10]))
        before = disk.stats.snapshot()
        out = disk.read_records(ids)
        delta = disk.stats.delta_since(before)
        assert delta.reads == 3 and delta.writes == 0
        assert out == [ids[0], ids[0] + 10, ids[1], ids[1] + 10, ids[2], ids[2] + 10]
