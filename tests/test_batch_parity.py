"""Batch vs. scalar parity: the I/O-equivalence contract, enforced.

``insert_batch`` / ``lookup_batch`` / ``delete_batch`` promise
**bit-identical** I/O accounting to the scalar per-key loops: the same
:class:`~repro.em.iostats.IOStats` counters (reads, writes, combined
read-modify-writes, allocations), the same
:class:`~repro.tables.base.TableStats`, the same
:meth:`~repro.tables.base.ExternalDictionary.layout_snapshot` contents
(block ids included — allocation order must match), and the same memory
high-water mark — under both the paper's footnote-2 policy and the
strict one, across seeds, with duplicate keys in the stream, and when
batches interleave with queries mid-build.

Two context shapes are exercised: a roomy one where all buckets stay
single-block (the vectorised fast paths), and a cramped one (tiny
``b``) where overflow chains force every fallback branch.

Two further axes ride on top since the pluggable-backend PR:

* **backend parity** — every table, driven identically over the
  ``mapping`` and ``arena`` backends, must produce bit-identical I/O
  counters, layouts and memory peaks (the backend is a representation
  choice, never an accounting one);
* **shard sweep** — the :class:`ShardedDictionary` router over
  N ∈ {1, 2, 8} shards obeys the full scalar/batch contract at every N
  and backend (per-shard strided disk namespaces make shard state
  interleaving-independent), and N = 1 is bit-transparent against the
  bare inner table.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.baselines.btree import BTree
from repro.baselines.buffer_tree import BufferTree
from repro.baselines.lsm import LSMTree
from repro.core.buffered import BufferedHashTable
from repro.core.logmethod import LogMethodHashTable
from repro.em import PAPER_POLICY, STRICT_POLICY, make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.tables import (
    ChainedHashTable,
    ExtendibleHashTable,
    LinearHashingTable,
    LinearProbingHashTable,
    ShardedDictionary,
    make_sharded,
)

N_KEYS = 1800
N_PROBE = 600


def _chained(ctx):
    return ChainedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _linear_probing(ctx):
    return LinearProbingHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _logmethod(ctx):
    return LogMethodHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _buffered(ctx):
    return BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _lsm(ctx):
    return LSMTree(ctx, bloom_bits_per_key=4.0)


def _lsm_nobloom(ctx):
    return LSMTree(ctx)


def _sharded_buffered(ctx):
    return ShardedDictionary(ctx, _buffered, shards=2)


def _buffer_tree(ctx):
    return BufferTree(ctx)


def _btree(ctx):
    return BTree(ctx)


def _extendible(ctx):
    return ExtendibleHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _linear_hashing(ctx):
    return LinearHashingTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


#: factory -> context kwargs per shape ("roomy" single-block, "cramped"
#: chain-heavy).  BufferTree needs m >= 4b, so its cramped shape differs.
TABLES = {
    "chained": (_chained, dict(b=32, m=512), dict(b=4, m=128)),
    "linear_probing": (_linear_probing, dict(b=32, m=512), dict(b=4, m=128)),
    "logmethod": (_logmethod, dict(b=32, m=512), dict(b=4, m=128)),
    "buffered": (_buffered, dict(b=32, m=512), dict(b=4, m=128)),
    "lsm": (_lsm, dict(b=32, m=512), dict(b=4, m=128)),
    "lsm_nobloom": (_lsm_nobloom, dict(b=32, m=512), dict(b=4, m=128)),
    "buffer_tree": (_buffer_tree, dict(b=32, m=512), dict(b=8, m=64)),
    "btree": (_btree, dict(b=32, m=512), dict(b=8, m=256)),
    "extendible": (_extendible, dict(b=32, m=512), dict(b=8, m=256)),
    "linear_hashing": (_linear_hashing, dict(b=32, m=512), dict(b=8, m=256)),
    # The router over two buffered shards: full contract, every test.
    "sharded_buffered": (_sharded_buffered, dict(b=32, m=512), dict(b=4, m=128)),
}

POLICIES = {"paper": PAPER_POLICY, "strict": STRICT_POLICY}

BACKENDS = ("mapping", "arena")


def _keys(seed: int, *, dupes: bool) -> tuple[list[int], list[int]]:
    rnd = random.Random(seed)
    keys = rnd.sample(range(10**12), N_KEYS)
    if dupes:
        # Re-insertions scattered mid-stream exercise the dedup screens.
        keys = keys[:1200] + keys[200:500] + keys[1200:]
    probe = keys[::3] + rnd.sample(range(10**12), N_PROBE)
    return keys, probe


def _state(ctx, table):
    snap = table.layout_snapshot()
    return {
        "io": ctx.stats.snapshot(),
        "table_stats": table.stats,
        "memory_items": snap.memory_items,
        "blocks": snap.blocks,
        "size": len(table),
        # Table-level accessor: the context budget for plain tables, the
        # per-shard budget aggregate for the sharded router.
        "high_water": table.memory_high_water(),
    }


def _assert_same(scalar_state, batch_state, label: str) -> None:
    s, b = scalar_state["io"], batch_state["io"]
    assert (s.reads, s.writes, s.combined, s.allocations) == (
        b.reads,
        b.writes,
        b.combined,
        b.allocations,
    ), f"{label}: I/O counters diverge: scalar={s} batch={b}"
    assert scalar_state["table_stats"] == batch_state["table_stats"], label
    assert scalar_state["size"] == batch_state["size"], label
    assert scalar_state["memory_items"] == batch_state["memory_items"], label
    assert scalar_state["blocks"] == batch_state["blocks"], (
        f"{label}: disk layouts diverge"
    )
    assert scalar_state["high_water"] == batch_state["high_water"], label


def _run_pair(factory, ctx_kwargs, policy, keys, probe, *, chunks: int):
    """Drive a scalar and a batch table identically; compare everything."""
    ctx_s = make_context(policy=policy, **ctx_kwargs)
    ctx_b = make_context(policy=policy, **ctx_kwargs)
    table_s = factory(ctx_s)
    table_b = factory(ctx_b)

    bounds = [len(keys) * i // chunks for i in range(chunks + 1)]
    for lo, hi in zip(bounds, bounds[1:]):
        chunk = keys[lo:hi]
        table_s.insert_many(chunk)
        table_b.insert_batch(chunk)
        # Queries interleaved between insert batches (mix of hits and
        # misses) must agree in results and in charged I/Os.
        r_s = [table_s.lookup(k) for k in probe]
        r_b = table_b.lookup_batch(probe)
        assert r_s == r_b.tolist(), "lookup results diverge mid-build"
        assert isinstance(r_b, np.ndarray) and r_b.dtype == bool
        # Deletes ride the same interleaving: a thin slice of this
        # chunk's keys (some doubly listed in dupe streams — the second
        # delete must miss) plus guaranteed misses, scalar vs batch.
        victims = chunk[1::7] + [10**13 + lo, 10**13 + hi]
        d_s = table_s.delete_many(victims)
        d_b = table_b.delete_batch(victims)
        assert d_s == d_b.tolist(), "delete results diverge mid-build"
        assert isinstance(d_b, np.ndarray) and d_b.dtype == bool
    _assert_same(_state(ctx_s, table_s), _state(ctx_b, table_b), "final")
    table_s.check_invariants()
    table_b.check_invariants()


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("name", sorted(TABLES))
def test_single_batch_parity(name, policy_name):
    factory, roomy, _ = TABLES[name]
    keys, probe = _keys(seed=11, dupes=False)
    _run_pair(factory, roomy, POLICIES[policy_name], keys, probe, chunks=1)


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("name", sorted(TABLES))
def test_interleaved_batches_parity(name, policy_name):
    factory, roomy, _ = TABLES[name]
    keys, probe = _keys(seed=23, dupes=True)
    _run_pair(factory, roomy, POLICIES[policy_name], keys, probe, chunks=4)


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("name", sorted(TABLES))
def test_cramped_chains_parity(name, policy_name):
    """Tiny blocks force overflow chains: the vectorised fast paths must
    detect them and fall back without breaking equivalence."""
    factory, _, cramped = TABLES[name]
    keys, probe = _keys(seed=37, dupes=True)
    keys, probe = keys[:700], probe[:300]
    # Soft memory budget: these deliberately under-sized contexts blow
    # the m-word limit (directories/fences alone exceed it); the
    # high-water mark is still compared for parity.
    cramped = dict(cramped, hard_memory=False)
    _run_pair(factory, cramped, POLICIES[policy_name], keys, probe, chunks=3)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_seed_sweep_buffered(seed):
    """The tentpole table, across seeds, paper policy, single batch."""
    factory, roomy, _ = TABLES["buffered"]
    keys, probe = _keys(seed=seed, dupes=seed % 2 == 0)
    _run_pair(factory, roomy, PAPER_POLICY, keys, probe, chunks=2)


@pytest.mark.parametrize("name", sorted(TABLES))
def test_cost_out_matches_snapshot_deltas(name):
    """``lookup_batch(cost_out=...)`` reports exactly the per-query I/O
    deltas the old driver-side snapshot loop measured."""
    factory, roomy, _ = TABLES[name]
    keys, probe = _keys(seed=41, dupes=False)
    ctx = make_context(**roomy)
    table = factory(ctx)
    table.insert_batch(keys)

    costs: list[int] = []
    found = table.lookup_batch(probe, cost_out=costs)
    assert len(costs) == len(probe)

    ctx2 = make_context(**roomy)
    table2 = factory(ctx2)
    table2.insert_batch(keys)
    expected_costs = []
    expected_found = []
    for k in probe:
        before = ctx2.stats.snapshot()
        expected_found.append(table2.lookup(k))
        expected_costs.append(ctx2.stats.delta_since(before).total)
    assert costs == expected_costs
    assert found.tolist() == expected_found


@pytest.mark.parametrize("name", sorted(TABLES))
def test_delete_cost_out_matches_snapshot_deltas(name):
    """``delete_batch(cost_out=...)`` reports exactly the per-delete I/O
    deltas a driver-side snapshot loop around scalar deletes measures."""
    factory, roomy, _ = TABLES[name]
    keys, probe = _keys(seed=43, dupes=False)
    victims = keys[::4] + probe[-200:]  # live keys + guaranteed misses
    # Soft budget: LSM tombstones for this many deletes legitimately
    # exceed the roomy m; the high-water mark is still compared.
    roomy = dict(roomy, hard_memory=False)

    ctx = make_context(**roomy)
    table = factory(ctx)
    table.insert_batch(keys)
    costs: list[int] = []
    removed = table.delete_batch(victims, cost_out=costs)
    assert len(costs) == len(victims)

    ctx2 = make_context(**roomy)
    table2 = factory(ctx2)
    table2.insert_batch(keys)
    expected_costs = []
    expected_removed = []
    for k in victims:
        before = ctx2.stats.snapshot()
        expected_removed.append(table2.delete(k))
        expected_costs.append(ctx2.stats.delta_since(before).total)
    assert costs == expected_costs
    assert removed.tolist() == expected_removed
    _assert_same(_state(ctx, table), _state(ctx2, table2), f"{name} delete costs")


def test_lsm_tombstone_resurrection_parity():
    """Deletes + re-inserts route through the LSM batch path's tombstone
    branch identically to the scalar one."""
    keys, _ = _keys(seed=53, dupes=False)
    pre, rest = keys[:800], keys[800:1400]
    ctx_s = make_context(b=32, m=512)
    ctx_b = make_context(b=32, m=512)
    t_s, t_b = LSMTree(ctx_s), LSMTree(ctx_b)
    for t in (t_s, t_b):
        t.insert_many(pre)
        for k in pre[::5]:
            t.delete(k)
    stream = pre[::5][:60] + rest  # resurrect some tombstoned keys
    t_s.insert_many(stream)
    t_b.insert_batch(stream)
    probe = pre + rest
    assert [t_s.lookup(k) for k in probe] == t_b.lookup_batch(probe).tolist()
    _assert_same(_state(ctx_s, t_s), _state(ctx_b, t_b), "lsm-tombstones")


def test_lsm_resurrect_memory_peak_without_flush():
    """The high-water mark must capture the pre-resurrect maximum even
    when no flush boundary charges it (fresh inserts grow the memtable,
    then resurrects shrink the tombstone set)."""

    def build(ctx):
        t = LSMTree(ctx, memtable_items=500)
        t.insert_many(range(1, 101))
        for k in range(1, 101):
            t.delete(k)  # all tombstoned (levels hold the copies)
        return t

    ctx_s = make_context(b=32, m=2048)
    ctx_b = make_context(b=32, m=2048)
    t_s, t_b = build(ctx_s), build(ctx_b)
    # 150 fresh keys then 100 resurrects: the peak (memtable 150 +
    # tombstones 100) occurs mid-stream, with no flush in between.
    stream = list(range(1000, 1150)) + list(range(1, 101))
    t_s.insert_many(stream)
    t_b.insert_batch(stream)
    _assert_same(_state(ctx_s, t_s), _state(ctx_b, t_b), "lsm-resurrect-peak")


def test_numpy_scalar_lists_do_not_corrupt_state():
    """A list of numpy scalars (e.g. elements of an ndarray) must behave
    exactly like the same list of Python ints — numpy uint64 arithmetic
    must never reach scalar ``hash()`` or the stored blocks."""
    keys = list(range(1, 1501))
    np_keys = [np.uint64(k) for k in keys]
    probe = keys[::5] + [99999991, 99999992]
    np_probe = [np.uint64(k) for k in probe]
    ctx_i = make_context(b=32, m=512)
    ctx_n = make_context(b=32, m=512)
    t_i, t_n = _buffered(ctx_i), _buffered(ctx_n)
    t_i.insert_batch(keys)
    t_n.insert_batch(np_keys)
    r_i = t_i.lookup_batch(probe)
    r_n = t_n.lookup_batch(np_probe)
    assert r_i.tolist() == r_n.tolist()
    _assert_same(_state(ctx_i, t_i), _state(ctx_n, t_n), "np-scalar-list")
    for items in t_n.layout_snapshot().blocks.values():
        assert all(type(x) is int for x in items)


# -- backend parity ----------------------------------------------------------


def _drive_batch(factory, ctx_kwargs, policy, backend, keys, probe):
    """One batch-driven build with interleaved queries; return the state."""
    ctx = make_context(policy=policy, backend=backend, **ctx_kwargs)
    table = factory(ctx)
    bounds = [0, len(keys) // 3, 2 * len(keys) // 3, len(keys)]
    results = []
    for lo, hi in zip(bounds, bounds[1:]):
        table.insert_batch(keys[lo:hi])
        results.append(table.lookup_batch(probe).tolist())
        results.append(
            table.delete_batch(keys[lo:hi][1::9] + [10**13 + lo]).tolist()
        )
    costs: list[int] = []
    table.lookup_batch(probe, cost_out=costs)
    table.delete_batch(keys[::11] + [10**13 + 7], cost_out=costs)
    table.check_invariants()
    state = _state(ctx, table)
    state["results"] = results
    state["costs"] = costs
    return state


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("name", sorted(TABLES))
def test_backend_bit_identity(name, policy_name):
    """The arena backend must charge and lay out exactly like the mapping
    backend — same counters, same block ids and contents, same peaks."""
    factory, roomy, _ = TABLES[name]
    keys, probe = _keys(seed=61, dupes=True)
    mapping = _drive_batch(factory, roomy, POLICIES[policy_name], "mapping", keys, probe)
    arena = _drive_batch(factory, roomy, POLICIES[policy_name], "arena", keys, probe)
    assert mapping["results"] == arena["results"]
    assert mapping["costs"] == arena["costs"]
    _assert_same(mapping, arena, f"{name}/{policy_name} backends")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("name", ["buffered", "chained", "lsm"])
def test_cramped_backend_parity(name, policy_name, backend):
    """Scalar-vs-batch parity on the arena backend too, in the cramped
    shapes whose chains force the loan/absorb fallback paths."""
    factory, _, cramped = TABLES[name]
    keys, probe = _keys(seed=67, dupes=True)
    keys, probe = keys[:700], probe[:300]
    cramped = dict(cramped, hard_memory=False, backend=backend)
    _run_pair(factory, cramped, POLICIES[policy_name], keys, probe, chunks=3)


# -- shard sweep -------------------------------------------------------------


@pytest.mark.parametrize("shards", [1, 2, 8])
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_sharded_scalar_batch_parity(shards, policy_name):
    """The router's batch path is bit-identical to per-key routing at
    every shard count (strided disk namespaces make shard state
    independent of interleaving)."""
    factory = make_sharded(_buffered, shards)
    keys, probe = _keys(seed=71, dupes=True)
    _run_pair(factory, dict(b=32, m=512), POLICIES[policy_name], keys, probe, chunks=3)


@pytest.mark.parametrize("shards", [1, 2, 8])
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_sharded_backend_bit_identity(shards, policy_name):
    """Sharded-over-arena equals sharded-over-mapping bit for bit, at
    every shard count and under both I/O policies."""
    factory = make_sharded(_buffered, shards)
    keys, probe = _keys(seed=73, dupes=True)
    policy = POLICIES[policy_name]
    mapping = _drive_batch(factory, dict(b=32, m=512), policy, "mapping", keys, probe)
    arena = _drive_batch(factory, dict(b=32, m=512), policy, "arena", keys, probe)
    assert mapping["results"] == arena["results"]
    assert mapping["costs"] == arena["costs"]
    _assert_same(mapping, arena, f"sharded[{shards}]/{policy_name} backends")


@pytest.mark.parametrize("backend", BACKENDS)
def test_single_shard_is_transparent(backend):
    """N=1 sharding is a no-op wrapper: bit-identical to the bare table
    — counters, block ids, snapshots, memory peaks, costs."""
    keys, probe = _keys(seed=79, dupes=True)
    bare = _drive_batch(_buffered, dict(b=32, m=512), PAPER_POLICY, backend, keys, probe)
    routed = _drive_batch(
        make_sharded(_buffered, 1), dict(b=32, m=512), PAPER_POLICY, backend, keys, probe
    )
    assert bare["results"] == routed["results"]
    assert bare["costs"] == routed["costs"]
    _assert_same(bare, routed, f"n=1 transparency/{backend}")


def test_insert_batch_accepts_numpy_arrays():
    ctx = make_context(b=32, m=512)
    table = _buffered(ctx)
    arr = np.array([5, 17, 29, 5, 17, 93], dtype=np.uint64)
    table.insert_batch(arr)
    assert len(table) == 4
    out = table.lookup_batch(np.array([5, 6, 93], dtype=np.uint64))
    assert out.tolist() == [True, False, True]
    snap = table.layout_snapshot()
    for items in snap.blocks.values():
        assert all(type(x) is int for x in items), "numpy ints leaked to disk"
