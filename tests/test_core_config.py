"""Unit tests for parameter derivations and the Figure 1 curves."""

import math

import numpy as np
import pytest

from repro.core.config import (
    BufferedParams,
    LowerBoundParams,
    insertion_lower_bound,
    insertion_upper_bound,
    query_cost_target,
)
from repro.core.tradeoff import (
    TradeoffCurves,
    crossover_exponent,
    figure1_curves,
    regime_of,
)


class TestLowerBoundParams:
    def test_case1_parameters_match_paper(self):
        """δ=1/b^c, φ=1/b^{(c−1)/4}, ρ=2b^{(c+3)/4}/n, s=n/b^{(c+1)/2}."""
        b, n, c = 64, 10**6, 2.0
        p = LowerBoundParams.case1(b, n, c)
        assert p.delta == pytest.approx(b**-2.0)
        assert p.phi == pytest.approx(b ** -(1 / 4))
        assert p.rho == pytest.approx(2 * b ** (5 / 4) / n)
        assert p.s == round(n / b**1.5)
        assert p.case == 1

    def test_case2_parameters(self):
        b, n, kappa = 64, 10**6, 4.0
        p = LowerBoundParams.case2(b, n, kappa)
        assert p.delta == pytest.approx(1 / (kappa**4 * b))
        assert p.phi == pytest.approx(1 / kappa)
        assert p.rho == pytest.approx(2 * kappa * b / n)
        assert p.s == round(n / (kappa**2 * b))

    def test_case3_parameters(self):
        b, n, c = 64, 10**6, 0.5
        p = LowerBoundParams.case3(b, n, c)
        assert p.delta == pytest.approx(b**-0.5)
        assert p.phi == 0.125
        assert p.rho == pytest.approx(16 * b / n)
        assert p.s == round(32 * n / b**0.5)

    def test_dispatch(self):
        assert LowerBoundParams.for_exponent(64, 10**6, 1.5).case == 1
        assert LowerBoundParams.for_exponent(64, 10**6, 1.0).case == 2
        assert LowerBoundParams.for_exponent(64, 10**6, 0.5).case == 3

    def test_case_domain_validation(self):
        with pytest.raises(Exception):
            LowerBoundParams.case1(64, 10**6, 0.5)
        with pytest.raises(Exception):
            LowerBoundParams.case3(64, 10**6, 1.5)

    def test_bad_index_capacity(self):
        p = LowerBoundParams.case1(64, 10**6, 2.0)
        # b · λ/ρ grows linearly in λ.
        assert p.bad_index_capacity(64, 0.2) == pytest.approx(
            2 * p.bad_index_capacity(64, 0.1)
        )


class TestHeadlineBounds:
    def test_lower_bound_case_boundaries(self):
        b = 256
        assert insertion_lower_bound(b, 2.0) == pytest.approx(
            1 - b ** (-1 / 4), abs=1e-9
        )
        assert insertion_lower_bound(b, 1.0) == 1.0
        assert insertion_lower_bound(b, 0.5) == pytest.approx(b**-0.5)

    def test_lower_bound_monotone_within_each_case(self):
        """Within each regime the bound tightens as c grows.  (Across the
        c = 1 boundary the concrete curve dips — ``1 − 1/b^{(c−1)/4}``
        is weak just above 1 — so global monotonicity is *not* part of
        the theorem.)"""
        b = 128
        below = [insertion_lower_bound(b, c) for c in [0.25, 0.5, 0.75, 0.95]]
        above = [insertion_lower_bound(b, c) for c in [1.05, 1.5, 2.0, 3.0]]
        assert below == sorted(below)
        assert above == sorted(above)

    def test_upper_bound_brackets_lower(self):
        """Upper envelope ≥ lower envelope at every exponent (up to the
        suppressed constants, which our defaults respect)."""
        b, n, m = 256, 10**7, 4096
        for c in [0.25, 0.5, 0.75, 1.25, 1.5, 2.0]:
            up = insertion_upper_bound(b, c, n, m)
            lo = insertion_lower_bound(b, c, constant=0.25)
            assert up >= lo * 0.9, (c, up, lo)

    def test_query_cost_target(self):
        assert query_cost_target(64, 1.0) == pytest.approx(1 + 1 / 64)


class TestRegimes:
    def test_regime_classification(self):
        assert regime_of(2.0) == "buffering-useless"
        assert regime_of(1.0) == "boundary"
        assert regime_of(0.5) == "buffering-effective"
        with pytest.raises(ValueError):
            regime_of(0.0)


class TestFigure1:
    def test_default_grid_covers_both_regimes(self):
        curves = figure1_curves(128, 10**6, 4096)
        cs = [p.c for p in curves.lower]
        assert min(cs) < 1 < max(cs)
        assert len(curves.lower) == len(curves.upper)

    def test_lower_bound_jump_at_boundary(self):
        """The paper's picture: t_u lower bound is o(1) below c = 1 and
        approaches 1 well above it (near the boundary the concrete
        case-1 expression is weak, so we compare away from it)."""
        curves = figure1_curves(256, 10**7, 4096)
        below = [p.insert_cost for p in curves.lower if p.c < 0.9]
        well_above = [p.insert_cost for p in curves.lower if p.c > 1.6]
        assert max(below) < 0.5
        assert min(well_above) > 0.5

    def test_crossover_detection_near_one(self):
        curves = figure1_curves(256, 10**7, 4096)
        x = crossover_exponent(curves, threshold=0.5)
        assert x is not None
        assert 0.8 <= x <= 1.3

    def test_measured_points_append(self):
        curves = TradeoffCurves(b=64, n=1000, m=128)
        curves.add_measured(0.5, 1.01, 0.2, "buffered")
        rows = curves.rows()
        assert any(r["kind"] == "measured" for r in rows)

    def test_custom_grid(self):
        grid = np.array([0.5, 1.5])
        curves = figure1_curves(64, 10**5, 512, c_grid=grid)
        assert len(curves.lower) == 2
