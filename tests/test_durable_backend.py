"""DurableArenaBackend: memmap persistence, flush/open, pickling.

The generic backend contract (bit-identical accounting, layouts, stats
across backends) is enforced for ``durable-arena`` by the registry
fixture in ``tests/test_em_backends.py``; this file covers what is new:
the on-disk lifecycle.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.em import BACKENDS, Block, Disk, DurableArenaBackend, make_backend


class TestLifecycle:
    def test_registered(self):
        assert BACKENDS["durable-arena"] is DurableArenaBackend
        be = make_backend("durable-arena", 16, 1)
        assert isinstance(be, DurableArenaBackend)

    def test_flush_open_round_trip(self, tmp_path):
        be = DurableArenaBackend(16, path=tmp_path / "store")
        for bid in range(40):
            be.create(bid)
            be.append(bid, [bid * 10 + j for j in range(bid % 5)])
        be.delete(7)
        be.flush()
        re = DurableArenaBackend.open(tmp_path / "store")
        assert re.count() == be.count()
        assert 7 not in re
        for bid in range(40):
            if bid == 7:
                continue
            assert re.records(bid) == be.records(bid)
        assert re.words_stored() == be.words_stored()

    def test_open_preserves_free_list_reuse(self, tmp_path):
        be = DurableArenaBackend(8, path=tmp_path / "store")
        be.create(1)
        be.append(1, [11, 12])
        be.delete(1)
        be.flush()
        re = DurableArenaBackend.open(tmp_path / "store")
        re.create(2)
        re.append(2, [99])
        assert re.records(2) == [99]
        assert re.count() == 1

    def test_growth_persists(self, tmp_path):
        be = DurableArenaBackend(4, path=tmp_path / "store", initial_slots=2)
        for bid in range(100):  # forces several _grow remaps
            be.create(bid)
            be.append(bid, [bid])
        be.flush()
        re = DurableArenaBackend.open(tmp_path / "store")
        assert re.count() == 100
        assert all(re.records(bid) == [bid] for bid in range(100))

    def test_anonymous_backend_gets_temp_dir(self):
        be = DurableArenaBackend(8)
        be.create(0)
        be.append(0, [5])
        assert be.path.exists()
        assert be.records(0) == [5]


class TestPickling:
    def test_pickle_round_trip_rehomes(self, tmp_path):
        be = DurableArenaBackend(16, path=tmp_path / "store")
        for bid in range(10):
            be.create(bid)
            be.append(bid, list(range(bid)))
        clone = pickle.loads(pickle.dumps(be))
        assert clone.path != be.path  # re-homed, never shares live files
        for bid in range(10):
            assert clone.records(bid) == be.records(bid)
        # Divergence after the copy: the clone is fully independent.
        clone.append(3, [999])
        assert be.records(3) != clone.records(3)

    def test_pickle_preserves_odd_blocks(self, tmp_path):
        be = DurableArenaBackend(8, record_words=2, path=tmp_path / "store")
        be.create(0)
        be.append(0, [1, 2, 3, 4])
        be.create(1, record_words=1)  # off-width: the _odd fallback path
        be.append(1, [7])
        clone = pickle.loads(pickle.dumps(be))
        assert clone.records(0) == [1, 2, 3, 4]
        assert clone.records(1) == [7]


class TestUnderDisk:
    def test_disk_modify_cycle(self):
        disk = Disk(8, backend="durable-arena")
        bid = disk.allocate()
        disk.write(bid, Block(8, data=[41]))
        with disk.modify(bid) as blk:
            blk.append(42)
        assert disk.read(bid).records() == [41, 42]
        assert disk.stats.reads >= 1 and disk.stats.writes >= 1

    def test_accounting_matches_arena(self):
        totals = {}
        for backend in ("arena", "durable-arena"):
            disk = Disk(8, backend=backend)
            ids = [disk.allocate() for _ in range(20)]
            for i, bid in enumerate(ids):
                disk.write(bid, Block(8, data=[i]))
            for bid in ids[::2]:
                with disk.modify(bid) as blk:
                    blk.append(100)
            totals[backend] = (
                disk.stats.reads,
                disk.stats.writes,
                disk.stats.combined,
                disk.stats.allocations,
            )
        assert totals["arena"] == totals["durable-arena"]
