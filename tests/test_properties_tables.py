"""Property-based tests: every dictionary behaves like a Python set.

The model-based test drives each table with an arbitrary interleaving
of inserts, deletes and lookups, mirroring the operations into a plain
``set`` and demanding observational equivalence — plus the structure's
own ``check_invariants`` at the end.  This is the test that caught the
subtle bugs during development; keep the op sequences modest so the
whole matrix stays fast.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.baselines.btree import BTree
from repro.baselines.lsm import LSMTree
from repro.core.buffered import BufferedHashTable
from repro.core.logmethod import LogMethodHashTable
from repro.tables.chaining import ChainedHashTable
from repro.tables.extendible import ExtendibleHashTable
from repro.tables.linear_hashing import LinearHashingTable
from repro.tables.linear_probing import LinearProbingHashTable


def fresh(cls):
    ctx = make_context(b=16, m=512, u=2**40)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=99)
    if cls is BTree:
        return BTree(ctx)
    if cls is LSMTree:
        return LSMTree(ctx, memtable_items=32)
    return cls(ctx, h)


# Ops: (0, k) insert, (1, k) delete, (2, k) lookup.
ops_strategy = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 120)), max_size=120
)

WITH_DELETE = [
    ChainedHashTable,
    LinearProbingHashTable,
    ExtendibleHashTable,
    LinearHashingTable,
    BTree,
    LSMTree,  # tombstone deletion
]
INSERT_ONLY = [LogMethodHashTable, BufferedHashTable]


@pytest.mark.parametrize("cls", WITH_DELETE, ids=lambda c: c.__name__)
class TestSetEquivalenceWithDeletes:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=ops_strategy)
    def test_observationally_a_set(self, cls, ops):
        table = fresh(cls)
        model: set[int] = set()
        for op, key in ops:
            if op == 0:
                table.insert(key)
                model.add(key)
            elif op == 1:
                assert table.delete(key) == (key in model)
                model.discard(key)
            else:
                assert table.lookup(key) == (key in model)
        assert len(table) == len(model)
        assert all(table.lookup(k) for k in model)
        table.check_invariants()


@pytest.mark.parametrize("cls", INSERT_ONLY, ids=lambda c: c.__name__)
class TestSetEquivalenceInsertOnly:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=ops_strategy)
    def test_observationally_a_set(self, cls, ops):
        table = fresh(cls)
        model: set[int] = set()
        for op, key in ops:
            if op == 0:
                table.insert(key)
                model.add(key)
            else:
                assert table.lookup(key) == (key in model)
        assert len(table) == len(model)
        assert all(table.lookup(k) for k in model)
        table.check_invariants()


class TestIOMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(keys=st.lists(st.integers(0, 10**9), min_size=1, max_size=200, unique=True))
    def test_io_counter_never_decreases(self, keys):
        ctx = make_context(b=16, m=512, u=2**40)
        h = MULTIPLY_SHIFT.sample(ctx.u, seed=1)
        t = ChainedHashTable(ctx, h)
        last = 0
        for k in keys:
            t.insert(k)
            now = ctx.io_total()
            assert now >= last
            last = now

    @settings(max_examples=15, deadline=None)
    @given(keys=st.lists(st.integers(0, 10**9), min_size=1, max_size=150, unique=True))
    def test_snapshot_is_io_free_for_all_tables(self, keys):
        for cls in (ChainedHashTable, LogMethodHashTable, BufferedHashTable):
            table = fresh(cls)
            table.insert_many(keys)
            before = table.ctx.io_total()
            snap = table.layout_snapshot()
            assert table.ctx.io_total() == before
            assert snap.item_count() == len(keys)
