"""Fault injection, retry healing, and the crashing journal.

What must hold: seeded schedules are exactly reproducible; a fault
burst within the retry budget heals invisibly (I/O ledgers untouched —
retries live below the disk's charging layer); a burst beyond it
surfaces as ``RetryExhausted`` with the block, shard, and epoch named;
a hard crash is never retried and leaves torn state behind that
recovery must ignore.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.em import (
    Disk,
    MappingBackend,
    RetryExhausted,
    SimulatedCrash,
    StorageFault,
    make_context,
)
from repro.core.buffered import BufferedHashTable
from repro.hashing.family import MULTIPLY_SHIFT
from repro.service import (
    CrashingJournal,
    DictionaryService,
    EpochJournal,
    FaultClock,
    FaultInjectingBackend,
    FaultSchedule,
    RetryPolicy,
    RetryingBackend,
)


def _stack(schedule, policy=None, sleeps=None):
    inner = MappingBackend(8, 1)
    faulty = FaultInjectingBackend(inner, schedule=schedule)
    retrier = RetryingBackend(
        faulty,
        policy=policy or RetryPolicy(max_retries=3, backoff_s=0.001),
        sleep=(sleeps.append if sleeps is not None else lambda s: None),
    )
    return inner, faulty, retrier


class TestSchedule:
    def test_sample_deterministic(self):
        a = FaultSchedule.sample(7, 500, read_sites=5, write_sites=5)
        b = FaultSchedule.sample(7, 500, read_sites=5, write_sites=5)
        assert a == b
        c = FaultSchedule.sample(8, 500, read_sites=5, write_sites=5)
        assert a != c

    def test_sample_sites_in_range(self):
        s = FaultSchedule.sample(1, 50, read_sites=10, write_sites=10, burst=3)
        for site, burst in {**s.read_faults, **s.write_faults}.items():
            assert 1 <= site <= 50
            assert burst == 3


class TestInjection:
    def test_fault_fires_at_site_then_heals(self):
        inner, faulty, _ = _stack(FaultSchedule(read_faults={2: 1}))
        inner.create(0)
        inner.append(0, [5])
        faulty.fetch(0)  # op 1: clean
        with pytest.raises(StorageFault, match="read fault"):
            faulty.fetch(0)  # op 2: scheduled
        assert faulty.fetch(0).records() == [5]  # op 3: healed

    def test_burst_spans_consecutive_calls(self):
        inner, faulty, _ = _stack(FaultSchedule(write_faults={1: 3}))
        inner.create(0)
        for _ in range(3):
            with pytest.raises(StorageFault):
                faulty.append(0, [1])
        faulty.append(0, [1])  # burst exhausted
        assert inner.records(0) == [1]

    def test_crash_tears_multi_record_write(self):
        inner, faulty, _ = _stack(FaultSchedule(crash_at_op=1))
        inner.create(0)
        with pytest.raises(SimulatedCrash):
            faulty.append(0, [1, 2, 3, 4])
        # A prefix landed: the abandoned state is genuinely torn.
        assert inner.records(0) == [1, 2]

    def test_crash_fires_at_first_op_past_index(self):
        inner, faulty, _ = _stack(FaultSchedule(crash_at_op=3))
        inner.create(0)
        inner.append(0, [9])
        faulty.fetch(0)
        faulty.fetch(0)
        with pytest.raises(SimulatedCrash):
            faulty.fetch(0)

    def test_passthrough_without_schedule(self):
        inner = MappingBackend(8, 1)
        faulty = FaultInjectingBackend(inner)
        inner.create(0)
        faulty.append(0, [1, 2])
        assert faulty.records(0) == [1, 2]
        assert faulty.clock.ops == 2
        assert faulty.injected == 0


class TestRetry:
    def test_heals_within_budget(self):
        inner, faulty, retrier = _stack(FaultSchedule(read_faults={1: 2}))
        inner.create(0)
        inner.append(0, [7])
        assert retrier.fetch(0).records() == [7]
        assert retrier.retries == 2

    def test_exhaustion_names_block(self):
        inner, faulty, retrier = _stack(FaultSchedule(read_faults={1: 10}))
        inner.create(0)
        with pytest.raises(RetryExhausted, match=r"block 0: gave up after 3"):
            retrier.fetch(0)

    def test_backoff_exponential_and_capped(self):
        sleeps: list[float] = []
        policy = RetryPolicy(max_retries=4, backoff_s=0.001, max_backoff_s=0.003)
        inner, faulty, retrier = _stack(
            FaultSchedule(write_faults={1: 4}), policy=policy, sleeps=sleeps
        )
        inner.create(0)
        retrier.append(0, [1])
        assert sleeps == [0.001, 0.002, 0.003, 0.003]  # doubled, then capped
        assert retrier.total_backoff_s == pytest.approx(sum(sleeps))

    def test_crash_is_not_retried(self):
        inner, faulty, retrier = _stack(FaultSchedule(crash_at_op=1))
        inner.create(0)
        with pytest.raises(SimulatedCrash):
            retrier.fetch(0)
        assert retrier.retries == 0

    def test_healed_faults_leave_accounting_untouched(self):
        """The acceptance invariant: retries are invisible to IOStats."""

        def run(schedule):
            disk = Disk(8)
            disk.backend = RetryingBackend(
                FaultInjectingBackend(disk.backend, schedule=schedule),
                policy=RetryPolicy(max_retries=4, backoff_s=0),
            )
            from repro.em import Block

            ids = [disk.allocate() for _ in range(10)]
            for i, bid in enumerate(ids):
                disk.write(bid, Block(8, data=[i]))
            for bid in ids:
                with disk.modify(bid) as blk:
                    blk.append(99)
                disk.read(bid)
            return (disk.stats.reads, disk.stats.writes, disk.stats.combined)

        clean = run(FaultSchedule())
        faulted = run(FaultSchedule.sample(3, 40, read_sites=5, write_sites=5, burst=2))
        assert clean == faulted


class TestServiceFaultNaming:
    """Satellite: surfaced faults name the shard and the epoch."""

    def _service(self, schedule):
        ctx = make_context(b=16, m=128, u=10**12, backend="mapping")
        svc = DictionaryService(
            ctx,
            lambda c: BufferedHashTable(c, MULTIPLY_SHIFT.sample(c.u, seed=7)),
            shards=2,
            executor="serial",
            epoch_ops=64,
        )
        for sub in svc._contexts:
            svc_retrier = RetryingBackend(
                FaultInjectingBackend(sub.disk.backend, schedule=schedule),
                policy=RetryPolicy(max_retries=2, backoff_s=0),
            )
            sub.disk.backend = svc_retrier
        return svc

    def test_retry_exhausted_names_shard_and_epoch(self):
        svc = self._service(FaultSchedule(write_faults={1: 50}))
        keys = np.arange(1, 400, dtype=np.uint64)
        kinds = np.zeros(len(keys), dtype=np.uint8)  # all inserts
        with pytest.raises(RetryExhausted) as exc_info:
            svc.run(kinds, keys)
        msg = str(exc_info.value)
        assert "epoch " in msg and "shard " in msg and "block " in msg

    def test_simulated_crash_propagates_unwrapped(self):
        svc = self._service(FaultSchedule(crash_at_op=5))
        keys = np.arange(1, 400, dtype=np.uint64)
        kinds = np.zeros(len(keys), dtype=np.uint8)
        with pytest.raises(SimulatedCrash) as exc_info:
            svc.run(kinds, keys)
        assert "shard" not in str(exc_info.value)  # kill -9 has no courtesy


class TestCrashingJournal:
    def test_crash_on_append_leaves_torn_record(self, tmp_path):
        path = tmp_path / "j.bin"
        kinds = np.zeros(10, dtype=np.uint8)
        keys = np.arange(10, dtype=np.uint64)
        j = CrashingJournal(path, crash_append_at=1, fsync=False)
        j.append_epoch(0, 0, 10, kinds, keys)
        j.commit(0, 0, 10)
        with pytest.raises(SimulatedCrash):
            j.append_epoch(1, 10, 20, kinds, keys)
        j.close()
        scan = EpochJournal.scan(path)
        assert [r.epoch for r in scan.committed] == [0]
        assert scan.valid_bytes < path.stat().st_size  # the torn bytes

    def test_crash_on_commit_discards_executed_epoch(self, tmp_path):
        path = tmp_path / "j.bin"
        kinds = np.zeros(10, dtype=np.uint8)
        keys = np.arange(10, dtype=np.uint64)
        j = CrashingJournal(path, crash_commit_at=0, fsync=False)
        j.append_epoch(0, 0, 10, kinds, keys)
        with pytest.raises(SimulatedCrash):
            j.commit(0, 0, 10)
        j.close()
        scan = EpochJournal.scan(path)
        assert scan.committed == []
        assert scan.uncommitted_ops == 10
