"""The dictionary service layer: epochs, executors, client.

Three guarantees are pinned here:

* **program-order equivalence** — for any interleaved mixed request
  stream, the service's per-op results (lookup hits, delete removals)
  and final contents equal a scalar program-order execution, at every
  shard count and epoch size, despite the conflict-aware cross-kind
  regrouping inside epochs;
* **executor determinism** — the ``threads`` executor produces
  bit-identical per-shard I/O ledgers, merged cluster counters, disk
  layouts and memory peaks to the ``serial`` executor, under both I/O
  policies and over both storage backends;
* **placement compatibility** — a service over N shards stores keys on
  exactly the shard a :class:`~repro.tables.sharded.ShardedDictionary`
  over N shards would pick (same fixed-seed router).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.buffered import BufferedHashTable
from repro.em import PAPER_POLICY, STRICT_POLICY, make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.service import (
    ClosedLoopClient,
    DictionaryService,
    build_epochs,
    make_executor,
)
from repro.service.client import _weighted_percentile
from repro.tables import ChainedHashTable, ShardedDictionary
from repro.workloads.generators import UniformKeys
from repro.workloads.trace import (
    OP_DELETE,
    OP_INSERT,
    OP_LOOKUP,
    BulkMixedWorkload,
    MixedWorkload,
    encode_ops,
)


def _chained(ctx):
    return ChainedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _buffered(ctx):
    return BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _mixed_stream(n, seed=0, u=10**12):
    """A hand-rolled interleaved stream with plenty of same-key traffic."""
    rnd = random.Random(seed)
    live: list[int] = []
    kinds, keys = [], []
    for _ in range(n):
        r = rnd.random()
        if not live or r < 0.45:
            k = rnd.randrange(u)
            kinds.append(OP_INSERT)
            live.append(k)
        elif r < 0.80:
            # Mix of hits, misses, and keys deleted earlier in-stream.
            k = rnd.choice(live) if rnd.random() < 0.7 else rnd.randrange(u)
            kinds.append(OP_LOOKUP)
        else:
            k = rnd.choice(live) if rnd.random() < 0.8 else rnd.randrange(u)
            kinds.append(OP_DELETE)
        keys.append(k)
    return np.array(kinds, dtype=np.uint8), np.array(keys, dtype=np.uint64)


def _reference(kinds, keys):
    """Scalar program-order execution over a Python set."""
    live: set[int] = set()
    lookup_found = np.zeros(len(kinds), dtype=bool)
    delete_removed = np.zeros(len(kinds), dtype=bool)
    for i, (kind, key) in enumerate(zip(kinds.tolist(), keys.tolist())):
        if kind == OP_INSERT:
            live.add(key)
        elif kind == OP_LOOKUP:
            lookup_found[i] = key in live
        else:
            if key in live:
                live.discard(key)
                delete_removed[i] = True
    return live, lookup_found, delete_removed


# -- epoch builder -----------------------------------------------------------


def test_epochs_cover_stream_without_cross_kind_keys():
    kinds, keys = _mixed_stream(4000, seed=3)
    epochs = build_epochs(kinds, keys, max_ops=512)
    assert epochs[0].start == 0 and epochs[-1].stop == len(kinds)
    for prev, cur in zip(epochs, epochs[1:]):
        assert prev.stop == cur.start
    for ep in epochs:
        assert 0 < ep.ops <= 512
        ins = set(ep.insert_keys.tolist())
        look = set(ep.lookup_keys.tolist())
        dele = set(ep.delete_keys.tolist())
        assert not (ins & look) and not (ins & dele) and not (look & dele), (
            "a key crossed kinds inside one epoch"
        )
        # Regrouped keys must be exactly the window's ops, kind by kind.
        k = kinds[ep.start : ep.stop]
        q = keys[ep.start : ep.stop]
        assert ep.insert_keys.tolist() == q[k == OP_INSERT].tolist()
        assert ep.lookup_keys.tolist() == q[k == OP_LOOKUP].tolist()
        assert ep.delete_keys.tolist() == q[k == OP_DELETE].tolist()
        assert kinds[ep.lookup_pos].tolist() == [OP_LOOKUP] * len(ep.lookup_pos)
        assert kinds[ep.delete_pos].tolist() == [OP_DELETE] * len(ep.delete_pos)


def test_epochs_cut_exactly_at_conflicts():
    # insert x · lookup x  → cut between them; same-kind repeats don't cut.
    kinds = np.array(
        [OP_INSERT, OP_INSERT, OP_LOOKUP, OP_LOOKUP, OP_DELETE], dtype=np.uint8
    )
    keys = np.array([5, 5, 5, 5, 5], dtype=np.uint64)
    epochs = build_epochs(kinds, keys, max_ops=100)
    assert [(e.start, e.stop) for e in epochs] == [(0, 2), (2, 4), (4, 5)]

    # Distinct keys never cut.
    kinds2 = np.array([OP_INSERT, OP_LOOKUP, OP_DELETE] * 5, dtype=np.uint8)
    keys2 = np.arange(15, dtype=np.uint64)
    assert len(build_epochs(kinds2, keys2, max_ops=100)) == 1


def test_epochs_max_ops_cuts():
    kinds = np.full(10, OP_INSERT, dtype=np.uint8)
    keys = np.arange(10, dtype=np.uint64)
    epochs = build_epochs(kinds, keys, max_ops=4)
    assert [(e.start, e.stop) for e in epochs] == [(0, 4), (4, 8), (8, 10)]


def test_epochs_validation():
    with pytest.raises(ValueError, match="max_ops"):
        build_epochs([OP_INSERT], [1], max_ops=0)
    with pytest.raises(ValueError, match="align"):
        build_epochs([OP_INSERT], [1, 2])
    with pytest.raises(ValueError, match="op code"):
        build_epochs([7], [1])
    assert build_epochs([], []) == []


# -- program-order equivalence ----------------------------------------------


@pytest.mark.parametrize("shards", [1, 3, 8])
@pytest.mark.parametrize("epoch_ops", [64, 1024])
def test_service_matches_program_order(shards, epoch_ops):
    kinds, keys = _mixed_stream(5000, seed=11)
    live, want_found, want_removed = _reference(kinds, keys)
    ctx = make_context(b=32, m=512, backend="arena", hard_memory=False)
    with DictionaryService(
        ctx, _chained, shards=shards, epoch_ops=epoch_ops
    ) as svc:
        run = svc.run(kinds, keys)
        assert run.ops == len(kinds)
        assert run.lookup_found.tolist() == want_found.tolist()
        assert run.delete_removed.tolist() == want_removed.tolist()
        assert len(svc) == len(live)
        # Final contents: every live key present, every other key absent.
        probe = sorted(live)[:500] + [10**13 + i for i in range(50)]
        final = svc.run(
            np.full(len(probe), OP_LOOKUP, dtype=np.uint8),
            np.array(probe, dtype=np.uint64),
        )
        assert final.lookup_found.tolist() == [k in live for k in probe]
        svc.check_invariants()


def test_run_trace_equals_encoded_run():
    wl = MixedWorkload(UniformKeys(10**12, seed=5), seed=9)
    ops = wl.take(1200)
    kinds, keys = encode_ops(ops)
    ctx1 = make_context(b=32, m=512)
    ctx2 = make_context(b=32, m=512)
    with DictionaryService(ctx1, _chained, shards=4) as a, DictionaryService(
        ctx2, _chained, shards=4
    ) as b:
        ra = a.run_trace(ops)
        rb = b.run(kinds, keys)
        assert ra.lookup_found.tolist() == rb.lookup_found.tolist()
        assert ra.delete_removed.tolist() == rb.delete_removed.tolist()
        assert a.io_snapshot() == b.io_snapshot()


# -- executor determinism ----------------------------------------------------


def _drive(executor, policy, backend, factory=_buffered, shards=6):
    gen = UniformKeys(10**12, seed=21)
    wl = BulkMixedWorkload(gen, mix=(0.4, 0.4, 0.1, 0.1), seed=2, chunk=512)
    kinds, keys = wl.take_arrays(6000)
    ctx = make_context(
        b=32, m=512, policy=policy, backend=backend, hard_memory=False
    )
    svc = DictionaryService(
        ctx, factory, shards=shards, executor=executor, epoch_ops=512
    )
    try:
        run = svc.run(kinds, keys)
        snap = svc.layout_snapshot()
        return {
            "found": run.lookup_found.tolist(),
            "removed": run.delete_removed.tolist(),
            "epoch_ios": [e.io for e in run.epochs],
            "shard_ledgers": [
                (s.reads, s.writes, s.combined, s.allocations)
                for s in svc.shard_io_snapshots()
            ],
            "cluster": svc.io_snapshot(),
            "blocks": snap.blocks,
            "memory_items": snap.memory_items,
            "peak": svc.memory_high_water(),
            "sizes": svc.shard_sizes(),
        }
    finally:
        svc.close()


@pytest.mark.parametrize("backend", ["mapping", "arena"])
@pytest.mark.parametrize(
    "policy", [PAPER_POLICY, STRICT_POLICY], ids=["paper", "strict"]
)
def test_threads_bit_identical_to_serial(policy, backend):
    serial = _drive("serial", policy, backend)
    threads = _drive("threads", policy, backend)
    assert serial["found"] == threads["found"]
    assert serial["removed"] == threads["removed"]
    assert serial["epoch_ios"] == threads["epoch_ios"]
    assert serial["shard_ledgers"] == threads["shard_ledgers"]
    assert serial["cluster"] == threads["cluster"]
    assert serial["blocks"] == threads["blocks"], "disk layouts diverge"
    assert serial["memory_items"] == threads["memory_items"]
    assert serial["peak"] == threads["peak"]
    assert serial["sizes"] == threads["sizes"]


def test_cluster_ledger_equals_shard_sum():
    out = _drive("threads", PAPER_POLICY, "arena")
    total = np.sum(np.array(out["shard_ledgers"]), axis=0).tolist()
    c = out["cluster"]
    assert total == [c.reads, c.writes, c.combined, c.allocations]
    assert sum(out["epoch_ios"]) == c.reads + c.writes


# -- placement compatibility -------------------------------------------------


@pytest.mark.parametrize("shards", [2, 5])
def test_service_places_keys_like_sharded_router(shards):
    keys = UniformKeys(10**12, seed=31).take(3000)
    ctx_r = make_context(b=32, m=512)
    router = ShardedDictionary(ctx_r, _chained, shards=shards)
    router.insert_batch(keys)
    ctx_s = make_context(b=32, m=512)
    with DictionaryService(ctx_s, _chained, shards=shards) as svc:
        svc.run(
            np.full(len(keys), OP_INSERT, dtype=np.uint8),
            np.array(keys, dtype=np.uint64),
        )
        assert svc.shard_sizes() == router.shard_sizes()
        # Same per-shard contents, not just sizes.
        for mine, theirs in zip(svc.shard_tables(), router.shard_tables()):
            snap_m = mine.layout_snapshot()
            snap_t = theirs.layout_snapshot()
            items_m = set(snap_m.memory_items) | {
                x for blk in snap_m.blocks.values() for x in blk
            }
            items_t = set(snap_t.memory_items) | {
                x for blk in snap_t.blocks.values() for x in blk
            }
            assert items_m == items_t


# -- construction / validation ----------------------------------------------


def test_executor_registry_and_validation():
    assert type(make_executor("serial")).name == "serial"
    assert type(make_executor("threads")).name == "threads"
    with pytest.raises(Exception, match="unknown executor"):
        make_executor("fibers")
    ctx = make_context(b=32, m=512)
    with pytest.raises(Exception, match="shard count"):
        DictionaryService(ctx, _chained, shards=0)
    with pytest.raises(Exception, match="epoch_ops"):
        DictionaryService(ctx, _chained, epoch_ops=-1)


def test_thread_executor_propagates_thunk_exception():
    ex = make_executor("threads", max_workers=2)
    ran = []

    def boom():
        raise RuntimeError("shard 1 exploded")

    def ok(tag):
        def thunk():
            ran.append(tag)
            return tag
        return thunk

    try:
        # The failure must surface (deterministically the first in
        # submission order), not deadlock, and not abandon siblings:
        # every other thunk still runs to completion first.
        with pytest.raises(RuntimeError, match="shard 1 exploded"):
            ex.run([ok("a"), boom, ok("b"), ok("c")])
        assert sorted(ran) == ["a", "b", "c"]
        with pytest.raises(ValueError, match="first"):
            ex.run([lambda: (_ for _ in ()).throw(ValueError("first")),
                    lambda: (_ for _ in ()).throw(KeyError("second"))])
        # The pool survives a failed round and is immediately reusable.
        assert ex.run([ok("d"), ok("e")]) == ["d", "e"]
    finally:
        ex.close()


def test_thread_executor_close_is_idempotent():
    ex = make_executor("threads", max_workers=2)
    assert ex.run([lambda: 1, lambda: 2, lambda: 3]) == [1, 2, 3]
    ex.close()
    ex.close()
    assert ex.run([lambda: 4, lambda: 5]) == [4, 5]  # pool rebuilt on demand
    ex.close()


# -- closed-loop client ------------------------------------------------------


def test_weighted_percentile_exact():
    pairs = [(0.010, 90), (0.100, 9), (1.000, 1)]
    assert _weighted_percentile(pairs, 50) == 0.010
    assert _weighted_percentile(pairs, 99) == 0.100
    assert _weighted_percentile(pairs, 99.5) == 1.000
    assert _weighted_percentile([], 50) == 0.0


def test_weighted_percentile_tiny_samples():
    # Degenerate samples must stay well-defined: a single pair is every
    # percentile; zero mass is 0.0; q is clamped into [0, 100].
    assert _weighted_percentile([(0.25, 1)], 50) == 0.25
    assert _weighted_percentile([(0.25, 1)], 99) == 0.25
    assert _weighted_percentile([(0.25, 1)], 0) == 0.25
    assert _weighted_percentile([(0.25, 0)], 99) == 0.0
    assert _weighted_percentile([(0.1, 0), (0.2, 3)], 50) == 0.2
    assert _weighted_percentile([(0.5, 2)], -5) == 0.5
    assert _weighted_percentile([(0.5, 2)], 150) == 0.5


def test_client_tiny_runs_report_sane_percentiles():
    ctx = make_context(b=32, m=512, backend="arena", hard_memory=False)
    with DictionaryService(ctx, _buffered, shards=2) as svc:
        client = ClosedLoopClient(svc, window=64)
        empty = client.drive(
            np.zeros(0, dtype=np.uint8), np.zeros(0, dtype=np.uint64)
        )
        assert empty.ops == 0 and empty.epochs == 0
        assert empty.p50_ms == empty.p99_ms == empty.max_ms == 0.0
        assert empty.kops == 0.0 and empty.amortized_io == 0.0
        one = client.drive(
            np.array([OP_INSERT], dtype=np.uint8),
            np.array([12345], dtype=np.uint64),
        )
        assert one.ops == 1 and one.epochs == 1
        assert 0 <= one.p50_ms == one.p99_ms == one.max_ms
        assert np.isfinite(one.p50_ms) and np.isfinite(one.kops)


def test_client_reports_mix_and_latencies():
    gen = UniformKeys(10**12, seed=41)
    wl = BulkMixedWorkload(gen, mix=(0.3, 0.55, 0.05, 0.1), seed=4, chunk=512)
    kinds, keys = wl.take_arrays(4000)
    ctx = make_context(b=32, m=512, backend="arena", hard_memory=False)
    with DictionaryService(ctx, _buffered, shards=4, epoch_ops=512) as svc:
        rep = ClosedLoopClient(svc, window=1024).drive(kinds, keys, check=True)
    assert rep.ops == 4000
    assert rep.inserts == int((kinds == OP_INSERT).sum())
    assert rep.lookups == int((kinds == OP_LOOKUP).sum())
    assert rep.deletes == int((kinds == OP_DELETE).sum())
    assert rep.epochs >= 4
    assert rep.seconds > 0 and rep.kops > 0
    assert 0 < rep.p50_ms <= rep.p99_ms <= rep.max_ms
    assert rep.io_total == ctx_total(svc)
    row = rep.row()
    assert set(row) == {
        "ops",
        "epochs",
        "kops",
        "goodput_kops",
        "p50_ms",
        "p99_ms",
        "queue_p99",
        "io/op",
        "shed",
        "rejected",
        "deadline_exceeded",
        "hit_rate",
        "negative_hits",
        "imbalance",
        "migrated_slots",
    }
    # Closed-loop runs execute everything: the overload columns are zero
    # and goodput equals throughput.  Uncached clusters zero-fill the
    # cache columns, and static (non-rebalancing) runs zero the
    # migration column, keeping one row schema for every configuration.
    assert row["shed"] == row["rejected"] == row["deadline_exceeded"] == 0
    assert row["queue_p99"] == 0.0
    assert row["hit_rate"] == 0.0 and row["negative_hits"] == 0
    assert row["migrated_slots"] == 0 and row["imbalance"] >= 0.0
    assert rep.executed_ops == rep.ops
    assert rep.goodput_kops == rep.kops


def ctx_total(svc):
    s = svc.io_snapshot()
    return s.reads + s.writes


# -- bulk mixed workload -----------------------------------------------------


def test_bulk_mixed_workload_semantics():
    gen = UniformKeys(10**12, seed=51)
    wl = BulkMixedWorkload(gen, mix=(0.4, 0.3, 0.2, 0.1), seed=6, chunk=256)
    kinds, keys = wl.take_arrays(5000)
    assert len(kinds) == len(keys) == 5000
    assert kinds.dtype == np.uint8 and keys.dtype == np.uint64
    # Program-order replay: every delete removes, every hit-lookup hits.
    live, found, removed = _reference(kinds, keys)
    assert bool(removed[kinds == OP_DELETE].all()), "a delete targeted a dead key"
    assert len(live) == wl.live_keys
    # Determinism given (generator seed, workload seed).
    wl2 = BulkMixedWorkload(
        UniformKeys(10**12, seed=51), mix=(0.4, 0.3, 0.2, 0.1), seed=6, chunk=256
    )
    kinds2, keys2 = wl2.take_arrays(5000)
    assert kinds2.tolist() == kinds.tolist()
    assert keys2.tolist() == keys.tolist()
    assert wl.take_arrays(0)[0].size == 0


def test_bulk_mixed_workload_validation():
    gen = UniformKeys(10**12, seed=1)
    with pytest.raises(ValueError, match="mix"):
        BulkMixedWorkload(gen, mix=(1.0, -0.1, 0.0, 0.0))
    with pytest.raises(ValueError, match="chunk"):
        BulkMixedWorkload(gen, chunk=0)
    with pytest.raises(ValueError, match="count"):
        BulkMixedWorkload(gen).take_arrays(-1)
