"""Shared fixtures: contexts, hash functions, key streams.

Tests use small ``(b, m)`` so structural edge cases (splits, merges,
round boundaries) are hit with thousands — not millions — of keys.
"""

from __future__ import annotations

import random

import pytest

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT


@pytest.fixture
def ctx():
    """A small default context: b=32, m=512."""
    return make_context(b=32, m=512)


@pytest.fixture
def big_ctx():
    """A roomier context for structures needing more memory."""
    return make_context(b=64, m=4096)


@pytest.fixture
def hash_fn(ctx):
    return MULTIPLY_SHIFT.sample(ctx.u, seed=1234)


@pytest.fixture
def keys():
    """2000 distinct pseudo-random keys, deterministic across runs."""
    return random.Random(0xC0FFEE).sample(range(10**12), 2000)


@pytest.fixture
def small_keys():
    """300 distinct keys for expensive structures."""
    return random.Random(0xBEEF).sample(range(10**12), 300)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running statistical test")
