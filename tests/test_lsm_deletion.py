"""Tests for LSM tombstone deletion."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.em import make_context
from repro.baselines.lsm import LSMTree


def build(b=16, m=256, **kw):
    ctx = make_context(b=b, m=m)
    kw.setdefault("memtable_items", 32)
    return ctx, LSMTree(ctx, **kw)


class TestTombstones:
    def test_delete_from_memtable(self):
        _, t = build()
        t.insert(5)
        assert t.delete(5)
        assert not t.lookup(5)
        assert len(t) == 0

    def test_delete_from_levels(self, keys):
        _, t = build()
        subset = keys[:300]
        t.insert_many(subset)
        for k in subset[::3]:
            assert t.delete(k)
        assert not any(t.lookup(k) for k in subset[::3])
        assert all(t.lookup(k) for k in subset if k not in set(subset[::3]))
        assert len(t) == len(subset) - len(subset[::3])
        t.check_invariants()

    def test_delete_absent_returns_false(self):
        _, t = build()
        t.insert(1)
        assert not t.delete(99)
        assert not t.delete(99)  # idempotent

    def test_double_delete_returns_false(self, keys):
        _, t = build()
        t.insert_many(keys[:100])
        assert t.delete(keys[0])
        assert not t.delete(keys[0])
        assert len(t) == 99

    def test_delete_costs_no_upfront_io(self, keys):
        """The LSM selling point: deletes are writes, not searches."""
        ctx, t = build()
        t.insert_many(keys[:200])
        before = ctx.stats.snapshot()
        for k in keys[:200:5]:
            t.delete(k)
        assert ctx.stats.delta_since(before).total == 0

    def test_reinsert_after_delete_resurrects(self, keys):
        _, t = build()
        t.insert_many(keys[:100])
        victim = keys[0]
        t.delete(victim)
        t.insert(victim)
        assert t.lookup(victim)
        assert len(t) == 100
        t.check_invariants()

    def test_compaction_retires_tombstones(self, keys):
        """Merging physically drops deleted keys and frees the markers."""
        _, t = build()
        t.insert_many(keys[:300])
        for k in keys[:150]:
            t.delete(k)
        tomb_before = len(t._tombstones)
        assert tomb_before > 0
        # Push enough fresh keys to force flushes/merges through L1+.
        t.insert_many(keys[300:800])
        t.check_invariants()
        assert len(t._tombstones) < tomb_before
        assert not any(t.lookup(k) for k in keys[:150:7])
        assert all(t.lookup(k) for k in keys[150:300:7])

    def test_memory_accounts_for_tombstones(self, keys):
        ctx, t = build(m=2048)
        t.insert_many(keys[:200])
        base = t.memory_words()
        for k in keys[:50]:
            t.delete(k)
        assert t.memory_words() >= base - 50  # tombstones charged
        assert ctx.memory.within_budget()


class TestDeletionModel:
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 60)), max_size=120
        )
    )
    def test_set_equivalence_with_deletes(self, ops):
        ctx = make_context(b=8, m=128)
        t = LSMTree(ctx, memtable_items=8)
        model: set[int] = set()
        for op, key in ops:
            if op == 0:
                t.insert(key)
                model.add(key)
            elif op == 1:
                assert t.delete(key) == (key in model)
                model.discard(key)
            else:
                assert t.lookup(key) == (key in model)
        assert len(t) == len(model)
        assert all(t.lookup(k) for k in model)
        t.check_invariants()
