"""Robustness: every dictionary survives skewed and adversarial streams.

The paper's guarantees are for uniform inputs (with an ideal hash
function the input distribution is immaterial); these tests check the
*implementations* hold their invariants and correctness under the
nastier streams the workload package generates — sequential keys,
Zipf-heavy keys, clustered keys, and keys engineered to collide in one
hash bucket.
"""

import pytest

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.baselines.btree import BTree
from repro.baselines.lsm import LSMTree
from repro.core.buffered import BufferedHashTable
from repro.core.jensen_pagh import JensenPaghTable
from repro.core.logmethod import LogMethodHashTable
from repro.tables.chaining import ChainedHashTable
from repro.tables.extendible import ExtendibleHashTable
from repro.tables.linear_hashing import LinearHashingTable
from repro.tables.linear_probing import LinearProbingHashTable
from repro.workloads.generators import (
    AdversarialBucketKeys,
    ClusteredKeys,
    SequentialKeys,
    ZipfKeys,
)

U = 2**40
N = 800

ALL_TABLES = [
    ChainedHashTable,
    LinearProbingHashTable,
    ExtendibleHashTable,
    LinearHashingTable,
    LogMethodHashTable,
    BufferedHashTable,
    JensenPaghTable,
    LSMTree,
    BTree,
]


def fresh(cls):
    ctx = make_context(b=16, m=1024, u=U)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=77)
    if cls is BTree:
        return ctx, BTree(ctx)
    if cls is LSMTree:
        return ctx, LSMTree(ctx, memtable_items=64)
    return ctx, cls(ctx, h)


STREAMS = {
    "sequential": lambda: SequentialKeys(U, start=1000, stride=1),
    "strided": lambda: SequentialKeys(U, start=0, stride=2**20),
    "zipf": lambda: ZipfKeys(U, seed=1, theta=1.3),
    "clustered": lambda: ClusteredKeys(U, seed=2, clusters=3, width=10_000),
}


@pytest.mark.parametrize("cls", ALL_TABLES, ids=lambda c: c.__name__)
@pytest.mark.parametrize("stream", sorted(STREAMS), ids=str)
def test_roundtrip_under_stream(cls, stream):
    ctx, table = fresh(cls)
    keys = STREAMS[stream]().take(N)
    table.insert_many(keys)
    assert len(table) == N
    assert all(table.lookup(k) for k in keys[::7])
    assert not table.lookup(U - 1)
    table.check_invariants()
    assert ctx.memory.within_budget()


@pytest.mark.parametrize(
    "cls",
    [ChainedHashTable, LinearProbingHashTable, LinearHashingTable],
    ids=lambda c: c.__name__,
)
def test_hash_collision_adversary(cls):
    """Keys colliding into 2 of 64 buckets of the very hash function the
    table uses: chains/probe-runs grow but nothing breaks."""
    ctx = make_context(b=16, m=1024, u=U)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=78)
    table = cls(ctx, h)
    gen = AdversarialBucketKeys(U, seed=3, hash_fn=h, buckets=64, hot=2)
    keys = gen.take(300)
    table.insert_many(keys)
    assert all(table.lookup(k) for k in keys)
    table.check_invariants()


def test_buffered_query_guarantee_is_input_oblivious():
    """Theorem 2's t_q holds for adversarial *keys* as long as the hash
    function is good: measure on clustered input."""
    ctx = make_context(b=64, m=512, u=U)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=79)
    table = BufferedHashTable(ctx, h)
    keys = ClusteredKeys(U, seed=4, clusters=2, width=50_000).take(4000)
    table.insert_many(keys)
    before = ctx.stats.snapshot()
    sample = keys[::5]
    for k in sample:
        assert table.lookup(k)
    avg = ctx.stats.delta_since(before).total / len(sample)
    assert avg < 1.3
