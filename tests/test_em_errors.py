"""Error-path coverage for the EM exception hierarchy.

Each failure mode must raise its precise subclass with a message an
operator can act on: budget exhaustion names the owner and the numbers,
bad block ids name the id, storage faults surface through the service
with the shard and epoch named (``tests/test_faults.py`` drives the
full injection machinery; this file pins the hierarchy and messages).
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.core.buffered import BufferedHashTable
from repro.em import (
    Block,
    BlockOverflowError,
    ConfigurationError,
    Disk,
    EMError,
    InvalidBlockError,
    MemoryBudget,
    MemoryBudgetExceededError,
    RetryExhausted,
    SimulatedCrash,
    StorageFault,
    make_context,
)
from repro.hashing.family import MULTIPLY_SHIFT
from repro.service import (
    DictionaryService,
    FaultInjectingBackend,
    FaultSchedule,
    RetryPolicy,
    RetryingBackend,
)


class TestHierarchy:
    def test_every_model_error_is_an_em_error(self):
        for exc in (
            BlockOverflowError,
            ConfigurationError,
            InvalidBlockError,
            MemoryBudgetExceededError,
            StorageFault,
            SimulatedCrash,
        ):
            assert issubclass(exc, EMError)

    def test_retry_exhausted_is_a_storage_fault(self):
        # Callers that tolerate transient faults catch StorageFault and
        # get exhaustion for free; crash is deliberately NOT a fault.
        assert issubclass(RetryExhausted, StorageFault)
        assert not issubclass(SimulatedCrash, StorageFault)


class TestMemoryBudget:
    def test_hard_budget_exhaustion(self):
        budget = MemoryBudget(m=64)
        budget.charge("buffer", 60)
        with pytest.raises(MemoryBudgetExceededError):
            budget.charge("overflow", 5)

    def test_exhaustion_in_a_real_table(self):
        # A buffered table in a tiny hard-budget context must fail with
        # the precise budget error, not an opaque crash.
        ctx = make_context(b=16, m=8, u=10**9, hard_memory=True)
        table = BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=3))
        with pytest.raises(MemoryBudgetExceededError):
            table.insert_batch(np.arange(1, 500, dtype=np.uint64))


class TestBadBlockIds:
    def test_read_unknown_id(self):
        disk = Disk(8)
        with pytest.raises(InvalidBlockError):
            disk.read(123456)

    def test_write_unallocated_id(self):
        disk = Disk(8)
        with pytest.raises(InvalidBlockError):
            disk.write(42, Block(8, data=[1]))

    def test_freed_id_on_every_charged_path(self):
        disk = Disk(8)
        bid = disk.allocate()
        disk.write(bid, Block(8, data=[1]))
        disk.free(bid)
        with pytest.raises(InvalidBlockError):
            disk.read(bid)
        with pytest.raises(InvalidBlockError):
            disk.probe_record(bid, 1)
        with pytest.raises(InvalidBlockError):
            disk.free(bid)  # double free


class TestServiceFaultMessages:
    """Satellite: surfaced storage faults must name shard and epoch."""

    def _service(self):
        ctx = make_context(b=16, m=128, u=10**12)
        svc = DictionaryService(
            ctx,
            lambda c: BufferedHashTable(c, MULTIPLY_SHIFT.sample(c.u, seed=7)),
            shards=2,
            executor="serial",
            epoch_ops=64,
        )
        for sub in svc._contexts:
            sub.disk.backend = RetryingBackend(
                FaultInjectingBackend(
                    sub.disk.backend,
                    schedule=FaultSchedule(write_faults={1: 50}),
                ),
                policy=RetryPolicy(max_retries=2, backoff_s=0),
            )
        return svc

    def test_message_names_shard_epoch_block_and_cause(self):
        svc = self._service()
        kinds = np.zeros(300, dtype=np.uint8)
        keys = np.arange(1, 301, dtype=np.uint64)
        with pytest.raises(RetryExhausted) as exc_info:
            svc.run(kinds, keys)
        msg = str(exc_info.value)
        # The first write happens when the memory buffer first spills,
        # whichever epoch that lands in.
        assert re.match(r"epoch \d+: shard \d+:", msg)
        assert "shard " in msg
        assert "block " in msg
        assert "gave up after 2 retries" in msg
        assert "injected transient write fault" in msg

    def test_wrapped_exception_keeps_type(self):
        svc = self._service()
        kinds = np.zeros(300, dtype=np.uint8)
        keys = np.arange(1, 301, dtype=np.uint64)
        with pytest.raises(StorageFault):  # still catchable as the base
            svc.run(kinds, keys)
